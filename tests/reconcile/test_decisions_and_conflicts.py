"""Unit tests for reconciliation state and conflict detection."""

import pytest

from repro.core.schema import PeerSchema
from repro.core.updates import Update
from repro.errors import ReconciliationError
from repro.exchange.translation import CandidateTransaction
from repro.reconcile.conflicts import conflicts_between, conflicts_with_state, updates_conflict
from repro.reconcile.decisions import Decision, ReconciliationState

SIGMA2 = PeerSchema.build("Sigma2", {"OPS": ["org", "prot", "seq"]}, {"OPS": ["org", "prot"]})


def candidate(txn_id: str, seq: str = "AAA", origin: str = "Beijing", antecedents=()) -> CandidateTransaction:
    return CandidateTransaction(
        txn_id=txn_id,
        origin=origin,
        target_peer="Crete",
        updates=(Update.insert("OPS", ("E. coli", "recA", seq), origin=origin),),
        antecedents=frozenset(antecedents),
    )


class TestReconciliationState:
    def test_default_decision_is_pending(self):
        state = ReconciliationState(peer="Crete")
        assert state.decision("unknown") is Decision.PENDING
        assert not state.is_decided("unknown")

    def test_accept_records_updates(self):
        state = ReconciliationState(peer="Crete")
        accepted = candidate("t1")
        state.record_accept(accepted)
        assert state.decision("t1") is Decision.ACCEPTED
        assert state.accepted_ids() == {"t1"}
        assert len(state.all_accepted_updates()) == 1
        assert "t1" not in state.undecided

    def test_reject_and_defer(self):
        state = ReconciliationState(peer="Crete")
        deferred = candidate("t2")
        state.record_defer(deferred)
        assert state.decision("t2") is Decision.DEFERRED
        assert "t2" in state.undecided
        state.record_reject("t3")
        assert state.rejected_ids() == {"t3"}
        assert state.deferred_ids() == {"t2"}

    def test_record_pending_does_not_override_decisions(self):
        state = ReconciliationState(peer="Crete")
        state.record_accept(candidate("t1"))
        state.record_pending(candidate("t1"))
        assert state.decision("t1") is Decision.ACCEPTED

    def test_deferred_conflicts_deduplicated(self):
        state = ReconciliationState(peer="Crete")
        first = state.add_deferred_conflict(["a", "b"], priority=1)
        second = state.add_deferred_conflict(["b", "a"], priority=1)
        assert first is second
        assert len(state.open_conflicts()) == 1

    def test_conflict_containing(self):
        state = ReconciliationState(peer="Crete")
        state.add_deferred_conflict(["a", "b"], priority=1)
        assert state.conflict_containing("a").txn_ids == frozenset({"a", "b"})
        with pytest.raises(ReconciliationError):
            state.conflict_containing("zzz")

    def test_summary(self):
        state = ReconciliationState(peer="Crete")
        state.record_accept(candidate("t1"))
        state.record_reject("t2")
        state.record_defer(candidate("t3"))
        summary = state.summary()
        assert summary["accepted"] == 1
        assert summary["rejected"] == 1
        assert summary["deferred"] == 1


class TestConflictDetection:
    def test_updates_conflict_same_key(self):
        left = [Update.insert("OPS", ("E. coli", "recA", "AAA"))]
        right = [Update.insert("OPS", ("E. coli", "recA", "BBB"))]
        assert updates_conflict(left, right, SIGMA2)

    def test_updates_do_not_conflict_on_unknown_relation(self):
        left = [Update.insert("Unknown", (1,))]
        right = [Update.insert("Unknown", (2,))]
        assert not updates_conflict(left, right, SIGMA2)

    def test_candidates_conflict(self):
        assert conflicts_between(candidate("t1", "AAA"), candidate("t2", "BBB"), SIGMA2)
        assert not conflicts_between(candidate("t1", "AAA"), candidate("t2", "AAA"), SIGMA2)

    def test_same_transaction_never_conflicts(self):
        assert not conflicts_between(candidate("t1", "AAA"), candidate("t1", "BBB"), SIGMA2)

    def test_conflicts_with_state(self):
        accepted = [Update.insert("OPS", ("E. coli", "recA", "AAA"))]
        assert conflicts_with_state(candidate("t2", "BBB"), accepted, SIGMA2)
        assert not conflicts_with_state(candidate("t2", "AAA"), accepted, SIGMA2)
