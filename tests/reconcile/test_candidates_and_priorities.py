"""Unit tests for transaction grouping and priority assignment."""

from repro.core.schema import PeerSchema
from repro.core.trust import TrustPolicy
from repro.core.updates import Update
from repro.exchange.translation import CandidateTransaction
from repro.provenance.graph import ProvenanceGraph
from repro.reconcile.candidates import TransactionGroup, antecedent_closure, build_groups
from repro.reconcile.decisions import ReconciliationState
from repro.reconcile.priorities import group_priority, trusted_variable_set

SIGMA2 = PeerSchema.build("Sigma2", {"OPS": ["org", "prot", "seq"]}, {"OPS": ["org", "prot"]})


def candidate(txn_id: str, origin: str = "Beijing", antecedents=(), seq: str = "AAA") -> CandidateTransaction:
    return CandidateTransaction(
        txn_id=txn_id,
        origin=origin,
        target_peer="Crete",
        updates=(Update.insert("OPS", ("E. coli", txn_id, seq), origin=origin),),
        antecedents=frozenset(antecedents),
    )


class TestAntecedentClosure:
    def test_transitive_closure(self):
        pool = {
            "a": candidate("a"),
            "b": candidate("b", antecedents={"a"}),
            "c": candidate("c", antecedents={"b"}),
        }
        assert antecedent_closure(pool["c"], pool) == {"a", "b"}

    def test_unknown_antecedents_included_but_not_expanded(self):
        pool = {"c": candidate("c", antecedents={"x"})}
        assert antecedent_closure(pool["c"], pool) == {"x"}


class TestBuildGroups:
    def test_independent_candidates_form_singleton_groups(self):
        state = ReconciliationState(peer="Crete")
        outcome = build_groups([candidate("t1"), candidate("t2")], state, "Crete")
        assert len(outcome.groups) == 2
        assert all(len(group.members) == 1 for group in outcome.groups)

    def test_available_antecedent_pulled_into_group(self):
        state = ReconciliationState(peer="Crete")
        parent = candidate("t1", origin="Alaska")
        child = candidate("t2", antecedents={"t1"})
        outcome = build_groups([parent, child], state, "Crete")
        child_group = next(group for group in outcome.groups if group.txn_id == "t2")
        assert child_group.member_ids() == {"t1", "t2"}
        # Antecedents come before dependents.
        assert [member.txn_id for member in child_group.members] == ["t1", "t2"]

    def test_rejected_antecedent_rejects_candidate(self):
        state = ReconciliationState(peer="Crete")
        state.record_reject("t1")
        outcome = build_groups([candidate("t2", antecedents={"t1"})], state, "Crete")
        assert [c.txn_id for c in outcome.rejected] == ["t2"]
        assert not outcome.groups

    def test_accepted_antecedent_is_satisfied(self):
        state = ReconciliationState(peer="Crete")
        state.record_accept(candidate("t1"))
        outcome = build_groups([candidate("t2", antecedents={"t1"})], state, "Crete")
        assert len(outcome.groups) == 1
        assert outcome.groups[0].member_ids() == {"t2"}

    def test_missing_antecedent_leaves_candidate_pending(self):
        state = ReconciliationState(peer="Crete")
        outcome = build_groups([candidate("t2", antecedents={"unknown"})], state, "Crete")
        assert [c.txn_id for c in outcome.pending] == ["t2"]

    def test_published_but_empty_antecedent_is_satisfied(self):
        state = ReconciliationState(peer="Crete")
        known = {"t1": frozenset()}
        outcome = build_groups(
            [candidate("t2", antecedents={"t1"})], state, "Crete", known
        )
        assert len(outcome.groups) == 1

    def test_decided_candidates_skipped(self):
        state = ReconciliationState(peer="Crete")
        state.record_accept(candidate("t1"))
        outcome = build_groups([candidate("t1")], state, "Crete")
        assert not outcome.groups


class TestGroupPriority:
    def test_priority_from_candidate_only(self):
        policy = TrustPolicy.trust_only("Crete", {"Beijing": 2, "Dresden": 1}, others=0)
        parent = candidate("t1", origin="Alaska")
        child = candidate("t2", origin="Beijing", antecedents={"t1"})
        group = TransactionGroup(candidate=child, members=(parent, child))
        assert group_priority(group, policy, SIGMA2) == 2
        assert group.priority == 2

    def test_distrusted_candidate_priority_zero(self):
        policy = TrustPolicy.trust_only("Crete", {"Beijing": 2}, others=0)
        group = TransactionGroup(candidate=candidate("t1", origin="Alaska"), members=(candidate("t1", origin="Alaska"),))
        assert group_priority(group, policy, SIGMA2) == 0

    def test_provenance_requirement_downgrades_unsupported(self):
        policy = TrustPolicy.trust_only("Crete", {"Beijing": 2}, others=0)
        graph = ProvenanceGraph()
        graph.add_base_tuple("Alaska.OPS!pub", ("E. coli", "t1", "AAA"), "Alaska.OPS!pub(E. coli,t1,AAA)")
        graph.add_derivation(
            "M", ("Crete.OPS", ("E. coli", "t1", "AAA")), [("Alaska.OPS!pub", ("E. coli", "t1", "AAA"))]
        )
        trusted = {"Beijing", "Crete"}
        group = TransactionGroup(
            candidate=candidate("t1", origin="Beijing"), members=(candidate("t1", origin="Beijing"),)
        )
        assert group_priority(group, policy, SIGMA2, graph, trusted) == 0

    def test_provenance_requirement_keeps_supported(self):
        policy = TrustPolicy.trust_only("Crete", {"Beijing": 2}, others=0)
        graph = ProvenanceGraph()
        graph.add_base_tuple("Beijing.OPS!pub", ("E. coli", "t1", "AAA"), "v")
        graph.add_derivation(
            "M", ("Crete.OPS", ("E. coli", "t1", "AAA")), [("Beijing.OPS!pub", ("E. coli", "t1", "AAA"))]
        )
        group = TransactionGroup(
            candidate=candidate("t1", origin="Beijing"), members=(candidate("t1", origin="Beijing"),)
        )
        assert group_priority(group, policy, SIGMA2, graph, {"Beijing", "Crete"}) == 2

    def test_trusted_variable_set(self):
        graph = ProvenanceGraph()
        graph.add_base_tuple("Beijing.OPS!pub", ("a", "b", "c"), "v1")
        graph.add_base_tuple("Alaska.OPS!pub", ("d", "e", "f"), "v2")
        assert trusted_variable_set(graph, {"Beijing"}) == {"v1"}
