"""Unit tests for the greedy reconciliation algorithm and manual resolution."""

import pytest

from repro.config import ReconciliationConfig
from repro.core.peer import Peer
from repro.core.schema import PeerSchema
from repro.core.trust import TrustPolicy
from repro.core.updates import Update
from repro.errors import ReconciliationError
from repro.exchange.translation import CandidateTransaction
from repro.reconcile.algorithm import Reconciler
from repro.reconcile.decisions import Decision
from repro.reconcile.resolution import resolve_conflict

SIGMA2 = PeerSchema.build("Sigma2", {"OPS": ["org", "prot", "seq"]}, {"OPS": ["org", "prot"]})


def make_peer(trust: TrustPolicy | None = None) -> Peer:
    return Peer("Crete", SIGMA2, trust or TrustPolicy.trust_all("Crete"))


def candidate(
    txn_id: str,
    origin: str = "Beijing",
    org: str = "E. coli",
    prot: str = "recA",
    seq: str = "AAA",
    antecedents=(),
    kind: str = "insert",
    old_seq: str = "AAA",
) -> CandidateTransaction:
    if kind == "insert":
        update = Update.insert("OPS", (org, prot, seq), origin=origin)
    elif kind == "delete":
        update = Update.delete("OPS", (org, prot, seq), origin=origin)
    else:
        update = Update.modify("OPS", (org, prot, old_seq), (org, prot, seq), origin=origin)
    return CandidateTransaction(
        txn_id=txn_id,
        origin=origin,
        target_peer="Crete",
        updates=(update,),
        antecedents=frozenset(antecedents),
    )


class TestAcceptance:
    def test_accepts_trusted_candidate_and_applies_it(self):
        peer = make_peer()
        reconciler = Reconciler(peer)
        result = reconciler.reconcile([candidate("t1")])
        assert result.accepted == ["t1"]
        assert peer.instance.contains("OPS", ("E. coli", "recA", "AAA"))
        assert result.applied_updates == 1

    def test_own_transactions_trivially_accepted(self):
        peer = make_peer()
        reconciler = Reconciler(peer)
        result = reconciler.reconcile([candidate("t1", origin="Crete")])
        assert result.accepted == []
        assert reconciler.state.decision("t1") is Decision.ACCEPTED
        # Not re-applied: the peer already has its own data.
        assert not peer.instance.contains("OPS", ("E. coli", "recA", "AAA"))

    def test_empty_candidates_vacuously_accepted(self):
        peer = make_peer()
        reconciler = Reconciler(peer)
        empty = CandidateTransaction("t1", "Beijing", "Crete", ())
        result = reconciler.reconcile([empty])
        assert reconciler.state.decision("t1") is Decision.ACCEPTED
        assert result.accepted == []

    def test_distrusted_candidate_rejected(self):
        peer = make_peer(TrustPolicy.trust_only("Crete", {"Beijing": 2}, others=0))
        reconciler = Reconciler(peer)
        result = reconciler.reconcile([candidate("t1", origin="Alaska")])
        assert result.rejected == ["t1"]
        assert not peer.instance.contains("OPS", ("E. coli", "recA", "AAA"))

    def test_antecedent_group_accepted_with_candidate(self):
        peer = make_peer(TrustPolicy.trust_only("Crete", {"Beijing": 2}, others=0))
        reconciler = Reconciler(peer)
        parent = candidate("t1", origin="Alaska", seq="AAA")
        child = candidate("t2", origin="Beijing", seq="BBB", antecedents={"t1"},
                          kind="modify", old_seq="AAA")
        result = reconciler.reconcile([parent, child])
        assert set(result.accepted) == {"t1", "t2"}
        assert peer.instance.contains("OPS", ("E. coli", "recA", "BBB"))

    def test_already_decided_candidates_ignored(self):
        peer = make_peer()
        reconciler = Reconciler(peer)
        reconciler.reconcile([candidate("t1")])
        result = reconciler.reconcile([candidate("t1")])
        assert result.accepted == []


class TestConflicts:
    def test_higher_priority_wins(self):
        peer = make_peer(TrustPolicy.trust_only("Crete", {"Beijing": 2, "Dresden": 1}, others=0))
        reconciler = Reconciler(peer)
        result = reconciler.reconcile(
            [candidate("beijing", origin="Beijing", seq="AAA"),
             candidate("dresden", origin="Dresden", seq="BBB")]
        )
        assert result.accepted == ["beijing"]
        assert result.rejected == ["dresden"]
        assert peer.instance.contains("OPS", ("E. coli", "recA", "AAA"))

    def test_equal_priority_conflict_deferred(self):
        peer = make_peer()
        reconciler = Reconciler(peer)
        result = reconciler.reconcile(
            [candidate("a", origin="Alaska", seq="AAA"),
             candidate("b", origin="Beijing", seq="BBB")]
        )
        assert set(result.deferred) == {"a", "b"}
        assert result.conflicts_deferred == 1
        assert len(reconciler.state.open_conflicts()) == 1
        assert peer.instance.count("OPS") == 0

    def test_tie_breaking_ablation_mode(self):
        peer = make_peer()
        reconciler = Reconciler(peer, config=ReconciliationConfig(defer_on_ties=False))
        result = reconciler.reconcile(
            [candidate("a", origin="Alaska", seq="AAA"),
             candidate("b", origin="Beijing", seq="BBB")]
        )
        assert result.accepted == ["a"]
        assert not result.deferred

    def test_non_conflicting_candidates_both_accepted(self):
        peer = make_peer()
        reconciler = Reconciler(peer)
        result = reconciler.reconcile(
            [candidate("a", prot="recA", seq="AAA"), candidate("b", prot="gal4", seq="BBB")]
        )
        assert set(result.accepted) == {"a", "b"}

    def test_conflict_with_previously_accepted_state_rejected(self):
        peer = make_peer()
        reconciler = Reconciler(peer)
        reconciler.reconcile([candidate("first", seq="AAA")])
        result = reconciler.reconcile([candidate("second", origin="Dresden", seq="BBB")])
        assert result.rejected == ["second"]

    def test_dependent_modification_of_accepted_state_not_a_conflict(self):
        peer = make_peer()
        reconciler = Reconciler(peer)
        reconciler.reconcile([candidate("first", seq="AAA")])
        follow_up = candidate(
            "second", seq="BBB", antecedents={"first"}, kind="modify", old_seq="AAA"
        )
        result = reconciler.reconcile([follow_up])
        assert result.accepted == ["second"]
        assert peer.instance.contains("OPS", ("E. coli", "recA", "BBB"))

    def test_rejected_antecedent_rejects_dependent(self):
        peer = make_peer(TrustPolicy.trust_only("Crete", {"Beijing": 2, "Dresden": 1}, others=0))
        reconciler = Reconciler(peer)
        reconciler.reconcile(
            [candidate("beijing", origin="Beijing", seq="AAA"),
             candidate("dresden", origin="Dresden", seq="BBB")]
        )
        dependent = candidate(
            "dresden2", origin="Dresden", seq="CCC", antecedents={"dresden"},
            kind="modify", old_seq="BBB",
        )
        result = reconciler.reconcile([dependent])
        assert result.rejected == ["dresden2"]

    def test_missing_antecedent_leaves_pending_until_available(self):
        peer = make_peer()
        reconciler = Reconciler(peer)
        dependent = candidate("child", seq="BBB", antecedents={"parent"})
        result = reconciler.reconcile([dependent])
        assert result.pending == ["child"]
        # Once the antecedent arrives, both are applied.
        result = reconciler.reconcile([candidate("parent", seq="BBB", prot="other")])
        assert set(result.accepted) == {"parent", "child"}

    def test_dependent_of_deferred_is_deferred(self):
        peer = make_peer()
        reconciler = Reconciler(peer)
        reconciler.reconcile(
            [candidate("a", origin="Alaska", seq="AAA"),
             candidate("b", origin="Beijing", seq="BBB")]
        )
        dependent = candidate(
            "c", origin="Dresden", seq="CCC", antecedents={"b"}, kind="modify", old_seq="BBB"
        )
        result = reconciler.reconcile([dependent])
        assert result.deferred == ["c"]


class TestResolution:
    def _deferred_conflict(self):
        peer = make_peer()
        reconciler = Reconciler(peer)
        reconciler.reconcile(
            [candidate("a", origin="Alaska", seq="AAA"),
             candidate("b", origin="Beijing", seq="BBB")]
        )
        return peer, reconciler

    def test_resolution_accepts_winner_and_rejects_losers(self):
        peer, reconciler = self._deferred_conflict()
        result = resolve_conflict(peer, reconciler.state, "b")
        assert result.accepted == ["b"]
        assert result.rejected == ["a"]
        assert peer.instance.contains("OPS", ("E. coli", "recA", "BBB"))
        assert not peer.instance.contains("OPS", ("E. coli", "recA", "AAA"))
        assert not reconciler.state.open_conflicts()

    def test_resolution_cascades_to_dependents(self):
        peer, reconciler = self._deferred_conflict()
        dependent = candidate("c", seq="CCC", antecedents={"b"}, kind="modify", old_seq="BBB")
        reconciler.reconcile([dependent])
        result = resolve_conflict(peer, reconciler.state, "b")
        assert "c" in result.accepted
        assert peer.instance.contains("OPS", ("E. coli", "recA", "CCC"))

    def test_resolution_rejects_dependents_of_losers(self):
        peer, reconciler = self._deferred_conflict()
        dependent = candidate("c", seq="CCC", antecedents={"a"}, kind="modify", old_seq="AAA")
        reconciler.reconcile([dependent])
        result = resolve_conflict(peer, reconciler.state, "b")
        assert "c" in result.rejected

    def test_resolution_of_unknown_conflict_rejected(self):
        peer, reconciler = self._deferred_conflict()
        with pytest.raises(ReconciliationError):
            resolve_conflict(peer, reconciler.state, "not-deferred")

    def test_reconcile_after_resolution_keeps_decisions(self):
        peer, reconciler = self._deferred_conflict()
        resolve_conflict(peer, reconciler.state, "b")
        result = reconciler.reconcile([])
        assert not result.accepted
        assert reconciler.state.decision("a") is Decision.REJECTED
        assert reconciler.state.decision("b") is Decision.ACCEPTED
