"""The randomized simulation subsystem and its differential oracles.

The parametrized slice runs 25 seeded random networks through all the
differential oracles (incremental-vs-recompute, provenance-vs-DRed,
sql-vs-python, dag-vs-expanded, sync-vs-manual, memory-vs-SQLite,
distributed-vs-centralized, sketch-vs-cursor, async-vs-serial,
replica-durability); the
remaining tests pin down the generator's guarantees (round-tripping,
determinism, validation) and the oracles' sensitivity (a deliberately
injected divergence is reported with its seed and first failing epoch).
"""

import itertools

import pytest

from repro.api.spec import parse_network_spec
from repro.errors import ConfigurationError
from repro.simulate import main as simulate_main
from repro.workloads.simulation import (
    SimulationConfig,
    SimulationRun,
    generate_network,
    run_campaign,
    run_simulation,
)

#: The tier-1 fuzz slice: 25 seeds, every oracle, every epoch.
SLICE_SEEDS = list(range(1, 26))

#: Small-but-representative slice configuration (2-4 peers, 3 epochs).
SLICE_CONFIG = SimulationConfig(epochs=3, transactions_per_epoch=(2, 5))


class TestGeneratedNetworks:
    @pytest.mark.parametrize("seed", [3, 17, 91, 404])
    def test_spec_round_trips_through_text(self, seed):
        spec = generate_network(seed)
        reparsed = parse_network_spec(spec.to_text())
        assert reparsed.to_dict() == spec.to_dict()

    @pytest.mark.parametrize("seed", [5, 42])
    def test_generation_is_deterministic(self, seed):
        assert generate_network(seed).to_text() == generate_network(seed).to_text()

    def test_different_seeds_differ(self):
        texts = {generate_network(seed).to_text() for seed in range(1, 9)}
        assert len(texts) > 1

    def test_mapping_graph_is_acyclic(self):
        # Edges only ever point from lower- to higher-indexed peers.
        for seed in range(1, 13):
            for mapping in generate_network(seed).mappings:
                source = int(mapping.source_peer.removeprefix("Peer"))
                target = int(mapping.target_peer.removeprefix("Peer"))
                assert source < target

    def test_every_non_root_peer_is_reachable(self):
        for seed in range(1, 13):
            spec = generate_network(seed)
            targets = {mapping.target_peer for mapping in spec.mappings}
            for name in list(spec.peers)[1:]:
                assert name in targets

    def test_generated_network_builds_and_syncs(self):
        from repro import CDSS

        spec = generate_network(7)
        cdss = CDSS.from_spec(spec)
        first_peer = next(iter(spec.peers.values()))
        relation, attributes = next(iter(first_peer.relations.items()))
        cdss.peer(first_peer.name).insert(relation, tuple(range(len(attributes))))
        report = cdss.sync()
        assert report.converged


class TestSimulationConfig:
    def test_fraction_sum_is_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(modify_fraction=0.7, delete_fraction=0.4)
        # conflict_fraction rolls independently, so it is not part of the sum.
        SimulationConfig(modify_fraction=0.5, delete_fraction=0.4, conflict_fraction=0.9)

    def test_peer_range_is_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(min_peers=5, max_peers=3)
        with pytest.raises(ConfigurationError):
            SimulationConfig(min_peers=1)

    def test_provenance_mode_is_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(provenance_mode="polynomial-soup")
        assert SimulationConfig(provenance_mode="expanded").provenance_mode == "expanded"

    def test_transactions_range_is_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(transactions_per_epoch=(6, 2))

    def test_sync_mode_is_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(sync_mode="telepathy")
        with pytest.raises(ConfigurationError):
            SimulationConfig(sync_sketch="minhash")
        assert SimulationConfig(sync_mode="gossip", sync_sketch="bloom").sync_mode == "gossip"

    def test_sync_runtime_is_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(sync_runtime="threads")
        assert SimulationConfig(sync_runtime="async").sync_runtime == "async"

    def test_execution_backend_is_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(execution_backend="prolog")
        assert SimulationConfig(execution_backend="sql").execution_backend == "sql"


@pytest.mark.parametrize("seed", SLICE_SEEDS)
def test_differential_oracles_hold(seed):
    """≥25 seeded random networks pass all nine differential oracles."""
    result = run_simulation(seed, SLICE_CONFIG)
    assert result.ok, "\n".join(failure.describe() for failure in result.failures)
    assert result.transactions > 0
    # spec round-trip + analyzer-clean + 9 oracles per epoch actually ran.
    assert result.oracle_checks == 2 + 9 * result.epochs_run


@pytest.mark.parametrize("seed", [2, 9, 23])
def test_differential_oracles_hold_with_distributed_primary(seed):
    """The whole oracle suite also passes with a distributed-store primary."""
    config = SimulationConfig(
        epochs=3,
        transactions_per_epoch=(2, 5),
        store_backend="distributed",
        offline_probability=0.5,
    )
    result = run_simulation(seed, config)
    assert result.ok, "\n".join(failure.describe() for failure in result.failures)


@pytest.mark.parametrize("seed", SLICE_SEEDS)
def test_sketch_vs_cursor_oracle_holds_with_gossip_primary_iblt(seed):
    """25 seeds with an IBLT-gossip primary: reconcile outcomes and
    instances match the cursor-sync mirror under churn."""
    config = SimulationConfig(
        epochs=3,
        transactions_per_epoch=(2, 5),
        sync_mode="gossip",
        sync_sketch="iblt",
        offline_probability=0.4,
    )
    result = run_simulation(seed, config)
    assert result.ok, "\n".join(failure.describe() for failure in result.failures)
    assert result.oracle_checks == 2 + 9 * result.epochs_run


@pytest.mark.parametrize("seed", [3, 11, 19])
def test_sql_vs_python_oracle_holds_with_sql_primary(seed):
    """With an SQL-pushdown primary the python mirror checks it (the
    reverse orientation of the default slice's sql-vs-python oracle)."""
    config = SimulationConfig(
        epochs=3,
        transactions_per_epoch=(2, 5),
        execution_backend="sql",
    )
    result = run_simulation(seed, config)
    assert result.ok, "\n".join(failure.describe() for failure in result.failures)
    assert result.oracle_checks == 2 + 9 * result.epochs_run


@pytest.mark.parametrize("seed", SLICE_SEEDS)
def test_sketch_vs_cursor_oracle_holds_with_gossip_primary_bloom(seed):
    """The same 25-seed slice with the counting-Bloom sketch algorithm."""
    config = SimulationConfig(
        epochs=3,
        transactions_per_epoch=(2, 5),
        sync_mode="gossip",
        sync_sketch="bloom",
        offline_probability=0.4,
    )
    result = run_simulation(seed, config)
    assert result.ok, "\n".join(failure.describe() for failure in result.failures)


@pytest.mark.parametrize("seed", [6, 14])
def test_sketch_vs_cursor_oracle_holds_on_distributed_store(seed):
    """Gossip sync against the sharded distributed archive, under churn."""
    config = SimulationConfig(
        epochs=3,
        transactions_per_epoch=(2, 5),
        sync_mode="gossip",
        store_backend="distributed",
        offline_probability=0.5,
    )
    result = run_simulation(seed, config)
    assert result.ok, "\n".join(failure.describe() for failure in result.failures)


#: The async 25-seed slice cycles through every store-backend × sync-mode
#: combination, so all four corners run the concurrent-vs-serial oracle.
ASYNC_SLICE = [
    (seed, backend, mode)
    for seed, (backend, mode) in zip(
        SLICE_SEEDS,
        itertools.cycle(
            [
                ("centralized", "cursor"),
                ("centralized", "gossip"),
                ("distributed", "cursor"),
                ("distributed", "gossip"),
            ]
        ),
    )
]


@pytest.mark.parametrize("seed,backend,mode", ASYNC_SLICE)
def test_async_vs_serial_oracle_holds(seed, backend, mode):
    """25 seeds with an async-runtime primary: reconcile outcomes, open
    conflicts, and instances match the serial mirror across every
    store-backend × sync-mode combination, under churn."""
    config = SimulationConfig(
        epochs=3,
        transactions_per_epoch=(2, 5),
        store_backend=backend,
        sync_mode=mode,
        sync_runtime="async",
        offline_probability=0.4,
    )
    result = run_simulation(seed, config)
    assert result.ok, "\n".join(failure.describe() for failure in result.failures)
    # spec round-trip + analyzer-clean + 10 oracles per epoch (the serial
    # nine plus the concurrent-vs-serial check the async primary switches on).
    assert result.oracle_checks == 2 + 10 * result.epochs_run


def test_simulation_is_deterministic():
    first = run_simulation(11, SLICE_CONFIG)
    second = run_simulation(11, SLICE_CONFIG)
    assert first.to_dict() == second.to_dict()


def test_campaign_aggregates_results():
    campaign = run_campaign([1, 2, 3], SLICE_CONFIG)
    assert campaign.ok
    data = campaign.to_dict()
    assert data["seeds"] == 3
    assert data["transactions"] == sum(r.transactions for r in campaign.results)


class TestOracleSensitivity:
    """Injected divergences must be caught and pinned to seed + epoch."""

    def _run_one_epoch(self, seed=4):
        run = SimulationRun(seed, SLICE_CONFIG)
        run.run_epoch(1, last_epoch=False)
        assert not run.failures
        return run

    def test_memory_vs_sqlite_detects_divergence(self):
        run = self._run_one_epoch()
        peer = run.sqlite.peer(run.sqlite.catalog.peer_names()[0])
        relation = next(iter(peer.schema)).name
        peer.instance.insert(relation, tuple("z" for _ in range(peer.schema.arity(relation))))
        run._check_memory_vs_sqlite(epoch=2)
        failure = run.failures[-1]
        assert failure.oracle == "memory-vs-sqlite"
        assert failure.seed == 4 and failure.epoch == 2
        assert "only in sqlite" in failure.detail
        assert "seed 4" in failure.describe() and "epoch 2" in failure.describe()

    def test_sync_vs_manual_detects_divergence(self):
        run = self._run_one_epoch()
        peer = run.manual.peer(run.manual.catalog.peer_names()[0])
        relation = next(iter(peer.schema)).name
        peer.instance.insert(relation, tuple("y" for _ in range(peer.schema.arity(relation))))
        run._check_sync_vs_manual(epoch=2)
        assert run.failures[-1].oracle == "sync-vs-manual"

    def test_incremental_vs_recompute_detects_divergence(self):
        run = self._run_one_epoch()
        database = run.primary.engine.database
        predicate = next(iter(database.predicates()))
        values = next(iter(database.relation(predicate)))
        database.remove(predicate, values)
        run._check_incremental_vs_recompute(epoch=2)
        assert run.failures[-1].oracle == "incremental-vs-recompute"

    def test_provenance_vs_dred_detects_divergence(self):
        run = self._run_one_epoch()
        database = run.primary.engine.database
        predicate = next(iter(database.predicates()))
        database.add(predicate, tuple("x" for _ in range(len(next(iter(database.relation(predicate)))))))
        run._check_provenance_vs_dred(epoch=2)
        assert run.failures[-1].oracle == "provenance-vs-dred"
        assert "only in provenance" in run.failures[-1].detail

    def test_sql_vs_python_detects_divergence(self):
        run = self._run_one_epoch()
        database = run.execcheck.database
        predicate = next(iter(database.predicates()))
        database.add(predicate, tuple("t" for _ in range(len(next(iter(database.relation(predicate)))))))
        run._check_sql_vs_python(epoch=2)
        failure = run.failures[-1]
        assert failure.oracle == "sql-vs-python"
        assert "only in sql" in failure.detail

    def test_distributed_vs_centralized_detects_divergence(self):
        run = self._run_one_epoch()
        peer = run.storecheck.peer(run.storecheck.catalog.peer_names()[0])
        relation = next(iter(peer.schema)).name
        peer.instance.insert(relation, tuple("w" for _ in range(peer.schema.arity(relation))))
        run._check_distributed_vs_centralized(epoch=2)
        failure = run.failures[-1]
        assert failure.oracle == "distributed-vs-centralized"
        assert "only in mirror-store" in failure.detail

    def test_distributed_vs_centralized_detects_report_divergence(self):
        run = self._run_one_epoch()
        report = run._last_reports["storecheck"]
        report.rounds[0].published = []
        run._check_distributed_vs_centralized(epoch=2)
        failure = run.failures[-1]
        assert failure.oracle == "distributed-vs-centralized"
        assert "sync round 1 diverges" in failure.detail

    def test_sketch_vs_cursor_detects_divergence(self):
        run = self._run_one_epoch()
        peer = run.synccheck.peer(run.synccheck.catalog.peer_names()[0])
        relation = next(iter(peer.schema)).name
        peer.instance.insert(relation, tuple("v" for _ in range(peer.schema.arity(relation))))
        run._check_sketch_vs_cursor(epoch=2)
        failure = run.failures[-1]
        assert failure.oracle == "sketch-vs-cursor"
        assert "only in mirror-sync" in failure.detail

    def test_sketch_vs_cursor_detects_report_divergence(self):
        run = self._run_one_epoch()
        report = run._last_reports["synccheck"]
        report.rounds[0].published = []
        run._check_sketch_vs_cursor(epoch=2)
        failure = run.failures[-1]
        assert failure.oracle == "sketch-vs-cursor"
        assert "sync round 1 diverges" in failure.detail

    def test_async_vs_serial_detects_divergence(self):
        config = SimulationConfig(
            epochs=3, transactions_per_epoch=(2, 5), sync_runtime="async"
        )
        run = SimulationRun(4, config)
        run.run_epoch(1, last_epoch=False)
        assert not run.failures
        peer = run.runtimecheck.peer(run.runtimecheck.catalog.peer_names()[0])
        relation = next(iter(peer.schema)).name
        peer.instance.insert(relation, tuple("u" for _ in range(peer.schema.arity(relation))))
        run._check_async_vs_serial(epoch=2)
        failure = run.failures[-1]
        assert failure.oracle == "async-vs-serial"
        assert "only in mirror-serial" in failure.detail

    def test_async_vs_serial_detects_report_divergence(self):
        config = SimulationConfig(
            epochs=3, transactions_per_epoch=(2, 5), sync_runtime="async"
        )
        run = SimulationRun(4, config)
        run.run_epoch(1, last_epoch=False)
        assert not run.failures
        report = run._last_reports["runtimecheck"]
        report.rounds[0].published = []
        run._check_async_vs_serial(epoch=2)
        failure = run.failures[-1]
        assert failure.oracle == "async-vs-serial"
        assert "sync round 1 diverges" in failure.detail

    def test_serial_runs_spawn_no_runtimecheck_replica(self):
        run = self._run_one_epoch()
        assert run.runtimecheck is None

    def test_replica_durability_detects_lost_copies(self):
        run = self._run_one_epoch()
        store = run._distributed_replica().store
        # Drop one copy of every entry from the first populated shard while
        # leaving its gossip summary intact — a holder that still claims the
        # data but lost the bytes, which anti-entropy cannot repair.
        shard = next(iter(store._shard_sequences))
        victim = store._replicas[shard][0]
        victim._by_sequence.clear()
        run._check_replica_durability(epoch=2)
        failure = run.failures[-1]
        assert failure.oracle == "replica-durability"
        assert "under-replicated" in failure.detail


class TestCli:
    def test_cli_runs_a_small_campaign(self, capsys):
        assert simulate_main(["--seeds", "2", "--seed-base", "31", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "seed 31: ok" in out and "2 seeds from 31: ok" in out

    def test_cli_quiet_only_prints_summary(self, capsys):
        assert simulate_main(["--seeds", "1", "--quiet", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert out.strip().startswith("simulate:")

    def test_cli_rejects_zero_seeds(self, capsys):
        assert simulate_main(["--seeds", "0"]) == 2

    def test_cli_rejects_bad_config_cleanly(self, capsys):
        assert simulate_main(["--epochs", "0"]) == 2
        assert "invalid configuration" in capsys.readouterr().err
        assert simulate_main(["--transactions", "0"]) == 2

    def test_cli_accepts_single_transaction_epochs(self, capsys):
        assert simulate_main(["--seeds", "1", "--transactions", "1", "--epochs", "2"]) == 0

    def test_cli_store_backend_flags(self, capsys):
        assert simulate_main(
            ["--seeds", "1", "--epochs", "2", "--store-distributed", "--quiet"]
        ) == 0
        assert simulate_main(
            ["--seeds", "1", "--epochs", "2", "--store-centralized", "--quiet"]
        ) == 0
        with pytest.raises(SystemExit):
            simulate_main(["--store-centralized", "--store-distributed"])

    def test_cli_repro_line_names_distributed_store(self, capsys, monkeypatch):
        import repro.simulate as cli

        def boom(seed, config):
            assert config.store_backend == "distributed"
            raise RuntimeError("store exploded")

        monkeypatch.setattr(cli, "run_simulation", boom)
        assert cli.main(["--seeds", "1", "--store-distributed"]) == 1
        assert "--store-distributed" in capsys.readouterr().err

    def test_cli_sync_mode_flags(self, capsys):
        assert simulate_main(
            ["--seeds", "1", "--epochs", "2", "--sync-gossip", "--quiet"]
        ) == 0
        assert simulate_main(
            ["--seeds", "1", "--epochs", "2", "--sync-gossip", "--sketch", "bloom", "--quiet"]
        ) == 0
        assert simulate_main(
            ["--seeds", "1", "--epochs", "2", "--sync-cursor", "--quiet"]
        ) == 0
        with pytest.raises(SystemExit):
            simulate_main(["--sync-cursor", "--sync-gossip"])

    def test_cli_repro_line_names_gossip_sync(self, capsys, monkeypatch):
        import repro.simulate as cli

        def boom(seed, config):
            assert config.sync_mode == "gossip" and config.sync_sketch == "bloom"
            raise RuntimeError("sketch exploded")

        monkeypatch.setattr(cli, "run_simulation", boom)
        assert cli.main(["--seeds", "1", "--sync-gossip", "--sketch", "bloom"]) == 1
        err = capsys.readouterr().err
        assert "--sync-gossip" in err and "--sketch bloom" in err

    def test_cli_runtime_flags(self, capsys):
        assert simulate_main(
            ["--seeds", "1", "--epochs", "2", "--runtime", "async", "--quiet"]
        ) == 0
        assert simulate_main(
            ["--seeds", "1", "--epochs", "2", "--runtime", "serial", "--quiet"]
        ) == 0
        with pytest.raises(SystemExit):
            simulate_main(["--runtime", "threads"])

    def test_cli_repro_line_names_async_runtime(self, capsys, monkeypatch):
        import repro.simulate as cli

        def boom(seed, config):
            assert config.sync_runtime == "async"
            raise RuntimeError("scheduler exploded")

        monkeypatch.setattr(cli, "run_simulation", boom)
        assert cli.main(["--seeds", "1", "--runtime", "async"]) == 1
        assert "--runtime async" in capsys.readouterr().err

    def test_cli_execution_backend_flags(self, capsys):
        assert simulate_main(
            ["--seeds", "1", "--epochs", "2", "--execution", "sql", "--quiet"]
        ) == 0
        assert simulate_main(
            ["--seeds", "1", "--epochs", "2", "--execution", "python", "--quiet"]
        ) == 0
        with pytest.raises(SystemExit):
            simulate_main(["--execution", "prolog"])

    def test_cli_repro_line_names_sql_execution(self, capsys, monkeypatch):
        import repro.simulate as cli

        def boom(seed, config):
            assert config.execution_backend == "sql"
            raise RuntimeError("pushdown exploded")

        monkeypatch.setattr(cli, "run_simulation", boom)
        assert cli.main(["--seeds", "1", "--execution", "sql"]) == 1
        assert "--execution sql" in capsys.readouterr().err

    def test_cli_provenance_representation_flags(self, capsys):
        assert simulate_main(
            ["--seeds", "1", "--epochs", "2", "--provenance-expanded", "--quiet"]
        ) == 0
        assert simulate_main(
            ["--seeds", "1", "--epochs", "2", "--provenance-dag", "--quiet"]
        ) == 0
        with pytest.raises(SystemExit):
            simulate_main(["--provenance-dag", "--provenance-expanded"])

    def test_cli_repro_line_names_expanded_mode(self, capsys, monkeypatch):
        import repro.simulate as cli

        def boom(seed, config):
            assert config.provenance_mode == "expanded"
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(cli, "run_simulation", boom)
        assert cli.main(["--seeds", "1", "--provenance-expanded"]) == 1
        assert "--provenance-expanded" in capsys.readouterr().err

    def test_cli_attributes_crashes_to_their_seed(self, capsys, monkeypatch):
        import repro.simulate as cli

        def boom(seed, config):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(cli, "run_simulation", boom)
        assert cli.main(["--seeds", "2", "--seed-base", "40"]) == 1
        err = capsys.readouterr().err
        assert "seed 40" in err and "seed 41" in err
        assert "--seed-base 40" in err and "engine exploded" in err


@pytest.mark.slow
def test_extended_fuzz_campaign():
    """Nightly-sized campaign: larger networks, more epochs, fresh seeds."""
    config = SimulationConfig(epochs=6, max_peers=6, transactions_per_epoch=(3, 9))
    campaign = run_campaign(range(500, 560), config)
    assert campaign.ok, "\n".join(f.describe() for f in campaign.failures)
