"""Integration tests: the five demonstration scenarios of Section 4.

Each test asserts exactly the claims the paper's demonstration description
makes; EXPERIMENTS.md cross-references these outcomes.
"""

from repro.workloads.scenarios import (
    run_all_scenarios,
    scenario_1_bidirectional_translation,
    scenario_2_conflict_and_dependent_rejection,
    scenario_3_antecedent_acceptance,
    scenario_4_deferral_and_resolution,
    scenario_5_offline_publisher,
)


class TestScenario1:
    def test_updates_flow_both_ways(self):
        outcome = scenario_1_bidirectional_translation()
        obs = outcome.observations
        assert obs["dresden_accepted_alaska"]
        assert ("E. coli", "lacZ", "ATGACCATGATT") in obs["dresden_ops"]
        assert obs["alaska_accepted_dresden"]
        assert obs["alaska_has_translated_organism"]
        assert obs["alaska_has_translated_sequence"]


class TestScenario2:
    def test_trust_based_conflict_resolution(self):
        outcome = scenario_2_conflict_and_dependent_rejection()
        obs = outcome.observations
        assert obs["crete_accepts_beijing"]
        assert obs["crete_rejects_dresden"]
        assert obs["crete_sequence_is_beijings"]

    def test_dependent_of_rejected_also_rejected(self):
        outcome = scenario_2_conflict_and_dependent_rejection()
        assert outcome.observations["crete_rejects_follow_up"]


class TestScenario3:
    def test_untrusted_antecedent_accepted_with_trusted_dependent(self):
        outcome = scenario_3_antecedent_acceptance()
        obs = outcome.observations
        assert obs["beijing_depends_on_alaska"]
        assert obs["crete_accepts_beijing"]
        assert obs["crete_accepts_alaska_antecedent"]
        assert obs["crete_has_modified_sequence"]
        assert obs["crete_has_untouched_antecedent_data"]


class TestScenario4:
    def test_deferral_and_manual_resolution(self):
        outcome = scenario_4_deferral_and_resolution()
        obs = outcome.observations
        assert obs["dresden_defers_both"]
        assert obs["dresden_open_conflicts_after_first"] == 1
        assert obs["dresden_defers_crete"]
        assert obs["resolution_accepts_beijing"]
        assert obs["resolution_rejects_alaska"]
        assert obs["resolution_accepts_crete_automatically"]
        assert obs["dresden_final_sequence"]
        assert obs["dresden_decisions"]["Alaska-T1"] == "rejected"
        assert obs["dresden_decisions"]["Crete-T1"] == "accepted"


class TestScenario5:
    def test_offline_publisher_data_still_available(self):
        outcome = scenario_5_offline_publisher()
        obs = outcome.observations
        assert obs["beijing_online"] is False
        assert obs["alaska_accepted_all"]
        assert obs["store_still_has_beijing"]
        assert obs["archive_availability"] == 1.0
        assert obs["alaska_organism_count"] >= 3


def test_run_all_scenarios_returns_every_id():
    outcomes = run_all_scenarios()
    assert set(outcomes) == {"DEMO-S1", "DEMO-S2", "DEMO-S3", "DEMO-S4", "DEMO-S5"}
    assert all(outcome.network is not None for outcome in outcomes.values())
