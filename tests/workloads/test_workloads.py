"""Unit tests for the workload builders, generator and reporting views."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.bioinformatics import (
    BioDataGenerator,
    build_figure2_network,
    crete_trust_policy,
    sigma1_schema,
    sigma2_schema,
)
from repro.workloads.generator import SyntheticWorkload, WorkloadConfig
from repro.workloads.reporting import (
    render_decision_table,
    render_mappings,
    render_peer_state,
    render_reconciliation,
    render_system_overview,
)


class TestFigureTwoNetwork:
    def test_peers_and_schemas(self, figure2):
        assert figure2.peer_names() == ["Alaska", "Beijing", "Crete", "Dresden"]
        assert figure2.alaska.schema.relation_names() == ("O", "P", "S")
        assert figure2.crete.schema.relation_names() == ("OPS",)

    def test_mapping_count(self, figure2):
        # 3 + 3 identity mappings between Σ1 peers, 1 + 1 between Σ2 peers,
        # plus the join and split mappings.
        assert len(figure2.cdss.catalog.mappings()) == 10

    def test_crete_trust_policy(self):
        policy = crete_trust_policy()
        assert policy.peer_priorities == {"Beijing": 2, "Dresden": 1}
        assert policy.default_priority == 0

    def test_schema_builders(self):
        assert sigma1_schema().arity("S") == 3
        assert sigma2_schema().arity("OPS") == 3

    def test_mapping_graph_cyclic(self, figure2):
        graph = figure2.cdss.catalog.mapping_graph()
        assert "Crete" in graph["Alaska"]
        assert "Alaska" in graph["Crete"]


class TestBioDataGenerator:
    def test_deterministic(self):
        first = BioDataGenerator(seed=3).sigma1_rows(5, 5)
        second = BioDataGenerator(seed=3).sigma1_rows(5, 5)
        assert first == second

    def test_different_seeds_differ(self):
        first = BioDataGenerator(seed=3).sigma2_rows(10)
        second = BioDataGenerator(seed=4).sigma2_rows(10)
        assert first != second

    def test_organism_and_protein_names_unique(self):
        generator = BioDataGenerator()
        organisms = {generator.organism(index) for index in range(30)}
        proteins = {generator.protein(index) for index in range(30)}
        assert len(organisms) == 30
        assert len(proteins) == 30

    def test_load_sigma1_and_sigma2(self, figure2):
        generator = BioDataGenerator()
        loaded1 = generator.load_sigma1(figure2.alaska, organisms=4, proteins=4)
        loaded2 = generator.load_sigma2(figure2.crete, pairs=5)
        assert loaded1 >= 8
        assert loaded2 == 5
        assert figure2.alaska.instance.count("O") == 4

    def test_insertion_transactions(self, figure2):
        generator = BioDataGenerator()
        txns = generator.insertion_transactions(figure2.alaska, 3)
        assert len(txns) == 3
        assert figure2.alaska.instance.count("S") == 3
        txns2 = generator.insertion_transactions(figure2.dresden, 2)
        assert len(txns2) == 2
        assert figure2.dresden.instance.count("OPS") == 2


class TestSyntheticWorkload:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(transactions=-1)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(conflict_rate=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(updates_per_transaction=0)

    def test_fraction_sum_must_not_exceed_one(self):
        # Individually valid fractions whose sum exceeds 1 used to be
        # accepted silently, skewing the generated mix toward deletions.
        with pytest.raises(ConfigurationError):
            WorkloadConfig(modify_fraction=0.7, delete_fraction=0.6)
        # The boundary is fine.
        config = WorkloadConfig(modify_fraction=0.6, delete_fraction=0.4)
        assert config.modify_fraction + config.delete_fraction == 1.0

    def test_generates_requested_number(self, figure2):
        workload = SyntheticWorkload(figure2, WorkloadConfig(transactions=20, seed=5))
        generated = workload.generate()
        assert len(generated) == 20
        kinds = {item.kind for item in generated}
        assert "insert" in kinds

    def test_conflict_pairs_marked(self, figure2):
        workload = SyntheticWorkload(
            figure2, WorkloadConfig(transactions=20, conflict_rate=0.5, seed=5)
        )
        generated = workload.generate()
        conflicts = [item for item in generated if item.kind == "conflict"]
        assert conflicts
        assert all(item.conflicts_with for item in conflicts)

    def test_publish_and_reconcile_all(self, figure2):
        workload = SyntheticWorkload(figure2, WorkloadConfig(transactions=6, seed=5))
        workload.generate()
        published = workload.publish_all()
        assert published == 6
        summaries = workload.reconcile_all()
        assert set(summaries) == {"Alaska", "Beijing", "Crete", "Dresden"}
        assert summaries["Dresden"]["accepted"] > 0

    def test_deterministic_given_seed(self, figure2):
        first = SyntheticWorkload(figure2, WorkloadConfig(transactions=10, seed=9))
        ids_first = [item.transaction.txn_id for item in first.generate()]
        second_network = build_figure2_network()
        second = SyntheticWorkload(second_network, WorkloadConfig(transactions=10, seed=9))
        ids_second = [item.transaction.txn_id for item in second.generate()]
        assert len(ids_first) == len(ids_second)


class TestReporting:
    def test_render_peer_state(self, figure2):
        figure2.alaska.insert("O", ("E. coli", 1))
        text = render_peer_state(figure2.alaska)
        assert "Alaska" in text
        assert "E. coli" in text

    def test_render_mappings(self, figure2):
        text = render_mappings(figure2.cdss)
        assert "M_AC" in text
        assert "M_CA" in text

    def test_render_reconciliation_and_overview(self, figure2):
        cdss = figure2.cdss
        figure2.alaska.insert("O", ("E. coli", 1))
        cdss.publish("Alaska")
        outcome = cdss.reconcile("Beijing")
        text = render_reconciliation(outcome, cdss.reconciliation_state("Beijing"))
        assert "Beijing" in text
        overview = render_system_overview(cdss)
        assert "CDSS overview" in overview

    def test_render_decision_table(self, figure2):
        cdss = figure2.cdss
        figure2.alaska.insert("O", ("E. coli", 1))
        cdss.publish("Alaska")
        cdss.reconcile("Beijing")
        table = render_decision_table(
            [cdss.reconciliation_state(name) for name in figure2.peer_names()]
        )
        assert "Beijing" in table
        assert "accepted" in table
