"""Unit tests for trust conditions and policies."""

import pytest

from repro.core.schema import PeerSchema
from repro.core.trust import TrustCondition, TrustPolicy
from repro.core.updates import Update
from repro.errors import TrustError

SIGMA2 = PeerSchema.build("Sigma2", {"OPS": ["org", "prot", "seq"]})


class TestTrustCondition:
    def test_negative_priority_rejected(self):
        with pytest.raises(TrustError):
            TrustCondition(priority=-1)

    def test_origin_filter(self):
        condition = TrustCondition(priority=2, origin_peer="Beijing")
        assert condition.matches(Update.insert("OPS", ("a", "b", "c"), origin="Beijing"))
        assert not condition.matches(Update.insert("OPS", ("a", "b", "c"), origin="Alaska"))

    def test_relation_filter(self):
        condition = TrustCondition(priority=2, relation="OPS")
        assert condition.matches(Update.insert("OPS", ("a", "b", "c"), origin="X"))
        assert not condition.matches(Update.insert("O", ("a", 1), origin="X"))

    def test_content_predicate(self):
        condition = TrustCondition(
            priority=3,
            relation="OPS",
            predicate=lambda row: row["org"] == "E. coli",
        )
        assert condition.matches(
            Update.insert("OPS", ("E. coli", "recA", "AAA"), origin="X"), SIGMA2
        )
        assert not condition.matches(
            Update.insert("OPS", ("H. sapiens", "BRCA1", "AAA"), origin="X"), SIGMA2
        )

    def test_content_predicate_without_schema_does_not_match(self):
        condition = TrustCondition(priority=3, predicate=lambda row: True)
        assert not condition.matches(Update.insert("OPS", ("a", "b", "c"), origin="X"))

    def test_str(self):
        condition = TrustCondition(priority=2, origin_peer="Beijing", description="prefer Beijing")
        assert "Beijing" in str(condition)
        assert "2" in str(condition)


class TestTrustPolicy:
    def test_trust_all(self):
        policy = TrustPolicy.trust_all("Dresden")
        update = Update.insert("OPS", ("a", "b", "c"), origin="Anyone")
        assert policy.priority_for_update(update) == 1
        assert policy.trusts_peer("Anyone")

    def test_trust_only(self):
        policy = TrustPolicy.trust_only("Crete", {"Beijing": 2, "Dresden": 1}, others=0)
        assert policy.priority_for_update(Update.insert("OPS", ("a", "b", "c"), origin="Beijing")) == 2
        assert policy.priority_for_update(Update.insert("OPS", ("a", "b", "c"), origin="Dresden")) == 1
        assert policy.priority_for_update(Update.insert("OPS", ("a", "b", "c"), origin="Alaska")) == 0
        assert policy.trusts_peer("Beijing")
        assert not policy.trusts_peer("Alaska")

    def test_own_updates_highly_trusted(self):
        policy = TrustPolicy.trust_only("Crete", {}, others=0)
        update = Update.insert("OPS", ("a", "b", "c"), origin="Crete")
        assert policy.priority_for_update(update) == policy.own_priority
        assert policy.trusts_peer("Crete")

    def test_conditions_take_precedence(self):
        policy = TrustPolicy.trust_all("Dresden", priority=1)
        policy.add_condition(TrustCondition(priority=5, origin_peer="Beijing"))
        assert policy.priority_for_update(Update.insert("OPS", ("a", "b", "c"), origin="Beijing")) == 5
        assert policy.priority_for_update(Update.insert("OPS", ("a", "b", "c"), origin="Alaska")) == 1

    def test_distrust_condition(self):
        policy = TrustPolicy.trust_all("Dresden", priority=1)
        policy.add_condition(TrustCondition(priority=0, origin_peer="Mallory"))
        assert policy.priority_for_update(Update.insert("OPS", ("a", "b", "c"), origin="Mallory")) == 0
        assert not policy.trusts_peer("Mallory")

    def test_transaction_priority_is_minimum(self):
        policy = TrustPolicy.trust_only("Crete", {"Beijing": 2}, others=0)
        updates = [
            Update.insert("OPS", ("a", "b", "c"), origin="Beijing"),
            Update.insert("OPS", ("d", "e", "f"), origin="Alaska"),
        ]
        assert policy.priority_for_updates(updates) == 0

    def test_empty_transaction_priority_zero(self):
        policy = TrustPolicy.trust_all("Dresden")
        assert policy.priority_for_updates([]) == 0

    def test_owner_mismatch_validation(self):
        with pytest.raises(TrustError):
            TrustPolicy(owner="X", default_priority=-1)

    def test_trusted_peers(self):
        policy = TrustPolicy.trust_only("Crete", {"Beijing": 2, "Dresden": 1}, others=0)
        assert policy.trusted_peers(["Alaska", "Beijing", "Crete", "Dresden"]) == {
            "Beijing",
            "Crete",
            "Dresden",
        }

    def test_priorities_by_peer(self):
        policy = TrustPolicy.trust_only("Crete", {"Beijing": 2, "Dresden": 1}, others=0)
        priorities = policy.priorities_by_peer(["Alaska", "Beijing", "Crete", "Dresden"])
        assert priorities == {
            "Alaska": 0,
            "Beijing": 2,
            "Crete": policy.own_priority,
            "Dresden": 1,
        }
        # Consistent with the boolean view used everywhere else.
        for peer, priority in priorities.items():
            assert (priority > 0) == policy.trusts_peer(peer)

    def test_priorities_by_peer_honors_plain_conditions(self):
        policy = TrustPolicy(owner="Crete", default_priority=1)
        policy.add_condition(TrustCondition(priority=0, origin_peer="Alaska"))
        policy.add_condition(TrustCondition(priority=5, origin_peer="Beijing", relation="OPS"))
        priorities = policy.priorities_by_peer(["Alaska", "Beijing"])
        # The relation-scoped Beijing condition does not apply to plain
        # updates, so Beijing falls back to the default priority.
        assert priorities == {"Alaska": 0, "Beijing": 1}

    def test_describe(self):
        policy = TrustPolicy.trust_only("Crete", {"Beijing": 2}, others=0)
        policy.add_condition(TrustCondition(priority=3, relation="OPS"))
        text = policy.describe()
        assert "Crete" in text and "Beijing" in text
