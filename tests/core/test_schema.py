"""Unit tests for relation and peer schemas."""

import pytest

from repro.core.schema import PeerSchema, RelationSchema, qualified_name, split_qualified
from repro.errors import SchemaError, TupleArityError, UnknownRelationError


class TestRelationSchema:
    def test_basic_properties(self):
        schema = RelationSchema("S", ("oid", "pid", "seq"), ("oid", "pid"))
        assert schema.arity == 3
        assert schema.key == ("oid", "pid")

    def test_key_defaults_to_all_attributes(self):
        schema = RelationSchema("R", ("a", "b"))
        assert schema.key == ("a", "b")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a", "a"))

    def test_unknown_key_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a",), ("b",))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ("a",))

    def test_attribute_index(self):
        schema = RelationSchema("R", ("a", "b"))
        assert schema.attribute_index("b") == 1
        with pytest.raises(SchemaError):
            schema.attribute_index("missing")

    def test_key_of(self):
        schema = RelationSchema("S", ("oid", "pid", "seq"), ("oid", "pid"))
        assert schema.key_of((1, 10, "ATG")) == (1, 10)

    def test_check_arity(self):
        schema = RelationSchema("R", ("a", "b"))
        with pytest.raises(TupleArityError):
            schema.check_arity((1,))

    def test_as_dict(self):
        schema = RelationSchema("R", ("a", "b"))
        assert schema.as_dict((1, 2)) == {"a": 1, "b": 2}

    def test_str(self):
        assert str(RelationSchema("R", ("a", "b"))) == "R(a, b)"


class TestPeerSchema:
    def _sigma1(self) -> PeerSchema:
        return PeerSchema.build(
            "Sigma1",
            {"O": ["org", "oid"], "P": ["prot", "pid"], "S": ["oid", "pid", "seq"]},
            {"O": ["org"], "S": ["oid", "pid"]},
        )

    def test_build(self):
        schema = self._sigma1()
        assert schema.relation_names() == ("O", "P", "S")
        assert schema.relation("S").key == ("oid", "pid")
        assert schema.relation("P").key == ("prot", "pid")

    def test_duplicate_relations_rejected(self):
        with pytest.raises(SchemaError):
            PeerSchema("X", (RelationSchema("R", ("a",)), RelationSchema("R", ("b",))))

    def test_unknown_relation(self):
        schema = self._sigma1()
        with pytest.raises(UnknownRelationError):
            schema.relation("Missing")
        assert not schema.has_relation("Missing")
        assert schema.has_relation("O")

    def test_arity_and_validate_tuple(self):
        schema = self._sigma1()
        assert schema.arity("S") == 3
        assert schema.validate_tuple("O", ("E. coli", 1)) == ("E. coli", 1)
        with pytest.raises(TupleArityError):
            schema.validate_tuple("O", ("E. coli",))

    def test_iteration_and_str(self):
        schema = self._sigma1()
        assert len(list(schema)) == 3
        assert "Sigma1" in str(schema)


class TestQualifiedNames:
    def test_roundtrip(self):
        name = qualified_name("Alaska", "O")
        assert name == "Alaska.O"
        assert split_qualified(name) == ("Alaska", "O")

    def test_invalid_qualified_name(self):
        with pytest.raises(SchemaError):
            split_qualified("NotQualified")
