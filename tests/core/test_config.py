"""Unit tests for the configuration dataclasses."""

import pytest

from repro.config import ExchangeConfig, ReconciliationConfig, StoreConfig, SystemConfig
from repro.errors import ConfigurationError


class TestExchangeConfig:
    def test_defaults(self):
        config = ExchangeConfig()
        assert config.incremental
        assert config.track_provenance
        assert config.max_iterations == 0
        assert config.skolem_prefix == "SK"

    def test_negative_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            ExchangeConfig(max_iterations=-1)

    def test_empty_prefix_rejected(self):
        with pytest.raises(ConfigurationError):
            ExchangeConfig(skolem_prefix="")


class TestReconciliationConfig:
    def test_defaults(self):
        config = ReconciliationConfig()
        assert config.defer_on_ties
        assert config.strict_antecedents
        assert config.default_priority == 0

    def test_negative_priority_rejected(self):
        with pytest.raises(ConfigurationError):
            ReconciliationConfig(default_priority=-1)


class TestStoreConfig:
    def test_defaults(self):
        config = StoreConfig()
        assert config.replication_factor == 2
        assert config.require_online_to_publish
        assert config.require_online_to_reconcile

    def test_invalid_replication_factor(self):
        with pytest.raises(ConfigurationError):
            StoreConfig(replication_factor=0)


class TestSystemConfig:
    def test_default_factory(self):
        config = SystemConfig.default()
        assert isinstance(config.exchange, ExchangeConfig)
        assert isinstance(config.reconciliation, ReconciliationConfig)
        assert isinstance(config.store, StoreConfig)

    def test_configs_are_frozen(self):
        config = SystemConfig.default()
        with pytest.raises(Exception):
            config.exchange.incremental = False


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        import inspect

        from repro import errors

        for _name, cls in inspect.getmembers(errors, inspect.isclass):
            if issubclass(cls, Exception) and cls.__module__ == "repro.errors":
                assert issubclass(cls, errors.ReproError) or cls is errors.ReproError
