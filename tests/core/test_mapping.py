"""Unit tests for schema mappings."""

import pytest

from repro.core.mapping import (
    Mapping,
    identity_mapping,
    join_mapping,
    mapping_from_datalog,
    split_mapping,
)
from repro.core.schema import PeerSchema
from repro.datalog.ast import Variable
from repro.datalog.parser import parse_atom
from repro.errors import MappingError

SIGMA1 = PeerSchema.build(
    "Sigma1", {"O": ["org", "oid"], "P": ["prot", "pid"], "S": ["oid", "pid", "seq"]}
)
SIGMA2 = PeerSchema.build("Sigma2", {"OPS": ["org", "prot", "seq"]})


class TestMappingConstruction:
    def test_empty_body_rejected(self):
        with pytest.raises(MappingError):
            Mapping("m", "A", "B", (), (parse_atom("R(x)"),))

    def test_empty_head_rejected(self):
        with pytest.raises(MappingError):
            Mapping("m", "A", "B", (parse_atom("R(x)"),), ())

    def test_empty_id_rejected(self):
        with pytest.raises(MappingError):
            Mapping("", "A", "B", (parse_atom("R(x)"),), (parse_atom("R(x)"),))

    def test_negated_atoms_rejected(self):
        with pytest.raises(MappingError):
            Mapping("m", "A", "B", (parse_atom("R(x)").negate(),), (parse_atom("R(x)"),))


class TestVariableStructure:
    def test_join_mapping_variables(self):
        mapping = join_mapping(
            "M_AC", "Alaska", "Crete",
            "OPS(org, prot, seq)",
            ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
        )
        assert mapping.existential_variables() == set()
        assert {v.name for v in mapping.exported_variables()} == {"org", "prot", "seq"}
        assert mapping.source_relations() == {"O", "P", "S"}
        assert mapping.target_relations() == {"OPS"}

    def test_split_mapping_existentials(self):
        mapping = split_mapping(
            "M_CA", "Crete", "Alaska",
            ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
            "OPS(org, prot, seq)",
        )
        assert {v.name for v in mapping.existential_variables()} == {"oid", "pid"}

    def test_identity_detection(self):
        mappings = identity_mapping("M_AB", "Alaska", "Beijing", SIGMA1.relations)
        assert len(mappings) == 3
        assert all(mapping.is_identity for mapping in mappings)

    def test_join_is_not_identity(self):
        mapping = join_mapping(
            "M_AC", "Alaska", "Crete",
            "OPS(org, prot, seq)",
            ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
        )
        assert not mapping.is_identity


class TestValidation:
    def test_validate_against_schemas(self):
        mapping = join_mapping(
            "M_AC", "Alaska", "Crete",
            "OPS(org, prot, seq)",
            ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
        )
        mapping.validate_against(SIGMA1, SIGMA2)

    def test_unknown_body_relation(self):
        mapping = join_mapping("M", "A", "C", "OPS(x, y, z)", ["Missing(x, y, z)"])
        with pytest.raises(MappingError):
            mapping.validate_against(SIGMA1, SIGMA2)

    def test_unknown_head_relation(self):
        mapping = join_mapping("M", "A", "C", "Missing(x, y)", ["O(x, y)"])
        with pytest.raises(MappingError):
            mapping.validate_against(SIGMA1, SIGMA2)

    def test_wrong_body_arity(self):
        mapping = join_mapping("M", "A", "C", "OPS(x, y, z)", ["O(x, y, z)"])
        with pytest.raises(MappingError):
            mapping.validate_against(SIGMA1, SIGMA2)

    def test_wrong_head_arity(self):
        mapping = join_mapping("M", "A", "C", "OPS(x, y)", ["O(x, y)"])
        with pytest.raises(MappingError):
            mapping.validate_against(SIGMA1, SIGMA2)


class TestConstructors:
    def test_mapping_from_datalog(self):
        mapping = mapping_from_datalog(
            "M_AC", "Alaska", "Crete",
            "OPS(org, prot, seq) :- O(org, oid), P(prot, pid), S(oid, pid, seq).",
        )
        assert len(mapping.body) == 3
        assert mapping.heads[0].predicate == "OPS"

    def test_identity_mapping_with_arities(self):
        mappings = identity_mapping("M", "A", "B", ["R"], arities={"R": 2})
        assert mappings[0].body[0].arity == 2

    def test_identity_mapping_missing_arity(self):
        with pytest.raises(MappingError):
            identity_mapping("M", "A", "B", ["R"])

    def test_str_rendering(self):
        mapping = join_mapping("M", "A", "C", "OPS(x, y, z)", ["O(x, y)", "S(y, z)"])
        assert "M" in str(mapping)
        assert "A" in str(mapping)
