"""Unit tests for transactions, the builder, and dependency utilities."""

import pytest

from repro.core.transactions import (
    Transaction,
    TransactionBuilder,
    dependency_order,
    dependents_index,
    producers_index,
    transitive_antecedents,
    transitive_dependents,
)
from repro.core.updates import Update
from repro.errors import TransactionError


def txn(txn_id: str, antecedents=(), relation="R", values=(1,)) -> Transaction:
    return Transaction(
        txn_id, "Peer", (Update.insert(relation, values, origin="Peer"),), frozenset(antecedents)
    )


class TestTransaction:
    def test_requires_updates(self):
        with pytest.raises(TransactionError):
            Transaction("t1", "Peer", ())

    def test_requires_id(self):
        with pytest.raises(TransactionError):
            Transaction("", "Peer", (Update.insert("R", (1,)),))

    def test_cannot_depend_on_itself(self):
        with pytest.raises(TransactionError):
            Transaction("t1", "Peer", (Update.insert("R", (1,)),), frozenset({"t1"}))

    def test_inserted_and_deleted_tuples(self):
        transaction = Transaction(
            "t1",
            "Peer",
            (
                Update.insert("R", (1,)),
                Update.delete("R", (2,)),
                Update.modify("R", (3,), (4,)),
            ),
        )
        assert ("R", (1,)) in transaction.inserted_tuples()
        assert ("R", (4,)) in transaction.inserted_tuples()
        assert ("R", (2,)) in transaction.deleted_tuples()
        assert ("R", (3,)) in transaction.deleted_tuples()
        assert len(transaction.touched_tuples()) == 4

    def test_with_epoch(self):
        stamped = txn("t1").with_epoch(7)
        assert stamped.epoch == 7
        assert stamped.txn_id == "t1"

    def test_relations_and_describe(self):
        transaction = txn("t1", antecedents={"t0"})
        assert transaction.relations() == {"R"}
        assert "t0" in transaction.describe()


class TestTransactionBuilder:
    def test_builds_transaction_with_updates(self):
        builder = TransactionBuilder("Alaska", "t1")
        builder.insert("O", ("E. coli", 1)).modify("O", ("E. coli", 1), ("E. coli", 2))
        transaction = builder.build()
        assert transaction.txn_id == "t1"
        assert transaction.peer == "Alaska"
        assert len(transaction.updates) == 2

    def test_antecedents_inferred_from_producers(self):
        producers = {("R", (1,)): "earlier"}
        builder = TransactionBuilder("Peer", "t2", producers=producers)
        builder.delete("R", (1,))
        assert builder.build().antecedents == frozenset({"earlier"})

    def test_modify_infers_antecedent(self):
        producers = {("R", (1,)): "earlier"}
        builder = TransactionBuilder("Peer", "t2", producers=producers)
        builder.modify("R", (1,), (2,))
        assert builder.build().antecedents == frozenset({"earlier"})

    def test_own_transaction_not_an_antecedent(self):
        producers = {("R", (1,)): "t3"}
        builder = TransactionBuilder("Peer", "t3", producers=producers)
        builder.delete("R", (1,))
        assert builder.build().antecedents == frozenset()

    def test_explicit_depends_on(self):
        builder = TransactionBuilder("Peer", "t4")
        builder.insert("R", (1,)).depends_on("a", "b")
        assert builder.build().antecedents == frozenset({"a", "b"})

    def test_generated_ids_unique(self):
        first = TransactionBuilder("Peer").txn_id
        second = TransactionBuilder("Peer").txn_id
        assert first != second


class TestDependencyUtilities:
    def test_dependency_order(self):
        transactions = [txn("c", {"b"}), txn("b", {"a"}), txn("a")]
        ordered = [t.txn_id for t in dependency_order(transactions)]
        assert ordered.index("a") < ordered.index("b") < ordered.index("c")

    def test_dependency_order_ignores_external_antecedents(self):
        transactions = [txn("b", {"external"}), txn("a")]
        assert len(dependency_order(transactions)) == 2

    def test_dependency_cycle_rejected(self):
        transactions = [txn("a", {"b"}), txn("b", {"a"})]
        with pytest.raises(TransactionError):
            dependency_order(transactions)

    def test_dependents_index(self):
        transactions = [txn("a"), txn("b", {"a"}), txn("c", {"a"})]
        index = dependents_index(transactions)
        assert index["a"] == {"b", "c"}

    def test_transitive_dependents(self):
        transactions = [txn("a"), txn("b", {"a"}), txn("c", {"b"}), txn("d")]
        assert transitive_dependents(["a"], transactions) == {"b", "c"}

    def test_transitive_antecedents(self):
        transactions = {t.txn_id: t for t in [txn("a"), txn("b", {"a"}), txn("c", {"b", "x"})]}
        result = transitive_antecedents(transactions["c"], transactions)
        assert result == {"b", "a", "x"}

    def test_producers_index_latest_wins(self):
        first = Transaction("t1", "P", (Update.insert("R", (1,)),))
        second = Transaction("t2", "P", (Update.modify("R", (1,), (1,)),))
        index = producers_index([first, second])
        assert index[("R", (1,))] == "t2"
