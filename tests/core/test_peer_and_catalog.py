"""Unit tests for peers, the catalogue, and the logical clock."""

import pytest

from repro.core.catalog import Catalog
from repro.core.clock import LogicalClock, PeerClockState
from repro.core.mapping import identity_mapping, join_mapping
from repro.core.peer import Peer
from repro.core.schema import PeerSchema
from repro.core.trust import TrustPolicy
from repro.errors import MappingError, PeerError, TransactionError

SIGMA1 = PeerSchema.build(
    "Sigma1",
    {"O": ["org", "oid"], "P": ["prot", "pid"], "S": ["oid", "pid", "seq"]},
    {"O": ["org"], "S": ["oid", "pid"]},
)
SIGMA2 = PeerSchema.build("Sigma2", {"OPS": ["org", "prot", "seq"]}, {"OPS": ["org", "prot"]})


class TestPeer:
    def test_creates_relations(self):
        peer = Peer("Alaska", SIGMA1)
        assert peer.instance.relations() == {"O", "P", "S"}

    def test_empty_name_rejected(self):
        with pytest.raises(PeerError):
            Peer("", SIGMA1)

    def test_trust_owner_must_match(self):
        with pytest.raises(PeerError):
            Peer("Alaska", SIGMA1, TrustPolicy.trust_all("Beijing"))

    def test_commit_applies_and_logs(self):
        peer = Peer("Alaska", SIGMA1)
        transaction = peer.commit(peer.new_transaction().insert("O", ("E. coli", 1)))
        assert peer.instance.contains("O", ("E. coli", 1))
        assert len(peer.log) == 1
        assert peer.unpublished_transactions()[0].txn_id == transaction.txn_id

    def test_commit_validates_arity(self):
        peer = Peer("Alaska", SIGMA1)
        builder = peer.new_transaction().insert("O", ("E. coli",))
        with pytest.raises(Exception):
            peer.commit(builder)

    def test_commit_rejects_foreign_transaction(self):
        alaska = Peer("Alaska", SIGMA1)
        beijing = Peer("Beijing", SIGMA1)
        transaction = beijing.new_transaction().insert("O", ("x", 1)).build()
        with pytest.raises(TransactionError):
            alaska.commit(transaction)

    def test_modify_and_delete_track_producers(self):
        peer = Peer("Alaska", SIGMA1)
        first = peer.insert("S", (1, 10, "AAA"))
        assert peer.producer_of("S", (1, 10, "AAA")) == first.txn_id
        second = peer.modify("S", (1, 10, "AAA"), (1, 10, "BBB"))
        assert first.txn_id in second.antecedents
        assert peer.producer_of("S", (1, 10, "BBB")) == second.txn_id
        third = peer.delete("S", (1, 10, "BBB"))
        assert second.txn_id in third.antecedents
        assert peer.producer_of("S", (1, 10, "BBB")) is None

    def test_snapshot_and_tuples(self):
        peer = Peer("Alaska", SIGMA1)
        peer.insert("O", ("E. coli", 1))
        assert peer.tuples("O") == frozenset({("E. coli", 1)})
        assert peer.snapshot()["O"] == frozenset({("E. coli", 1)})

    def test_tuples_matching_probes_by_column(self):
        peer = Peer("Alaska", SIGMA1)
        peer.insert("S", (1, 10, "ATG"))
        peer.insert("S", (1, 11, "CCC"))
        peer.insert("S", (2, 10, "GGG"))
        assert peer.tuples_matching("S", 0, 1) == frozenset(
            {(1, 10, "ATG"), (1, 11, "CCC")}
        )
        assert peer.tuples_matching("S", 2, "GGG") == frozenset({(2, 10, "GGG")})
        assert peer.tuples_matching("S", 0, 99) == frozenset()

    def test_online_state(self):
        peer = Peer("Alaska", SIGMA1)
        assert peer.online
        peer.set_online(False)
        with pytest.raises(PeerError):
            peer.require_online("publish")

    def test_record_producer(self):
        peer = Peer("Alaska", SIGMA1)
        peer.record_producer("O", ("E. coli", 1), "txn-x")
        assert peer.producer_of("O", ("E. coli", 1)) == "txn-x"

    def test_transaction_ids_unique_per_peer(self):
        peer = Peer("Alaska", SIGMA1)
        first = peer.insert("O", ("a", 1))
        second = peer.insert("O", ("b", 2))
        assert first.txn_id != second.txn_id


class TestCatalog:
    def _catalog(self) -> Catalog:
        catalog = Catalog()
        catalog.add_peer(Peer("Alaska", SIGMA1))
        catalog.add_peer(Peer("Crete", SIGMA2))
        return catalog

    def test_duplicate_peer_rejected(self):
        catalog = self._catalog()
        with pytest.raises(PeerError):
            catalog.add_peer(Peer("Alaska", SIGMA1))

    def test_unknown_peer(self):
        catalog = self._catalog()
        with pytest.raises(PeerError):
            catalog.peer("Missing")
        assert not catalog.has_peer("Missing")

    def test_add_mapping_validates(self):
        catalog = self._catalog()
        mapping = join_mapping(
            "M_AC", "Alaska", "Crete",
            "OPS(org, prot, seq)",
            ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
        )
        catalog.add_mapping(mapping)
        assert catalog.mapping("M_AC") is mapping
        assert catalog.mappings_from("Alaska") == [mapping]
        assert catalog.mappings_into("Crete") == [mapping]

    def test_duplicate_mapping_rejected(self):
        catalog = self._catalog()
        mappings = identity_mapping("M", "Alaska", "Alaska", SIGMA1.relations)
        catalog.add_mappings(mappings)
        with pytest.raises(MappingError):
            catalog.add_mapping(mappings[0])

    def test_invalid_mapping_rejected(self):
        catalog = self._catalog()
        bad = join_mapping("M_bad", "Alaska", "Crete", "OPS(a, b)", ["O(a, b)"])
        with pytest.raises(MappingError):
            catalog.add_mapping(bad)

    def test_unknown_mapping(self):
        catalog = self._catalog()
        with pytest.raises(MappingError):
            catalog.mapping("Missing")

    def test_mapping_graph_and_reachability(self):
        catalog = Catalog()
        for name in ("A", "B", "C"):
            catalog.add_peer(Peer(name, SIGMA2))
        catalog.add_mappings(identity_mapping("M_AB", "A", "B", SIGMA2.relations))
        catalog.add_mappings(identity_mapping("M_BC", "B", "C", SIGMA2.relations))
        graph = catalog.mapping_graph()
        assert graph["A"] == {"B"}
        assert catalog.peers_reachable_from("C") == {"A", "B"}
        assert catalog.peers_reachable_from("A") == set()


class TestClocks:
    def test_logical_clock_ticks(self):
        clock = LogicalClock()
        assert clock.value == 0
        assert clock.tick() == 1
        assert clock.tick() == 2
        assert int(clock) == 2

    def test_peer_clock_state(self):
        state = PeerClockState()
        state.record_publication(3)
        state.record_publication(2)
        state.record_reconciliation(5)
        assert state.last_published_epoch == 3
        assert state.last_reconciled_epoch == 5
