"""Unit tests for tuple-level updates, conflict detection, and tuple helpers."""

import pytest

from repro.core.schema import RelationSchema
from repro.core.tuples import (
    has_labelled_nulls,
    is_labelled_null,
    labelled_null,
    render_tuple,
    render_value,
)
from repro.core.updates import Update, UpdateKind, conflicting
from repro.errors import TransactionError

S_SCHEMA = RelationSchema("S", ("oid", "pid", "seq"), ("oid", "pid"))


class TestUpdateConstruction:
    def test_insert(self):
        update = Update.insert("S", (1, 10, "ATG"), origin="Alaska")
        assert update.is_insert
        assert update.inserted_tuples() == [(1, 10, "ATG")]
        assert update.deleted_tuples() == []

    def test_delete(self):
        update = Update.delete("S", (1, 10, "ATG"))
        assert update.is_delete
        assert update.deleted_tuples() == [(1, 10, "ATG")]
        assert update.inserted_tuples() == []

    def test_modify(self):
        update = Update.modify("S", (1, 10, "ATG"), (1, 10, "GGG"), origin="Beijing")
        assert update.is_modify
        assert update.inserted_tuples() == [(1, 10, "GGG")]
        assert update.deleted_tuples() == [(1, 10, "ATG")]

    def test_modify_requires_old_values(self):
        with pytest.raises(TransactionError):
            Update(UpdateKind.MODIFY, "S", (1, 10, "GGG"))

    def test_non_modify_rejects_old_values(self):
        with pytest.raises(TransactionError):
            Update(UpdateKind.INSERT, "S", (1, 10, "GGG"), old_values=(1, 10, "ATG"))

    def test_key_of_uses_old_tuple_for_modify(self):
        update = Update.modify("S", (1, 10, "ATG"), (2, 20, "GGG"))
        assert update.key_of(S_SCHEMA) == (1, 10)

    def test_with_origin(self):
        update = Update.insert("S", (1, 10, "ATG")).with_origin("Crete")
        assert update.origin == "Crete"

    def test_describe(self):
        assert Update.insert("S", (1, 10, "A")).describe().startswith("+S")
        assert Update.delete("S", (1, 10, "A")).describe().startswith("-S")
        assert "->" in Update.modify("S", (1, 10, "A"), (1, 10, "B")).describe()


class TestConflictDetection:
    def test_same_key_different_value_conflicts(self):
        left = Update.insert("S", (1, 10, "AAA"))
        right = Update.insert("S", (1, 10, "BBB"))
        assert conflicting(left, right, S_SCHEMA)

    def test_identical_inserts_do_not_conflict(self):
        left = Update.insert("S", (1, 10, "AAA"))
        right = Update.insert("S", (1, 10, "AAA"))
        assert not conflicting(left, right, S_SCHEMA)

    def test_different_keys_do_not_conflict(self):
        left = Update.insert("S", (1, 10, "AAA"))
        right = Update.insert("S", (2, 10, "BBB"))
        assert not conflicting(left, right, S_SCHEMA)

    def test_different_relations_do_not_conflict(self):
        left = Update.insert("S", (1, 10, "AAA"))
        right = Update.insert("O", (1, 10, "AAA"))
        assert not conflicting(left, right, S_SCHEMA)

    def test_delete_vs_insert_conflicts(self):
        left = Update.delete("S", (1, 10, "AAA"))
        right = Update.insert("S", (1, 10, "BBB"))
        assert conflicting(left, right, S_SCHEMA)

    def test_two_deletes_do_not_conflict(self):
        left = Update.delete("S", (1, 10, "AAA"))
        right = Update.delete("S", (1, 10, "AAA"))
        assert not conflicting(left, right, S_SCHEMA)

    def test_modify_vs_modify_same_key_conflicts(self):
        left = Update.modify("S", (1, 10, "AAA"), (1, 10, "BBB"))
        right = Update.modify("S", (1, 10, "AAA"), (1, 10, "CCC"))
        assert conflicting(left, right, S_SCHEMA)

    def test_modify_vs_identical_modify_no_conflict(self):
        left = Update.modify("S", (1, 10, "AAA"), (1, 10, "BBB"))
        right = Update.modify("S", (1, 10, "AAA"), (1, 10, "BBB"))
        assert not conflicting(left, right, S_SCHEMA)


class TestTupleHelpers:
    def test_labelled_null_detection(self):
        null = labelled_null("SK_oid", "E. coli")
        assert is_labelled_null(null)
        assert not is_labelled_null("plain")
        assert has_labelled_nulls((1, null))
        assert not has_labelled_nulls((1, 2))

    def test_render_value(self):
        null = labelled_null("SK_oid", "E. coli")
        assert "SK_oid" in render_value(null)
        assert render_value("text") == "text"
        assert render_value(5) == "5"

    def test_render_tuple(self):
        rendered = render_tuple((1, "a"))
        assert rendered == "(1, a)"
