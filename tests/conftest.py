"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import CDSS, PeerSchema, TrustPolicy
from repro.core.mapping import join_mapping
from repro.workloads.bioinformatics import FigureTwoNetwork, build_figure2_network


@pytest.fixture
def figure2() -> FigureTwoNetwork:
    """A fresh Figure-2 bioinformatics network (4 peers, 10 mappings)."""
    return build_figure2_network()


@pytest.fixture
def two_peer_system() -> CDSS:
    """A minimal two-peer system with one identity-like mapping R -> R."""
    cdss = CDSS()
    cdss.add_peer("Source", PeerSchema.build("S", {"R": ["a", "b"]}, {"R": ["a"]}))
    cdss.add_peer("Target", PeerSchema.build("T", {"R": ["a", "b"]}, {"R": ["a"]}))
    cdss.add_mapping(join_mapping("M_ST", "Source", "Target", "R(a, b)", ["R(a, b)"]))
    return cdss


@pytest.fixture
def untrusting_target_system() -> CDSS:
    """Two peers where the target distrusts the source (priority 0)."""
    cdss = CDSS()
    cdss.add_peer("Source", PeerSchema.build("S", {"R": ["a", "b"]}, {"R": ["a"]}))
    cdss.add_peer(
        "Target",
        PeerSchema.build("T", {"R": ["a", "b"]}, {"R": ["a"]}),
        TrustPolicy.trust_only("Target", {}, others=0),
    )
    cdss.add_mapping(join_mapping("M_ST", "Source", "Target", "R(a, b)", ["R(a, b)"]))
    return cdss
