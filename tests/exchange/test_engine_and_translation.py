"""Unit tests for the exchange engine, translation and migration."""

import pytest

from repro.config import ExchangeConfig
from repro.core.mapping import join_mapping, split_mapping
from repro.core.peer import Peer
from repro.core.schema import PeerSchema
from repro.core.transactions import Transaction
from repro.core.updates import Update
from repro.errors import PublicationError
from repro.exchange.engine import ExchangeEngine
from repro.exchange.migration import migrate_instance
from repro.exchange.rules import compile_mappings
from repro.exchange.translation import CandidateTransaction, UpdateTranslator

SIGMA1 = PeerSchema.build(
    "Sigma1",
    {"O": ["org", "oid"], "P": ["prot", "pid"], "S": ["oid", "pid", "seq"]},
    {"O": ["org"], "P": ["prot"], "S": ["oid", "pid"]},
)
SIGMA2 = PeerSchema.build("Sigma2", {"OPS": ["org", "prot", "seq"]}, {"OPS": ["org", "prot"]})


def build_engine(track_provenance: bool = True) -> ExchangeEngine:
    mappings = [
        join_mapping(
            "M_AC", "Alaska", "Crete",
            "OPS(org, prot, seq)",
            ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
        ),
        split_mapping(
            "M_CA", "Crete", "Alaska",
            ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
            "OPS(org, prot, seq)",
        ),
    ]
    program = compile_mappings([("Alaska", SIGMA1), ("Crete", SIGMA2)], mappings)
    return ExchangeEngine(program, ExchangeConfig(track_provenance=track_provenance))


def alaska_insert_txn(txn_id: str = "A1") -> Transaction:
    return Transaction(
        txn_id,
        "Alaska",
        (
            Update.insert("O", ("ecoli", 1), origin="Alaska"),
            Update.insert("P", ("lacZ", 10), origin="Alaska"),
            Update.insert("S", (1, 10, "ATG"), origin="Alaska"),
        ),
    )


class TestExchangeEngine:
    def test_insert_transaction_delta(self):
        engine = build_engine()
        delta = engine.process_transaction(alaska_insert_txn())
        assert ("OPS", ("ecoli", "lacZ", "ATG")) in delta.inserted["Crete"]
        assert engine.derived_tuples("Crete", "OPS") == frozenset({("ecoli", "lacZ", "ATG")})
        assert engine.published_tuples("Alaska", "O") == frozenset({("ecoli", 1)})

    def test_duplicate_processing_rejected(self):
        engine = build_engine()
        engine.process_transaction(alaska_insert_txn())
        with pytest.raises(PublicationError):
            engine.process_transaction(alaska_insert_txn())

    def test_unknown_delta_rejected(self):
        engine = build_engine()
        with pytest.raises(PublicationError):
            engine.delta_for("missing")

    def test_delete_transaction_delta(self):
        engine = build_engine()
        engine.process_transaction(alaska_insert_txn())
        deletion = Transaction(
            "A2", "Alaska", (Update.delete("S", (1, 10, "ATG"), origin="Alaska"),), frozenset({"A1"})
        )
        delta = engine.process_transaction(deletion)
        assert ("OPS", ("ecoli", "lacZ", "ATG")) in delta.deleted["Crete"]
        assert engine.derived_tuples("Crete", "OPS") == frozenset()

    def test_modify_produces_insert_and_delete(self):
        engine = build_engine()
        engine.process_transaction(alaska_insert_txn())
        modify = Transaction(
            "A2",
            "Alaska",
            (Update.modify("S", (1, 10, "ATG"), (1, 10, "GGG"), origin="Alaska"),),
            frozenset({"A1"}),
        )
        delta = engine.process_transaction(modify)
        assert ("OPS", ("ecoli", "lacZ", "GGG")) in delta.inserted["Crete"]
        assert ("OPS", ("ecoli", "lacZ", "ATG")) in delta.deleted["Crete"]

    def test_split_mapping_creates_labelled_nulls(self):
        engine = build_engine()
        crete = Transaction(
            "C1", "Crete", (Update.insert("OPS", ("human", "BRCA1", "GGC"), origin="Crete"),)
        )
        delta = engine.process_transaction(crete)
        alaska_inserts = dict(delta.inserted)["Alaska"]
        relations = {relation for relation, _values in alaska_inserts}
        assert relations == {"O", "P", "S"}

    def test_statistics_and_provenance(self):
        engine = build_engine()
        engine.process_transaction(alaska_insert_txn())
        stats = engine.statistics()
        assert stats["processed_transactions"] == 1
        assert stats["database_tuples"] > 0
        assert engine.provenance is not None

    def test_provenance_disabled(self):
        engine = build_engine(track_provenance=False)
        engine.process_transaction(alaska_insert_txn())
        assert engine.provenance is None

    def test_non_incremental_mode_produces_same_deltas(self):
        """ABL-INCREMENTAL: recompute-per-transaction mode is semantically identical."""
        incremental = build_engine()
        non_incremental = ExchangeEngine(
            compile_mappings(
                [("Alaska", SIGMA1), ("Crete", SIGMA2)],
                [
                    join_mapping(
                        "M_AC", "Alaska", "Crete",
                        "OPS(org, prot, seq)",
                        ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
                    ),
                    split_mapping(
                        "M_CA", "Crete", "Alaska",
                        ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
                        "OPS(org, prot, seq)",
                    ),
                ],
            ),
            ExchangeConfig(incremental=False),
        )
        transactions = [
            alaska_insert_txn("A1"),
            Transaction(
                "A2",
                "Alaska",
                (Update.modify("S", (1, 10, "ATG"), (1, 10, "GGG"), origin="Alaska"),),
                frozenset({"A1"}),
            ),
        ]
        for transaction in transactions:
            left = incremental.process_transaction(transaction)
            right = non_incremental.process_transaction(
                Transaction(transaction.txn_id, transaction.peer, transaction.updates,
                            transaction.antecedents)
            )
            assert {k: sorted(v, key=repr) for k, v in left.inserted.items()} == {
                k: sorted(v, key=repr) for k, v in right.inserted.items()
            }
        assert incremental.derived_tuples("Crete", "OPS") == non_incremental.derived_tuples(
            "Crete", "OPS"
        )

    def test_delta_is_empty_for_unaffected_peer(self):
        engine = build_engine()
        crete_only = Transaction(
            "C9", "Crete", (Update.insert("OPS", ("x", "y", "z"), origin="Crete"),)
        )
        delta = engine.process_transaction(crete_only)
        assert not delta.is_empty_for("Alaska")
        assert delta.change_count() > 0


class TestUpdateTranslator:
    def test_translates_insertions(self):
        engine = build_engine()
        transaction = alaska_insert_txn()
        delta = engine.process_transaction(transaction)
        translator = UpdateTranslator("Crete", SIGMA2)
        candidate = translator.translate(transaction, delta)
        assert isinstance(candidate, CandidateTransaction)
        assert candidate.origin == "Alaska"
        assert candidate.target_peer == "Crete"
        assert not candidate.is_empty
        assert candidate.relations() == {"OPS"}

    def test_reassembles_modifications(self):
        engine = build_engine()
        base = alaska_insert_txn()
        engine.process_transaction(base)
        modify = Transaction(
            "A2",
            "Alaska",
            (Update.modify("S", (1, 10, "ATG"), (1, 10, "GGG"), origin="Alaska"),),
            frozenset({"A1"}),
        )
        delta = engine.process_transaction(modify)
        translator = UpdateTranslator("Crete", SIGMA2)
        candidate = translator.translate(modify, delta)
        kinds = [update.kind.value for update in candidate.updates]
        assert kinds == ["modify"]
        assert candidate.antecedents == frozenset({"A1"})

    def test_empty_translation(self):
        engine = build_engine()
        transaction = alaska_insert_txn()
        delta = engine.process_transaction(transaction)
        translator = UpdateTranslator("Alaska", SIGMA1)
        # Alaska's own transaction translated "for Alaska" only re-derives
        # what it already has, which is fine; translate for a peer whose
        # schema lacks the relations instead.
        unrelated = PeerSchema.build("Other", {"Z": ["a"]})
        other_translator = UpdateTranslator("Other", unrelated)
        candidate = other_translator.translate(transaction, delta)
        assert candidate.is_empty

    def test_translate_many_skips_missing_deltas(self):
        engine = build_engine()
        transaction = alaska_insert_txn()
        delta = engine.process_transaction(transaction)
        translator = UpdateTranslator("Crete", SIGMA2)
        candidates = translator.translate_many(
            [transaction, alaska_insert_txn("A-unprocessed")],
            {transaction.txn_id: delta},
        )
        assert len(candidates) == 1


class TestMigration:
    def test_migrate_instance_builds_initial_transaction(self):
        peer = Peer("Alaska", SIGMA1)
        peer.instance.insert("O", ("ecoli", 1))
        peer.instance.insert("P", ("lacZ", 10))
        transaction = migrate_instance(peer)
        assert transaction is not None
        assert transaction.peer == "Alaska"
        assert len(transaction.updates) == 2
        assert peer.producer_of("O", ("ecoli", 1)) == transaction.txn_id

    def test_empty_instance_returns_none(self):
        peer = Peer("Alaska", SIGMA1)
        assert migrate_instance(peer) is None
