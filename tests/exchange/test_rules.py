"""Unit tests for compiling mappings into the exchange datalog program."""

from repro.core.mapping import identity_mapping, join_mapping, split_mapping
from repro.core.schema import PeerSchema
from repro.datalog.ast import SkolemTerm
from repro.datalog.evaluation import Database, evaluate_program
from repro.datalog.skolem import SkolemFactory
from repro.exchange.rules import (
    compile_mappings,
    contribution_rules,
    derived_relation,
    is_published_relation,
    mapping_rules,
    published_relation,
    qualify_atom,
    split_derived,
)

SIGMA1 = PeerSchema.build(
    "Sigma1", {"O": ["org", "oid"], "P": ["prot", "pid"], "S": ["oid", "pid", "seq"]}
)
SIGMA2 = PeerSchema.build("Sigma2", {"OPS": ["org", "prot", "seq"]})


class TestNaming:
    def test_published_and_derived_names(self):
        assert published_relation("Alaska", "O") == "Alaska.O!pub"
        assert derived_relation("Alaska", "O") == "Alaska.O"
        assert is_published_relation("Alaska.O!pub")
        assert not is_published_relation("Alaska.O")
        assert split_derived("Crete.OPS") == ("Crete", "OPS")

    def test_qualify_atom(self):
        from repro.datalog.parser import parse_atom

        atom = qualify_atom(parse_atom("O(org, oid)"), "Alaska")
        assert atom.predicate == "Alaska.O"


class TestContributionRules:
    def test_one_rule_per_relation(self):
        rules = contribution_rules("Alaska", SIGMA1)
        assert len(rules) == 3
        heads = {rule.head.predicate for rule in rules}
        assert heads == {"Alaska.O", "Alaska.P", "Alaska.S"}
        for rule in rules:
            assert rule.body[0].predicate.endswith("!pub")
            assert rule.label.startswith("pub_")


class TestMappingRules:
    def test_join_mapping_compiles_to_one_rule(self):
        mapping = join_mapping(
            "M_AC", "Alaska", "Crete",
            "OPS(org, prot, seq)",
            ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
        )
        rules = mapping_rules(mapping, SkolemFactory())
        assert len(rules) == 1
        assert rules[0].head.predicate == "Crete.OPS"
        assert rules[0].label == "M_AC"
        assert {atom.predicate for atom in rules[0].positive_body} == {
            "Alaska.O",
            "Alaska.P",
            "Alaska.S",
        }

    def test_split_mapping_skolemises_existentials(self):
        mapping = split_mapping(
            "M_CA", "Crete", "Alaska",
            ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
            "OPS(org, prot, seq)",
        )
        rules = mapping_rules(mapping, SkolemFactory())
        assert len(rules) == 3
        o_rule = next(rule for rule in rules if rule.head.predicate == "Alaska.O")
        assert isinstance(o_rule.head.terms[1], SkolemTerm)

    def test_identity_mapping_rules(self):
        mappings = identity_mapping("M_AB", "Alaska", "Beijing", SIGMA1.relations)
        factory = SkolemFactory()
        rules = [rule for mapping in mappings for rule in mapping_rules(mapping, factory)]
        assert len(rules) == 3
        assert {rule.head.predicate for rule in rules} == {
            "Beijing.O",
            "Beijing.P",
            "Beijing.S",
        }


class TestCompileMappings:
    def test_full_program_structure(self):
        mappings = [
            join_mapping(
                "M_AC", "Alaska", "Crete",
                "OPS(org, prot, seq)",
                ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
            )
        ]
        program = compile_mappings(
            [("Alaska", SIGMA1), ("Crete", SIGMA2)], mappings
        )
        # 3 + 1 contribution rules, plus 1 mapping rule.
        assert len(program) == 5
        assert "Crete.OPS" in program.idb_predicates

    def test_program_evaluates_published_data(self):
        mappings = [
            join_mapping(
                "M_AC", "Alaska", "Crete",
                "OPS(org, prot, seq)",
                ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
            )
        ]
        program = compile_mappings([("Alaska", SIGMA1), ("Crete", SIGMA2)], mappings)
        database = Database.from_dict(
            {
                published_relation("Alaska", "O"): [("ecoli", 1)],
                published_relation("Alaska", "P"): [("lacZ", 10)],
                published_relation("Alaska", "S"): [(1, 10, "ATG")],
            }
        )
        result = evaluate_program(program, database)
        assert result.relation("Crete.OPS") == frozenset({("ecoli", "lacZ", "ATG")})

    def test_cyclic_mappings_terminate(self):
        mappings = [
            join_mapping(
                "M_AC", "Alaska", "Crete",
                "OPS(org, prot, seq)",
                ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
            ),
            split_mapping(
                "M_CA", "Crete", "Alaska",
                ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
                "OPS(org, prot, seq)",
            ),
        ]
        program = compile_mappings([("Alaska", SIGMA1), ("Crete", SIGMA2)], mappings)
        database = Database.from_dict(
            {
                published_relation("Crete", "OPS"): [("ecoli", "lacZ", "ATG")],
            }
        )
        result = evaluate_program(program, database)
        assert result.count("Alaska.O") == 1
        assert result.count("Crete.OPS") == 1
