"""Tests for the hash-consed provenance circuit store and DAG evaluation.

Covers the store itself (interning, canonicalisation, identity laws, lazy
expansion with budget), the graph's circuit compilation (root caching,
incremental invalidation on insert/delete), and the DAG-vs-expanded property
sweep over 8 generated networks required by the provenance refactor:
every derived tuple's DAG evaluation must equal its expanded-polynomial
evaluation under boolean, trust (security), tropical, and counting
semirings, and deletion memo-invalidation must match from-scratch DAG
re-evaluation.
"""

import random

import pytest

from repro.core.system import CDSS
from repro.datalog.ast import Fact
from repro.datalog.evaluation import Database
from repro.datalog.provenance_eval import evaluate_with_provenance
from repro.errors import ProvenanceError
from repro.exchange.rules import published_relation
from repro.provenance.circuit import ONE, ZERO, CircuitEvaluator, CircuitStore
from repro.provenance.graph import ProvenanceGraph, merge_graphs, reference_polynomial
from repro.provenance.homomorphism import evaluate_circuit
from repro.provenance.polynomial import Polynomial
from repro.provenance.semiring import (
    BooleanSemiring,
    CountingSemiring,
    SecuritySemiring,
    TropicalSemiring,
    TrustLevel,
)
from repro.workloads.simulation import RandomWorkload, SimulationConfig, generate_network


class TestCircuitStore:
    def test_interning_is_structural(self):
        store = CircuitStore()
        x, y = store.var("x"), store.var("y")
        assert store.var("x") == x
        left = store.sum_of([store.product_of([x, y]), x])
        right = store.sum_of([x, store.product_of([y, x])])
        assert left == right  # commutativity canonicalised away

    def test_identity_laws(self):
        store = CircuitStore()
        x = store.var("x")
        assert store.sum_of([]) == ZERO
        assert store.product_of([]) == ONE
        assert store.sum_of([ZERO, x]) == x
        assert store.product_of([ONE, x]) == x
        assert store.product_of([ZERO, x]) == ZERO

    def test_flattening_preserves_multiplicity(self):
        store = CircuitStore()
        x = store.var("x")
        two_x = store.sum_of([x, x])
        # x + x is 2x, not x: duplicates must survive canonical sorting.
        assert store.to_polynomial(two_x) == (
            Polynomial.variable("x") + Polynomial.variable("x")
        )
        x_squared = store.product_of([x, x])
        assert store.to_polynomial(x_squared) == (
            Polynomial.variable("x") * Polynomial.variable("x")
        )
        # Nested sums flatten into one canonical node.
        nested = store.sum_of([store.sum_of([x, x]), x])
        assert nested == store.sum_of([x, x, x])

    def test_shared_subcircuits_stored_once(self):
        store = CircuitStore()
        shared = store.product_of([store.var("a"), store.var("b")])
        before = store.node_count()
        again = store.product_of([store.var("b"), store.var("a")])
        assert again == shared
        assert store.node_count() == before

    def test_to_polynomial_budget(self):
        store = CircuitStore()
        # (a0 + b0) * (a1 + b1) * ... expands to 2^n monomials.
        factors = [
            store.sum_of([store.var(f"a{i}"), store.var(f"b{i}")]) for i in range(6)
        ]
        node = store.product_of(factors)
        assert store.to_polynomial(node).monomial_count() == 64
        with pytest.raises(ProvenanceError):
            store.to_polynomial(node, max_monomials=10)

    def test_evaluator_matches_polynomial(self):
        store = CircuitStore()
        node = store.sum_of(
            [
                store.product_of([store.var("x"), store.var("y")]),
                store.var("x"),
                ONE,
            ]
        )
        assignment = {"x": 2, "y": 3}
        evaluator = CircuitEvaluator(store, CountingSemiring(), assignment)
        assert evaluator.value(node) == store.to_polynomial(node).evaluate(
            CountingSemiring(), assignment
        )

    def test_evaluator_memo_persists(self):
        store = CircuitStore()
        node = store.product_of([store.var("x"), store.var("y")])
        evaluator = CircuitEvaluator(store, CountingSemiring(), {"x": 2, "y": 5})
        assert evaluator.value(node) == 10
        memo_before = evaluator.memo_size()
        assert evaluator.value(node) == 10
        assert evaluator.memo_size() == memo_before

    def test_reachable_size_and_variables(self):
        store = CircuitStore()
        shared = store.product_of([store.var("a"), store.var("b")])
        root = store.sum_of([shared, store.var("c")])
        nodes, edges = store.reachable_size([root])
        # root, shared, a, b, c -> 5 nodes; root has 2 children, shared 2.
        assert (nodes, edges) == (5, 4)
        assert store.variables(root) == {"a", "b", "c"}


class TestGraphCircuit:
    def build_diamond(self) -> ProvenanceGraph:
        """a and b jointly derive m; m derives t; b also derives t directly."""
        graph = ProvenanceGraph()
        graph.add_base_tuple("A", (1,), "a")
        graph.add_base_tuple("B", (1,), "b")
        graph.add_derivation("m1", ("M", (1,)), [("A", (1,)), ("B", (1,))])
        graph.add_derivation("m2", ("T", (1,)), [("M", (1,))])
        graph.add_derivation("m3", ("T", (1,)), [("B", (1,))])
        return graph

    def test_roots_are_cached_and_shared(self):
        graph = self.build_diamond()
        root = graph.root("T", (1,))
        assert root == graph.root("T", (1,))  # cached
        nodes, edges = graph.dag_size("T", (1,))
        assert nodes >= 4 and edges >= 3

    def test_annotation_matches_polynomial(self):
        graph = self.build_diamond()
        polynomial = graph.polynomial_for("T", (1,))
        assignment = {"a": 2, "b": 3}
        assert graph.annotation(
            "T", (1,), CountingSemiring(), assignment
        ) == polynomial.evaluate(CountingSemiring(), assignment)

    def test_insertion_invalidates_dependent_roots(self):
        graph = self.build_diamond()
        before = graph.polynomial_for("T", (1,))
        graph.add_base_tuple("C", (1,), "c")
        graph.add_derivation("m4", ("T", (1,)), [("C", (1,))])
        after = graph.polynomial_for("T", (1,))
        assert after == before + Polynomial.variable("c")

    def test_deletion_invalidates_only_dependents(self):
        graph = self.build_diamond()
        # Warm every root and the all-trusted memo.
        assert graph.unsupported_tuples() == []
        graph.remove_base_tuple("A", (1,))
        unsupported = set(graph.unsupported_tuples())
        # M lost its only support; T survives through b.
        assert ("M", (1,)) in unsupported
        assert ("A", (1,)) in unsupported
        assert ("T", (1,)) not in unsupported
        # Matches a from-scratch graph replaying the post-deletion state.
        fresh = merge_graphs([graph])
        assert set(fresh.unsupported_tuples()) == unsupported

    def test_expanded_mode_agrees_with_circuit(self):
        circuit_graph = self.build_diamond()
        expanded_graph = self.build_diamond()
        expanded_graph.evaluation_mode = "expanded"
        assignment = {"a": 1.0, "b": 4.0}
        for relation in ("A", "B", "M", "T"):
            assert circuit_graph.annotation(
                relation, (1,), TropicalSemiring(), assignment
            ) == expanded_graph.annotation(relation, (1,), TropicalSemiring(), assignment)
        assert circuit_graph.is_derivable("T", (1,), {"b"})
        assert expanded_graph.is_derivable("T", (1,), {"b"})
        assert not circuit_graph.is_derivable("M", (1,), {"b"})
        assert not expanded_graph.is_derivable("M", (1,), {"b"})

    def test_deep_derivation_chain_compiles_iteratively(self):
        # 5000 copy-mapping hops: the explicit-frame compiler must not hit
        # Python's recursion limit on a cold-cache query of the deepest tuple.
        graph = ProvenanceGraph()
        graph.add_base_tuple("R", (0,), "x0")
        depth = 5000
        for i in range(1, depth + 1):
            graph.add_derivation(f"m{i}", ("R", (i,)), [("R", (i - 1,))])
        assert graph.is_derivable("R", (depth,))
        assert graph.polynomial_for("R", (depth,)) == Polynomial.variable("x0")
        assert not graph.is_derivable("R", (depth,), set())
        # The bounded reference walker refuses (cleanly) instead of crashing.
        with pytest.raises(ProvenanceError):
            reference_polynomial(graph, "R", (depth,))
        # Deleting the root invalidates the whole chain incrementally.
        graph.remove_base_tuple("R", (0,))
        assert ("R", (depth,)) in set(graph.unsupported_tuples())

    def test_unhashable_semiring_uses_uncached_evaluator(self):
        class UnhashableBoolean(BooleanSemiring):
            __hash__ = None  # e.g. a dataclass with eq=True

        graph = self.build_diamond()
        annotations = graph.evaluate(UnhashableBoolean(), {"a": True, "b": True})
        assert annotations[("T", (1,))] is True
        # T's support is a*b + b, so it stands or falls with b.
        assert graph.annotation("T", (1,), UnhashableBoolean(), {"a": False, "b": True})
        assert not graph.annotation("T", (1,), UnhashableBoolean(), {"a": True, "b": False})

    def test_default_expansion_budget_guards_polynomial_for(self):
        # A join of two 350-way unions: the polynomial has 350^2 = 122,500
        # monomials while the circuit stays linear in the alternatives; the
        # default budget must raise rather than materialise it.
        graph = ProvenanceGraph()
        width = 350
        for side in ("L", "R"):
            for i in range(width):
                graph.add_base_tuple(side, (i,), f"{side.lower()}{i}")
                graph.add_derivation(f"m{side}{i}", (f"U{side}", (0,)), [(side, (i,))])
        graph.add_derivation("join", ("T", (0,)), [("UL", (0,)), ("UR", (0,))])
        with pytest.raises(ProvenanceError):
            graph.polynomial_for("T", (0,))
        # An explicit budget still lifts the bound...
        assert graph.polynomial_for(
            "T", (0,), max_monomials=None
        ).monomial_count() == width * width
        # ...and the DAG answers instantly regardless of expansion size.
        assignment = {v: 1 for v in graph.base_variables()}
        assert graph.annotation("T", (0,), CountingSemiring(), assignment) == width * width

    def test_rule_variable_treatment_does_not_share_evaluators(self):
        from repro.provenance import BooleanSemiring as Boolean
        from repro.provenance import MembershipAssignment

        graph = ProvenanceGraph(annotate_mappings=True)
        graph.add_base_tuple("R", (1,), "r")
        graph.add_derivation("m1", ("T", (1,)), [("R", (1,))])
        # Default trust question: mapping variables count as trusted.
        assert graph.is_derivable("T", (1,), {"r"})
        # Same trusted set, but mapping variables explicitly untrusted: must
        # not collide with the cached evaluator above.
        strict = MembershipAssignment({"r"}, rule_variables=set())
        value = graph.evaluator(Boolean(), strict, default=False).value(
            graph.root("T", (1,))
        )
        assert value is False

    def test_budget_precheck_raises_before_materialising_product(self):
        store = CircuitStore()
        left = store.sum_of([store.var(f"a{i}") for i in range(300)])
        right = store.sum_of([store.var(f"b{i}") for i in range(300)])
        node = store.product_of([left, right])
        # 300 * 300 = 90,000 would exceed the budget of 1,000; the pre-check
        # must raise without building the product.
        with pytest.raises(ProvenanceError):
            store.to_polynomial(node, max_monomials=1_000)

    def test_cached_evaluator_immune_to_caller_mutation(self):
        graph = self.build_diamond()
        assignment = {"a": 2, "b": 3}
        first = graph.annotation("T", (1,), CountingSemiring(), assignment)
        assignment["b"] = 999  # must not corrupt the cached evaluator
        again = graph.annotation("T", (1,), CountingSemiring(), {"a": 2, "b": 3})
        assert first == again

    def test_store_sharing_across_graphs(self):
        first = self.build_diamond()
        first.root("T", (1,))
        interned = first.circuit.node_count()
        second = ProvenanceGraph(store=first.circuit)
        second.add_base_tuple("A", (1,), "a")
        second.add_base_tuple("B", (1,), "b")
        second.add_derivation("m1", ("M", (1,)), [("A", (1,)), ("B", (1,))])
        second.root("M", (1,))
        # The replayed sub-derivation interned nothing new.
        assert second.circuit.node_count() == interned


# ---------------------------------------------------------------------------
# Property sweep: 8 generated networks, DAG vs expanded polynomials
# ---------------------------------------------------------------------------

NETWORK_SEEDS = range(1, 9)
SWEEP_CONFIG = SimulationConfig(
    epochs=2, max_peers=4, transactions_per_epoch=(2, 4)
)
#: Expansion budget: tuples beyond it are exactly the DAG's raison d'être.
SWEEP_BUDGET = 4096


def _provenance_for_seed(seed: int):
    """A generated network's provenance result over insert-only base facts."""
    rng = random.Random(seed)
    spec = generate_network(rng, SWEEP_CONFIG)
    workload = RandomWorkload(spec, SWEEP_CONFIG, rng)
    program = CDSS.from_spec(spec).engine.program
    base = Database()
    for _ in range(SWEEP_CONFIG.epochs):
        for command in workload.epoch_commands():
            if command.kind in ("insert", "conflict"):
                base.add(
                    published_relation(command.peer, command.relation), command.values
                )
    return evaluate_with_provenance(program, base)


def _assignments(variables):
    ordered = sorted(variables)
    trusted = set(ordered[::2])
    clearances = [TrustLevel.PUBLIC, TrustLevel.CONFIDENTIAL, TrustLevel.SECRET]
    return [
        (BooleanSemiring(), {v: (v in trusted) for v in ordered}),
        (SecuritySemiring(), {v: clearances[i % 3] for i, v in enumerate(ordered)}),
        (TropicalSemiring(), {v: float(1 + i % 4) for i, v in enumerate(ordered)}),
        (CountingSemiring(), {v: 1 + i % 3 for i, v in enumerate(ordered)}),
    ]


@pytest.mark.parametrize("seed", NETWORK_SEEDS)
def test_dag_equals_expanded_on_generated_network(seed):
    result = _provenance_for_seed(seed)
    graph = result.graph
    derived = [node.key for node in graph.tuples() if not node.is_base]
    assert derived, f"seed {seed} derived nothing"
    cases = _assignments(graph.base_variables())
    checked = 0
    for relation, values in derived:
        try:
            # The reference expansion walks the derivation hyper-graph and
            # never touches the circuit store: a fully independent oracle.
            polynomial = reference_polynomial(
                graph, relation, values, max_monomials=SWEEP_BUDGET
            )
        except ProvenanceError:
            continue
        # The lazy circuit view must expand to the same polynomial.
        assert graph.polynomial_for(relation, values) == polynomial
        root = graph.root(relation, values)
        for semiring, assignment in cases:
            completed = {
                v: assignment.get(v, semiring.one()) for v in polynomial.variables()
            }
            expanded = polynomial.evaluate(semiring, completed)
            dag = graph.annotation(relation, values, semiring, assignment)
            assert dag == expanded, (
                f"seed {seed}: {relation}{values!r} under {semiring.name}: "
                f"dag={dag!r} expanded={expanded!r}"
            )
            # The one-shot circuit entry point agrees with the memoized path.
            assert evaluate_circuit(graph.circuit, root, semiring, assignment) == dag
        checked += 1
    assert checked > 0


@pytest.mark.parametrize("seed", NETWORK_SEEDS)
def test_deletion_invalidation_matches_fresh_graph(seed):
    result = _provenance_for_seed(seed)
    graph = result.graph
    # Warm every root and the shared all-trusted memo table.
    assert isinstance(graph.unsupported_tuples(), list)
    base_keys = sorted(
        (node.key for node in graph.tuples() if node.is_base), key=repr
    )
    victims = base_keys[::3]
    for relation, values in victims:
        graph.remove_base_tuple(relation, values)
    # Incremental invalidation (only affected roots recompiled) must agree
    # with a from-scratch graph replaying the post-deletion state into a
    # fresh store with cold caches.
    fresh = merge_graphs([graph])
    assert set(graph.unsupported_tuples()) == set(fresh.unsupported_tuples())
    counting = CountingSemiring()
    assignment = {v: 1 for v in graph.base_variables()}
    incremental = graph.evaluate(counting, assignment)
    scratch = fresh.evaluate(counting, assignment)
    assert incremental == scratch
