"""Unit tests for semiring homomorphism evaluation helpers."""

from repro.provenance.expressions import prov_plus, prov_times, prov_var
from repro.provenance.graph import ProvenanceGraph
from repro.provenance.homomorphism import (
    evaluate_expression,
    evaluate_graph,
    evaluate_polynomial,
    specialize_assignment,
)
from repro.provenance.polynomial import Polynomial
from repro.provenance.semiring import BooleanSemiring, SecuritySemiring, TropicalSemiring, TrustLevel


class TestEvaluationHelpers:
    def test_evaluate_polynomial(self):
        polynomial = Polynomial.variable("x") * Polynomial.variable("y")
        result = evaluate_polynomial(polynomial, TropicalSemiring(), {"x": 1.0, "y": 2.0})
        assert result == 3.0

    def test_evaluate_expression(self):
        expression = prov_plus([prov_var("x"), prov_times([prov_var("y"), prov_var("z")])])
        result = evaluate_expression(
            expression, BooleanSemiring(), {"x": False, "y": True, "z": True}
        )
        assert result is True

    def test_evaluate_graph(self):
        graph = ProvenanceGraph()
        graph.add_base_tuple("R", (1,), "r")
        graph.add_derivation("m", ("T", (1,)), [("R", (1,))])
        annotations = evaluate_graph(graph, BooleanSemiring(), {"r": True})
        assert annotations[("T", (1,))] is True

    def test_security_clearances_through_graph(self):
        graph = ProvenanceGraph()
        graph.add_base_tuple("R", (1,), "r")
        graph.add_base_tuple("Q", (1,), "q")
        graph.add_derivation("m1", ("T", (1,)), [("R", (1,)), ("Q", (1,))])
        annotations = evaluate_graph(
            graph,
            SecuritySemiring(),
            {"r": TrustLevel.PUBLIC, "q": TrustLevel.SECRET},
        )
        # A joint derivation needs the *stricter* clearance.
        assert annotations[("T", (1,))] == TrustLevel.SECRET


class TestSpecializeAssignment:
    def test_per_peer_values(self):
        variables_by_peer = {"v1": "Alaska", "v2": "Beijing", "v3": "Crete"}
        values_by_peer = {"Alaska": 5.0, "Beijing": 1.0}
        assignment = specialize_assignment(variables_by_peer, values_by_peer, default=99.0)
        assert assignment == {"v1": 5.0, "v2": 1.0, "v3": 99.0}
