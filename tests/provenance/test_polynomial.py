"""Unit and property-based tests for provenance polynomials N[X]."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProvenanceError
from repro.provenance.polynomial import Monomial, Polynomial
from repro.provenance.semiring import BooleanSemiring, CountingSemiring, TropicalSemiring

variables = st.sampled_from(["x", "y", "z", "w"])


@st.composite
def polynomials(draw) -> Polynomial:
    """Random small polynomials built from variables, +, * and constants."""
    count = draw(st.integers(min_value=0, max_value=3))
    result = Polynomial.zero()
    for _ in range(count):
        monomial_vars = draw(st.lists(variables, min_size=0, max_size=3))
        coefficient = draw(st.integers(min_value=1, max_value=3))
        term = Polynomial.constant(coefficient)
        for name in monomial_vars:
            term = term * Polynomial.variable(name)
        result = result + term
    return result


class TestMonomial:
    def test_from_variables_counts_multiplicity(self):
        monomial = Monomial.from_variables(["x", "y", "x"])
        assert dict(monomial.powers) == {"x": 2, "y": 1}
        assert monomial.degree == 3

    def test_multiply(self):
        left = Monomial.from_variables(["x"])
        right = Monomial.from_variables(["x", "y"])
        assert dict(left.multiply(right).powers) == {"x": 2, "y": 1}

    def test_unit(self):
        assert Monomial.unit().degree == 0
        assert str(Monomial.unit()) == "1"

    def test_invalid_power_rejected(self):
        with pytest.raises(ProvenanceError):
            Monomial((("x", 0),))
        with pytest.raises(ProvenanceError):
            Monomial((("x", -2),))

    def test_from_variables_empty_is_unit(self):
        assert Monomial.from_variables([]) == Monomial.unit()
        assert Monomial.from_variables(iter(())) == Monomial.unit()

    def test_construction_order_is_canonicalised(self):
        # x*y and y*x are the same monomial regardless of tuple order.
        forward = Monomial((("x", 1), ("y", 2)))
        backward = Monomial((("y", 2), ("x", 1)))
        assert forward == backward
        assert hash(forward) == hash(backward)
        assert forward == Monomial.from_variables(["y", "x", "y"])

    def test_duplicate_entries_are_merged(self):
        split = Monomial((("x", 1), ("x", 1)))
        assert split == Monomial.from_variables(["x", "x"])
        assert split.degree == 2

    def test_list_powers_are_coerced_hashable(self):
        monomial = Monomial([("y", 1), ("x", 1)])
        assert isinstance(monomial.powers, tuple)
        assert hash(monomial) == hash(Monomial((("x", 1), ("y", 1))))


class TestPolynomialBasics:
    def test_zero_and_one(self):
        assert Polynomial.zero().is_zero()
        assert Polynomial.one().is_one()
        assert not Polynomial.variable("x").is_zero()

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ProvenanceError):
            Polynomial({Monomial.unit(): -1})

    def test_negative_constant_rejected(self):
        with pytest.raises(ProvenanceError):
            Polynomial.constant(-2)

    def test_addition_merges_monomials(self):
        x = Polynomial.variable("x")
        assert (x + x).coefficient(Monomial.from_variables(["x"])) == 2

    def test_multiplication_distributes(self):
        x, y, z = (Polynomial.variable(name) for name in "xyz")
        assert x * (y + z) == x * y + x * z

    def test_variables(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        assert (x * y + x).variables() == {"x", "y"}

    def test_degree(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        assert (x * y * y + x).degree == 3

    def test_drop_variables(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        polynomial = x * y + x
        assert polynomial.drop_variables({"y"}) == x
        assert polynomial.drop_variables({"x"}).is_zero()

    def test_str_rendering(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        assert str(Polynomial.zero()) == "0"
        assert "x" in str(x * y + x)

    def test_zero_coefficients_never_survive_normalisation(self):
        x = Polynomial.variable("x")
        explicit = Polynomial({Monomial.from_variables(["x"]): 0})
        assert explicit.is_zero()
        assert explicit == Polynomial.zero()
        assert hash(explicit) == hash(Polynomial.zero())
        # Subtract-style path: dropping a variable removes its monomials
        # entirely instead of leaving zero-coefficient terms behind.
        dropped = (x * Polynomial.variable("y") + x).drop_variables({"x"})
        assert dropped.is_zero()
        assert Monomial.from_variables(["x"]) not in dropped.terms()

    def test_equality_independent_of_construction_order(self):
        xy_then_x = Polynomial.variable("x") * Polynomial.variable("y") + Polynomial.variable("x")
        x_then_yx = Polynomial.variable("x") + Polynomial.variable("y") * Polynomial.variable("x")
        assert xy_then_x == x_then_yx
        assert hash(xy_then_x) == hash(x_then_yx)
        direct = Polynomial(
            {
                Monomial((("y", 1), ("x", 1))): 1,
                Monomial((("x", 1),)): 1,
            }
        )
        assert direct == xy_then_x
        assert hash(direct) == hash(xy_then_x)


class TestPolynomialLaws:
    @settings(max_examples=40, deadline=None)
    @given(a=polynomials(), b=polynomials(), c=polynomials())
    def test_semiring_laws(self, a, b, c):
        assert a + b == b + a
        assert a * b == b * a
        assert (a + b) + c == a + (b + c)
        assert (a * b) * c == a * (b * c)
        assert a * (b + c) == a * b + a * c
        assert a + Polynomial.zero() == a
        assert a * Polynomial.one() == a
        assert (a * Polynomial.zero()).is_zero()

    @settings(max_examples=40, deadline=None)
    @given(a=polynomials(), b=polynomials(), data=st.data())
    def test_evaluation_is_homomorphism(self, a, b, data):
        """Evaluating commutes with + and * (universality of N[X])."""
        semiring = CountingSemiring()
        names = sorted((a.variables() | b.variables()))
        assignment = {
            name: data.draw(st.integers(min_value=0, max_value=4)) for name in names
        }
        left = (a + b).evaluate(semiring, assignment)
        right = semiring.plus(a.evaluate(semiring, assignment), b.evaluate(semiring, assignment))
        assert left == right
        left = (a * b).evaluate(semiring, assignment)
        right = semiring.times(a.evaluate(semiring, assignment), b.evaluate(semiring, assignment))
        assert left == right


class TestEvaluation:
    def test_boolean_evaluation(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        polynomial = x * y + x
        assert polynomial.evaluate(BooleanSemiring(), {"x": True, "y": False})
        assert not polynomial.evaluate(BooleanSemiring(), {"x": False, "y": True})

    def test_counting_evaluation(self):
        x = Polynomial.variable("x")
        polynomial = x * x + Polynomial.constant(3)
        assert polynomial.evaluate(CountingSemiring(), {"x": 2}) == 7

    def test_tropical_evaluation(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        polynomial = x * y + y
        assert polynomial.evaluate(TropicalSemiring(), {"x": 4.0, "y": 1.0}) == 1.0

    def test_missing_assignment_rejected(self):
        with pytest.raises(ProvenanceError):
            Polynomial.variable("x").evaluate(CountingSemiring(), {})
