"""Unit and property-based tests for the semiring instances.

The property tests check the commutative-semiring laws on every built-in
instance: associativity and commutativity of + and *, identities, and
annihilation by zero.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SemiringError
from repro.provenance.semiring import (
    BooleanSemiring,
    CountingSemiring,
    FuzzySemiring,
    LineageSemiring,
    PolynomialSemiring,
    SecuritySemiring,
    TropicalSemiring,
    TrustLevel,
    WhySemiring,
    standard_semirings,
)


def _value_strategy(name: str):
    """A hypothesis strategy producing values of the given semiring."""
    if name == "boolean":
        return st.booleans()
    if name == "counting":
        return st.integers(min_value=0, max_value=20)
    if name == "tropical":
        # Integer-valued costs keep float addition exactly associative.
        return st.one_of(
            st.integers(min_value=0, max_value=100).map(float),
            st.just(float("inf")),
        )
    if name == "fuzzy":
        return st.floats(min_value=0, max_value=1, allow_nan=False)
    if name == "security":
        return st.sampled_from(list(TrustLevel))
    if name == "lineage":
        return st.one_of(
            st.none(),
            st.frozensets(st.integers(min_value=0, max_value=5), max_size=4),
        )
    if name == "why":
        return st.frozensets(
            st.frozensets(st.integers(min_value=0, max_value=3), max_size=3), max_size=3
        )
    raise AssertionError(name)


LAW_SEMIRINGS = [
    name for name in standard_semirings() if name != "polynomial"
]


@pytest.mark.parametrize("name", LAW_SEMIRINGS)
class TestSemiringLaws:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_plus_commutative_and_associative(self, name, data):
        semiring = standard_semirings()[name]
        values = _value_strategy(name)
        a, b, c = data.draw(values), data.draw(values), data.draw(values)
        assert semiring.plus(a, b) == semiring.plus(b, a)
        assert semiring.plus(semiring.plus(a, b), c) == semiring.plus(a, semiring.plus(b, c))

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_times_commutative_and_associative(self, name, data):
        semiring = standard_semirings()[name]
        values = _value_strategy(name)
        a, b, c = data.draw(values), data.draw(values), data.draw(values)
        assert semiring.times(a, b) == semiring.times(b, a)
        assert semiring.times(semiring.times(a, b), c) == semiring.times(
            a, semiring.times(b, c)
        )

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_identities_and_annihilation(self, name, data):
        semiring = standard_semirings()[name]
        values = _value_strategy(name)
        a = data.draw(values)
        assert semiring.plus(a, semiring.zero()) == a
        assert semiring.times(a, semiring.one()) == a
        assert semiring.times(a, semiring.zero()) == semiring.zero()

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_distributivity(self, name, data):
        semiring = standard_semirings()[name]
        values = _value_strategy(name)
        a, b, c = data.draw(values), data.draw(values), data.draw(values)
        left = semiring.times(a, semiring.plus(b, c))
        right = semiring.plus(semiring.times(a, b), semiring.times(a, c))
        assert left == right


class TestBooleanSemiring:
    def test_basic_values(self):
        semiring = BooleanSemiring()
        assert semiring.zero() is False
        assert semiring.one() is True
        assert semiring.plus(False, True) is True
        assert semiring.times(True, False) is False


class TestCountingSemiring:
    def test_counts(self):
        semiring = CountingSemiring()
        assert semiring.plus(2, 3) == 5
        assert semiring.times(2, 3) == 6

    def test_sum_and_product_helpers(self):
        semiring = CountingSemiring()
        assert semiring.sum([1, 2, 3]) == 6
        assert semiring.product([2, 3]) == 6


class TestTropicalSemiring:
    def test_min_plus(self):
        semiring = TropicalSemiring()
        assert semiring.plus(3.0, 5.0) == 3.0
        assert semiring.times(3.0, 5.0) == 8.0
        assert semiring.is_zero(float("inf"))


class TestFuzzySemiring:
    def test_max_min(self):
        semiring = FuzzySemiring()
        assert semiring.plus(0.3, 0.7) == 0.7
        assert semiring.times(0.3, 0.7) == 0.3

    def test_out_of_range_rejected(self):
        semiring = FuzzySemiring()
        with pytest.raises(SemiringError):
            semiring.plus(1.5, 0.5)


class TestSecuritySemiring:
    def test_clearances(self):
        semiring = SecuritySemiring()
        assert semiring.plus(TrustLevel.SECRET, TrustLevel.PUBLIC) == TrustLevel.PUBLIC
        assert semiring.times(TrustLevel.SECRET, TrustLevel.PUBLIC) == TrustLevel.SECRET
        assert semiring.zero() == TrustLevel.NEVER
        assert semiring.one() == TrustLevel.ALWAYS


class TestWhyAndLineage:
    def test_why_provenance_witnesses(self):
        semiring = WhySemiring()
        left = frozenset({frozenset({"a"})})
        right = frozenset({frozenset({"b"})})
        combined = semiring.times(left, right)
        assert combined == frozenset({frozenset({"a", "b"})})

    def test_lineage_unions(self):
        semiring = LineageSemiring()
        assert semiring.times(frozenset({"a"}), frozenset({"b"})) == frozenset({"a", "b"})
        assert semiring.plus(frozenset({"a"}), frozenset({"b"})) == frozenset({"a", "b"})


class TestPolynomialSemiring:
    def test_wraps_polynomials(self):
        from repro.provenance.polynomial import Polynomial

        semiring = PolynomialSemiring()
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        assert semiring.plus(x, y) == x + y
        assert semiring.times(x, y) == x * y
        assert semiring.is_zero(semiring.zero())


def test_standard_semirings_catalogue():
    catalogue = standard_semirings()
    assert "boolean" in catalogue
    assert "polynomial" in catalogue
    assert len(catalogue) == 8
