"""Unit tests for the update-exchange provenance graph."""

import pytest

from repro.errors import ProvenanceError
from repro.provenance.graph import ProvenanceGraph, merge_graphs
from repro.provenance.polynomial import Polynomial
from repro.provenance.semiring import BooleanSemiring, CountingSemiring, TropicalSemiring


def build_join_graph() -> ProvenanceGraph:
    """o * p * s derives ops."""
    graph = ProvenanceGraph()
    graph.add_base_tuple("O", ("ecoli", 1), "o")
    graph.add_base_tuple("P", ("lacZ", 10), "p")
    graph.add_base_tuple("S", (1, 10, "ATG"), "s")
    graph.add_derivation(
        "M_AC",
        ("OPS", ("ecoli", "lacZ", "ATG")),
        [("O", ("ecoli", 1)), ("P", ("lacZ", 10)), ("S", (1, 10, "ATG"))],
    )
    return graph


def build_union_graph() -> ProvenanceGraph:
    """Two alternative derivations of the same tuple."""
    graph = ProvenanceGraph()
    graph.add_base_tuple("R", (1,), "r")
    graph.add_base_tuple("Q", (1,), "q")
    graph.add_derivation("m1", ("T", (1,)), [("R", (1,))])
    graph.add_derivation("m2", ("T", (1,)), [("Q", (1,))])
    return graph


class TestConstruction:
    def test_base_tuple_registered_once(self):
        graph = ProvenanceGraph()
        first = graph.add_base_tuple("R", (1,), "r")
        second = graph.add_base_tuple("R", (1,))
        assert first is second

    def test_derived_then_promoted_to_base(self):
        graph = ProvenanceGraph()
        graph.add_derived_tuple("R", (1,))
        node = graph.add_base_tuple("R", (1,), "r")
        assert node.is_base
        assert node.variable == "r"

    def test_duplicate_derivation_deduplicated(self):
        graph = build_join_graph()
        before = graph.size()
        graph.add_derivation(
            "M_AC",
            ("OPS", ("ecoli", "lacZ", "ATG")),
            [("O", ("ecoli", 1)), ("P", ("lacZ", 10)), ("S", (1, 10, "ATG"))],
        )
        assert graph.size() == before

    def test_size(self):
        graph = build_join_graph()
        tuples, derivations = graph.size()
        assert tuples == 4
        assert derivations == 1

    def test_derivations_of_and_from(self):
        graph = build_join_graph()
        assert len(graph.derivations_of("OPS", ("ecoli", "lacZ", "ATG"))) == 1
        assert len(graph.derivations_from("O", ("ecoli", 1))) == 1


class TestExpansion:
    def test_join_polynomial(self):
        graph = build_join_graph()
        polynomial = graph.polynomial_for("OPS", ("ecoli", "lacZ", "ATG"))
        expected = (
            Polynomial.variable("o") * Polynomial.variable("p") * Polynomial.variable("s")
        )
        assert polynomial == expected

    def test_union_polynomial(self):
        graph = build_union_graph()
        polynomial = graph.polynomial_for("T", (1,))
        assert polynomial == Polynomial.variable("r") + Polynomial.variable("q")

    def test_unknown_tuple_is_zero(self):
        graph = build_join_graph()
        assert graph.polynomial_for("OPS", ("missing",)).is_zero()

    def test_cycle_is_cut(self):
        graph = ProvenanceGraph()
        graph.add_base_tuple("A", (1,), "a")
        graph.add_derivation("m1", ("B", (1,)), [("A", (1,))])
        graph.add_derivation("m2", ("A", (1,)), [("B", (1,))])
        polynomial = graph.polynomial_for("B", (1,))
        assert polynomial == Polynomial.variable("a")

    def test_mapping_annotation_variables(self):
        graph = ProvenanceGraph(annotate_mappings=True)
        graph.add_base_tuple("R", (1,), "r")
        graph.add_derivation("m1", ("T", (1,)), [("R", (1,))])
        polynomial = graph.polynomial_for("T", (1,))
        assert polynomial.variables() == {"r", "m:m1"}


class TestEvaluation:
    def test_boolean_derivability(self):
        graph = build_union_graph()
        assert graph.is_derivable("T", (1,))
        assert graph.is_derivable("T", (1,), {"r"})
        assert graph.is_derivable("T", (1,), {"q"})
        assert not graph.is_derivable("T", (1,), set())

    def test_join_requires_all_inputs(self):
        graph = build_join_graph()
        assert graph.is_derivable("OPS", ("ecoli", "lacZ", "ATG"), {"o", "p", "s"})
        assert not graph.is_derivable("OPS", ("ecoli", "lacZ", "ATG"), {"o", "p"})

    def test_tropical_cheapest_path(self):
        graph = build_union_graph()
        annotations = graph.evaluate(TropicalSemiring(), {"r": 5.0, "q": 1.0})
        assert annotations[("T", (1,))] == 1.0

    def test_cyclic_boolean_fixpoint(self):
        graph = ProvenanceGraph()
        graph.add_base_tuple("A", (1,), "a")
        graph.add_derivation("m1", ("B", (1,)), [("A", (1,))])
        graph.add_derivation("m2", ("A", (1,)), [("B", (1,))])
        annotations = graph.evaluate(BooleanSemiring(), {"a": True})
        assert annotations[("A", (1,))] is True
        assert annotations[("B", (1,))] is True

    def test_cyclic_counting_counts_acyclic_derivations(self):
        # The pre-circuit fixpoint diverged (and raised) for non-idempotent
        # semirings over cyclic graphs; the DAG evaluation counts the finite
        # set of acyclic derivations, matching the expanded polynomial.
        graph = ProvenanceGraph()
        graph.add_base_tuple("A", (1,), "a")
        graph.add_derivation("m1", ("B", (1,)), [("A", (1,))])
        graph.add_derivation("m2", ("A", (1,)), [("B", (1,))])
        annotations = graph.evaluate(CountingSemiring(), {"a": 1}, max_iterations=20)
        for key in (("A", (1,)), ("B", (1,))):
            expanded = graph.polynomial_for(*key).evaluate(CountingSemiring(), {"a": 1})
            assert annotations[key] == expanded
        # A has its base fact plus the derivation through B; B only the latter.
        assert annotations[("A", (1,))] == 2
        assert annotations[("B", (1,))] == 1


class TestDeletion:
    def test_unsupported_after_base_removal(self):
        graph = build_join_graph()
        graph.remove_base_tuple("S", (1, 10, "ATG"))
        unsupported = dict.fromkeys(graph.unsupported_tuples())
        assert ("OPS", ("ecoli", "lacZ", "ATG")) in unsupported
        assert ("S", (1, 10, "ATG")) in unsupported

    def test_alternative_derivation_survives(self):
        graph = build_union_graph()
        graph.remove_base_tuple("R", (1,))
        assert ("T", (1,)) not in set(graph.unsupported_tuples())
        graph.remove_base_tuple("Q", (1,))
        assert ("T", (1,)) in set(graph.unsupported_tuples())

    def test_remove_unknown_base_returns_false(self):
        graph = build_join_graph()
        assert not graph.remove_base_tuple("O", ("missing", 0))
        assert not graph.remove_base_tuple("OPS", ("ecoli", "lacZ", "ATG"))


class TestMerge:
    def test_merge_graphs(self):
        merged = merge_graphs([build_join_graph(), build_union_graph()])
        tuples, derivations = merged.size()
        assert tuples == 4 + 3
        assert derivations == 1 + 2
        assert merged.is_derivable("T", (1,), {"r"})
