"""Unit tests for provenance expression DAGs."""

import pytest

from repro.errors import ProvenanceError
from repro.provenance.expressions import (
    ProvenanceExpression,
    prov_one,
    prov_plus,
    prov_times,
    prov_var,
    prov_zero,
)
from repro.provenance.polynomial import Polynomial
from repro.provenance.semiring import BooleanSemiring, CountingSemiring


class TestConstruction:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ProvenanceError):
            ProvenanceExpression("bogus")

    def test_var_requires_name(self):
        with pytest.raises(ProvenanceError):
            ProvenanceExpression("var")

    def test_nary_requires_children(self):
        with pytest.raises(ProvenanceError):
            ProvenanceExpression("plus")

    def test_plus_flattens_and_drops_zero(self):
        expression = prov_plus([prov_zero(), prov_var("x"), prov_plus([prov_var("y")])])
        assert expression.kind == "plus"
        assert expression.variables() == {"x", "y"}

    def test_plus_of_nothing_is_zero(self):
        assert prov_plus([]).kind == "zero"
        assert prov_plus([prov_zero()]).kind == "zero"

    def test_times_short_circuits_zero(self):
        assert prov_times([prov_var("x"), prov_zero()]).kind == "zero"

    def test_times_drops_one(self):
        expression = prov_times([prov_one(), prov_var("x")])
        assert expression == prov_var("x")


class TestConversionAndEvaluation:
    def test_to_polynomial(self):
        expression = prov_plus(
            [prov_times([prov_var("x"), prov_var("y")]), prov_var("x")]
        )
        polynomial = expression.to_polynomial()
        expected = Polynomial.variable("x") * Polynomial.variable("y") + Polynomial.variable("x")
        assert polynomial == expected

    def test_evaluate_boolean(self):
        expression = prov_plus(
            [prov_times([prov_var("x"), prov_var("y")]), prov_var("z")]
        )
        semiring = BooleanSemiring()
        assert expression.evaluate(semiring, {"x": True, "y": True, "z": False})
        assert not expression.evaluate(semiring, {"x": True, "y": False, "z": False})

    def test_evaluate_counting_matches_polynomial(self):
        expression = prov_times([prov_var("x"), prov_plus([prov_var("y"), prov_one()])])
        assignment = {"x": 2, "y": 3}
        semiring = CountingSemiring()
        assert expression.evaluate(semiring, assignment) == expression.to_polynomial().evaluate(
            semiring, assignment
        )

    def test_missing_variable_rejected(self):
        with pytest.raises(ProvenanceError):
            prov_var("x").evaluate(BooleanSemiring(), {})

    def test_size_and_depth(self):
        expression = prov_plus([prov_times([prov_var("x"), prov_var("y")]), prov_var("z")])
        assert expression.size() == 5
        assert expression.depth() == 3

    def test_simplified(self):
        raw = ProvenanceExpression(
            "times",
            children=(prov_one(), ProvenanceExpression("plus", children=(prov_zero(), prov_var("x")))),
        )
        assert raw.simplified() == prov_var("x")

    def test_str_rendering(self):
        expression = prov_plus([prov_times([prov_var("x"), prov_var("y")]), prov_var("z")])
        rendered = str(expression)
        assert "x" in rendered and "+" in rendered and "*" in rendered
