"""Source spans threaded from the parser and spec reader into diagnostics."""

from __future__ import annotations

import pytest

from repro.api.spec import parse_network_spec
from repro.core.mapping import mapping_from_tgd
from repro.datalog.parser import parse_program, parse_rule
from repro.errors import DatalogParseError, SourceSpan


def test_rule_and_atom_spans_cover_their_source_text() -> None:
    rule = parse_rule("p(x) :- q(x), r(x).")
    assert rule.span == SourceSpan(1, 1, end_line=1, end_column=20)
    assert rule.head.span is not None and rule.head.span.column == 1
    q, r = rule.body
    assert q.span is not None and q.span.column == 9
    assert r.span is not None and r.span.column == 15


def test_spans_do_not_affect_equality_or_hashing() -> None:
    with_span = parse_rule("p(x) :- q(x).")
    bare = parse_rule("p(x) :- q(x).")
    assert with_span == bare
    assert hash(with_span.head) == hash(bare.head)
    object.__setattr__(bare.head, "span", None)
    assert with_span.head == bare.head


def test_parse_program_tracks_statement_lines() -> None:
    program = parse_program(
        """
p(x) :- q(x).

r(x) :-
    p(x).
""",
        validate=False,
    )
    first, second = program.rules
    assert first.span.line == 2
    assert second.span.line == 4
    assert second.span.end_line == 5


def test_parse_errors_carry_line_and_column() -> None:
    with pytest.raises(DatalogParseError) as info:
        parse_program("p(x) :- q(x).\nbad(x) :- !r(x).", validate=False)
    assert info.value.line == 2
    assert info.value.column == 11
    assert info.value.span is not None


def test_origin_line_offsets_embedded_tgds() -> None:
    mapping = mapping_from_tgd(
        "[M] @B.R(x) :- @A.R(x).", origin_line=41
    )
    assert mapping.span is not None and mapping.span.line == 41
    assert all(atom.span.line == 41 for atom in mapping.body + mapping.heads)


def test_spec_records_mapping_and_trust_spans() -> None:
    spec = parse_network_spec(
        """
network spans
peer A
  relation R(x)
  trust B 2
peer B
  relation R(x)
mapping [M] @B.R(x) :-
    @A.R(x).
"""
    )
    [mapping] = spec.mappings
    assert mapping.span.line == 8
    assert mapping.span.column == 9  # just past the masked 'mapping ' keyword
    peer = spec.peers["A"]
    assert peer.span_of("trust:B").line == 5
    assert peer.span_of("relation:R").line == 4
    assert spec.peers["B"].span_of("peer").line == 6


def test_multiline_mapping_atoms_keep_their_own_lines() -> None:
    spec = parse_network_spec(
        """
network multiline
peer A
  relation R(x)
peer B
  relation R(x)
mapping [M] @B.R(x) :-
    @A.R(x).
"""
    )
    [mapping] = spec.mappings
    assert mapping.heads[0].span.line == 7
    assert mapping.body[0].span.line == 8
