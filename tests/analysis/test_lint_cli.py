"""The ``python -m repro.lint`` command line front end."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import main

CLEAN_SPEC = """
network clean
peer A
  relation R(x)
peer B
  relation R(x)
mapping [M] @B.R(x) :- @A.R(x).
"""

BROKEN_SPEC = """
network broken
peer A
  relation R(x, y)
peer B
  relation R(x, y)
mapping [M1] @B.R(e, x) :- @A.R(x, y).
mapping [M2] @A.R(x, y) :- @B.R(x, y).
"""


@pytest.fixture
def corpus(tmp_path: Path) -> Path:
    (tmp_path / "clean.spec").write_text(CLEAN_SPEC)
    (tmp_path / "broken.spec").write_text(BROKEN_SPEC)
    (tmp_path / "rules.dl").write_text("p(x, y) :- q(x).\n")
    return tmp_path


def test_clean_file_exits_zero(corpus: Path, capsys) -> None:
    assert main([str(corpus / "clean.spec")]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_error_file_exits_one_with_rendered_diagnostics(corpus: Path, capsys) -> None:
    assert main([str(corpus / "broken.spec")]) == 1
    out = capsys.readouterr().out
    assert "CDSS003" in out
    assert "broken.spec:7:" in out


def test_directory_walk_picks_up_specs_and_programs(corpus: Path, capsys) -> None:
    assert main([str(corpus)]) == 1
    out = capsys.readouterr().out
    assert "CDSS003" in out  # from broken.spec
    assert "CDSS001" in out  # from rules.dl


def test_json_output_is_machine_readable(corpus: Path, capsys) -> None:
    assert main([str(corpus / "broken.spec"), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["errors"] >= 1
    [entry] = payload["files"].values()
    assert any(d["code"] == "CDSS003" for d in entry["diagnostics"])


def test_figure2_flag_lints_the_builtin_spec(capsys) -> None:
    assert main(["--figure2"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_missing_path_exits_two(tmp_path: Path, capsys) -> None:
    assert main([str(tmp_path / "nope.spec")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_module_is_runnable(corpus: Path) -> None:
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(corpus / "broken.spec")],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(Path(__file__).parents[2] / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 1
    assert "CDSS003" in result.stdout
