"""Network-level analyses: structure, topology, trust, chase, system entry."""

from __future__ import annotations

import pytest

from repro.analysis import analyze_network_spec, analyze_system
from repro.analysis import codes
from repro.api.builder import NetworkBuilder, build_network
from repro.errors import SpecError

TWO_PEER = """
network two-peer
peer A
  relation R(x, y)
peer B
  relation R(x, y)
mapping [AB] @B.R(x, y) :- @A.R(x, y).
mapping [BA] @A.R(x, y) :- @B.R(x, y).
"""


def codes_of(spec: str) -> list[str]:
    return [diagnostic.code for diagnostic in analyze_network_spec(spec)]


def test_clean_two_peer_network() -> None:
    report = analyze_network_spec(TWO_PEER)
    assert report.ok
    assert len(report) == 0


def test_unparseable_spec_is_one_cdss014() -> None:
    report = analyze_network_spec("peer A\n  relation R(x)\n  zorp\n")
    assert [d.code for d in report] == [codes.MALFORMED_SPEC]
    assert not report.ok


def test_weak_acyclicity_violation_points_at_the_mapping_line() -> None:
    spec = TWO_PEER.replace("@B.R(x, y) :- @A.R(x, y)", "@B.R(e, x) :- @A.R(x, y)")
    report = analyze_network_spec(spec)
    [violation] = report.by_code(codes.WEAK_ACYCLICITY)
    assert violation.subject == "AB"
    assert violation.span is not None and violation.span.line == 7


def test_trust_row_for_self_and_for_default_priority_are_shadowed() -> None:
    spec = """
network shadow
peer A
  relation R(x)
  trust A 2
  trust B 1
peer B
  relation R(x)
mapping [M] @A.R(x) :- @B.R(x).
"""
    report = analyze_network_spec(spec)
    assert len(report.by_code(codes.SHADOWED_TRUST)) == 2


def test_star_trust_rows_are_never_shadowed() -> None:
    spec = """
network star
peer A
  relation R(x)
  trust * 0
  trust B 2
peer B
  relation R(x)
mapping [M] @A.R(x) :- @B.R(x).
"""
    report = analyze_network_spec(spec)
    assert not report.by_code(codes.SHADOWED_TRUST)


def test_unsatisfiable_trust_requires_no_path_to_owner() -> None:
    spec = """
network unsat
peer A
  relation R(x)
  trust C 2
peer B
  relation R(x)
peer C
  relation R(x)
mapping [CB] @B.R(x) :- @C.R(x).
mapping [BA] @A.R(x) :- @B.R(x).
"""
    # C reaches A through B, so the row is satisfiable.
    assert not analyze_network_spec(spec).by_code(codes.UNSATISFIABLE_TRUST)
    broken = spec.replace("mapping [BA] @A.R(x) :- @B.R(x).", "")
    assert analyze_network_spec(broken).by_code(codes.UNSATISFIABLE_TRUST)


def test_mutual_distrust_reported_once_per_pair() -> None:
    spec = """
network md
peer A
  relation R(x)
  trust B 0
peer B
  relation R(x)
  trust A 0
mapping [F] @B.R(x) :- @A.R(x).
mapping [G] @A.R(x) :- @B.R(x).
"""
    assert len(analyze_network_spec(spec).by_code(codes.MUTUAL_DISTRUST)) == 1


def test_one_directional_distrust_is_not_mutual() -> None:
    spec = """
network oneway
peer A
  relation R(x)
  trust B 0
peer B
  relation R(x)
mapping [F] @B.R(x) :- @A.R(x).
mapping [G] @A.R(x) :- @B.R(x).
"""
    assert not analyze_network_spec(spec).by_code(codes.MUTUAL_DISTRUST)


def test_isolated_peer_not_reported_for_single_peer_networks() -> None:
    spec = """
network solo
peer A
  relation R(x)
"""
    assert not analyze_network_spec(spec).by_code(codes.ISOLATED_PEER)


def test_sql_fallback_upgrades_to_warning_under_sql_execution() -> None:
    spec = """
network sqlnet
execution sql
peer A
  relation R(x, y)
peer B
  relation S(x)
mapping [SPLIT] @B.S(e) :- @A.R(x, y).
mapping [BACK] @A.R(x, x) :- @B.S(x).
"""
    report = analyze_network_spec(spec)
    fallbacks = report.by_code(codes.SQL_FALLBACK)
    if fallbacks:  # only the severity claim must hold under sql execution
        assert all(d.severity == codes.WARNING for d in fallbacks)


def test_structural_errors_suppress_downstream_analyses() -> None:
    spec = """
network cascade
peer A
  relation R(x) key(zzz)
mapping [M] @A.R(x) :- @A.R(x).
"""
    report = analyze_network_spec(spec)
    assert report.by_code(codes.MALFORMED_SPEC)
    # the broken schema must not crash chase/topology/sql stages
    assert isinstance(report.render(), str)


def test_analyze_system_matches_spec_analysis(two_peer_system) -> None:
    report = analyze_system(two_peer_system)
    assert report.ok


def test_builder_analyze_and_strict_build() -> None:
    builder = NetworkBuilder("strictnet")
    builder.peer("A").relation("R", "x", "y")
    builder.peer("B").relation("R", "x", "y")
    builder.mapping("[M1] @B.R(e, x) :- @A.R(x, y).")
    builder.mapping("[M2] @A.R(x, y) :- @B.R(x, y).")
    report = builder.analyze()
    assert codes.WEAK_ACYCLICITY in [d.code for d in report]
    with pytest.raises(SpecError) as info:
        builder.build(strict=True)
    assert info.value.code == codes.WEAK_ACYCLICITY
    # the lenient path still constructs the system
    assert builder.build().name == "strictnet"


def test_build_network_strict_passes_clean_specs() -> None:
    cdss = build_network(TWO_PEER, strict=True)
    assert cdss.name == "two-peer"
    assert cdss.analyze().ok
