"""Diagnostics framework: codes registry, rendering, reports, sorting."""

from __future__ import annotations

import pytest

from repro.analysis import codes
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, message_of
from repro.errors import SourceSpan, SpecError


def test_registry_covers_all_fourteen_codes_with_severities() -> None:
    assert len(codes.REGISTRY) == 14
    assert codes.severity_of(codes.UNSAFE_RULE) == codes.ERROR
    assert codes.severity_of(codes.ISOLATED_PEER) == codes.WARNING
    assert codes.severity_of(codes.SQL_FALLBACK) == codes.INFO
    for code, info in codes.REGISTRY.items():
        assert info.code == code
        assert info.severity in (codes.ERROR, codes.WARNING, codes.INFO)
        assert info.title


def test_diagnostic_defaults_severity_from_registry() -> None:
    diagnostic = Diagnostic(codes.WEAK_ACYCLICITY, "boom")
    assert diagnostic.severity == codes.ERROR
    assert diagnostic.is_error


def test_diagnostic_render_includes_location_code_and_severity() -> None:
    diagnostic = Diagnostic(
        codes.UNSAFE_RULE,
        "variable y is unbound",
        span=SourceSpan(7, 3),
        source="net.spec",
    )
    assert diagnostic.render() == "net.spec:7:3: error CDSS001: variable y is unbound"


def test_diagnostic_to_dict_round_trips_span_fields() -> None:
    span = SourceSpan(2, 5, end_line=2, end_column=9)
    payload = Diagnostic(codes.SHADOWED_TRUST, "m", span=span, subject="A").to_dict()
    assert payload["code"] == codes.SHADOWED_TRUST
    assert payload["severity"] == codes.WARNING
    assert (payload["line"], payload["column"]) == (2, 5)
    assert (payload["end_line"], payload["end_column"]) == (2, 9)
    assert payload["subject"] == "A"


def test_report_sorts_by_location_then_severity() -> None:
    report = DiagnosticReport()
    report.add(codes.SQL_FALLBACK, "later", span=SourceSpan(9, 1))
    report.add(codes.UNSAFE_RULE, "earlier", span=SourceSpan(2, 1))
    report.add(codes.ISOLATED_PEER, "same line warning", span=SourceSpan(2, 1))
    report.sort()
    assert [d.message for d in report] == ["earlier", "same line warning", "later"]


def test_report_ok_and_filters() -> None:
    report = DiagnosticReport()
    report.add(codes.ISOLATED_PEER, "w")
    assert report.ok
    report.add(codes.WEAK_ACYCLICITY, "e")
    assert not report.ok
    assert [d.code for d in report.errors()] == [codes.WEAK_ACYCLICITY]
    assert [d.code for d in report.warnings()] == [codes.ISOLATED_PEER]
    assert report.codes() == sorted([codes.WEAK_ACYCLICITY, codes.ISOLATED_PEER])


def test_report_raise_if_errors_carries_first_error_code() -> None:
    report = DiagnosticReport()
    report.add(codes.WEAK_ACYCLICITY, "chase may diverge", span=SourceSpan(4, 1))
    with pytest.raises(SpecError, match="chase may diverge") as info:
        report.raise_if_errors("test network")
    assert info.value.code == codes.WEAK_ACYCLICITY
    assert info.value.span is not None and info.value.span.line == 4


def test_report_raise_if_errors_is_noop_without_errors() -> None:
    report = DiagnosticReport()
    report.add(codes.SQL_FALLBACK, "info only")
    report.raise_if_errors("test network")


def test_with_source_fills_only_missing_sources() -> None:
    report = DiagnosticReport()
    report.add(codes.UNSAFE_RULE, "a")
    report.add(codes.UNSAFE_RULE, "b", source="explicit.dl")
    filled = report.with_source("fallback.dl")
    assert [d.source for d in filled] == ["fallback.dl", "explicit.dl"]


def test_message_of_strips_code_prefix() -> None:
    error = SpecError("bad section", code=codes.MALFORMED_SPEC)
    assert str(error).startswith("[CDSS014] ")
    assert message_of(error) == "bad section"
    assert message_of(ValueError("plain")) == "plain"
