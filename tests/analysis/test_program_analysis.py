"""Program-level analyses: safety, stratification, arities, SQL fallback."""

from __future__ import annotations

from repro.analysis import analyze_program
from repro.analysis import codes
from repro.datalog.parser import parse_program


def analyze(text: str):
    return analyze_program(parse_program(text, validate=False))


def test_clean_program_produces_no_diagnostics() -> None:
    report = analyze(
        """
        path(x, y) :- edge(x, y).
        path(x, z) :- path(x, y), edge(y, z).
        """
    )
    assert report.ok
    assert len(report) == 0


def test_unsafe_rule_reports_cdss001_with_rule_span() -> None:
    report = analyze("p(x, y) :- q(x).")
    [diagnostic] = report.by_code(codes.UNSAFE_RULE)
    assert diagnostic.span is not None and diagnostic.span.line == 1
    assert "y" in diagnostic.message


def test_unstratifiable_negation_reports_cdss002_naming_the_cycle() -> None:
    report = analyze("win(x) :- move(x, y), not win(y).")
    [diagnostic] = report.by_code(codes.UNSTRATIFIABLE)
    assert "win -> win" in diagnostic.message
    assert diagnostic.span is not None


def test_stratified_negation_is_clean() -> None:
    report = analyze(
        """
        reachable(x, y) :- edge(x, y).
        unreached(x) :- node(x), not reachable(x, x).
        """
    )
    assert not report.by_code(codes.UNSTRATIFIABLE)


def test_indirect_negation_cycle_is_reported() -> None:
    report = analyze(
        """
        p(x) :- base(x), not q(x).
        q(x) :- r(x).
        r(x) :- p(x).
        """
    )
    [diagnostic] = report.by_code(codes.UNSTRATIFIABLE)
    assert "p" in diagnostic.message and "q" in diagnostic.message


def test_arity_mismatch_reports_both_locations() -> None:
    report = analyze(
        """
        a(x) :- b(x).
        c(x, y) :- b(x, y).
        """
    )
    [diagnostic] = report.by_code(codes.ARITY_MISMATCH)
    assert diagnostic.subject == "b"
    assert "arity 2" in diagnostic.message and "arity 1" in diagnostic.message
    assert "line 2" in diagnostic.message


def test_sql_fallback_is_info_by_default_and_warning_when_selected() -> None:
    program = parse_program("derived(x) :- base(sk_f(x)).", validate=False)
    relaxed = analyze_program(program)
    [info] = relaxed.by_code(codes.SQL_FALLBACK)
    assert info.severity == codes.INFO

    strict = analyze_program(program, sql_selected=True)
    [warning] = strict.by_code(codes.SQL_FALLBACK)
    assert warning.severity == codes.WARNING
    assert "Python executor" in warning.message


def test_sql_fallback_names_the_reason() -> None:
    report = analyze("flag() :- base(x).")
    [diagnostic] = report.by_code(codes.SQL_FALLBACK)
    assert "arity-0" in diagnostic.message


def test_unsafe_rules_do_not_double_report_as_sql_fallback() -> None:
    report = analyze("p(x, y) :- q(x).")
    assert report.by_code(codes.UNSAFE_RULE)
    assert not report.by_code(codes.SQL_FALLBACK)


def test_source_is_attached_when_given() -> None:
    program = parse_program("p(x, y) :- q(x).", validate=False)
    report = analyze_program(program, source="rules.dl")
    assert all(diagnostic.source == "rules.dl" for diagnostic in report)
