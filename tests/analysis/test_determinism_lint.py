"""The repo-facing determinism AST lint (``tools/lint_determinism.py``)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parents[2]
TOOL = REPO_ROOT / "tools" / "lint_determinism.py"

spec = importlib.util.spec_from_file_location("lint_determinism", TOOL)
lint_determinism = importlib.util.module_from_spec(spec)
sys.modules.setdefault("lint_determinism", lint_determinism)
spec.loader.exec_module(lint_determinism)


def findings_for(code: str, tmp_path: Path):
    path = tmp_path / "sample.py"
    path.write_text(code)
    return lint_determinism.lint_file(path)


def test_for_loop_over_set_in_sensitive_function_is_det001(tmp_path: Path) -> None:
    findings = findings_for(
        """
def digest(items):
    total = 0
    for item in set(items):
        total ^= stable_hash(item)
    return total
""",
        tmp_path,
    )
    assert [finding.code for finding in findings] == ["DET001"]


def test_variable_indirection_is_still_caught(tmp_path: Path) -> None:
    findings = findings_for(
        """
def digest(items):
    pending = {item for item in items}
    out = []
    for item in pending:
        out.append(stable_hash(item))
    return out
""",
        tmp_path,
    )
    assert [finding.code for finding in findings] == ["DET001"]


def test_materialising_a_set_is_det002(tmp_path: Path) -> None:
    findings = findings_for(
        """
def digest(items):
    return stable_hash(tuple(set(items)))
""",
        tmp_path,
    )
    assert [finding.code for finding in findings] == ["DET002"]


def test_sorted_wrapping_clears_the_finding(tmp_path: Path) -> None:
    findings = findings_for(
        """
def digest(items):
    total = 0
    for item in sorted(set(items)):
        total = stable_hash((total, item))
    return stable_hash(tuple(sorted({i for i in items})))
""",
        tmp_path,
    )
    assert findings == []


def test_generator_inside_sorted_is_order_insensitive(tmp_path: Path) -> None:
    findings = findings_for(
        """
def digest(items):
    s = set(items)
    return stable_hash(tuple(sorted(str(v) for v in s)))
""",
        tmp_path,
    )
    assert findings == []


def test_det_ok_comment_suppresses(tmp_path: Path) -> None:
    findings = findings_for(
        """
def digest(items):
    total = 0
    for item in set(items):  # det: ok
        total ^= stable_hash(item)
    return total
""",
        tmp_path,
    )
    assert findings == []


def test_functions_without_sinks_are_not_checked(tmp_path: Path) -> None:
    findings = findings_for(
        """
def harmless(items):
    return [item for item in set(items)]
""",
        tmp_path,
    )
    assert findings == []


def test_one_hop_wrapper_functions_taint_their_callers(tmp_path: Path) -> None:
    findings = findings_for(
        """
def my_digest(value):
    return stable_hash(value)

def caller(items):
    return [my_digest(item) for item in set(items)]
""",
        tmp_path,
    )
    assert [finding.code for finding in findings] == ["DET001"]


def test_src_repro_is_determinism_clean() -> None:
    """Regression gate: the shipped code has no unordered iteration feeding
    canonical-order sinks (everything is sorted or order-independent)."""
    files, problems = lint_determinism.collect_files([REPO_ROOT / "src" / "repro"])
    assert not problems
    trees, findings = lint_determinism.parse_files(files)
    findings.extend(lint_determinism.lint_trees(trees))
    assert findings == [], "\n".join(finding.render() for finding in findings)
