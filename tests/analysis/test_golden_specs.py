"""Golden corpus: every diagnostic code has a spec/program that triggers it.

Each file under ``specs/`` starts with ``expect: <CODE> @ <line>`` header
comments naming the diagnostics (code and 1-based source line) the analyzer
must report for it.  The test asserts exactly those (code, line) pairs
appear, that error-severity files fail the CLI with a nonzero exit, and
that every code in the registry is covered by at least one corpus file.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import codes
from repro.lint import lint_path, main as lint_main

SPEC_DIR = Path(__file__).parent / "specs"
EXPECT = re.compile(r"expect:\s*(CDSS\d{3})\s*@\s*(\d+)")

CORPUS = sorted(SPEC_DIR.iterdir())


def expectations(path: Path) -> list[tuple[str, int]]:
    expected = []
    for line in path.read_text().splitlines():
        match = EXPECT.search(line)
        if match:
            expected.append((match.group(1), int(match.group(2))))
    return expected


@pytest.mark.parametrize("path", CORPUS, ids=lambda path: path.stem)
def test_corpus_file_reports_expected_diagnostics(path: Path) -> None:
    expected = expectations(path)
    assert expected, f"{path.name} has no 'expect: CODE @ line' header"
    report = lint_path(path)
    found = [
        (diagnostic.code, diagnostic.span.line if diagnostic.span else None)
        for diagnostic in report
    ]
    for code, line in expected:
        assert (code, line) in found, (
            f"{path.name}: expected {code} at line {line}, got {found}"
        )


@pytest.mark.parametrize("path", CORPUS, ids=lambda path: path.stem)
def test_corpus_file_diagnostics_carry_spans_and_sources(path: Path) -> None:
    report = lint_path(path)
    assert len(report) > 0
    for diagnostic in report:
        assert diagnostic.source == str(path)
        assert diagnostic.code in codes.REGISTRY


def test_every_code_has_corpus_coverage() -> None:
    covered = {code for path in CORPUS for code, _line in expectations(path)}
    assert covered == set(codes.REGISTRY)


def test_cli_exits_nonzero_on_error_corpus(capsys) -> None:
    error_files = [
        path
        for path in CORPUS
        if any(
            codes.severity_of(code) == codes.ERROR
            for code, _line in expectations(path)
        )
    ]
    assert error_files
    exit_code = lint_main([str(path) for path in error_files])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "error" in captured.out


def test_cli_strict_fails_on_warning_only_corpus(capsys) -> None:
    warning_only = [
        path
        for path in CORPUS
        if expectations(path)
        and all(
            codes.severity_of(code) == codes.WARNING
            for code, _line in expectations(path)
        )
    ]
    assert warning_only
    targets = [str(path) for path in warning_only]
    assert lint_main(targets) == 0
    capsys.readouterr()
    assert lint_main(targets + ["--strict"]) == 1
    capsys.readouterr()
