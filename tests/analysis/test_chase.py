"""Weak-acyclicity analysis of the skolemized mapping dependency graph."""

from __future__ import annotations

from repro.analysis.chase import (
    Position,
    position_graph,
    weak_acyclicity_violations,
)
from repro.core.mapping import mapping_from_tgd


def tgd(text: str):
    return mapping_from_tgd(text)


def test_copy_mappings_have_only_ordinary_edges() -> None:
    mappings = [tgd("[M] @B.R(x, y) :- @A.R(x, y).")]
    edges = position_graph(mappings)
    assert edges
    assert all(not edge.special for edge in edges)
    assert weak_acyclicity_violations(mappings) == []


def test_existential_head_position_gets_special_edges() -> None:
    mappings = [tgd("[M] @B.R(x, e) :- @A.R(x, y).")]
    special = [edge for edge in position_graph(mappings) if edge.special]
    assert {edge.target for edge in special} == {Position("B", "R", 1)}
    # exported x feeds the null from every body position it occupies
    assert {edge.source for edge in special} == {Position("A", "R", 0)}


def test_self_refreshing_null_is_weakly_acyclic() -> None:
    # The null at A.R[1] is recreated from x each round but never nests:
    # SK(x) stays SK(x), so the chase terminates.
    mappings = [tgd("[M] @A.R(x, e) :- @A.R(x, y).")]
    assert weak_acyclicity_violations(mappings) == []


def test_null_feeding_its_own_argument_violates() -> None:
    # The null lands in A.R[0], which is the argument position the next
    # application reads: SK(SK(...)) nests forever.
    mappings = [tgd("[M] @A.R(e, x) :- @A.R(x, y).")]
    violations = weak_acyclicity_violations(mappings)
    assert len(violations) == 1
    assert violations[0].edge.mapping_id == "M"
    assert "may not terminate" in violations[0].describe()


def test_two_mapping_cycle_through_existential_violates() -> None:
    mappings = [
        tgd("[M1] @B.R(e, x) :- @A.R(x, y)."),
        tgd("[M2] @A.R(x, y) :- @B.R(x, y)."),
    ]
    violations = weak_acyclicity_violations(mappings)
    assert len(violations) == 1
    cycle = violations[0].cycle
    assert Position("A", "R", 0) in cycle
    assert Position("B", "R", 0) in cycle


def test_acyclic_join_and_split_pair_is_clean() -> None:
    # The Figure-2 core shape: join Sigma1 into OPS and split back with
    # fresh nulls for oid/pid.  Values flow in a cycle but nulls never
    # feed their own creating positions.
    mappings = [
        tgd(
            "[M_AC] @C.OPS(org, prot, seq) :- "
            "@A.O(org, oid), @A.P(prot, pid), @A.S(oid, pid, seq)."
        ),
        tgd(
            "[M_CA] @A.O(org, oid), @A.P(prot, pid), @A.S(oid, pid, seq) :- "
            "@C.OPS(org, prot, seq)."
        ),
    ]
    assert weak_acyclicity_violations(mappings) == []


def test_one_violation_reported_per_mapping() -> None:
    mappings = [
        tgd("[M] @A.R(e, x), @A.T(e, x) :- @A.R(x, y), @A.T(x, y)."),
    ]
    violations = weak_acyclicity_violations(mappings)
    assert len(violations) == 1
