"""The analyzer is clean on everything the repo itself ships and generates.

Two invariants: the Figure 2 bioinformatics network (and the examples that
embed it) must produce zero diagnostics of any severity, and randomly
generated simulator networks must produce zero error-severity diagnostics
across a seed sweep — warnings are allowed there, since random trust tables
legitimately shadow defaults or trust unreachable peers.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_network_spec, analyze_system
from repro.workloads.bioinformatics import FIGURE2_SPEC, build_figure2_network
from repro.workloads.simulation import generate_network


def test_figure2_spec_is_diagnostic_free() -> None:
    report = analyze_network_spec(FIGURE2_SPEC, source_name="FIGURE2_SPEC")
    assert report.ok
    assert len(report) == 0, report.render()


def test_figure2_system_is_diagnostic_free() -> None:
    network = build_figure2_network()
    report = analyze_system(network.cdss)
    assert report.ok
    assert len(report) == 0, report.render()


@pytest.mark.parametrize("seed", range(1, 26))
def test_generated_networks_are_analyzer_clean(seed: int) -> None:
    spec = generate_network(seed)
    report = analyze_network_spec(spec, source_name=f"seed-{seed}")
    assert report.ok, (
        f"seed {seed} produced analyzer errors:\n"
        + "\n".join(diagnostic.render() for diagnostic in report.errors())
    )
