"""Property-based integration tests over end-to-end CDSS invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CDSS, PeerSchema
from repro.config import ExchangeConfig, SystemConfig
from repro.core.mapping import join_mapping
from repro.workloads.bioinformatics import build_figure2_network


def build_chain() -> CDSS:
    """A -> B -> C chain of identity-like mappings over one relation."""
    cdss = CDSS()
    for name in ("A", "B", "C"):
        cdss.add_peer(name, PeerSchema.build(name, {"R": ["k", "v"]}, {"R": ["k"]}))
    cdss.add_mapping(join_mapping("M_AB", "A", "B", "R(k, v)", ["R(k, v)"]))
    cdss.add_mapping(join_mapping("M_BC", "B", "C", "R(k, v)", ["R(k, v)"]))
    return cdss


rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=20), st.sampled_from(["a", "b", "c"])),
    min_size=0,
    max_size=12,
    unique_by=lambda row: row[0],
)


class TestChainPropagation:
    @settings(max_examples=20, deadline=None)
    @given(data=rows)
    def test_everything_published_reaches_the_end_of_the_chain(self, data):
        cdss = build_chain()
        source = cdss.peer("A")
        for key, value in data:
            source.insert("R", (key, value))
        cdss.publish("A")
        cdss.reconcile("B")
        cdss.reconcile("C")
        assert cdss.peer("B").tuples("R") == frozenset(data)
        assert cdss.peer("C").tuples("R") == frozenset(data)

    @settings(max_examples=20, deadline=None)
    @given(data=rows)
    def test_provenance_toggle_does_not_change_outcomes(self, data):
        with_provenance = build_chain()
        without = CDSS(SystemConfig(exchange=ExchangeConfig(track_provenance=False)))
        for name in ("A", "B", "C"):
            without.add_peer(name, PeerSchema.build(name, {"R": ["k", "v"]}, {"R": ["k"]}))
        without.add_mapping(join_mapping("M_AB", "A", "B", "R(k, v)", ["R(k, v)"]))
        without.add_mapping(join_mapping("M_BC", "B", "C", "R(k, v)", ["R(k, v)"]))

        for cdss in (with_provenance, without):
            for key, value in data:
                cdss.peer("A").insert("R", (key, value))
            cdss.publish("A")
            cdss.reconcile("B")
            cdss.reconcile("C")
        assert with_provenance.peer("C").tuples("R") == without.peer("C").tuples("R")

    @settings(max_examples=15, deadline=None)
    @given(data=rows, deletions=st.integers(min_value=0, max_value=5))
    def test_insert_then_delete_round_trip(self, data, deletions):
        cdss = build_chain()
        source = cdss.peer("A")
        for key, value in data:
            source.insert("R", (key, value))
        cdss.publish("A")
        cdss.reconcile("C")

        to_delete = data[:deletions]
        for key, value in to_delete:
            source.delete("R", (key, value))
        if to_delete:
            cdss.publish("A")
            cdss.reconcile("C")
        survivors = frozenset(data) - frozenset(to_delete)
        assert cdss.peer("C").tuples("R") == survivors


class TestFigure2Invariants:
    @settings(max_examples=10, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.sampled_from(["orgA", "orgB", "orgC"]),
                st.sampled_from(["p1", "p2", "p3", "p4"]),
                st.sampled_from(["AAA", "CCC", "GGG"]),
            ),
            min_size=0,
            max_size=8,
            unique_by=lambda row: (row[0], row[1]),
        )
    )
    def test_sigma2_peers_always_agree_after_full_reconciliation(self, pairs):
        network = build_figure2_network()
        cdss = network.cdss
        for org, prot, seq in pairs:
            network.dresden.insert("OPS", (org, prot, seq))
        cdss.publish("Dresden")
        cdss.reconcile("Crete")
        cdss.reconcile("Dresden")
        # Dresden and Crete share a schema and Crete trusts Dresden, so after
        # reconciling they hold the same OPS instance.
        assert network.crete.tuples("OPS") == network.dresden.tuples("OPS")
        assert network.dresden.tuples("OPS") == frozenset(pairs)

    @settings(max_examples=10, deadline=None)
    @given(count=st.integers(min_value=0, max_value=5))
    def test_accepted_plus_rejected_never_exceeds_candidates(self, count):
        network = build_figure2_network()
        cdss = network.cdss
        for index in range(count):
            builder = network.alaska.new_transaction()
            builder.insert("O", (f"org{index}", index))
            builder.insert("P", (f"prot{index}", 100 + index))
            builder.insert("S", (index, 100 + index, "ACGT"))
            network.alaska.commit(builder)
        cdss.publish("Alaska")
        outcome = cdss.reconcile("Dresden")
        assert len(outcome.accepted) == count
        summary = outcome.result.summary()
        assert summary["accepted"] + summary["rejected"] + summary["deferred"] + summary[
            "pending"
        ] <= max(count, 1) * 2
