"""Integration tests for the CDSS facade (publish / reconcile / resolve)."""

import pytest

from repro import CDSS, ExchangeConfig, PeerSchema, StoreConfig, SystemConfig, TrustPolicy
from repro.core.mapping import join_mapping
from repro.errors import NetworkError, PeerError
from repro.reconcile.decisions import Decision


class TestBasicFlow:
    def test_publish_then_reconcile_moves_data(self, two_peer_system):
        cdss = two_peer_system
        source, target = cdss.peer("Source"), cdss.peer("Target")
        source.insert("R", (1, "a"))
        publish = cdss.publish("Source")
        assert len(publish.published) == 1
        assert publish.translated_changes > 0

        outcome = cdss.reconcile("Target")
        assert len(outcome.accepted) == 1
        assert target.instance.contains("R", (1, "a"))

    def test_publish_without_pending_is_noop(self, two_peer_system):
        outcome = two_peer_system.publish("Source")
        assert outcome.published == []

    def test_reconcile_without_publications(self, two_peer_system):
        outcome = two_peer_system.reconcile("Target")
        assert outcome.candidates_considered == 0

    def test_reconcile_is_incremental_across_epochs(self, two_peer_system):
        cdss = two_peer_system
        source = cdss.peer("Source")
        source.insert("R", (1, "a"))
        cdss.publish("Source")
        first = cdss.reconcile("Target")
        source.insert("R", (2, "b"))
        cdss.publish("Source")
        second = cdss.reconcile("Target")
        assert first.candidates_considered == 1
        assert second.candidates_considered == 1
        assert cdss.peer("Target").instance.count("R") == 2

    def test_epoch_advances_on_each_operation(self, two_peer_system):
        cdss = two_peer_system
        start = cdss.clock.value
        cdss.peer("Source").insert("R", (1, "a"))
        cdss.publish("Source")
        cdss.reconcile("Target")
        assert cdss.clock.value == start + 2

    def test_unknown_peer_rejected(self, two_peer_system):
        with pytest.raises(PeerError):
            two_peer_system.publish("Nobody")

    def test_statistics(self, two_peer_system):
        cdss = two_peer_system
        cdss.peer("Source").insert("R", (1, "a"))
        cdss.publish("Source")
        stats = cdss.statistics()
        assert stats["peers"] == 2
        assert stats["published_transactions"] == 1
        assert stats["provenance_derivations"] > 0


class TestTrustAndConflicts:
    def test_untrusted_source_rejected(self, untrusting_target_system):
        cdss = untrusting_target_system
        cdss.peer("Source").insert("R", (1, "a"))
        cdss.publish("Source")
        outcome = cdss.reconcile("Target")
        assert len(outcome.rejected) == 1
        assert cdss.peer("Target").instance.count("R") == 0

    def test_resolve_conflict_through_facade(self, figure2):
        cdss = figure2.cdss
        for peer, seq in ((figure2.alaska, "AAA"), (figure2.beijing, "BBB")):
            builder = peer.new_transaction()
            builder.insert("O", ("S. cerevisiae", 5))
            builder.insert("P", ("hsp70", 14))
            builder.insert("S", (5, 14, seq))
            peer.commit(builder)
        cdss.publish("Alaska")
        cdss.publish("Beijing")
        outcome = cdss.reconcile("Dresden")
        assert len(outcome.deferred) == 2
        conflicts = cdss.open_conflicts("Dresden")
        assert len(conflicts) == 1
        winner = sorted(conflicts[0].txn_ids)[0]
        resolution = cdss.resolve_conflict("Dresden", winner)
        assert winner in resolution.accepted
        assert not cdss.open_conflicts("Dresden")


class TestConnectivity:
    def test_offline_peer_cannot_publish(self, two_peer_system):
        cdss = two_peer_system
        cdss.set_online("Source", False)
        cdss.peer("Source").insert("R", (1, "a"))
        with pytest.raises(NetworkError):
            cdss.publish("Source")

    def test_offline_peer_cannot_reconcile(self, two_peer_system):
        cdss = two_peer_system
        cdss.set_online("Target", False)
        with pytest.raises(NetworkError):
            cdss.reconcile("Target")

    def test_relaxed_connectivity_config(self):
        config = SystemConfig(
            store=StoreConfig(require_online_to_publish=False, require_online_to_reconcile=False)
        )
        cdss = CDSS(config)
        cdss.add_peer("Source", PeerSchema.build("S", {"R": ["a", "b"]}, {"R": ["a"]}))
        cdss.add_peer("Target", PeerSchema.build("T", {"R": ["a", "b"]}, {"R": ["a"]}))
        cdss.add_mapping(join_mapping("M", "Source", "Target", "R(a, b)", ["R(a, b)"]))
        cdss.set_online("Source", False)
        cdss.peer("Source").insert("R", (1, "a"))
        assert cdss.publish("Source").published

    def test_data_survives_publisher_disconnection(self, two_peer_system):
        cdss = two_peer_system
        cdss.peer("Source").insert("R", (1, "a"))
        cdss.publish("Source")
        cdss.set_online("Source", False)
        outcome = cdss.reconcile("Target")
        assert len(outcome.accepted) == 1


class TestImportAndConfiguration:
    def test_import_existing_data(self, two_peer_system):
        cdss = two_peer_system
        source = cdss.peer("Source")
        source.instance.insert_many("R", [(1, "a"), (2, "b")])
        transaction = cdss.import_existing_data("Source")
        assert transaction is not None
        assert len(transaction.updates) == 2
        cdss.publish("Source")
        cdss.reconcile("Target")
        assert cdss.peer("Target").instance.count("R") == 2

    def test_import_empty_instance(self, two_peer_system):
        assert two_peer_system.import_existing_data("Source") is None

    def test_provenance_disabled_configuration(self):
        config = SystemConfig(exchange=ExchangeConfig(track_provenance=False))
        cdss = CDSS(config)
        cdss.add_peer("Source", PeerSchema.build("S", {"R": ["a", "b"]}, {"R": ["a"]}))
        cdss.add_peer("Target", PeerSchema.build("T", {"R": ["a", "b"]}, {"R": ["a"]}))
        cdss.add_mapping(join_mapping("M", "Source", "Target", "R(a, b)", ["R(a, b)"]))
        cdss.peer("Source").insert("R", (1, "a"))
        cdss.publish("Source")
        outcome = cdss.reconcile("Target")
        assert len(outcome.accepted) == 1
        assert cdss.peer("Target").instance.contains("R", (1, "a"))

    def test_own_transactions_marked_accepted_at_origin(self, two_peer_system):
        cdss = two_peer_system
        transaction = cdss.peer("Source").insert("R", (1, "a"))
        cdss.publish("Source")
        cdss.reconcile("Source")
        state = cdss.reconciliation_state("Source")
        assert state.decision(transaction.txn_id) is Decision.ACCEPTED

    def test_late_mapping_addition_rebuilds_engine(self, two_peer_system):
        cdss = two_peer_system
        cdss.peer("Source").insert("R", (1, "a"))
        cdss.publish("Source")
        # Adding a peer + mapping after publication forces an engine rebuild
        # that replays the archive.
        cdss.add_peer("Third", PeerSchema.build("U", {"R": ["a", "b"]}, {"R": ["a"]}))
        cdss.add_mapping(join_mapping("M_T3", "Target", "Third", "R(a, b)", ["R(a, b)"]))
        outcome = cdss.reconcile("Third")
        assert len(outcome.accepted) == 1
        assert cdss.peer("Third").instance.contains("R", (1, "a"))
