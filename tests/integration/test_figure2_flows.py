"""Integration tests for data flows across the Figure-2 network."""

from repro.core.tuples import has_labelled_nulls
from repro.workloads.bioinformatics import BioDataGenerator


class TestTransitivePropagation:
    def test_alaska_data_reaches_every_peer(self, figure2):
        cdss = figure2.cdss
        builder = figure2.alaska.new_transaction()
        builder.insert("O", ("E. coli", 1))
        builder.insert("P", ("lacZ", 10))
        builder.insert("S", (1, 10, "ATGATG"))
        figure2.alaska.commit(builder)
        cdss.publish("Alaska")

        cdss.reconcile("Beijing")
        cdss.reconcile("Dresden")
        # Crete distrusts Alaska, so it rejects the data.
        cdss.reconcile("Crete")

        assert figure2.beijing.instance.contains("S", (1, 10, "ATGATG"))
        assert figure2.dresden.instance.contains("OPS", ("E. coli", "lacZ", "ATGATG"))
        assert figure2.crete.instance.count("OPS") == 0

    def test_sigma2_data_reaches_sigma1_with_labelled_nulls(self, figure2):
        cdss = figure2.cdss
        figure2.crete.insert("OPS", ("H. sapiens", "p53", "CCCGGG"))
        cdss.publish("Crete")
        cdss.reconcile("Alaska")
        cdss.reconcile("Dresden")

        organisms = figure2.alaska.tuples("O")
        assert any(values[0] == "H. sapiens" for values in organisms)
        assert any(has_labelled_nulls(values) for values in organisms)
        assert figure2.dresden.instance.contains("OPS", ("H. sapiens", "p53", "CCCGGG"))

    def test_beijing_data_reaches_crete_through_alaska_mapping(self, figure2):
        # Beijing has no direct mapping to Crete; data flows B -> A -> C.
        cdss = figure2.cdss
        builder = figure2.beijing.new_transaction()
        builder.insert("O", ("M. musculus", 2))
        builder.insert("P", ("actin", 20))
        builder.insert("S", (2, 20, "TTTAAA"))
        figure2.beijing.commit(builder)
        cdss.publish("Beijing")
        outcome = cdss.reconcile("Crete")
        assert len(outcome.accepted) == 1
        assert figure2.crete.instance.contains("OPS", ("M. musculus", "actin", "TTTAAA"))

    def test_deletion_propagates_downstream(self, figure2):
        cdss = figure2.cdss
        builder = figure2.alaska.new_transaction()
        builder.insert("O", ("E. coli", 1))
        builder.insert("P", ("lacZ", 10))
        builder.insert("S", (1, 10, "ATGATG"))
        figure2.alaska.commit(builder)
        cdss.publish("Alaska")
        cdss.reconcile("Dresden")
        assert figure2.dresden.instance.contains("OPS", ("E. coli", "lacZ", "ATGATG"))

        figure2.alaska.delete("S", (1, 10, "ATGATG"))
        cdss.publish("Alaska")
        outcome = cdss.reconcile("Dresden")
        assert len(outcome.accepted) == 1
        assert not figure2.dresden.instance.contains("OPS", ("E. coli", "lacZ", "ATGATG"))

    def test_local_edits_stay_local_until_published(self, figure2):
        cdss = figure2.cdss
        figure2.alaska.insert("O", ("E. coli", 1))
        cdss.reconcile("Beijing")
        assert figure2.beijing.instance.count("O") == 0
        cdss.publish("Alaska")
        cdss.reconcile("Beijing")
        assert figure2.beijing.instance.count("O") == 1


class TestBulkLoadFlow:
    def test_initial_import_and_exchange(self, figure2):
        cdss = figure2.cdss
        generator = BioDataGenerator(seed=11)
        generator.load_sigma1(figure2.alaska, organisms=5, proteins=5, sequences_per_pair=0.5)
        cdss.import_existing_data("Alaska")
        cdss.publish("Alaska")
        cdss.reconcile("Dresden")

        expected = figure2.alaska.instance.count("S")
        assert expected > 0
        assert figure2.dresden.instance.count("OPS") == expected

    def test_round_trip_preserves_peer_count_consistency(self, figure2):
        cdss = figure2.cdss
        generator = BioDataGenerator(seed=11)
        generator.insertion_transactions(figure2.alaska, 5)
        # Disjoint organisms/proteins so the two sources do not conflict.
        generator.insertion_transactions(figure2.dresden, 4, start_index=100)
        cdss.publish("Alaska")
        cdss.publish("Dresden")
        for peer in figure2.peer_names():
            cdss.reconcile(peer)
        # Dresden sees its own 4 plus Alaska's 5 sequences.
        assert figure2.dresden.instance.count("OPS") == 9
        # Beijing (Σ1, trusts everyone) sees every sequence Alaska published
        # plus the split translation of Dresden's 4 OPS rows.  (The mapping
        # cycle Σ1 -> Σ2 -> Σ1 also produces labelled-null variants of
        # Alaska's tuples — a universal, non-core solution — so the count is
        # a lower bound rather than an equality.)
        for values in figure2.alaska.tuples("S"):
            if not any(values == other for other in figure2.beijing.tuples("S")):
                raise AssertionError(f"Beijing is missing {values!r}")
        assert figure2.beijing.instance.count("S") >= 9
        dresden_organisms = {row[0] for row in figure2.dresden.tuples("OPS")}
        beijing_organisms = {row[0] for row in figure2.beijing.tuples("O")}
        assert dresden_organisms <= beijing_organisms
