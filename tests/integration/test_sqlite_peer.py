"""Integration test: a peer whose local instance lives in SQLite.

The CDSS algorithms only depend on the storage protocol, so a peer backed by
the SQLite backend must behave identically to the in-memory default —
including storing labelled nulls produced by split mappings durably.
"""

from repro import CDSS, PeerSchema
from repro.core.mapping import join_mapping, split_mapping
from repro.core.tuples import has_labelled_nulls
from repro.storage.sqlite_backend import SQLiteInstance
from repro.workloads import SyntheticWorkload, WorkloadConfig, build_figure2_network

SIGMA1 = {
    "O": ["org", "oid"],
    "P": ["prot", "pid"],
    "S": ["oid", "pid", "seq"],
}
SIGMA1_KEYS = {"O": ["org"], "P": ["prot"], "S": ["oid", "pid"]}


def test_sqlite_backed_peer_participates_in_exchange(tmp_path):
    cdss = CDSS()
    source = cdss.add_peer(
        "Source",
        PeerSchema.build("Sigma2", {"OPS": ["org", "prot", "seq"]}, {"OPS": ["org", "prot"]}),
    )
    target = cdss.add_peer(
        "Target",
        PeerSchema.build("Sigma1", SIGMA1, SIGMA1_KEYS),
        storage=SQLiteInstance(str(tmp_path / "target.db")),
    )
    cdss.add_mapping(
        split_mapping(
            "M_split", "Source", "Target",
            ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
            "OPS(org, prot, seq)",
        )
    )

    source.insert("OPS", ("H. sapiens", "BRCA1", "GGCTAGCT"))
    cdss.publish("Source")
    outcome = cdss.reconcile("Target")
    assert len(outcome.accepted) == 1

    organisms = set(target.instance.scan("O"))
    assert any(values[0] == "H. sapiens" for values in organisms)
    assert any(has_labelled_nulls(values) for values in organisms)

    # The labelled nulls round-trip through SQLite storage on disk.
    reopened = SQLiteInstance(str(tmp_path / "target.db"))
    assert any(has_labelled_nulls(values) for values in reopened.scan("O"))
    reopened.close()


def test_sqlite_backed_peer_local_edits_publish(tmp_path):
    cdss = CDSS()
    source = cdss.add_peer(
        "Source",
        PeerSchema.build("S", {"R": ["k", "v"]}, {"R": ["k"]}),
        storage=SQLiteInstance(str(tmp_path / "source.db")),
    )
    target = cdss.add_peer("Target", PeerSchema.build("T", {"R": ["k", "v"]}, {"R": ["k"]}))
    cdss.add_mapping(join_mapping("M", "Source", "Target", "R(k, v)", ["R(k, v)"]))

    source.insert("R", (1, "a"))
    source.modify("R", (1, "a"), (1, "b"))
    cdss.publish("Source")
    cdss.reconcile("Target")
    assert target.tuples("R") == frozenset({(1, "b")})
    assert set(source.instance.scan("R")) == {(1, "b")}


def test_memory_and_sqlite_backends_agree_on_figure2(tmp_path):
    """Backend parity on the full Figure-2 scenario: the same update-heavy
    workload (inserts, modifications, deletions, deliberate conflicts) run
    on an all-SQLite network and on the in-memory default must leave every
    peer with an identical instance."""
    config = WorkloadConfig(
        transactions=24,
        conflict_rate=0.2,
        modify_fraction=0.3,
        delete_fraction=0.15,
        seed=77,
    )
    memory_network = build_figure2_network()
    sqlite_network = build_figure2_network(
        storage_factory=lambda name: SQLiteInstance(str(tmp_path / f"{name}.db"))
    )

    reports = []
    for network in (memory_network, sqlite_network):
        workload = SyntheticWorkload(network, config)
        workload.generate()
        reports.append(network.cdss.sync())

    # The orchestration saw the same stream on both backends...
    assert reports[0].to_dict() == reports[1].to_dict()
    # ...and every peer's instance (including labelled nulls from the split
    # mapping) is identical.
    for name in memory_network.peer_names():
        assert memory_network.cdss.peer_snapshot(name) == sqlite_network.cdss.peer_snapshot(name)

    # The SQLite instances are durable: reopening from disk shows the data.
    crete = sqlite_network.cdss.peer_snapshot("Crete")
    reopened = SQLiteInstance(str(tmp_path / "Crete.db"))
    assert reopened.snapshot() == crete
    reopened.close()
