"""Integration test: a peer whose local instance lives in SQLite.

The CDSS algorithms only depend on the storage protocol, so a peer backed by
the SQLite backend must behave identically to the in-memory default —
including storing labelled nulls produced by split mappings durably.
"""

from repro import CDSS, PeerSchema
from repro.core.mapping import join_mapping, split_mapping
from repro.core.tuples import has_labelled_nulls
from repro.storage.sqlite_backend import SQLiteInstance

SIGMA1 = {
    "O": ["org", "oid"],
    "P": ["prot", "pid"],
    "S": ["oid", "pid", "seq"],
}
SIGMA1_KEYS = {"O": ["org"], "P": ["prot"], "S": ["oid", "pid"]}


def test_sqlite_backed_peer_participates_in_exchange(tmp_path):
    cdss = CDSS()
    source = cdss.add_peer(
        "Source",
        PeerSchema.build("Sigma2", {"OPS": ["org", "prot", "seq"]}, {"OPS": ["org", "prot"]}),
    )
    target = cdss.add_peer(
        "Target",
        PeerSchema.build("Sigma1", SIGMA1, SIGMA1_KEYS),
        storage=SQLiteInstance(str(tmp_path / "target.db")),
    )
    cdss.add_mapping(
        split_mapping(
            "M_split", "Source", "Target",
            ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
            "OPS(org, prot, seq)",
        )
    )

    source.insert("OPS", ("H. sapiens", "BRCA1", "GGCTAGCT"))
    cdss.publish("Source")
    outcome = cdss.reconcile("Target")
    assert len(outcome.accepted) == 1

    organisms = set(target.instance.scan("O"))
    assert any(values[0] == "H. sapiens" for values in organisms)
    assert any(has_labelled_nulls(values) for values in organisms)

    # The labelled nulls round-trip through SQLite storage on disk.
    reopened = SQLiteInstance(str(tmp_path / "target.db"))
    assert any(has_labelled_nulls(values) for values in reopened.scan("O"))
    reopened.close()


def test_sqlite_backed_peer_local_edits_publish(tmp_path):
    cdss = CDSS()
    source = cdss.add_peer(
        "Source",
        PeerSchema.build("S", {"R": ["k", "v"]}, {"R": ["k"]}),
        storage=SQLiteInstance(str(tmp_path / "source.db")),
    )
    target = cdss.add_peer("Target", PeerSchema.build("T", {"R": ["k", "v"]}, {"R": ["k"]}))
    cdss.add_mapping(join_mapping("M", "Source", "Target", "R(k, v)", ["R(k, v)"]))

    source.insert("R", (1, "a"))
    source.modify("R", (1, "a"), (1, "b"))
    cdss.publish("Source")
    cdss.reconcile("Target")
    assert target.tuples("R") == frozenset({(1, "b")})
    assert set(source.instance.scan("R")) == {(1, "b")}
