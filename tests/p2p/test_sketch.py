"""Sketches, digests, and compact clocks for set reconciliation."""

import random
import subprocess
import sys

import pytest

from repro.core.hashing import (
    canonical_encode,
    encoded_size,
    mix64,
    stable_hash,
    stable_text_hash,
    xor_checksum,
)
from repro.core.transactions import Transaction
from repro.core.updates import Update
from repro.errors import SketchError, TransactionError
from repro.p2p.sketch import (
    CompactClock,
    CountingBloomSketch,
    IBLTSketch,
    PeerClock,
    entry_digest,
    entry_wire_size,
    transaction_digest,
)
from repro.p2p.store import PublishedTransaction


def entry(txn_id: str, epoch: int, sequence: int, peer: str = "Alaska") -> PublishedTransaction:
    txn = Transaction(txn_id, peer, (Update.insert("R", (txn_id,), origin=peer),), epoch=epoch)
    return PublishedTransaction(txn, epoch, sequence, peer)


class TestStableHashing:
    def test_text_hash_is_process_stable(self):
        # Pinned value: any change here silently reshuffles shard placement.
        assert stable_text_hash("Alaska-T1:Beijing") == 0x040E12E4BA2B9168

    def test_stable_hash_is_seeded(self):
        value = ("txn", "Alaska", (1, 2))
        assert stable_hash(value) == stable_hash(value)
        assert stable_hash(value, seed=1) != stable_hash(value, seed=2)

    def test_canonical_encode_distinguishes_types(self):
        # 1, 1.0, True and "1" collide under builtin hash/eq rules; the
        # canonical encoding must keep them apart.
        encodings = {canonical_encode(value) for value in (1, 1.0, True, "1", b"1")}
        assert len(encodings) == 5

    def test_canonical_encode_is_order_insensitive_for_sets_and_dicts(self):
        assert canonical_encode({1, 2, 3}) == canonical_encode({3, 1, 2})
        assert canonical_encode({"a": 1, "b": 2}) == canonical_encode({"b": 2, "a": 1})

    def test_canonical_encode_rejects_unencodable_values(self):
        with pytest.raises(TransactionError):
            canonical_encode(object())

    def test_encoded_size_matches_encoding(self):
        value = ("entry", "Alaska", 3, (1, "x"))
        assert encoded_size(value) == len(canonical_encode(value))

    def test_mix64_diffuses(self):
        outputs = {mix64(i) for i in range(256)}
        assert len(outputs) == 256

    def test_xor_checksum_is_order_free_and_self_inverse(self):
        digests = [stable_hash(i) for i in range(8)]
        shuffled = list(digests)
        random.Random(7).shuffle(shuffled)
        assert xor_checksum(digests) == xor_checksum(shuffled)
        assert xor_checksum(digests + digests) == 0

    def test_digests_are_stable_across_interpreter_runs(self):
        """The digests both ends of a session compute must not depend on
        PYTHONHASHSEED — run the same computation in two fresh interpreters
        with different seeds and require identical output."""
        program = (
            "from repro.core.hashing import stable_hash, stable_text_hash\n"
            "from repro.core.transactions import Transaction\n"
            "from repro.core.updates import Update\n"
            "from repro.p2p.store import PublishedTransaction\n"
            "from repro.p2p.sketch import entry_digest\n"
            "t = Transaction('t1', 'Alaska', (Update.insert('R', (1, 'x'), origin='Alaska'),), epoch=2)\n"
            "e = PublishedTransaction(t, 2, 5, 'Alaska')\n"
            "print(stable_text_hash('probe'), stable_hash(('k', 1)), entry_digest(e))\n"
        )
        outputs = set()
        for hash_seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": hash_seed, "PYTHONPATH": "src"},
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1


class TestDigests:
    def test_entry_digest_covers_position(self):
        # Same transaction at a different archive position is a different entry.
        assert entry_digest(entry("t1", 1, 0)) != entry_digest(entry("t1", 2, 0))
        assert entry_digest(entry("t1", 1, 0)) != entry_digest(entry("t1", 1, 1))

    def test_transaction_digest_ignores_epoch(self):
        # Content digest: the same logical transaction published at different
        # epochs has the same content.
        a = Transaction("t1", "Alaska", (Update.insert("R", (1,), origin="Alaska"),), epoch=1)
        b = Transaction("t1", "Alaska", (Update.insert("R", (1,), origin="Alaska"),), epoch=9)
        assert transaction_digest(a) == transaction_digest(b)

    def test_wire_size_is_positive_and_grows_with_content(self):
        small = entry_wire_size(entry("t", 1, 0))
        big = entry_wire_size(entry("t-with-a-much-longer-identifier", 1, 0))
        assert 0 < small < big

    def test_entry_properties_are_cached(self):
        e = entry("t1", 1, 0)
        assert e.digest == e.digest == entry_digest(e)
        assert e.wire_size == entry_wire_size(e)


class TestPeerClock:
    def test_observe_keeps_maximum(self):
        clock = PeerClock()
        clock.observe("A", 3)
        clock.observe("A", 1)
        assert clock.versions == {"A": 3}

    def test_merge_and_dominates(self):
        left = PeerClock({"A": 2, "B": 5})
        right = PeerClock({"A": 4, "C": 1})
        merged = left.merge(right)
        assert merged.versions == {"A": 4, "B": 5, "C": 1}
        assert merged.dominates(left) and merged.dominates(right)
        assert not left.dominates(right)

    def test_behind_names_stale_publishers(self):
        left = PeerClock({"A": 2})
        right = PeerClock({"A": 4, "B": 1})
        assert left.behind(right) == ["A", "B"]
        assert right.behind(left) == []

    def test_byte_size_scales_with_publishers(self):
        clock = PeerClock({"A": 1})
        bigger = PeerClock({"A": 1, "Beijing": 2})
        assert 0 < clock.byte_size() < bigger.byte_size()


class TestCompactClock:
    def test_equal_sets_agree(self):
        digests = [stable_hash(i) for i in range(10)]
        shuffled = list(digests)
        random.Random(3).shuffle(shuffled)
        assert CompactClock.of_digests(digests).agrees_with(
            CompactClock.of_digests(shuffled)
        )

    def test_detects_interior_holes_count_and_max_miss(self):
        # Two sets with equal size and equal max element but different
        # members — a (count, max) vector cannot tell them apart.
        base = [stable_hash(i) for i in range(6)]
        holed = base[:2] + [stable_hash(100), stable_hash(101)] + base[4:]
        assert len(base) == len(holed)
        assert not CompactClock.of_digests(base).agrees_with(
            CompactClock.of_digests(holed)
        )

    def test_byte_size_is_constant(self):
        assert CompactClock.of_digests([]).byte_size() == CompactClock.BYTE_SIZE
        assert CompactClock.of_digests(range(1000)).byte_size() == CompactClock.BYTE_SIZE


class TestCountingBloomSketch:
    def test_membership(self):
        sketch = CountingBloomSketch(capacity=32)
        keys = [stable_hash(i) for i in range(32)]
        for key in keys:
            sketch.add(key)
        assert all(key in sketch for key in keys)
        assert len(sketch) == 32

    def test_false_positive_rate_is_low_at_capacity(self):
        sketch = CountingBloomSketch(capacity=128, seed=9)
        members = [stable_hash(("m", i)) for i in range(128)]
        for key in members:
            sketch.add(key)
        probes = [stable_hash(("p", i)) for i in range(2000)]
        false_positives = sum(1 for key in probes if key in sketch)
        assert false_positives / len(probes) < 0.08

    def test_remove_and_underflow(self):
        sketch = CountingBloomSketch(capacity=4)
        key = stable_hash("x")
        sketch.add(key)
        sketch.remove(key)
        assert key not in sketch
        with pytest.raises(SketchError):
            sketch.remove(stable_hash("never-added"))

    def test_missing_from_skips_members(self):
        sketch = CountingBloomSketch(capacity=16)
        sketch.add(stable_hash("a"))
        candidates = [(stable_hash("a"), "a"), (stable_hash("b"), "b")]
        assert sketch.missing_from(candidates) == ["b"]

    def test_seeds_give_independent_probe_sequences(self):
        key = stable_hash("collide")
        a = CountingBloomSketch(capacity=8, seed=1)
        b = CountingBloomSketch(capacity=8, seed=2)
        a.add(key)
        b.add(key)
        assert a._cells != b._cells

    def test_capacity_is_validated(self):
        with pytest.raises(SketchError):
            CountingBloomSketch(capacity=0)


class TestIBLTSketch:
    def _decode_diff(self, left_keys, right_keys, capacity, seed=0):
        left = IBLTSketch(capacity, seed=seed)
        right = IBLTSketch(capacity, seed=seed)
        for key in left_keys:
            left.add(key)
        for key in right_keys:
            right.add(key)
        return left.subtract(right).decode()

    def test_decodes_symmetric_difference_exactly(self):
        shared = {stable_hash(("s", i)) for i in range(200)}
        only_left = {stable_hash(("l", i)) for i in range(7)}
        only_right = {stable_hash(("r", i)) for i in range(4)}
        got_left, got_right = self._decode_diff(
            shared | only_left, shared | only_right, capacity=32
        )
        assert got_left == only_left
        assert got_right == only_right

    def test_equal_sets_decode_empty(self):
        keys = {stable_hash(i) for i in range(50)}
        assert self._decode_diff(keys, keys, capacity=8) == (set(), set())

    def test_overflow_raises_sketch_error(self):
        only_left = {stable_hash(("l", i)) for i in range(200)}
        with pytest.raises(SketchError):
            self._decode_diff(only_left, set(), capacity=4)

    def test_decode_with_grow_and_retry_recovers_every_random_diff(self):
        """A single attempt may stall on unlucky probe collisions; the
        protocol's grow-with-fresh-seed retry must always recover the exact
        diff within a few attempts (trial 12 of this stream stalls on
        attempt 0, so the retry path is genuinely exercised)."""
        rng = random.Random(42)
        for trial in range(25):
            universe = [stable_hash(("u", trial, i)) for i in range(120)]
            rng.shuffle(universe)
            split = rng.randrange(0, 12)
            left = set(universe)
            right = set(universe[split:])
            for attempt in range(3):
                capacity = 32 * (4 ** attempt)
                seed = stable_hash(("retry", trial, attempt))
                try:
                    got_left, got_right = self._decode_diff(
                        left, right, capacity=capacity, seed=seed
                    )
                    break
                except SketchError:
                    continue
            else:
                pytest.fail(f"trial {trial}: decode failed on all attempts")
            assert got_left == set(universe[:split])
            assert got_right == set()

    def test_subtract_requires_same_shape_and_seed(self):
        with pytest.raises(SketchError):
            IBLTSketch(8, seed=1).subtract(IBLTSketch(8, seed=2))
        with pytest.raises(SketchError):
            IBLTSketch(8, seed=1).subtract(IBLTSketch(64, seed=1))

    def test_tiny_tables_still_probe_distinct_cells(self):
        sketch = IBLTSketch(1)
        key = stable_hash("only")
        assert len(set(sketch._probes(key))) == sketch.PROBES

    def test_byte_size_scales_with_capacity(self):
        assert IBLTSketch(8).byte_size() < IBLTSketch(64).byte_size()

    def test_capacity_is_validated(self):
        with pytest.raises(SketchError):
            IBLTSketch(0)
