"""The sharded, replicated distributed update store.

Covers the ring (deterministic segment placement), API parity with the
centralized archive on identical publication streams, quorum behaviour and
degraded writes, re-replication after hosts disconnect, gossip catch-up for
reconnecting peers, and the k-1 replica-loss durability guarantee.
"""

import random

import pytest

from repro.config import StoreConfig
from repro.core.transactions import Transaction
from repro.core.updates import Update
from repro.errors import ConfigurationError, PublicationError, QuorumError
from repro.p2p.distributed import (
    ConsistentHashRing,
    DistributedUpdateStore,
    store_from_config,
)
from repro.p2p.network import Network
from repro.p2p.store import UpdateStore


def txn(txn_id: str, peer: str = "A") -> Transaction:
    return Transaction(txn_id, peer, (Update.insert("R", (txn_id,), origin=peer),))


def make_store(peers, **kwargs) -> tuple[Network, DistributedUpdateStore]:
    network = Network(peers)
    return network, DistributedUpdateStore(network, **kwargs)


class TestConsistentHashRing:
    def test_placement_is_deterministic(self):
        left = ConsistentHashRing(8)
        right = ConsistentHashRing(8)
        assert [left.shard_for(s) for s in range(100)] == [
            right.shard_for(s) for s in range(100)
        ]

    def test_segments_spread_over_shards(self):
        ring = ConsistentHashRing(4)
        used = {ring.shard_for(segment) for segment in range(200)}
        assert used == {0, 1, 2, 3}

    def test_single_shard_takes_everything(self):
        ring = ConsistentHashRing(1)
        assert {ring.shard_for(segment) for segment in range(20)} == {0}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(0)


class TestApiParity:
    """Same publication stream => identical answers from both stores."""

    def run_stream(self, seed: int, shard_count: int):
        rng = random.Random(seed)
        peers = ["A", "B", "C", "D"]
        _, distributed = make_store(
            peers, shard_count=shard_count, replication_factor=2, segment_size=2
        )
        centralized = UpdateStore()
        epoch = 0
        for batch in range(30):
            epoch += rng.randint(1, 2)
            publisher = rng.choice(peers)
            transactions = [
                txn(f"s{seed}-b{batch}-t{i}", publisher)
                for i in range(rng.randint(1, 3))
            ]
            centralized.archive(transactions, epoch, publisher)
            distributed.archive(transactions, epoch, publisher)
        return centralized, distributed, epoch, peers

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("shard_count", [1, 4, 16])
    def test_reads_match_centralized(self, seed, shard_count):
        centralized, distributed, epoch, peers = self.run_stream(seed, shard_count)
        assert len(distributed) == len(centralized)
        assert distributed.latest_epoch() == centralized.latest_epoch()
        assert distributed.all_entries() == centralized.all_entries()
        assert distributed.antecedents_map() == centralized.antecedents_map()
        for probe in range(0, epoch + 1):
            assert distributed.published_since(probe) == centralized.published_since(probe)
            assert distributed.published_since(probe, "A") == centralized.published_since(probe, "A")
        for peer in peers:
            assert distributed.published_by(peer) == centralized.published_by(peer)
        sample = centralized.all_entries()[len(centralized) // 2]
        assert distributed.contains(sample.txn_id)
        assert distributed.entry(sample.txn_id) == sample
        assert not distributed.contains("ghost")
        with pytest.raises(PublicationError):
            distributed.entry("ghost")

    def test_parity_survives_churn(self):
        """Disconnect/reconnect cycles between batches must not change what a
        full quorum read returns once everyone is back online."""
        rng = random.Random(99)
        peers = ["A", "B", "C", "D"]
        network, distributed = make_store(
            peers, shard_count=4, replication_factor=2, segment_size=1
        )
        centralized = UpdateStore()
        epoch = 0
        offline = None
        for batch in range(40):
            epoch += 1
            if offline is not None:
                network.connect(offline)
                offline = None
            if rng.random() < 0.4:
                offline = rng.choice(peers)
                network.disconnect(offline)
            publisher = rng.choice([p for p in peers if p != offline])
            transactions = [txn(f"c{batch}", publisher)]
            centralized.archive(transactions, epoch, publisher)
            distributed.archive(transactions, epoch, publisher)
        if offline is not None:
            network.connect(offline)
        assert distributed.all_entries() == centralized.all_entries()
        assert distributed.under_replicated() == {}


class TestAtomicity:
    def test_failed_batch_archives_nothing(self):
        _, store = make_store(["A", "B"])
        store.archive([txn("t0")], epoch=1, publisher="A")
        with pytest.raises(PublicationError):
            store.archive([txn("t1"), txn("t0")], epoch=2, publisher="A")
        assert len(store) == 1
        assert not store.contains("t1")

    def test_wrong_publisher_rejected_atomically(self):
        _, store = make_store(["A", "B"])
        with pytest.raises(PublicationError):
            store.archive([txn("t1"), txn("t2", peer="B")], epoch=1, publisher="A")
        assert len(store) == 0

    def test_epoch_must_not_regress(self):
        _, store = make_store(["A", "B"])
        store.archive([txn("t1")], epoch=5, publisher="A")
        with pytest.raises(PublicationError):
            store.archive([txn("t2")], epoch=4, publisher="A")

    def test_duplicate_rejected_even_when_holders_are_offline(self):
        """Duplicate detection is exact coordinator metadata: a txn_id whose
        replicas are all unreachable is still a duplicate, not a fresh id."""
        network, store = make_store(
            ["A", "B"], shard_count=4, replication_factor=1, segment_size=1
        )
        store.archive([txn("t1")], epoch=1, publisher="A")
        shard = next(iter(store._shard_sequences))
        holder = store.replica_hosts(shard)[0]
        network.disconnect(holder)
        assert store.contains("t1")  # archived, even though unreachable
        assert not store.retrievable("t1")
        with pytest.raises(PublicationError):
            store.archive([txn("t1")], epoch=9, publisher="A")
        with pytest.raises(QuorumError):
            store.entry("t1")  # archived but every holder offline
        network.connect(holder)
        assert store.retrievable("t1")
        assert store.entry("t1").txn_id == "t1"


class TestQuorum:
    def test_degraded_write_when_quorum_unreachable(self):
        network, store = make_store(
            ["A", "B"], shard_count=1, replication_factor=2, write_quorum=2
        )
        store.archive([txn("t1")], epoch=1, publisher="A")
        assert store.health()["degraded_writes"] == 0
        network.disconnect("B")
        # Only one peer is online: no replacement host exists, so the write
        # lands on a single replica and is recorded as degraded, not refused.
        store.archive([txn("t2")], epoch=2, publisher="A")
        assert store.health()["degraded_writes"] == 1
        assert store.contains("t2")

    def test_unreachable_shard_raises_quorum_error(self):
        network, store = make_store(["A", "B"], shard_count=1, replication_factor=2)
        store.archive([txn("t1")], epoch=1, publisher="A")
        network.disconnect("A")
        network.disconnect("B")
        with pytest.raises(QuorumError):
            store.published_since(0)
        with pytest.raises(QuorumError):
            store.archive([txn("t2")], epoch=2, publisher="A")

    def test_reads_prefer_complete_replicas(self):
        """A freshly added (still catching-up) quorum member must not shadow
        entries that a complete replica holds."""
        network, store = make_store(
            ["A", "B", "C"], shard_count=1, replication_factor=2, read_quorum=1
        )
        store.archive([txn("t1")], epoch=1, publisher="A")
        hosts = store.replica_hosts(0)
        network.disconnect(hosts[0])  # triggers re-replication onto the third peer
        assert len(store.published_since(0)) == 1
        network.connect(hosts[0])
        assert len(store.published_since(0)) == 1


class TestChurnTolerance:
    def test_re_replication_restores_factor(self):
        network, store = make_store(
            ["A", "B", "C", "D"], shard_count=2, replication_factor=2, segment_size=1
        )
        for epoch in range(1, 9):
            store.archive([txn(f"t{epoch}")], epoch=epoch, publisher="A")
        victim = store.replica_hosts(0)[0]
        network.disconnect(victim)
        health = store.health()
        assert health["re_replications"] >= 1
        for shard_info in health["per_shard"]:
            assert shard_info["online_replicas"] >= 2
        assert len(store.all_entries()) == 8

    def test_reconnecting_peer_catches_up_via_anti_entropy(self):
        network, store = make_store(
            ["A", "B"], shard_count=1, replication_factor=2, segment_size=1
        )
        store.archive([txn("t1")], epoch=1, publisher="A")
        network.disconnect("B")
        store.archive([txn("t2")], epoch=2, publisher="A")
        store.archive([txn("t3")], epoch=3, publisher="A")
        # B's replica is stale while offline.
        assert store.under_replicated() != {}
        network.connect("B")
        # The reconnect listener ran a gossip round: vectors agree again.
        assert store.under_replicated() == {}
        replicas = store._replicas[0]
        vectors = {id(r): r.epoch_vector() for r in replicas}
        assert len(set(map(str, vectors.values()))) == 1
        assert len(store.all_entries()) == 3

    def test_losing_k_minus_one_replicas_loses_nothing(self):
        network, store = make_store(
            ["A", "B", "C", "D", "E"], shard_count=3, replication_factor=3,
            segment_size=1,
        )
        for epoch in range(1, 13):
            store.archive([txn(f"t{epoch}")], epoch=epoch, publisher="A")
        entries = store.all_entries()
        assert len(entries) == 12
        # Simultaneously lose k-1 = 2 replica hosts of every shard.  Writes
        # fan out to all reachable replicas, so the one survivor per shard
        # still holds everything.
        for shard in range(3):
            hosts = store.replica_hosts(shard)
            for host in hosts[: len(hosts) - 1]:
                if network.is_online(host):
                    network.disconnect(host)
        assert store.all_entries() == entries

    def test_reconnect_grows_undersized_replica_sets(self):
        """A shard whose replica set was created while most peers were offline
        regains the full replication factor as capacity returns."""
        network, store = make_store(
            ["A", "B", "C"], shard_count=1, replication_factor=2
        )
        network.disconnect("B")
        network.disconnect("C")
        store.archive([txn("t1")], epoch=1, publisher="A")
        assert len(store.replica_hosts(0)) == 1
        network.connect("B")
        assert len(store.replica_hosts(0)) == 2
        assert store.under_replicated() == {}


class TestConfigDispatch:
    def test_store_from_config_dispatches_on_backend(self):
        network = Network(["A"])
        assert isinstance(
            store_from_config(network, StoreConfig()), UpdateStore
        )
        distributed = store_from_config(
            network,
            StoreConfig(backend="distributed", shard_count=7, replication_factor=1),
        )
        assert isinstance(distributed, DistributedUpdateStore)
        assert distributed.shard_count == 7

    def test_write_quorum_defaults_to_majority(self):
        _, store = make_store(["A", "B", "C"], replication_factor=3)
        assert store.write_quorum == 2

    def test_quorum_validation(self):
        with pytest.raises(ConfigurationError):
            make_store(["A"], replication_factor=2, write_quorum=3)
        with pytest.raises(ConfigurationError):
            make_store(["A"], replication_factor=2, read_quorum=0)
        with pytest.raises(ConfigurationError):
            StoreConfig(backend="clustered")


class TestHealth:
    def test_health_summarizes_shards(self):
        network, store = make_store(
            ["A", "B", "C"], shard_count=2, replication_factor=2, segment_size=1
        )
        for epoch in range(1, 7):
            store.archive([txn(f"t{epoch}")], epoch=epoch, publisher="A")
        health = store.health()
        assert health["backend"] == "distributed"
        assert health["transactions"] == 6
        assert health["under_replicated_shards"] == 0
        assert sum(info["entries"] for info in health["per_shard"]) == 6
        for info in health["per_shard"]:
            assert info["replicas"] == 2
            assert len(info["hosts"]) == 2


class TestAntiEntropyClocks:
    """Compact-clock anti-entropy: cheap agreement, hole detection, ages."""

    def _filled(self, peers, count=8, **kwargs):
        network, store = make_store(peers, **kwargs)
        for epoch in range(1, count + 1):
            store.archive([txn(f"t{epoch}")], epoch=epoch, publisher="A")
        return network, store

    def test_agreeing_replicas_transfer_nothing(self):
        _, store = self._filled(["A", "B", "C"], shard_count=2, replication_factor=2)
        assert store.anti_entropy() == 0

    def test_replica_clock_detects_interior_holes(self):
        """Two replicas with equal counts and equal max sequence but
        different members must disagree — the blind spot of the old
        (count, max) epoch vectors."""
        _, store = self._filled(
            ["A", "B"], count=6, shard_count=1, replication_factor=2, segment_size=2
        )
        replicas = store._replicas[next(iter(store._replicas))]
        left, right = replicas[0], replicas[1]
        assert left.clock().agrees_with(right.clock())
        # Knock a *different* interior sequence out of each replica, then
        # rebuild the incremental checksums from scratch for the surgery.
        def drop(replica, sequence):
            for segment in replica.segments():
                if sequence in replica.sequences(segment):
                    replica._segments[segment].discard(sequence)
                    del replica._by_sequence[sequence]
            from repro.p2p.distributed import _SEQUENCE_SALT
            from repro.core.hashing import mix64
            replica._checksum = 0
            replica._segment_checksums = {}
            for segment in replica.segments():
                for seq in replica.sequences(segment):
                    d = mix64(seq + _SEQUENCE_SALT)
                    replica._checksum ^= d
                    replica._segment_checksums[segment] = (
                        replica._segment_checksums.get(segment, 0) ^ d
                    )

        drop(left, 2)
        drop(right, 3)
        assert len(left) != 0 and left.clock().count == right.clock().count
        assert left.clock().latest == right.clock().latest
        assert not left.clock().agrees_with(right.clock())
        transferred = store.anti_entropy()
        assert transferred == 2
        assert left.clock().agrees_with(right.clock())

    def test_epoch_vector_is_superseded_but_consistent(self):
        _, store = self._filled(["A", "B"], count=4, shard_count=1, segment_size=2)
        replica = store._replicas[next(iter(store._replicas))][0]
        vector = replica.epoch_vector()
        assert sum(count for count, _ in vector.values()) == len(replica)
        assert replica.clock().count == len(replica)
        assert replica.clock().byte_size() == 24

    def test_health_reports_anti_entropy_age(self):
        network, store = self._filled(
            ["A", "B", "C"], shard_count=2, replication_factor=2
        )
        store.anti_entropy()
        for info in store.health()["per_shard"]:
            assert set(info["anti_entropy_age"]) == set(info["hosts"])
            assert all(age == 0 for age in info["anti_entropy_age"].values())

    def test_offline_replicas_age_until_they_rejoin(self):
        network, store = self._filled(
            ["A", "B", "C"], count=4, shard_count=1, replication_factor=3
        )
        store.anti_entropy()
        network.disconnect("C")
        for epoch in range(5, 9):
            store.archive([txn(f"t{epoch}")], epoch=epoch, publisher="A")
        store.anti_entropy()
        ages = {
            host: age
            for info in store.health()["per_shard"]
            for host, age in info["anti_entropy_age"].items()
        }
        if "C" in ages:  # C's stale replica may have been pruned away
            assert ages["C"] > 0
        assert ages["A"] == 0 and ages["B"] == 0
        network.connect("C")  # reconnect runs catch-up anti-entropy
        ages = {
            host: age
            for info in store.health()["per_shard"]
            for host, age in info["anti_entropy_age"].items()
        }
        assert all(age == 0 for age in ages.values())
        assert store.under_replicated() == {}
