"""Unit tests for the simulated P2P substrate: store, network, replication."""

import random

import pytest

from repro.core.transactions import Transaction
from repro.core.updates import Update
from repro.errors import NetworkError, PublicationError
from repro.p2p.network import Network
from repro.p2p.replication import ReplicationManager
from repro.p2p.store import EpochLog, PublishedTransaction, UpdateStore


def txn(txn_id: str, peer: str = "Alaska") -> Transaction:
    return Transaction(txn_id, peer, (Update.insert("R", (txn_id,), origin=peer),))


class TestUpdateStore:
    def test_archive_and_retrieve(self):
        store = UpdateStore()
        store.archive([txn("t1"), txn("t2")], epoch=1, publisher="Alaska")
        assert len(store) == 2
        assert store.contains("t1")
        assert store.entry("t1").epoch == 1
        assert store.entry("t1").transaction.epoch == 1
        assert store.latest_epoch() == 1

    def test_duplicate_publication_rejected(self):
        store = UpdateStore()
        store.archive([txn("t1")], epoch=1, publisher="Alaska")
        with pytest.raises(PublicationError):
            store.archive([txn("t1")], epoch=2, publisher="Alaska")

    def test_wrong_publisher_rejected(self):
        store = UpdateStore()
        with pytest.raises(PublicationError):
            store.archive([txn("t1", peer="Beijing")], epoch=1, publisher="Alaska")

    def test_published_since(self):
        store = UpdateStore()
        store.archive([txn("t1")], epoch=1, publisher="Alaska")
        store.archive([txn("t2", "Beijing")], epoch=2, publisher="Beijing")
        store.archive([txn("t3")], epoch=3, publisher="Alaska")
        since_one = store.published_since(1)
        assert [entry.txn_id for entry in since_one] == ["t2", "t3"]
        excluding = store.published_since(0, exclude_publisher="Alaska")
        assert [entry.txn_id for entry in excluding] == ["t2"]

    def test_published_by(self):
        store = UpdateStore()
        store.archive([txn("t1")], epoch=1, publisher="Alaska")
        store.archive([txn("t2", "Beijing")], epoch=2, publisher="Beijing")
        assert [entry.txn_id for entry in store.published_by("Beijing")] == ["t2"]

    def test_unknown_entry(self):
        store = UpdateStore()
        with pytest.raises(PublicationError):
            store.entry("missing")

    def test_antecedents_map(self):
        store = UpdateStore()
        dependent = Transaction(
            "t2", "Alaska", (Update.insert("R", (2,), origin="Alaska"),), frozenset({"t1"})
        )
        store.archive([txn("t1"), dependent], epoch=1, publisher="Alaska")
        assert store.antecedents_map() == {"t1": frozenset(), "t2": frozenset({"t1"})}

    def test_failed_batch_archives_nothing(self):
        """Regression: a PublicationError mid-batch must not leave earlier
        transactions of the batch behind — publication is atomic."""
        store = UpdateStore()
        store.archive([txn("t0")], epoch=1, publisher="Alaska")
        with pytest.raises(PublicationError):
            # t1 is fine, t0 is a duplicate: the whole batch must be refused.
            store.archive([txn("t1"), txn("t0")], epoch=2, publisher="Alaska")
        assert len(store) == 1
        assert not store.contains("t1")
        with pytest.raises(PublicationError):
            # Wrong-publisher transaction after a valid one: same contract.
            store.archive([txn("t2"), txn("t3", peer="Beijing")], epoch=2, publisher="Alaska")
        assert len(store) == 1
        assert not store.contains("t2")

    def test_duplicate_within_batch_rejected_atomically(self):
        store = UpdateStore()
        with pytest.raises(PublicationError):
            store.archive([txn("t1"), txn("t1")], epoch=1, publisher="Alaska")
        assert len(store) == 0

    def test_epoch_must_not_regress(self):
        store = UpdateStore()
        store.archive([txn("t1")], epoch=5, publisher="Alaska")
        with pytest.raises(PublicationError):
            store.archive([txn("t2")], epoch=4, publisher="Alaska")
        # Equal epochs are fine (several publishers can share one epoch).
        store.archive([txn("t3")], epoch=5, publisher="Alaska")

    def test_indexed_queries_match_naive_scans(self):
        """Parity: the bisect/per-publisher indexes answer exactly like the
        original O(n) list scans, across a randomized archive."""
        import random

        rng = random.Random(7)
        store = UpdateStore()
        entries = []
        epoch = 0
        publishers = ["Alaska", "Beijing", "Crete"]
        for batch in range(40):
            epoch += rng.randint(0, 2)
            publisher = rng.choice(publishers)
            batch_txns = [
                txn(f"b{batch}-t{i}", publisher) for i in range(rng.randint(1, 3))
            ]
            entries.extend(store.archive(batch_txns, epoch=epoch, publisher=publisher))
        assert [e.txn_id for e in store.all_entries()] == [e.txn_id for e in entries]
        for probe in range(-1, epoch + 2):
            for exclude in [None, *publishers]:
                naive = [
                    e for e in entries
                    if e.epoch > probe and (exclude is None or e.publisher != exclude)
                ]
                assert store.published_since(probe, exclude) == naive
        for publisher in publishers:
            assert store.published_by(publisher) == [
                e for e in entries if e.publisher == publisher
            ]


class TestNetwork:
    def test_register_and_connectivity(self):
        network = Network(["A", "B"])
        assert network.peers() == {"A", "B"}
        assert network.is_online("A")
        network.disconnect("A")
        assert not network.is_online("A")
        assert network.online_peers() == {"B"}
        network.connect("A")
        assert network.is_online("A")

    def test_duplicate_registration_rejected(self):
        network = Network(["A"])
        with pytest.raises(NetworkError):
            network.register("A")

    def test_unknown_peer_rejected(self):
        network = Network()
        with pytest.raises(NetworkError):
            network.is_online("ghost")

    def test_require_online(self):
        network = Network(["A"])
        network.disconnect("A")
        with pytest.raises(NetworkError):
            network.require_online("A", "publish")

    def test_trace_records_changes_only(self):
        network = Network(["A"])
        network.connect("A")  # already online: no event
        network.disconnect("A")
        network.disconnect("A")  # no change: no event
        assert len(network.trace()) == 1
        assert network.availability() == {"A": False}

    def test_trace_is_bounded_but_churn_stats_keep_counting(self):
        network = Network(["A", "B"], trace_limit=3)
        for _ in range(5):
            network.disconnect("A")
            network.connect("A")
        network.disconnect("B")
        assert len(network.trace()) == 3  # only the most recent events
        stats = network.churn_stats()
        assert stats["events"] == 11
        assert stats["connects"] == 5
        assert stats["disconnects"] == 6
        assert stats["trace_retained"] == 3
        assert stats["trace_dropped"] == 8
        assert stats["per_peer"]["A"] == {"connects": 5, "disconnects": 5}
        assert stats["per_peer"]["B"] == {"connects": 0, "disconnects": 1}

    def test_trace_limit_is_validated(self):
        with pytest.raises(NetworkError):
            Network(trace_limit=-1)
        # None means unbounded.
        network = Network(["A"], trace_limit=None)
        for _ in range(10):
            network.disconnect("A")
            network.connect("A")
        assert len(network.trace()) == 20

    def test_listeners_observe_connectivity_changes(self):
        network = Network(["A", "B"])
        seen = []

        def listener(event):
            seen.append((event.peer, event.online))

        network.subscribe(listener)
        network.disconnect("A")
        network.disconnect("A")  # no change: no notification
        network.connect("A")
        assert seen == [("A", False), ("A", True)]
        network.unsubscribe(listener)
        network.disconnect("B")
        assert len(seen) == 2


class TestReplication:
    def test_placement_prefers_other_peers(self):
        network = Network(["A", "B", "C"])
        manager = ReplicationManager(network, replication_factor=2)
        placement = manager.place("t1", publisher="A")
        assert len(placement.holders) == 2
        assert "A" not in placement.holders

    def test_placement_is_deterministic_and_cached(self):
        network = Network(["A", "B", "C"])
        manager = ReplicationManager(network, replication_factor=2)
        first = manager.place("t1", publisher="A")
        second = manager.place("t1", publisher="A")
        assert first is second

    def test_availability_under_churn(self):
        network = Network(["A", "B", "C"])
        manager = ReplicationManager(network, replication_factor=2)
        manager.place("t1", publisher="A")
        assert manager.available("t1")
        for holder in manager.placement("t1").holders:
            network.disconnect(holder)
        assert not manager.available("t1")

    def test_availability_ratio(self):
        network = Network(["A", "B", "C"])
        manager = ReplicationManager(network, replication_factor=1)
        manager.place("t1", publisher="A")
        manager.place("t2", publisher="A")
        assert manager.availability_ratio(["t1", "t2"]) == 1.0
        assert manager.availability_ratio([]) == 1.0
        assert manager.availability_ratio(["unknown"]) == 0.0

    def test_invalid_replication_factor(self):
        with pytest.raises(NetworkError):
            ReplicationManager(Network(), replication_factor=0)

    def test_single_peer_network_places_on_publisher(self):
        network = Network(["A"])
        manager = ReplicationManager(network, replication_factor=2)
        placement = manager.place("t1", publisher="A")
        assert placement.holders == ("A",)

    def test_placement_determinism_across_managers(self):
        """Same membership + transaction id => same holders, independent of
        the manager instance or the order transactions were placed in."""
        first = ReplicationManager(Network(["A", "B", "C", "D"]), replication_factor=2)
        second = ReplicationManager(Network(["A", "B", "C", "D"]), replication_factor=2)
        first.place("t1", publisher="A")
        first.place("t2", publisher="B")
        second.place("t2", publisher="B")
        second.place("t1", publisher="A")
        assert first.placement("t1") == second.placement("t1")
        assert first.placement("t2") == second.placement("t2")

    def test_replication_factor_invariant_under_join(self):
        """Peers that join after placement don't disturb it; new placements
        use the enlarged membership, old ones keep their holders."""
        network = Network(["A", "B", "C"])
        manager = ReplicationManager(network, replication_factor=2)
        before = manager.place("t1", publisher="A")
        network.register("E")
        assert manager.place("t1", publisher="A") is before
        assert len(manager.place("t2", publisher="A").holders) == 2

    def test_repair_restores_replication_factor_after_leave(self):
        network = Network(["A", "B", "C", "D"])
        manager = ReplicationManager(network, replication_factor=2)
        placement = manager.place("t1", publisher="A")
        lost = placement.holders[0]
        survivor = placement.holders[1]
        network.disconnect(lost)
        repaired = manager.repair("t1")
        assert len(repaired.holders) == 2
        assert survivor in repaired.holders  # surviving copy kept (data is copied)
        assert lost not in repaired.holders
        assert all(network.is_online(peer) for peer in repaired.holders)

    def test_repair_is_a_noop_while_holders_are_online(self):
        network = Network(["A", "B", "C"])
        manager = ReplicationManager(network, replication_factor=2)
        placement = manager.place("t1", publisher="A")
        assert manager.repair("t1") is placement
        assert manager.repair("unknown") is None

    def test_repair_all_counts_changed_placements(self):
        network = Network(["A", "B", "C", "D"])
        manager = ReplicationManager(network, replication_factor=2)
        manager.place("t1", publisher="A")
        manager.place("t2", publisher="A")
        affected = {
            txn_id
            for txn_id in ("t1", "t2")
            if "B" in manager.placement(txn_id).holders
        }
        network.disconnect("B")
        assert manager.repair_all() == len(affected)
        for txn_id in ("t1", "t2"):
            assert "B" not in manager.placement(txn_id).holders

    def test_repair_keeps_stale_placement_when_everyone_is_offline(self):
        network = Network(["A", "B"])
        manager = ReplicationManager(network, replication_factor=2)
        placement = manager.place("t1", publisher="A")
        for peer in ("A", "B"):
            network.disconnect(peer)
        assert manager.repair("t1") is placement  # location still known


def published(txn_id: str, epoch: int, sequence: int, peer: str = "Alaska") -> PublishedTransaction:
    return PublishedTransaction(txn(txn_id, peer), epoch, sequence, peer)


class TestEpochLogSince:
    """Bisection edge cases for the epoch cursor, against a linear scan."""

    def _log(self, positions) -> EpochLog:
        log = EpochLog()
        for i, (epoch, sequence) in enumerate(positions):
            log.add(published(f"t{i}", epoch, sequence))
        return log

    def test_empty_log(self):
        log = EpochLog()
        assert log.since(0) == []
        assert log.since(7) == []
        assert log.latest_epoch() == 0

    def test_cursor_at_latest_epoch_returns_nothing(self):
        log = self._log([(1, 0), (2, 1), (3, 2)])
        assert log.since(log.latest_epoch()) == []

    def test_cursor_past_the_end(self):
        log = self._log([(1, 0), (2, 1)])
        assert log.since(99) == []

    def test_epoch_boundary_is_exclusive(self):
        log = self._log([(1, 0), (2, 1), (3, 2)])
        assert [e.epoch for e in log.since(1)] == [2, 3]
        assert [e.epoch for e in log.since(0)] == [1, 2, 3]

    def test_shared_epochs_stay_together(self):
        # Multiple entries in the same epoch: a cursor at that epoch skips
        # every one of them; a cursor just below returns every one of them.
        log = self._log([(1, 0), (2, 1), (2, 2), (2, 3), (5, 4)])
        assert [e.sequence for e in log.since(1)] == [1, 2, 3, 4]
        assert [e.sequence for e in log.since(2)] == [4]

    def test_out_of_order_backfill_keeps_cursor_correct(self):
        log = self._log([(1, 0), (5, 3)])
        log.add(published("late", 3, 1))  # anti-entropy back-fill
        assert [e.epoch for e in log.since(2)] == [3, 5]

    def test_since_matches_linear_scan_on_random_logs(self):
        rng = random.Random(20260808)
        for _ in range(50):
            count = rng.randrange(0, 40)
            positions = [(rng.randrange(1, 12), sequence) for sequence in range(count)]
            rng.shuffle(positions)
            log = self._log(positions)
            entries = log.entries()
            for cursor in range(0, 14):
                expected = [e for e in entries if e.epoch > cursor]
                assert log.since(cursor) == expected


class TestMessageAccounting:
    """Bounded message trace + unbounded aggregate counters."""

    def test_counters_and_trace(self):
        network = Network(["A", "B"])
        network.record_message("A", "B", "sketch", 100)
        network.record_message("B", "A", "entries", 40)
        stats = network.message_stats()
        assert stats["messages"] == 2
        assert stats["bytes"] == 140
        assert stats["per_peer"]["A"] == {
            "sent": 1, "received": 1, "bytes_sent": 100, "bytes_received": 40,
        }
        kinds = [event.kind for event in network.message_trace()]
        assert kinds == ["sketch", "entries"]

    def test_unregistered_participants_are_allowed(self):
        # The archive is a store, not a peer, but its traffic is accounted.
        network = Network(["A"])
        network.record_message("A", "#archive", "challenge", 24)
        assert network.message_stats()["per_peer"]["#archive"]["received"] == 1

    def test_negative_size_rejected(self):
        network = Network(["A", "B"])
        with pytest.raises(NetworkError):
            network.record_message("A", "B", "sketch", -1)

    def test_trace_rolls_over_but_totals_keep_counting(self):
        network = Network(["A", "B"], trace_limit=5)
        for i in range(12):
            network.record_message("A", "B", "entries", 10)
        stats = network.message_stats()
        assert stats["messages"] == 12
        assert stats["bytes"] == 120
        assert stats["trace_retained"] == 5
        assert stats["trace_dropped"] == 7
        # The trace keeps the most recent events, not the oldest.
        assert [event.step for event in network.message_trace()] == [8, 9, 10, 11, 12]

    def test_zero_trace_limit_keeps_no_events(self):
        network = Network(["A", "B"], trace_limit=0)
        network.record_message("A", "B", "clock", 24)
        stats = network.message_stats()
        assert stats["trace_retained"] == 0
        assert stats["trace_dropped"] == 1
        assert stats["messages"] == 1

    def test_message_and_connectivity_traces_are_independent(self):
        network = Network(["A", "B"], trace_limit=3)
        network.disconnect("A")
        network.connect("A")
        for _ in range(4):
            network.record_message("A", "B", "entries", 5)
        assert network.churn_stats()["trace_retained"] == 2
        assert network.message_stats()["trace_retained"] == 3
