"""Unit tests for the simulated P2P substrate: store, network, replication."""

import pytest

from repro.core.transactions import Transaction
from repro.core.updates import Update
from repro.errors import NetworkError, PublicationError
from repro.p2p.network import Network
from repro.p2p.replication import ReplicationManager
from repro.p2p.store import UpdateStore


def txn(txn_id: str, peer: str = "Alaska") -> Transaction:
    return Transaction(txn_id, peer, (Update.insert("R", (txn_id,), origin=peer),))


class TestUpdateStore:
    def test_archive_and_retrieve(self):
        store = UpdateStore()
        store.archive([txn("t1"), txn("t2")], epoch=1, publisher="Alaska")
        assert len(store) == 2
        assert store.contains("t1")
        assert store.entry("t1").epoch == 1
        assert store.entry("t1").transaction.epoch == 1
        assert store.latest_epoch() == 1

    def test_duplicate_publication_rejected(self):
        store = UpdateStore()
        store.archive([txn("t1")], epoch=1, publisher="Alaska")
        with pytest.raises(PublicationError):
            store.archive([txn("t1")], epoch=2, publisher="Alaska")

    def test_wrong_publisher_rejected(self):
        store = UpdateStore()
        with pytest.raises(PublicationError):
            store.archive([txn("t1", peer="Beijing")], epoch=1, publisher="Alaska")

    def test_published_since(self):
        store = UpdateStore()
        store.archive([txn("t1")], epoch=1, publisher="Alaska")
        store.archive([txn("t2", "Beijing")], epoch=2, publisher="Beijing")
        store.archive([txn("t3")], epoch=3, publisher="Alaska")
        since_one = store.published_since(1)
        assert [entry.txn_id for entry in since_one] == ["t2", "t3"]
        excluding = store.published_since(0, exclude_publisher="Alaska")
        assert [entry.txn_id for entry in excluding] == ["t2"]

    def test_published_by(self):
        store = UpdateStore()
        store.archive([txn("t1")], epoch=1, publisher="Alaska")
        store.archive([txn("t2", "Beijing")], epoch=2, publisher="Beijing")
        assert [entry.txn_id for entry in store.published_by("Beijing")] == ["t2"]

    def test_unknown_entry(self):
        store = UpdateStore()
        with pytest.raises(PublicationError):
            store.entry("missing")

    def test_antecedents_map(self):
        store = UpdateStore()
        dependent = Transaction(
            "t2", "Alaska", (Update.insert("R", (2,), origin="Alaska"),), frozenset({"t1"})
        )
        store.archive([txn("t1"), dependent], epoch=1, publisher="Alaska")
        assert store.antecedents_map() == {"t1": frozenset(), "t2": frozenset({"t1"})}


class TestNetwork:
    def test_register_and_connectivity(self):
        network = Network(["A", "B"])
        assert network.peers() == {"A", "B"}
        assert network.is_online("A")
        network.disconnect("A")
        assert not network.is_online("A")
        assert network.online_peers() == {"B"}
        network.connect("A")
        assert network.is_online("A")

    def test_duplicate_registration_rejected(self):
        network = Network(["A"])
        with pytest.raises(NetworkError):
            network.register("A")

    def test_unknown_peer_rejected(self):
        network = Network()
        with pytest.raises(NetworkError):
            network.is_online("ghost")

    def test_require_online(self):
        network = Network(["A"])
        network.disconnect("A")
        with pytest.raises(NetworkError):
            network.require_online("A", "publish")

    def test_trace_records_changes_only(self):
        network = Network(["A"])
        network.connect("A")  # already online: no event
        network.disconnect("A")
        network.disconnect("A")  # no change: no event
        assert len(network.trace()) == 1
        assert network.availability() == {"A": False}


class TestReplication:
    def test_placement_prefers_other_peers(self):
        network = Network(["A", "B", "C"])
        manager = ReplicationManager(network, replication_factor=2)
        placement = manager.place("t1", publisher="A")
        assert len(placement.holders) == 2
        assert "A" not in placement.holders

    def test_placement_is_deterministic_and_cached(self):
        network = Network(["A", "B", "C"])
        manager = ReplicationManager(network, replication_factor=2)
        first = manager.place("t1", publisher="A")
        second = manager.place("t1", publisher="A")
        assert first is second

    def test_availability_under_churn(self):
        network = Network(["A", "B", "C"])
        manager = ReplicationManager(network, replication_factor=2)
        manager.place("t1", publisher="A")
        assert manager.available("t1")
        for holder in manager.placement("t1").holders:
            network.disconnect(holder)
        assert not manager.available("t1")

    def test_availability_ratio(self):
        network = Network(["A", "B", "C"])
        manager = ReplicationManager(network, replication_factor=1)
        manager.place("t1", publisher="A")
        manager.place("t2", publisher="A")
        assert manager.availability_ratio(["t1", "t2"]) == 1.0
        assert manager.availability_ratio([]) == 1.0
        assert manager.availability_ratio(["unknown"]) == 0.0

    def test_invalid_replication_factor(self):
        with pytest.raises(NetworkError):
            ReplicationManager(Network(), replication_factor=0)

    def test_single_peer_network_places_on_publisher(self):
        network = Network(["A"])
        manager = ReplicationManager(network, replication_factor=2)
        placement = manager.place("t1", publisher="A")
        assert placement.holders == ("A",)
