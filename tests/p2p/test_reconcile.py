"""The sketch-based reconciliation protocol: sessions, bytes, fallback."""

import pytest

from repro.core.transactions import Transaction
from repro.core.updates import Update
from repro.p2p.network import Network
from repro.p2p.reconcile import (
    MESSAGE_HEADER_BYTES,
    EntryCache,
    ReconcileConfig,
    ReconcileStats,
    SetReconciler,
    StoreView,
    cursor_transfer_bytes,
)
from repro.p2p.store import PublishedTransaction, UpdateStore


def entry(txn_id: str, epoch: int, sequence: int, peer: str = "Alaska") -> PublishedTransaction:
    txn = Transaction(txn_id, peer, (Update.insert("R", (txn_id,), origin=peer),), epoch=epoch)
    return PublishedTransaction(txn, epoch, sequence, peer)


def entries(count: int, start: int = 0, peer: str = "Alaska") -> list[PublishedTransaction]:
    # Epochs are 1-based in the archive; keep the helper in-domain.
    return [
        entry(f"{peer}-t{start + i}", epoch=start + i + 1, sequence=start + i, peer=peer)
        for i in range(count)
    ]


class TestEntryCache:
    def test_add_is_idempotent_by_digest(self):
        cache = EntryCache("A")
        batch = entries(3)
        assert cache.add_entries(batch) == 3
        assert cache.add_entries(batch) == 0
        assert cache.count == 3

    def test_checksum_is_incremental_xor(self):
        cache = EntryCache("A")
        batch = entries(4)
        cache.add_entries(batch)
        expected = 0
        for item in batch:
            expected ^= item.digest
        assert cache.checksum == expected

    def test_entries_since_matches_epoch_order(self):
        cache = EntryCache("A")
        cache.add_entries(entries(5))
        assert [e.epoch for e in cache.entries_since(2)] == [3, 4, 5]

    def test_clock_tracks_publishers(self):
        cache = EntryCache("A")
        cache.add_entries(entries(2, peer="Alaska") + entries(1, start=5, peer="Beijing"))
        assert cache.clock().versions == {"Alaska": 2, "Beijing": 6}

    def test_mark_complete_is_monotone(self):
        cache = EntryCache("A")
        cache.mark_complete(5)
        cache.mark_complete(3)
        assert cache.complete_until == 5

    def test_entries_for_skips_unknown_digests(self):
        cache = EntryCache("A")
        batch = entries(2)
        cache.add_entries(batch)
        got = cache.entries_for([batch[0].digest, 12345])
        assert got == [batch[0]]


class TestStoreView:
    def _store_with(self, count: int) -> UpdateStore:
        store = UpdateStore()
        for i in range(count):
            txn = Transaction(f"t{i}", "Alaska", (Update.insert("R", (i,), origin="Alaska"),))
            store.archive([txn], epoch=i + 1, publisher="Alaska")
        return store

    def test_refresh_mirrors_the_store(self):
        store = self._store_with(3)
        view = StoreView(store)
        view.refresh()
        assert view.count == 3
        assert view.complete_until == store.latest_epoch()

    def test_refresh_is_incremental_and_catches_same_epoch_batches(self):
        store = self._store_with(2)
        view = StoreView(store)
        view.refresh()
        # A second batch at the current latest epoch must still be picked up.
        txn = Transaction("late", "Alaska", (Update.insert("R", ("late",), origin="Alaska"),))
        store.archive([txn], epoch=store.latest_epoch(), publisher="Alaska")
        view.refresh()
        assert view.count == 3

    def test_store_view_never_accepts_entries(self):
        view = StoreView(self._store_with(1))
        view.refresh()
        assert view.add_entries(entries(2, start=10)) == 0
        assert view.count == 1


@pytest.mark.parametrize("algorithm", ["iblt", "bloom"])
class TestSessions:
    def _caches(self, shared: int, extra_left: int, extra_right: int):
        left = EntryCache("L")
        right = EntryCache("R")
        common = entries(shared)
        left.add_entries(common)
        right.add_entries(common)
        left.add_entries(entries(extra_left, start=100, peer="Beijing"))
        right.add_entries(entries(extra_right, start=200, peer="Crete"))
        return left, right

    def test_converged_sides_exchange_two_messages(self, algorithm):
        left, right = self._caches(10, 0, 0)
        reconciler = SetReconciler(ReconcileConfig(algorithm=algorithm))
        result = reconciler.reconcile(left, right)
        assert result.converged and result.delivered == 0
        assert reconciler.stats.messages == 2
        assert reconciler.stats.unchanged_sessions == 1

    def test_session_makes_both_sides_equal(self, algorithm):
        left, right = self._caches(20, 3, 2)
        reconciler = SetReconciler(ReconcileConfig(algorithm=algorithm))
        result = reconciler.reconcile(left, right)
        assert result.converged
        assert result.delivered_left == 2 and result.delivered_right == 3
        assert left.compact_clock().agrees_with(right.compact_clock())
        assert sorted(e.txn_id for e in left.entries()) == sorted(
            e.txn_id for e in right.entries()
        )

    def test_bytes_scale_with_diff_not_log(self, algorithm):
        """The same 5-entry diff over a 40-entry vs a 400-entry shared tail:
        watermarked sketch sessions move nearly identical byte counts, while
        a cursor replay of the tail grows ~10x."""
        def session_bytes(shared):
            left = EntryCache("L")
            right = EntryCache("R")
            common = entries(shared)
            left.add_entries(common)
            right.add_entries(common)
            # Both sides are provably complete through the shared prefix;
            # the diff lives strictly above the watermark.
            left.mark_complete(shared)
            right.mark_complete(shared)
            left.add_entries(entries(5, start=shared + 100, peer="Beijing"))
            reconciler = SetReconciler(ReconcileConfig(algorithm=algorithm))
            assert reconciler.reconcile(left, right).converged
            return reconciler.stats.bytes

        small, large = session_bytes(40), session_bytes(400)
        assert large <= small * 2
        baseline_small = cursor_transfer_bytes(entries(40))
        baseline_large = cursor_transfer_bytes(entries(400))
        assert baseline_large > baseline_small * 8

    def test_stats_account_every_message(self, algorithm):
        left, right = self._caches(5, 2, 1)
        stats = ReconcileStats()
        reconciler = SetReconciler(ReconcileConfig(algorithm=algorithm), stats=stats)
        reconciler.reconcile(left, right)
        assert stats.sessions == 1
        assert stats.messages > 2
        assert stats.bytes >= stats.messages * MESSAGE_HEADER_BYTES
        assert stats.sketch_bytes > 0
        assert stats.entry_bytes > 0
        assert stats.entries_delivered == 3

    def test_network_message_stats_are_fed(self, algorithm):
        network = Network(["L", "R"])
        left, right = self._caches(5, 1, 1)
        reconciler = SetReconciler(ReconcileConfig(algorithm=algorithm), network=network)
        reconciler.reconcile(left, right)
        stats = network.message_stats()
        assert stats["messages"] == reconciler.stats.messages
        assert stats["bytes"] == reconciler.stats.bytes
        assert stats["per_peer"]["L"]["sent"] > 0
        assert stats["per_peer"]["R"]["received"] > 0

    def test_completeness_propagates_through_sessions(self, algorithm):
        left, right = self._caches(6, 0, 2)
        right.mark_complete(5)
        reconciler = SetReconciler(ReconcileConfig(algorithm=algorithm))
        assert reconciler.reconcile(left, right).converged
        assert left.complete_until == 5

    def test_snapshot_and_since_deltas(self, algorithm):
        left, right = self._caches(4, 1, 0)
        reconciler = SetReconciler(ReconcileConfig(algorithm=algorithm))
        before = reconciler.stats.snapshot()
        reconciler.reconcile(left, right)
        delta = reconciler.stats.since(before)
        assert delta.sessions == 1
        assert delta.to_dict()["entries_delivered"] == 1


class TestGrowAndFallback:
    def test_iblt_grows_after_decode_failure(self):
        """A symmetric diff keeps the observable count difference at zero, so
        the sketch starts at the configured tiny capacity; the first attempts
        must stall and the grown retries converge without falling back."""
        left = EntryCache("L")
        right = EntryCache("R")
        left.add_entries(entries(60, peer="Beijing"))
        right.add_entries(entries(60, start=1000, peer="Crete"))
        reconciler = SetReconciler(
            ReconcileConfig(algorithm="iblt", capacity=4, growth=8, max_attempts=3)
        )
        result = reconciler.reconcile(left, right)
        assert result.converged and not result.fell_back
        assert result.attempts > 1
        assert reconciler.stats.decode_failures >= 1
        assert left.count == right.count == 120

    def test_exhausted_attempts_fall_back_to_cursor_replay(self):
        """With growth pinned low enough that every sketch attempt fails,
        the session must fall back to cursor replay and still converge —
        decode failure is a cost signal, never a correctness problem."""
        left = EntryCache("L")
        right = EntryCache("R")
        left.add_entries(entries(300, peer="Beijing"))
        # A symmetric diff keeps the count difference at zero, so the base
        # capacity stays at the configured 1 and the sketch must stall.
        right.add_entries(entries(300, start=1000, peer="Crete"))
        reconciler = SetReconciler(
            ReconcileConfig(algorithm="iblt", capacity=1, growth=2, max_attempts=1)
        )
        result = reconciler.reconcile(left, right)
        assert result.fell_back
        assert result.converged
        assert reconciler.stats.fallbacks == 1
        assert reconciler.stats.decode_failures >= 1
        assert left.compact_clock().agrees_with(right.compact_clock())
        assert left.count == right.count == 600

    def test_bloom_false_positives_are_repaired(self):
        """An undersized Bloom filter hides some diff entries behind false
        positives on the first pass; retries (or fallback) must still end
        with equal sets."""
        left = EntryCache("L")
        right = EntryCache("R")
        shared = entries(50)
        left.add_entries(shared)
        right.add_entries(shared)
        left.add_entries(entries(120, start=500, peer="Beijing"))
        right.add_entries(entries(120, start=900, peer="Crete"))
        reconciler = SetReconciler(
            ReconcileConfig(algorithm="bloom", capacity=2, growth=4, max_attempts=3)
        )
        result = reconciler.reconcile(left, right)
        assert result.converged
        assert left.compact_clock().agrees_with(right.compact_clock())

    def test_fallback_replays_from_watermark_only(self):
        left = EntryCache("L")
        right = EntryCache("R")
        shared = entries(10)
        left.add_entries(shared)
        right.add_entries(shared)
        left.mark_complete(10)
        right.mark_complete(10)
        right.add_entries(entries(3, start=20, peer="Crete"))
        reconciler = SetReconciler(
            ReconcileConfig(algorithm="iblt", capacity=1, growth=2, max_attempts=1)
        )
        before_bytes = reconciler.stats.bytes
        # Even a direct fallback ships only the tail above the watermark.
        got_left, got_right = reconciler._cursor_fallback(left, right)
        assert got_left == 3 and got_right == 0
        moved = reconciler.stats.bytes - before_bytes
        assert moved < cursor_transfer_bytes(shared + entries(3, start=20, peer="Crete"))


class TestCursorTransferBytes:
    def test_counts_request_and_batch(self):
        batch = entries(3)
        expected = (MESSAGE_HEADER_BYTES + 8) + MESSAGE_HEADER_BYTES + sum(
            e.wire_size for e in batch
        )
        assert cursor_transfer_bytes(batch) == expected

    def test_empty_replay_still_costs_an_envelope(self):
        assert cursor_transfer_bytes([]) == (MESSAGE_HEADER_BYTES + 8) + MESSAGE_HEADER_BYTES
