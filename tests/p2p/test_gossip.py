"""The epidemic gossip scheduler: convergence, determinism, repair."""

import pytest

from repro.core.transactions import Transaction
from repro.core.updates import Update
from repro.errors import SyncError
from repro.p2p.gossip import GossipCoordinator, GossipReport
from repro.p2p.network import Network
from repro.p2p.reconcile import ARCHIVE_NAME, ReconcileConfig, SessionResult
from repro.p2p.store import UpdateStore

PEERS = ["Alaska", "Beijing", "Crete", "Dakar", "Essen", "Fiji", "Galway", "Hanoi"]


def archive_batch(store: UpdateStore, count: int, publisher: str = "Alaska") -> list:
    published = []
    for _ in range(count):
        epoch = store.latest_epoch() + 1
        txn = Transaction(
            f"{publisher}-e{epoch}", publisher,
            (Update.insert("R", (epoch,), origin=publisher),),
            epoch=epoch,
        )
        published.extend(store.archive([txn], epoch=epoch, publisher=publisher))
    return published


def build(peers=PEERS, fanout=2, **config_knobs):
    network = Network(peers)
    store = UpdateStore()
    coordinator = GossipCoordinator(
        network, store, config=ReconcileConfig(**config_knobs), fanout=fanout
    )
    for peer in peers:
        coordinator.register_peer(peer)
    return network, store, coordinator


def assert_matches_archive(coordinator: GossipCoordinator, store: UpdateStore, peers):
    expected = sorted(e.digest for e in store.published_since(0))
    for peer in peers:
        got = sorted(e.digest for e in coordinator.cache(peer).entries())
        assert got == expected, f"{peer} diverges from the archive"


class TestScheduling:
    def test_fanout_must_be_positive(self):
        with pytest.raises(SyncError):
            GossipCoordinator(Network(["A"]), UpdateStore(), fanout=0)

    def test_partner_choice_is_deterministic_and_bounded(self):
        _, _, coordinator = build(fanout=2)
        online = sorted(PEERS)
        first = coordinator._partners("Alaska", online)
        assert first == coordinator._partners("Alaska", online)
        assert len(first) == 2
        assert "Alaska" not in first

    def test_partner_pool_includes_the_archive(self):
        _, _, coordinator = build(fanout=len(PEERS))
        partners = coordinator._partners("Alaska", sorted(PEERS))
        assert ARCHIVE_NAME in partners

    def test_record_published_seeds_only_known_publishers(self):
        _, store, coordinator = build()
        published = archive_batch(store, 2)
        coordinator.record_published("Alaska", published)
        coordinator.record_published("Nowhere", published)
        assert coordinator.cache("Alaska").count == 2


class TestConvergence:
    def test_all_online_peers_converge_to_the_archive(self):
        _, store, coordinator = build()
        archive_batch(store, 12)
        report = coordinator.run_until_converged()
        assert report.converged
        assert report.round_count >= 1
        assert_matches_archive(coordinator, store, PEERS)

    def test_flash_crowd_rejoin_converges_every_peer(self):
        """Half the network disconnects, the rest keeps publishing; when the
        crowd reconnects at once, anti-entropy must bring every returning
        peer up to date."""
        network, store, coordinator = build()
        offline, online = PEERS[: len(PEERS) // 2], PEERS[len(PEERS) // 2:]
        archive_batch(store, 5)
        coordinator.run_until_converged()
        for peer in offline:
            network.set_online(peer, False)
        archive_batch(store, 15, publisher=online[0])
        coordinator.run_until_converged()
        assert_matches_archive(coordinator, store, online)
        stale = sorted(e.digest for e in coordinator.cache(offline[0]).entries())
        assert len(stale) == 5  # disconnected peers saw nothing new
        for peer in offline:
            network.set_online(peer, True)
        report = coordinator.run_until_converged()
        assert report.converged
        assert_matches_archive(coordinator, store, PEERS)
        assert report.stats.entries_delivered >= 15 * len(offline)

    def test_offline_peers_are_left_alone(self):
        network, store, coordinator = build()
        network.set_online("Hanoi", False)
        archive_batch(store, 4)
        report = coordinator.run_until_converged()
        assert report.converged
        assert coordinator.cache("Hanoi").count == 0

    def test_empty_network_converges_trivially(self):
        network, store, coordinator = build()
        for peer in PEERS:
            network.set_online(peer, False)
        archive_batch(store, 3)
        report = coordinator.run_until_converged()
        assert report.converged and report.round_count == 0

    def test_runs_are_deterministic_across_coordinators(self):
        def campaign():
            network, store, coordinator = build()
            archive_batch(store, 10)
            for peer in PEERS[:3]:
                network.set_online(peer, False)
            report = coordinator.run_until_converged()
            return report.rounds, report.stats.to_dict()

        assert campaign() == campaign()


class TestRepairAndFailure:
    def test_zero_progress_round_forces_direct_archive_sessions(self):
        """If rumor-mongering delivers nothing while stale peers remain (here:
        partner choice rigged to never pick the archive among equally stale
        peers), the scheduler must repair by direct archive sessions instead
        of spinning through its round budget."""
        _, store, coordinator = build(peers=PEERS[:4], fanout=1)
        archive_batch(store, 6)
        coordinator._partners = lambda peer, online: [
            other for other in online if other != peer
        ][:1]
        report = coordinator.run_until_converged()
        assert report.converged
        assert report.round_count == 1
        assert_matches_archive(coordinator, store, PEERS[:4])

    def test_unconverged_budget_raises_sync_error(self):
        _, store, coordinator = build(peers=PEERS[:2])
        archive_batch(store, 3)
        idle = SessionResult(
            converged=False, delivered_left=0, delivered_right=0,
            attempts=0, fell_back=False,
        )
        coordinator._session = lambda peer, partner: idle
        with pytest.raises(SyncError, match="failed to converge"):
            coordinator.run_until_converged(max_rounds=2)

    def test_catch_up_is_cheap_after_convergence(self):
        _, store, coordinator = build()
        archive_batch(store, 8)
        coordinator.run_until_converged()
        before = coordinator.stats.snapshot()
        result = coordinator.catch_up("Beijing")
        delta = coordinator.stats.since(before)
        assert result.converged and result.delivered == 0
        assert delta.messages == 2  # challenge both ways, nothing else

    def test_entries_since_matches_store_cursor_after_catch_up(self):
        _, store, coordinator = build()
        archive_batch(store, 9)
        coordinator.run_until_converged()
        coordinator.catch_up("Crete")
        for epoch in (0, 4, store.latest_epoch()):
            local = [e.digest for e in coordinator.entries_since("Crete", epoch)]
            remote = [e.digest for e in store.published_since(epoch)]
            assert local == remote


class TestReporting:
    def test_round_counters_add_up(self):
        _, store, coordinator = build()
        archive_batch(store, 7)
        report = coordinator.run_until_converged()
        assert report.stats.sessions == sum(r["sessions"] for r in report.rounds)
        assert report.stats.bytes == sum(r["bytes"] for r in report.rounds)
        assert report.stats.entries_delivered == sum(
            r["entries_delivered"] for r in report.rounds
        )

    def test_report_to_dict_carries_rounds_and_stats(self):
        _, store, coordinator = build()
        archive_batch(store, 3)
        payload = coordinator.run_until_converged().to_dict()
        assert payload["converged"] is True
        assert payload["round_count"] == len(payload["rounds"])
        assert payload["sessions"] > 0 and payload["bytes"] > 0

    def test_empty_report_defaults(self):
        report = GossipReport()
        assert report.to_dict() == {"rounds": [], "round_count": 0, "converged": True}

    def test_summary_reports_deltas(self):
        _, store, coordinator = build()
        archive_batch(store, 4)
        coordinator.run_until_converged()
        before = coordinator.stats.snapshot()
        rounds_before = coordinator.rounds_run
        archive_batch(store, 2)
        coordinator.run_until_converged()
        summary = coordinator.summary(since=before, rounds_before=rounds_before)
        assert summary["rounds"] >= 1
        assert summary["entries_delivered"] >= 2 * len(PEERS)
