"""The declarative network-spec language: parsing, validation, round-trips."""

import pytest

from repro import CDSS, SpecError
from repro.api.spec import NetworkSpec, parse_network_spec, spec_of
from repro.core.mapping import mapping_from_tgd, mapping_to_tgd
from repro.errors import DatalogParseError, MappingError
from repro.workloads.bioinformatics import FIGURE2_SPEC

TWO_PEER_SPEC = """
network two-peer
peer Source schema S
  relation R(a, b) key(a)
peer Target schema T
  relation R(a, b) key(a)
  trust Source 2
  trust * 0
mapping [M_ST] @Target.R(x, y) :- @Source.R(x, y).
"""


class TestTextParsing:
    def test_parses_peers_relations_trust_and_mappings(self):
        spec = parse_network_spec(TWO_PEER_SPEC)
        assert spec.name == "two-peer"
        assert set(spec.peers) == {"Source", "Target"}
        source = spec.peers["Source"]
        assert source.schema_name == "S"
        assert source.relations == {"R": ["a", "b"]}
        assert source.keys == {"R": ["a"]}
        target = spec.peers["Target"]
        assert target.trust == {"Source": 2, "*": 0}
        assert len(spec.mappings) == 1
        mapping = spec.mappings[0]
        assert mapping.mapping_id == "M_ST"
        assert mapping.source_peer == "Source"
        assert mapping.target_peer == "Target"

    def test_multiline_mapping_and_comments(self):
        spec = parse_network_spec(
            """
            # comment line
            peer A
              relation O(org, oid) key(org)
              relation P(prot, pid) key(prot)
              relation S(oid, pid, seq)
            peer C
              relation OPS(org, prot, seq)  % trailing comment style
            mapping [M_AC] @C.OPS(org, prot, seq) :-
                @A.O(org, oid), @A.P(prot, pid),
                @A.S(oid, pid, seq).
            """
        )
        assert len(spec.mappings) == 1
        assert len(spec.mappings[0].body) == 3

    def test_figure2_spec_parses(self):
        spec = parse_network_spec(FIGURE2_SPEC)
        assert set(spec.peers) == {"Alaska", "Beijing", "Crete", "Dresden"}
        assert len(spec.mappings) == 10
        split = next(m for m in spec.mappings if m.mapping_id == "M_CA")
        assert len(split.heads) == 3
        assert split.existential_variables()  # oid/pid become labelled nulls

    @pytest.mark.parametrize(
        "text, fragment",
        [
            ("peer A\n  relation R(a)\ngarbage here", "unrecognised"),
            ("peer A\n  relation R(a)\npeer A\n  relation R(a)", "declared twice"),
            ("relation R(a)", "outside a peer section"),
            ("peer A\n  trust B two", "malformed trust"),
            ("peer A\n  relation R(a)\nmapping [M] @B.R(x) :- @A.R(x).", "unknown"),
            ("peer A\n  relation R(a)\nmapping [M] @A.R(x) :- @A.R(x)", "missing its closing period"),
        ],
    )
    def test_malformed_specs_raise_spec_errors(self, text, fragment):
        with pytest.raises(SpecError, match=fragment):
            parse_network_spec(text)

    def test_unknown_trust_peer_rejected(self):
        with pytest.raises(SpecError, match="unknown peer 'Ghost'"):
            parse_network_spec(
                "peer A\n  relation R(a)\n  trust Ghost 2"
            )

    def test_arity_mismatch_rejected(self):
        with pytest.raises(MappingError, match="arity"):
            parse_network_spec(
                """
                peer A
                  relation R(a, b)
                peer B
                  relation R(a, b)
                mapping [M] @B.R(x) :- @A.R(x, y).
                """
            )


class TestDictSpecs:
    def test_dict_spec_builds(self):
        cdss = CDSS.from_spec(
            {
                "name": "dicty",
                "peers": {
                    "Source": {"relations": {"R": ["a", "b"]}, "keys": {"R": ["a"]}},
                    "Target": {"relations": {"R": ["a", "b"]}, "trust": {"Source": 2, "*": 0}},
                },
                "mappings": ["[M_ST] @Target.R(x, y) :- @Source.R(x, y)."],
            }
        )
        assert cdss.name == "dicty"
        assert cdss.catalog.peer_names() == ["Source", "Target"]
        assert cdss.peer("Target").trust.peer_priorities == {"Source": 2}
        assert cdss.peer("Target").trust.default_priority == 0

    def test_dict_spec_needs_peers(self):
        with pytest.raises(SpecError, match="peers"):
            parse_network_spec({"mappings": []})

    def test_unsupported_source_type(self):
        with pytest.raises(SpecError, match="cannot parse"):
            parse_network_spec(42)


class TestRoundTrip:
    def test_text_to_cdss_to_text(self):
        cdss = CDSS.from_spec(TWO_PEER_SPEC)
        recovered = cdss.to_spec()
        rebuilt = CDSS.from_spec(recovered.to_text())
        assert rebuilt.to_spec().to_dict() == recovered.to_dict()

    def test_figure2_round_trip_preserves_everything(self):
        cdss = CDSS.from_spec(FIGURE2_SPEC)
        spec = cdss.to_spec()
        rebuilt = CDSS.from_spec(spec)
        assert rebuilt.catalog.peer_names() == cdss.catalog.peer_names()
        assert {m.mapping_id for m in rebuilt.catalog.mappings()} == {
            m.mapping_id for m in cdss.catalog.mappings()
        }
        for name in cdss.catalog.peer_names():
            original, copy = cdss.peer(name), rebuilt.peer(name)
            assert copy.schema == original.schema
            assert copy.trust.peer_priorities == original.trust.peer_priorities
            assert copy.trust.default_priority == original.trust.default_priority
        # The mapping structure itself survives, atom for atom.
        for mapping in cdss.catalog.mappings():
            assert rebuilt.catalog.mapping(mapping.mapping_id) == mapping

    def test_trust_conditions_are_not_serializable(self):
        from repro.core.trust import TrustCondition

        cdss = CDSS.from_spec(TWO_PEER_SPEC)
        cdss.peer("Target").trust.add_condition(
            TrustCondition(priority=5, predicate=lambda row: True)
        )
        with pytest.raises(SpecError, match="trust conditions"):
            cdss.to_spec()


class TestTgdHelpers:
    def test_mapping_tgd_round_trip(self):
        mapping = mapping_from_tgd(
            "[M_CA] @Alaska.O(org, oid), @Alaska.P(prot, pid) :- @Crete.OPS(org, prot, seq)."
        )
        assert mapping.source_peer == "Crete"
        assert mapping.target_peer == "Alaska"
        assert mapping_from_tgd(mapping_to_tgd(mapping)) == mapping

    def test_tgd_requires_label_or_explicit_id(self):
        with pytest.raises(MappingError, match="label"):
            mapping_from_tgd("@B.R(x) :- @A.R(x).")

    def test_tgd_requires_qualified_atoms(self):
        with pytest.raises(MappingError, match="peer-qualified"):
            mapping_from_tgd("[M] R(x) :- @A.R(x).")

    def test_tgd_single_peer_per_side(self):
        with pytest.raises(MappingError, match="exactly one"):
            mapping_from_tgd("[M] @B.R(x) :- @A.R(x), @C.S(x).")

    def test_tgd_constants_survive_round_trip(self):
        mapping = mapping_from_tgd(
            "[M] @B.R(x, 'hello world', 3, true, null) :- @A.R(x)."
        )
        assert mapping_from_tgd(mapping_to_tgd(mapping)) == mapping

    def test_comment_markers_inside_string_constants_survive(self):
        # '#' and '%' inside quoted constants are content, not comments.
        cdss = CDSS.from_spec(
            "peer A\n  relation R(a, b)\npeer B\n  relation R(a, b)\n"
            "mapping [M] @B.R(x, '#tag %50') :- @A.R(x, '#tag %50')."
        )
        rebuilt = CDSS.from_spec(cdss.to_spec().to_text())
        assert rebuilt.catalog.mapping("M") == cdss.catalog.mapping("M")


class TestStoreSection:
    DISTRIBUTED_SPEC = TWO_PEER_SPEC.replace(
        "network two-peer",
        "network two-peer\nstore distributed shards 4 replication 2 write_quorum 2",
    )

    def test_parses_store_declaration(self):
        spec = parse_network_spec(self.DISTRIBUTED_SPEC)
        assert spec.store is not None
        assert spec.store.kind == "distributed"
        assert spec.store.shards == 4
        assert spec.store.replication == 2
        assert spec.store.write_quorum == 2
        assert spec.store.read_quorum is None  # unset knobs defer to config

    def test_store_round_trips_through_text_and_dict(self):
        spec = parse_network_spec(self.DISTRIBUTED_SPEC)
        assert "store distributed shards 4 replication 2 write_quorum 2" in spec.to_text()
        reparsed = parse_network_spec(spec.to_text())
        assert reparsed.to_dict() == spec.to_dict()
        assert parse_network_spec(spec.to_dict()).to_dict() == spec.to_dict()

    def test_dict_spec_accepts_store_entry(self):
        spec = parse_network_spec(
            {
                "peers": {"P": {"relations": {"R": ["a"]}}},
                "store": {"kind": "distributed", "shards": 2},
            }
        )
        assert spec.store.kind == "distributed" and spec.store.shards == 2

    def test_from_spec_builds_a_distributed_store(self):
        from repro.p2p.distributed import DistributedUpdateStore

        cdss = CDSS.from_spec(self.DISTRIBUTED_SPEC)
        assert isinstance(cdss.store, DistributedUpdateStore)
        assert cdss.store.shard_count == 4
        assert cdss.store.write_quorum == 2

    def test_to_spec_recovers_store_section(self):
        cdss = CDSS.from_spec(self.DISTRIBUTED_SPEC)
        recovered = cdss.to_spec()
        assert recovered.store is not None
        assert recovered.store.kind == "distributed"
        assert recovered.store.shards == 4
        # A centralized system has no store line at all.
        assert CDSS.from_spec(TWO_PEER_SPEC).to_spec().store is None

    def test_store_validation(self):
        with pytest.raises(SpecError):
            parse_network_spec(
                TWO_PEER_SPEC.replace("network two-peer", "network two-peer\nstore clustered")
            )
        with pytest.raises(SpecError):
            parse_network_spec(
                TWO_PEER_SPEC.replace(
                    "network two-peer",
                    "network two-peer\nstore distributed replication 2 read_quorum 3",
                )
            )
        with pytest.raises(SpecError):
            parse_network_spec(
                TWO_PEER_SPEC.replace(
                    "network two-peer",
                    "network two-peer\nstore distributed shards 4\nstore centralized",
                )
            )

    def test_store_must_precede_peer_sections(self):
        with pytest.raises(SpecError):
            parse_network_spec(TWO_PEER_SPEC + "\nstore distributed\n")

    def test_quorum_without_replication_defers_to_config(self):
        """A quorum knob without a replication knob is not judged against the
        default factor at parse time; the merged StoreConfig decides."""
        from repro.config import ConfigurationError, StoreConfig, SystemConfig

        text = TWO_PEER_SPEC.replace(
            "network two-peer",
            "network two-peer\nstore distributed write_quorum 3",
        )
        spec = parse_network_spec(text)  # parses fine
        cdss = CDSS.from_spec(
            spec, config=SystemConfig(store=StoreConfig(replication_factor=4))
        )
        assert cdss.store.write_quorum == 3
        assert cdss.store.replication_factor == 4
        with pytest.raises(ConfigurationError):
            CDSS.from_spec(spec)  # default factor 2 cannot satisfy quorum 3
