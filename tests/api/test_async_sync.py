"""The pipelined async sync runtime, the latency model, and the sync fixes.

Covers the tentpole and its satellites end to end: the async scheduler
produces reports bit-identical to the serial loop while finishing in less
virtual time, bounded delivery queues apply backpressure, the seeded
latency model is deterministic, ``SyncError`` carries the partial report,
``SyncReport`` dedup is order-preserving, and the quiescent final round
skips the gossip anti-entropy phase.
"""

import json
import time
from dataclasses import replace

import pytest

from repro.api.async_sync import (
    AsyncSyncRuntime,
    DeliveryQueue,
    VirtualTimeEventLoop,
    async_synchronize,
)
from repro.api.spec import SyncSpec, parse_network_spec, sync_spec_of
from repro.api.sync import SyncReport, SyncRound
from repro.config import StoreConfig, SystemConfig
from repro.core.mapping import join_mapping
from repro.core.schema import PeerSchema
from repro.core.system import CDSS
from repro.core.trust import TrustPolicy
from repro.errors import ConfigurationError, NetworkError, SpecError, SyncError
from repro.p2p.network import LatencyModel, Network, VirtualClock

PEERS = ("Alice", "Bob", "Carol")


def build_system(
    runtime: str = "serial",
    backend: str = "centralized",
    sync_mode: str = "cursor",
    **store_knobs,
) -> CDSS:
    """A three-peer chain Alice -> Bob -> Carol with full trust."""
    store = StoreConfig(
        backend=backend, sync_mode=sync_mode, sync_runtime=runtime, **store_knobs
    )
    cdss = CDSS(replace(SystemConfig.default(), store=store))
    priorities = {"Alice": 10, "Bob": 9, "Carol": 8}
    for name in PEERS:
        cdss.add_peer(
            name,
            PeerSchema.build(name[0], {"R": ["a", "b"]}, {"R": ["a"]}),
            TrustPolicy.trust_only(name, priorities),
        )
    cdss.add_mapping(join_mapping("M_AB", "Alice", "Bob", "R(a, b)", ["R(a, b)"]))
    cdss.add_mapping(join_mapping("M_BC", "Bob", "Carol", "R(a, b)", ["R(a, b)"]))
    return cdss


def canonical(report: SyncReport) -> str:
    """The report as JSON, minus the runtime-specific scheduler accounting."""
    data = report.to_dict()
    data.pop("runtime", None)
    return json.dumps(data, sort_keys=True, default=str)


class TestVirtualClock:
    def test_advances_and_never_rewinds(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        assert clock.advance(1.5) == 1.5
        assert clock.advance_to(1.0) == 1.5  # stays put, never backwards
        assert clock.advance_to(4.0) == 4.0
        with pytest.raises(NetworkError):
            clock.advance(-0.1)


class TestLatencyModel:
    def test_delays_are_deterministic_and_seeded(self):
        model = LatencyModel(seed=3)
        again = LatencyModel(seed=3)
        other = LatencyModel(seed=4)
        draws = [model.delay("a", "b", 100, i) for i in range(32)]
        assert draws == [again.delay("a", "b", 100, i) for i in range(32)]
        assert draws != [other.delay("a", "b", 100, i) for i in range(32)]

    def test_delay_components(self):
        # No jitter, no spikes: delay is exactly base + size/bandwidth.
        model = LatencyModel(base_delay=0.01, jitter=0.0, bandwidth=1000.0,
                             spike_probability=0.0)
        assert model.delay("a", "b", 500, 0) == pytest.approx(0.01 + 0.5)
        # Certain spikes add spike_factor * base.
        spiky = LatencyModel(base_delay=0.01, jitter=0.0, bandwidth=1e9,
                             spike_probability=1.0, spike_factor=4.0)
        assert spiky.delay("a", "b", 0, 0) == pytest.approx(0.01 * 5)

    def test_spikes_reorder_messages_on_a_link(self):
        # With spikes on, some later message must arrive before an earlier
        # one: send i at virtual time i*eps, arrival = send + delay.
        model = LatencyModel(seed=1, spike_probability=0.3)
        arrivals = [i * 1e-6 + model.delay("a", "b", 64, i) for i in range(64)]
        assert arrivals != sorted(arrivals)

    def test_validation(self):
        with pytest.raises(NetworkError):
            LatencyModel(base_delay=-1.0)
        with pytest.raises(NetworkError):
            LatencyModel(base_delay=0.001, jitter=0.002)
        with pytest.raises(NetworkError):
            LatencyModel(bandwidth=0.0)
        with pytest.raises(NetworkError):
            LatencyModel(spike_probability=1.5)

    def test_network_transmit_advances_serial_clock(self):
        network = Network(["a", "b"])
        assert network.transmit("a", "b", "test", 10) == 0.0  # no model: free
        network.set_latency_model(LatencyModel(seed=0))
        first = network.transmit("a", "b", "test", 10)
        assert first > 0.0
        assert network.clock.now == pytest.approx(first)
        # advance=False computes the delay but leaves the clock alone.
        second = network.transmit("a", "b", "test", 10, advance=False)
        assert second > 0.0
        assert network.clock.now == pytest.approx(first)
        assert network.message_stats()["messages"] == 3


class TestVirtualTimeEventLoop:
    def test_sleep_costs_virtual_not_wall_time(self):
        import asyncio

        async def nap():
            await asyncio.sleep(500.0)
            return asyncio.get_running_loop().time()

        loop = VirtualTimeEventLoop()
        started = time.monotonic()
        try:
            woke = loop.run_until_complete(nap())
        finally:
            loop.close()
        assert woke >= 500.0
        assert time.monotonic() - started < 5.0  # jumped, not slept

    def test_overlapped_sleeps_cost_the_longest(self):
        import asyncio

        async def nap_all():
            loop = asyncio.get_running_loop()
            started = loop.time()
            await asyncio.gather(*(asyncio.sleep(t) for t in (1.0, 2.0, 3.0)))
            return loop.time() - started

        loop = VirtualTimeEventLoop()
        try:
            elapsed = loop.run_until_complete(nap_all())
        finally:
            loop.close()
        assert elapsed == pytest.approx(3.0)


class TestAsyncMatchesSerial:
    @pytest.mark.parametrize("backend", ["centralized", "distributed"])
    @pytest.mark.parametrize("sync_mode", ["cursor", "gossip"])
    def test_reports_and_instances_are_identical(self, backend, sync_mode):
        def run(runtime):
            cdss = build_system(runtime, backend, sync_mode)
            cdss.network.set_latency_model(LatencyModel(seed=7))
            cdss.peer("Alice").insert("R", (1, "x"))
            cdss.peer("Bob").insert("R", (2, "y"))
            report = cdss.sync()
            snapshot = {
                name: sorted(map(repr, cdss.peer(name).instance.snapshot().get("R", ())))
                for name in PEERS
            }
            return report, snapshot

        serial_report, serial_snapshot = run("serial")
        async_report, async_snapshot = run("async")
        assert canonical(serial_report) == canonical(async_report)
        assert serial_snapshot == async_snapshot
        assert serial_report.runtime is None
        assert async_report.runtime["mode"] == "async"

    def test_async_run_is_deterministic(self):
        def run():
            cdss = build_system("async", "distributed", "gossip")
            cdss.network.set_latency_model(LatencyModel(seed=11))
            cdss.peer("Alice").insert("R", (5, "p"))
            report = cdss.sync()
            return report.to_dict(), cdss.network.clock.now

        first, first_clock = run()
        second, second_clock = run()
        assert json.dumps(first, sort_keys=True, default=str) == json.dumps(
            second, sort_keys=True, default=str
        )
        assert first_clock == second_clock

    def test_async_overlap_beats_serial_virtual_time(self):
        def run(runtime):
            cdss = build_system(runtime)
            cdss.network.set_latency_model(LatencyModel(seed=7))
            for name in PEERS:
                cdss.peer(name).insert("R", (hash(name) % 97, name.lower()))
            cdss.sync()
            return cdss.network.clock.now

        assert run("async") < run("serial")

    def test_runtime_accounting_is_reported(self):
        cdss = build_system("async", "distributed")
        cdss.network.set_latency_model(LatencyModel(seed=7))
        cdss.peer("Alice").insert("R", (1, "x"))
        report = cdss.sync()
        accounting = report.runtime
        assert accounting["workers"] == cdss.config.store.sync_workers
        assert accounting["queue_depth"] == cdss.config.store.sync_queue_depth
        assert accounting["transfers"] > 0
        assert accounting["virtual_seconds"] > 0.0
        assert 1 <= accounting["max_in_flight"] <= accounting["workers"]
        assert accounting == report.to_dict()["runtime"]

    def test_per_call_runtime_override(self):
        cdss = build_system("serial")
        cdss.peer("Alice").insert("R", (1, "x"))
        report = cdss.sync(runtime="async")
        assert report.converged and report.runtime["mode"] == "async"
        with pytest.raises(ConfigurationError):
            cdss.sync(runtime="threads")


class TestAdmissionControl:
    def test_worker_semaphore_caps_in_flight_transfers(self):
        cdss = build_system("async", sync_workers=2)
        cdss.network.set_latency_model(LatencyModel(seed=7))
        for name in PEERS:
            cdss.peer(name).insert("R", (hash(name) % 89, name.lower()))
        report = cdss.sync()
        assert report.runtime["max_in_flight"] <= 2

    def test_bounded_queue_caps_in_flight_work_per_peer(self):
        """A bounded DeliveryQueue never holds more than its depth; extra
        producers stall on ``put`` (counted backpressure) until the consumer
        drains, so a flooded peer slows its producers instead of buffering
        without bound."""
        import asyncio

        async def flood():
            queue = DeliveryQueue("victim", depth=2)
            consumed = []

            async def consumer():
                while True:
                    item = await queue.get()
                    await asyncio.sleep(0.01)  # slow receiver
                    consumed.append(item)
                    queue.task_done()

            worker = asyncio.ensure_future(consumer())
            await asyncio.gather(
                *(queue.put(("src", "kind", i)) for i in range(10))
            )
            await queue.join()
            worker.cancel()
            return queue, consumed

        loop = VirtualTimeEventLoop()
        try:
            queue, consumed = loop.run_until_complete(flood())
        finally:
            loop.close()
        assert len(consumed) == 10
        assert queue.max_depth_seen <= 2  # the bound held
        assert queue.stalls >= 8  # producers had to wait for drain

    def test_backpressure_stalls_surface_in_the_report(self):
        cdss = build_system(
            "async", "distributed", sync_workers=16, sync_queue_depth=1,
            replication_factor=3, shard_count=1,
        )
        cdss.network.set_latency_model(LatencyModel(seed=7))
        for name in PEERS:
            for row in range(4):
                cdss.peer(name).insert("R", (hash((name, row)) % 997, name.lower()))
        report = cdss.sync()
        assert report.converged
        assert report.runtime["max_queue_depth_seen"] <= 1

    def test_worker_and_depth_floors_are_validated(self):
        with pytest.raises(ConfigurationError):
            StoreConfig(sync_runtime="turbo")
        with pytest.raises(ConfigurationError):
            StoreConfig(sync_workers=0)
        with pytest.raises(ConfigurationError):
            StoreConfig(sync_queue_depth=0)
        cdss = build_system()
        with pytest.raises(SyncError):
            async_synchronize(cdss, workers=0)
        with pytest.raises(SyncError):
            async_synchronize(cdss, queue_depth=0)


class TestSpecRoundTrip:
    def test_sync_line_accepts_runtime_knobs(self):
        spec = parse_network_spec(
            "network demo\n"
            "sync cursor runtime async workers 4\n"
            "peer P\n"
            "  relation R(a, b) key(a)\n"
        )
        assert spec.sync.mode == "cursor"
        assert spec.sync.runtime == "async" and spec.sync.workers == 4
        assert "runtime async workers 4" in spec.sync.to_text_line()

    def test_gossip_line_combines_with_runtime(self):
        sync = SyncSpec(mode="gossip", fanout=3, runtime="async", workers=2)
        sync.validate()
        line = sync.to_text_line()
        assert line == "sync gossip fanout 3 runtime async workers 2"

    def test_cursor_still_rejects_gossip_knobs(self):
        with pytest.raises(SpecError):
            SyncSpec(mode="cursor", fanout=2).validate()
        with pytest.raises(SpecError):
            SyncSpec(mode="cursor", runtime="turbo").validate()
        with pytest.raises(SpecError):
            SyncSpec(mode="cursor", workers=0).validate()

    def test_builder_wires_runtime_into_store_config(self):
        from repro.api import NetworkBuilder

        builder = NetworkBuilder("demo")
        builder.peer("P").relation("R", "a", "b", key=["a"])
        builder.sync("cursor", runtime="async", workers=3)
        cdss = builder.build()
        assert cdss.config.store.sync_runtime == "async"
        assert cdss.config.store.sync_workers == 3

    def test_sync_spec_of_pins_async_runtime(self):
        serial = build_system("serial")
        assert sync_spec_of(serial) is None
        on_async = build_system("async", sync_workers=5)
        recovered = sync_spec_of(on_async)
        assert recovered.mode == "cursor"
        assert recovered.runtime == "async" and recovered.workers == 5
        gossip = build_system("async", sync_mode="gossip")
        recovered = sync_spec_of(gossip)
        assert recovered.mode == "gossip" and recovered.runtime == "async"
        # And the full system spec round-trips through text.
        text = on_async.to_spec().to_text()
        assert parse_network_spec(text).sync.runtime == "async"


class TestSyncErrorReport:
    @pytest.mark.parametrize("runtime", ["serial", "async"])
    def test_partial_report_is_attached_at_max_rounds(self, runtime):
        cdss = build_system(runtime)
        cdss.peer("Alice").insert("R", (1, "x"))
        with pytest.raises(SyncError) as excinfo:
            cdss.sync(max_rounds=1)  # publish round can never be quiescent
        report = excinfo.value.report
        assert isinstance(report, SyncReport)
        assert not report.converged
        assert report.round_count == 1
        assert report.published_transactions == 1
        # The partial report is finalized: conflicts and decisions are
        # queryable exactly as on the success path.
        assert set(report.open_conflicts) == set(PEERS)
        assert report.to_dict()["converged"] is False

    def test_no_peers_error_has_no_report(self):
        cdss = CDSS()
        with pytest.raises(SyncError) as excinfo:
            cdss.sync()
        assert excinfo.value.report is None


class TestReportDeduplication:
    def _many_round_report(self, rounds=200):
        """A report whose every round repeats decisions and offline peers."""

        class FakeOutcome:
            def __init__(self, index):
                self.peer = "P"
                self.accepted = [f"t{index}", "t-dup", f"t{index}"]
                self.rejected = []
                self.deferred = []
                self.pending = []

            def to_dict(self):
                return {}

        report = SyncReport(peers=["P", "Q"])
        for index in range(rounds):
            round_ = SyncRound(index=index + 1)
            round_.reconciled = [FakeOutcome(index % 50)]
            round_.skipped_offline = ["Q", "P" if index % 2 else "Q"]
            report.rounds.append(round_)
        return report

    def test_decisions_dedup_preserves_first_seen_order(self):
        report = self._many_round_report()
        accepted = report.accepted("P")
        assert accepted == ["t0", "t-dup"] + [f"t{i}" for i in range(1, 50)]
        assert len(accepted) == len(set(accepted))

    def test_skipped_offline_dedup_preserves_first_seen_order(self):
        report = self._many_round_report()
        assert report.skipped_offline == ["Q", "P"]

    def test_real_sync_decisions_have_no_duplicates(self):
        cdss = build_system()
        cdss.peer("Alice").insert("R", (1, "x"))
        cdss.peer("Alice").insert("R", (2, "y"))
        report = cdss.sync()
        for peer in PEERS:
            for kind in (report.accepted, report.rejected, report.deferred):
                ids = kind(peer)
                assert len(ids) == len(set(ids))


class TestGossipPhaseSkip:
    def test_quiescent_final_round_moves_no_gossip_bytes(self):
        cdss = build_system(sync_mode="gossip")
        cdss.peer("Alice").insert("R", (1, "x"))
        report = cdss.sync()
        assert report.converged
        rounds_after_sync = cdss.gossip.rounds_run
        # A fully quiescent extra round: nothing published, so the gossip
        # anti-entropy phase is skipped outright — no epidemic round runs
        # and the only traffic is reconcile's cheap per-peer catch-up.
        before = cdss.network.message_stats()
        round_ = cdss.sync_round()
        after = cdss.network.message_stats()
        assert round_.is_quiescent()
        assert cdss.gossip.rounds_run == rounds_after_sync
        gossip_delta = after["bytes"] - before["bytes"]
        messages_delta = after["messages"] - before["messages"]
        # Exactly one catch-up session (two challenge messages) per online
        # peer; a gossip fan-out would have moved strictly more.
        assert messages_delta == 2 * len(PEERS)
        assert gossip_delta == sum(
            event.size
            for event in cdss.network.message_trace()[-messages_delta:]
            if event.kind.startswith("challenge")
        )

    def test_stale_reconnected_peer_still_catches_up(self):
        cdss = build_system(sync_mode="gossip")
        cdss.peer("Alice").insert("R", (1, "x"))
        cdss.sync()
        cdss.set_online("Carol", False)
        cdss.peer("Alice").insert("R", (2, "y"))
        report = cdss.sync()
        assert report.skipped_offline == ["Carol"]
        cdss.set_online("Carol", True)
        rounds_before = cdss.gossip.rounds_run
        report = cdss.sync()
        assert report.converged
        # Nothing was published, so no epidemic round ran; Carol still got
        # the missed entries via reconcile's direct archive catch-up.
        assert cdss.gossip.rounds_run == rounds_before
        carol = cdss.peer("Carol").instance.snapshot().get("R", frozenset())
        assert len(carol) == 2
