"""sync() orchestration and the ad-hoc query API.

Includes the seed-equivalence check the redesign promises: building the
Figure-2 network from its textual spec and running a single ``sync()``
reproduces exactly the peer snapshots of the hand-wired network driven by
manual publish/reconcile loops.
"""

import pytest

from repro import CDSS, PeerSchema, SyncError, TrustPolicy
from repro.core.mapping import identity_mapping, join_mapping, split_mapping
from repro.errors import PeerError, UnknownRelationError
from repro.workloads.bioinformatics import (
    BioDataGenerator,
    FIGURE2_SPEC,
    build_figure2_network,
    crete_trust_policy,
    sigma1_schema,
    sigma2_schema,
)


def _load_figure2_data(cdss: CDSS) -> None:
    """The same deterministic workload at both networks under comparison."""
    generator = BioDataGenerator(seed=23)
    generator.load_sigma1(
        cdss.peer("Alaska"), organisms=5, proteins=6, sequences_per_pair=0.5
    )
    generator.load_sigma2(cdss.peer("Dresden"), pairs=4)
    cdss.import_existing_data("Alaska")
    cdss.import_existing_data("Dresden")
    generator.insertion_transactions(cdss.peer("Beijing"), count=3, start_index=200)


def _hand_wired_figure2() -> CDSS:
    """The Figure-2 network exactly as the seed wired it, imperatively."""
    cdss = CDSS()
    cdss.add_peer("Alaska", sigma1_schema(), TrustPolicy.trust_all("Alaska"))
    cdss.add_peer("Beijing", sigma1_schema(), TrustPolicy.trust_all("Beijing"))
    cdss.add_peer("Crete", sigma2_schema(), crete_trust_policy())
    cdss.add_peer("Dresden", sigma2_schema(), TrustPolicy.trust_all("Dresden"))
    sigma1 = cdss.peer("Alaska").schema.relations
    sigma2 = cdss.peer("Crete").schema.relations
    cdss.add_mappings(identity_mapping("M_AB", "Alaska", "Beijing", sigma1))
    cdss.add_mappings(identity_mapping("M_BA", "Beijing", "Alaska", sigma1))
    cdss.add_mappings(identity_mapping("M_CD", "Crete", "Dresden", sigma2))
    cdss.add_mappings(identity_mapping("M_DC", "Dresden", "Crete", sigma2))
    cdss.add_mapping(
        join_mapping("M_AC", "Alaska", "Crete", "OPS(org, prot, seq)",
                     ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"])
    )
    cdss.add_mapping(
        split_mapping("M_CA", "Crete", "Alaska",
                      ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
                      "OPS(org, prot, seq)")
    )
    return cdss


class TestSeedEquivalence:
    def test_from_spec_plus_sync_matches_manual_loops(self):
        manual = _hand_wired_figure2()
        _load_figure2_data(manual)
        for name in manual.catalog.peer_names():
            manual.publish(name)
        for name in manual.catalog.peer_names():
            manual.reconcile(name)

        declarative = CDSS.from_spec(FIGURE2_SPEC)
        _load_figure2_data(declarative)
        report = declarative.sync()
        assert report.converged

        for name in manual.catalog.peer_names():
            assert declarative.peer_snapshot(name) == manual.peer_snapshot(name), name


class TestSync:
    def test_sync_reaches_quiescence_and_reports(self, two_peer_system):
        two_peer_system.peer("Source").insert("R", (1, "x"))
        report = two_peer_system.sync()
        assert report.converged
        assert report.round_count == 2  # one working round + one quiescent check
        assert report.rounds[-1].is_quiescent()
        assert report.published_transactions == 1
        assert report.accepted("Target") == ["Source-T1"]
        assert report.open_conflicts == {"Source": 0, "Target": 0}
        serialized = report.to_dict()
        assert serialized["converged"] is True
        assert serialized["decisions"]["Target"]["accepted"] == 1

    def test_sync_on_idle_network_is_single_quiescent_round(self, two_peer_system):
        report = two_peer_system.sync()
        assert report.converged and report.round_count == 1

    def test_sync_subset_restricts_participants(self, figure2):
        figure2.alaska.insert("O", ("E. coli", 1))
        report = figure2.cdss.sync(peers=["Alaska", "Beijing"])
        assert set(report.peers) == {"Alaska", "Beijing"}
        assert figure2.beijing.instance.count("O") == 1
        # Dresden did not participate, so nothing reached it yet.
        assert figure2.dresden.instance.count("OPS") == 0

    def test_sync_skips_and_reports_offline_peers(self, figure2):
        cdss = figure2.cdss
        figure2.beijing.insert("O", ("M. musculus", 2))
        cdss.sync(peers=["Beijing"])
        cdss.set_online("Beijing", False)
        cdss.set_online("Crete", False)
        report = cdss.sync()
        assert set(report.skipped_offline) == {"Beijing", "Crete"}
        assert set(report.to_dict()["skipped_offline"]) == {"Beijing", "Crete"}
        # Alaska still received Beijing's archived update.
        assert any(values[0] == "M. musculus" for values in figure2.alaska.tuples("O"))

    def test_sync_unknown_peer_rejected(self, two_peer_system):
        with pytest.raises(PeerError, match="Ghost"):
            two_peer_system.sync(peers=["Ghost"])

    def test_sync_round_is_one_pass(self, two_peer_system):
        two_peer_system.peer("Source").insert("R", (1, "x"))
        round_ = two_peer_system.sync_round()
        assert round_.published_transactions == 1
        assert not round_.is_quiescent()
        assert two_peer_system.sync_round().is_quiescent()

    def test_sync_max_rounds_exhaustion_raises(self, two_peer_system):
        two_peer_system.peer("Source").insert("R", (1, "x"))
        with pytest.raises(SyncError, match="quiescence"):
            two_peer_system.sync(max_rounds=0)

    def test_sync_converges_with_deferred_conflicts_open(self, figure2):
        cdss = figure2.cdss
        for peer, sequence in ((figure2.beijing, "AAAA"), (figure2.alaska, "CCCC")):
            builder = peer.new_transaction()
            builder.insert("O", ("S. cerevisiae", 5))
            builder.insert("P", ("hsp70", 14))
            builder.insert("S", (5, 14, sequence))
            peer.commit(builder)
        report = cdss.sync()
        # Dresden trusts both equally: the conflict is deferred, not a livelock.
        assert report.converged
        assert report.open_conflicts["Dresden"] == 1
        assert len(report.deferred("Dresden")) == 2
        # A second sync is immediately quiescent and keeps the conflict open.
        again = cdss.sync()
        assert again.round_count == 1
        assert again.open_conflicts["Dresden"] == 1


class TestQuery:
    def test_query_joins_local_relations(self, figure2):
        figure2.crete.insert("OPS", ("E. coli", "lacZ", "ATG"))
        figure2.crete.insert("OPS", ("E. coli", "recA", "GGG"))
        result = figure2.cdss.query(
            "Crete", "Answer(prot) :- OPS(org, prot, seq), org = 'E. coli'."
        )
        assert result.rows == frozenset({("lacZ",), ("recA",)})
        assert ("lacZ",) in result and len(result) == 2

    def test_query_multi_rule_program(self, two_peer_system):
        source = two_peer_system.peer("Source")
        source.insert("R", (1, "x"))
        source.insert("R", (2, "y"))
        result = two_peer_system.query(
            "Source",
            """
            Big(k, v) :- R(k, v), k > 1.
            Answer(v) :- Big(k, v).
            """,
        )
        assert result.predicate == "Big"
        assert result.rows == frozenset({(2, "y")})

    def test_query_with_provenance_annotates_rows(self, figure2):
        figure2.crete.insert("OPS", ("E. coli", "lacZ", "ATG"))
        result = figure2.cdss.query(
            "Crete", "Answer(org, seq) :- OPS(org, prot, seq).", provenance=True
        )
        row = ("E. coli", "ATG")
        assert row in result.rows
        assert "OPS" in str(result.provenance[row])
        assert result.to_dict()["provenance"]

    def test_query_unknown_relation_rejected(self, figure2):
        with pytest.raises(UnknownRelationError, match="Nope"):
            figure2.cdss.query("Crete", "Answer(x) :- Nope(x).")

    def test_query_unknown_peer_rejected(self, figure2):
        with pytest.raises(PeerError):
            figure2.cdss.query("Ghost", "Answer(x) :- OPS(x, y, z).")
