"""The fluent NetworkBuilder: construction and build-time validation."""

import pytest

from repro import CDSS, NetworkBuilder, SpecError
from repro.core.mapping import join_mapping
from repro.errors import MappingError


def two_peer_builder() -> NetworkBuilder:
    return (
        NetworkBuilder("two-peer")
        .peer("Source").relation("R", "a", "b", key=("a",))
        .peer("Target").relation("R", "a", "b", key=("a",))
        .mapping("[M_ST] @Target.R(x, y) :- @Source.R(x, y).")
    )


class TestFluentConstruction:
    def test_build_produces_working_cdss(self):
        cdss = two_peer_builder().build()
        assert isinstance(cdss, CDSS)
        assert cdss.name == "two-peer"
        source, target = cdss.peer("Source"), cdss.peer("Target")
        source.insert("R", (1, "x"))
        report = cdss.sync()
        assert report.converged
        assert (1, "x") in target.tuples("R")

    def test_trust_helpers(self):
        cdss = (
            NetworkBuilder()
            .peer("A").relation("R", "k")
            .peer("B").relation("R", "k").trust_only({"A": 3})
            .mapping("[M] @B.R(x) :- @A.R(x).")
            .build()
        )
        policy = cdss.peer("B").trust
        assert policy.peer_priorities == {"A": 3}
        assert policy.default_priority == 0

    def test_identity_expands_shared_relations(self):
        cdss = (
            NetworkBuilder()
            .peer("A").relation("R", "k", "v").relation("S", "k")
            .peer("B").relation("R", "k", "v").relation("S", "k")
            .identity("M_AB", "A", "B")
            .build()
        )
        ids = {mapping.mapping_id for mapping in cdss.catalog.mappings()}
        assert ids == {"M_AB_R", "M_AB_S"}
        assert all(mapping.is_identity for mapping in cdss.catalog.mappings())

    def test_accepts_prebuilt_mapping_objects(self):
        mapping = join_mapping("M", "Source", "Target", "R(a, b)", ["R(a, b)"])
        cdss = (
            NetworkBuilder()
            .peer("Source").relation("R", "a", "b")
            .peer("Target").relation("R", "a", "b")
            .mapping(mapping)
            .build()
        )
        assert cdss.catalog.mapping("M") is mapping

    def test_spec_round_trip_through_builder(self):
        spec = two_peer_builder().spec()
        rebuilt = CDSS.from_spec(spec.to_text())
        assert rebuilt.catalog.peer_names() == ["Source", "Target"]


class TestBuildTimeValidation:
    def test_duplicate_peer_rejected(self):
        builder = NetworkBuilder()
        builder.peer("A").relation("R", "k")
        with pytest.raises(SpecError, match="declared twice"):
            builder.peer("A")

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SpecError, match="declared twice"):
            NetworkBuilder().peer("A").relation("R", "k").relation("R", "k")

    def test_relation_needs_attributes(self):
        with pytest.raises(SpecError, match="at least one attribute"):
            NetworkBuilder().peer("A").relation("R")

    def test_peer_without_relations_rejected_at_build(self):
        builder = NetworkBuilder()
        builder.peer("A")
        with pytest.raises(SpecError, match="declares no relations"):
            builder.build()

    def test_mapping_to_unknown_peer_rejected_at_build(self):
        builder = NetworkBuilder()
        builder.peer("A").relation("R", "k")
        builder.mapping("[M] @Ghost.R(x) :- @A.R(x).")
        with pytest.raises(SpecError, match="unknown target peer 'Ghost'"):
            builder.build()

    def test_duplicate_mapping_id_rejected_at_build(self):
        builder = two_peer_builder()
        builder.mapping("[M_ST] @Target.R(x, y) :- @Source.R(x, y).")
        with pytest.raises(SpecError, match="duplicate mapping id"):
            builder.build()

    def test_negative_trust_rejected(self):
        with pytest.raises(SpecError, match="non-negative"):
            NetworkBuilder().peer("A").relation("R", "k").trust("B", -1)

    def test_trust_in_unknown_peer_rejected_at_build(self):
        builder = NetworkBuilder()
        builder.peer("A").relation("R", "k").trust("Ghost", 2)
        with pytest.raises(SpecError, match="unknown peer 'Ghost'"):
            builder.build()

    def test_identity_without_shared_relations_rejected(self):
        builder = NetworkBuilder()
        builder.peer("A").relation("R", "k")
        builder.peer("B").relation("S", "k")
        builder.identity("M_AB", "A", "B")
        with pytest.raises(SpecError, match="share no relations"):
            builder.build()

    def test_identity_unknown_peer_rejected(self):
        builder = NetworkBuilder()
        builder.peer("A").relation("R", "k")
        builder.identity("M", "A", "Ghost")
        with pytest.raises(SpecError, match="unknown target peer 'Ghost'"):
            builder.build()

    def test_mismatched_explicit_mapping_id_rejected(self):
        mapping = join_mapping("M1", "A", "B", "R(x)", ["R(x)"])
        with pytest.raises(SpecError, match="does not match"):
            NetworkBuilder().mapping(mapping, mapping_id="M2")


class TestFacadeValidation:
    def test_add_mapping_unknown_peer_is_a_mapping_error(self, two_peer_system):
        mapping = join_mapping("M_bad", "Source", "Ghost", "R(a, b)", ["R(a, b)"])
        with pytest.raises(MappingError, match="not registered"):
            two_peer_system.add_mapping(mapping)

    def test_publish_all_reports_skipped_offline(self, two_peer_system):
        two_peer_system.peer("Source").insert("R", (1, "x"))
        two_peer_system.set_online("Target", False)
        result = two_peer_system.publish_all()
        assert result.skipped_offline == ["Target"]
        assert [outcome.peer for outcome in result] == ["Source"]
        assert result.published_transactions == 1
        serialized = result.to_dict()
        assert serialized["skipped_offline"] == ["Target"]
        assert serialized["outcomes"][0]["peer"] == "Source"


class TestStoreBackendSelection:
    def test_fluent_store_declaration(self):
        from repro.p2p.distributed import DistributedUpdateStore

        cdss = (
            two_peer_builder()
            .store("distributed", shards=2, replication=2, read_quorum=2)
            .build()
        )
        assert isinstance(cdss.store, DistributedUpdateStore)
        assert cdss.store.shard_count == 2
        assert cdss.store.read_quorum == 2

    def test_store_factory_overrides_spec(self):
        sentinel = object()
        cdss = two_peer_builder().build(
            store_factory=lambda network, store_config: sentinel
        )
        assert cdss.store is sentinel

    def test_duplicate_store_declaration_rejected(self):
        builder = two_peer_builder().store("distributed")
        with pytest.raises(SpecError):
            builder.store("centralized")

    def test_bad_store_knobs_rejected(self):
        with pytest.raises(SpecError):
            two_peer_builder().store("distributed", sharding=8)
        with pytest.raises(SpecError):
            two_peer_builder().store("clustered")
