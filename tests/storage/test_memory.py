"""Unit tests for the in-memory storage backend."""

import pytest

from repro.datalog.ast import SkolemTerm
from repro.errors import StorageError, TupleArityError, UnknownRelationError
from repro.storage.interface import StorageBackend
from repro.storage.memory import MemoryInstance


@pytest.fixture
def instance() -> MemoryInstance:
    backend = MemoryInstance()
    backend.create_relation("R", 2)
    backend.create_relation("Empty", 0)
    return backend


class TestSchema:
    def test_implements_protocol(self, instance):
        assert isinstance(instance, StorageBackend)

    def test_create_relation_idempotent(self, instance):
        instance.create_relation("R", 2)
        assert instance.arity("R") == 2

    def test_conflicting_arity_rejected(self, instance):
        with pytest.raises(StorageError):
            instance.create_relation("R", 3)

    def test_negative_arity_rejected(self, instance):
        with pytest.raises(StorageError):
            instance.create_relation("Bad", -1)

    def test_unknown_relation(self, instance):
        with pytest.raises(UnknownRelationError):
            instance.arity("Missing")
        with pytest.raises(UnknownRelationError):
            list(instance.scan("Missing"))

    def test_relations(self, instance):
        assert instance.relations() == {"R", "Empty"}


class TestData:
    def test_insert_and_contains(self, instance):
        assert instance.insert("R", (1, 2))
        assert not instance.insert("R", (1, 2))
        assert instance.contains("R", (1, 2))

    def test_arity_checked(self, instance):
        with pytest.raises(TupleArityError):
            instance.insert("R", (1,))
        with pytest.raises(TupleArityError):
            instance.contains("R", (1, 2, 3))

    def test_delete(self, instance):
        instance.insert("R", (1, 2))
        assert instance.delete("R", (1, 2))
        assert not instance.delete("R", (1, 2))

    def test_scan_and_count(self, instance):
        instance.insert_many("R", [(1, 2), (3, 4)])
        assert set(instance.scan("R")) == {(1, 2), (3, 4)}
        assert instance.count("R") == 2
        assert instance.count() == 2

    def test_insert_many_returns_new_count(self, instance):
        assert instance.insert_many("R", [(1, 2), (1, 2), (3, 4)]) == 2

    def test_delete_many_returns_removed_count(self, instance):
        instance.insert_many("R", [(1, 2), (3, 4), (5, 6)])
        assert instance.delete_many("R", [(1, 2), (3, 4), (9, 9)]) == 2
        assert set(instance.scan("R")) == {(5, 6)}
        assert instance.delete_many("R", []) == 0

    def test_clear_single_relation(self, instance):
        instance.insert("R", (1, 2))
        instance.clear("R")
        assert instance.count("R") == 0

    def test_clear_all(self, instance):
        instance.insert("R", (1, 2))
        instance.clear()
        assert instance.count() == 0

    def test_labelled_nulls_supported(self, instance):
        null = SkolemTerm("SK_oid", ("E. coli",))
        instance.insert("R", (null, "x"))
        assert instance.contains("R", (SkolemTerm("SK_oid", ("E. coli",)), "x"))

    def test_zero_arity_relation(self, instance):
        assert instance.insert("Empty", ())
        assert instance.contains("Empty", ())
        assert not instance.insert("Empty", ())


class TestLookup:
    def test_lookup_by_column(self, instance):
        instance.insert_many("R", [(1, "a"), (1, "b"), (2, "c")])
        assert instance.lookup("R", 0, 1) == frozenset({(1, "a"), (1, "b")})
        assert instance.lookup("R", 1, "c") == frozenset({(2, "c")})
        assert instance.lookup("R", 0, 99) == frozenset()

    def test_lookup_index_maintained_by_mutations(self, instance):
        instance.insert("R", (1, "a"))
        assert instance.lookup("R", 0, 1) == frozenset({(1, "a")})
        instance.insert("R", (1, "b"))
        instance.delete("R", (1, "a"))
        assert instance.lookup("R", 0, 1) == frozenset({(1, "b")})
        instance.clear("R")
        assert instance.lookup("R", 0, 1) == frozenset()

    def test_lookup_position_out_of_range(self, instance):
        with pytest.raises(StorageError):
            instance.lookup("R", 2, "x")
        with pytest.raises(StorageError):
            instance.lookup("Empty", 0, "x")

    def test_lookup_unknown_relation(self, instance):
        with pytest.raises(UnknownRelationError):
            instance.lookup("Missing", 0, "x")

    def test_lookup_labelled_null(self, instance):
        null = SkolemTerm("SK_oid", ("E. coli",))
        instance.insert("R", (null, "x"))
        assert instance.lookup("R", 0, SkolemTerm("SK_oid", ("E. coli",))) == frozenset(
            {(null, "x")}
        )


class TestSnapshots:
    def test_snapshot_is_frozen(self, instance):
        instance.insert("R", (1, 2))
        snapshot = instance.snapshot()
        assert snapshot["R"] == frozenset({(1, 2)})
        instance.insert("R", (3, 4))
        assert snapshot["R"] == frozenset({(1, 2)})

    def test_copy_is_independent(self, instance):
        instance.insert("R", (1, 2))
        clone = instance.copy()
        clone.insert("R", (3, 4))
        assert instance.count("R") == 1
        assert clone.count("R") == 2

    def test_equality(self, instance):
        other = MemoryInstance()
        other.create_relation("R", 2)
        other.create_relation("Empty", 0)
        assert instance == other
        instance.insert("R", (1, 2))
        assert instance != other

    def test_load(self, instance):
        instance.load({"R": [(1, 2), (3, 4)]})
        assert instance.count("R") == 2
