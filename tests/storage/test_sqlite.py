"""Unit and property-based tests for the SQLite storage backend."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.ast import SkolemTerm
from repro.errors import StorageError, TupleArityError, UnknownRelationError
from repro.storage.sqlite_backend import SQLiteInstance, decode_cell, encode_cell


@pytest.fixture
def instance() -> SQLiteInstance:
    with SQLiteInstance(":memory:") as backend:
        backend.create_relation("R", 2)
        backend.create_relation("S", 3)
        yield backend


scalar_values = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)


@st.composite
def cell_values(draw):
    """Scalars or (possibly nested) labelled nulls."""
    if draw(st.booleans()):
        return draw(scalar_values)
    arity = draw(st.integers(min_value=0, max_value=2))
    arguments = tuple(draw(scalar_values) for _ in range(arity))
    return SkolemTerm(draw(st.sampled_from(["SK_a", "SK_b"])), arguments)


class TestCellEncoding:
    @settings(max_examples=80, deadline=None)
    @given(value=cell_values())
    def test_roundtrip(self, value):
        assert decode_cell(encode_cell(value)) == value

    def test_unsupported_type_rejected(self):
        with pytest.raises(StorageError):
            encode_cell(object())

    def test_decode_garbage_rejected(self):
        with pytest.raises(StorageError):
            decode_cell('{"unexpected": 1}')


class TestSQLiteBackend:
    def test_insert_contains_delete(self, instance):
        assert instance.insert("R", (1, "a"))
        assert not instance.insert("R", (1, "a"))
        assert instance.contains("R", (1, "a"))
        assert instance.delete("R", (1, "a"))
        assert not instance.contains("R", (1, "a"))

    def test_scan(self, instance):
        instance.insert_many("R", [(1, "a"), (2, "b")])
        assert set(instance.scan("R")) == {(1, "a"), (2, "b")}

    def test_count(self, instance):
        instance.insert_many("R", [(1, "a"), (2, "b")])
        instance.insert("S", (1, 2, 3))
        assert instance.count("R") == 2
        assert instance.count() == 3

    def test_arity_checked(self, instance):
        with pytest.raises(TupleArityError):
            instance.insert("R", (1,))

    def test_unknown_relation(self, instance):
        with pytest.raises(UnknownRelationError):
            instance.count("Missing")

    def test_conflicting_arity_rejected(self, instance):
        with pytest.raises(StorageError):
            instance.create_relation("R", 5)

    def test_invalid_relation_name_rejected(self, instance):
        with pytest.raises(StorageError):
            instance.create_relation("", 1)
        with pytest.raises(StorageError):
            instance.create_relation("evil\x00name", 1)

    def test_case_colliding_relation_names_rejected(self, instance):
        # Quoted SQLite identifiers are still ASCII-case-insensitive, so
        # 'Orders' and 'orders' would silently share one table.
        instance.create_relation("Orders", 2)
        with pytest.raises(StorageError):
            instance.create_relation("orders", 1)
        # Same name, same arity stays idempotent.
        instance.create_relation("Orders", 2)
        assert instance.relations() >= {"Orders"}

    @pytest.mark.parametrize(
        "name",
        [
            "order",          # SQL reserved word
            "select",         # SQL reserved word
            "weird-name",     # hyphen
            "Peer.R!pub",     # qualified published-relation style
            'has"quote',      # embedded double quote
            "bad name; drop", # spaces and statement separators, quoted away
            "Σ1.R",           # non-ASCII relation name
        ],
    )
    def test_awkward_relation_names_roundtrip(self, instance, name):
        # Identifiers are quoted (with quote-doubling), so reserved words,
        # hyphens, and punctuation must work through the full CRUD + indexed
        # lookup() surface rather than breaking CREATE INDEX / query SQL.
        instance.create_relation(name, 2)
        instance.insert(name, ("k1", "v1"))
        instance.insert(name, ("k2", "v2"))
        assert instance.contains(name, ("k1", "v1"))
        assert instance.lookup(name, 0, "k2") == frozenset({("k2", "v2")})
        # A second lookup hits the already-created index.
        assert instance.lookup(name, 0, "k1") == frozenset({("k1", "v1")})
        assert instance.delete(name, ("k1", "v1"))
        assert set(instance.scan(name)) == {("k2", "v2")}
        assert instance.count(name) == 1

    def test_labelled_null_roundtrip(self, instance):
        null = SkolemTerm("SK_oid", ("E. coli", 3))
        instance.insert("R", (null, "seq"))
        assert instance.contains("R", (SkolemTerm("SK_oid", ("E. coli", 3)), "seq"))
        assert set(instance.scan("R")) == {(null, "seq")}

    def test_clear(self, instance):
        instance.insert("R", (1, "a"))
        instance.clear("R")
        assert instance.count("R") == 0
        instance.insert("R", (1, "a"))
        instance.insert("S", (1, 2, 3))
        instance.clear()
        assert instance.count() == 0

    def test_snapshot(self, instance):
        instance.insert("R", (1, "a"))
        snapshot = instance.snapshot()
        assert snapshot["R"] == frozenset({(1, "a")})

    def test_lookup_by_column(self, instance):
        instance.insert_many("R", [(1, "a"), (1, "b"), (2, "c")])
        assert instance.lookup("R", 0, 1) == frozenset({(1, "a"), (1, "b")})
        assert instance.lookup("R", 1, "c") == frozenset({(2, "c")})
        assert instance.lookup("R", 1, "missing") == frozenset()

    def test_lookup_creates_persistent_index(self, instance):
        instance.insert("R", (1, "a"))
        instance.lookup("R", 0, 1)
        indexes = {
            name
            for (name,) in instance._connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index' AND name LIKE 'idx_%'"
            )
        }
        assert "idx_R_c0" in indexes

    def test_lookup_sees_later_mutations(self, instance):
        instance.insert("R", (1, "a"))
        assert instance.lookup("R", 0, 1) == frozenset({(1, "a")})
        instance.insert("R", (1, "b"))
        instance.delete("R", (1, "a"))
        assert instance.lookup("R", 0, 1) == frozenset({(1, "b")})

    def test_lookup_labelled_null(self, instance):
        null = SkolemTerm("SK_oid", ("E. coli", 3))
        instance.insert("R", (null, "seq"))
        assert instance.lookup("R", 0, SkolemTerm("SK_oid", ("E. coli", 3))) == frozenset(
            {(null, "seq")}
        )

    def test_lookup_position_out_of_range(self, instance):
        with pytest.raises(StorageError):
            instance.lookup("R", 9, "x")

    def test_lookup_matches_memory_backend(self, instance):
        from repro.storage.memory import MemoryInstance

        memory = MemoryInstance()
        memory.create_relation("R", 2)
        rows = [(1, "a"), (1, "b"), (2, "a"), (3, None)]
        instance.insert_many("R", rows)
        memory.insert_many("R", rows)
        for position in (0, 1):
            for row in rows:
                assert instance.lookup("R", position, row[position]) == memory.lookup(
                    "R", position, row[position]
                )

    def test_persistence_on_disk(self, tmp_path):
        path = str(tmp_path / "peer.db")
        first = SQLiteInstance(path)
        first.create_relation("R", 2)
        first.insert("R", (1, "a"))
        first.close()

        second = SQLiteInstance(path)
        assert second.arity("R") == 2
        assert second.contains("R", (1, "a"))
        second.close()

    @settings(max_examples=25, deadline=None)
    @given(rows=st.lists(st.tuples(st.integers(-100, 100), st.text(max_size=8)), max_size=10))
    def test_matches_memory_semantics(self, rows):
        """SQLite and memory backends agree on set semantics."""
        from repro.storage.memory import MemoryInstance

        memory = MemoryInstance()
        memory.create_relation("R", 2)
        sqlite = SQLiteInstance(":memory:")
        sqlite.create_relation("R", 2)
        for row in rows:
            assert memory.insert("R", row) == sqlite.insert("R", row)
        assert set(memory.scan("R")) == set(sqlite.scan("R"))
        sqlite.close()

class TestCanonicalEncoding:
    """SQL join keys compare as encoded TEXT, so encoded equality must
    coincide exactly with Python equality across every cell type."""

    @settings(max_examples=150, deadline=None)
    @given(left=cell_values(), right=cell_values())
    def test_encoded_equality_is_python_equality(self, left, right):
        assert (encode_cell(left) == encode_cell(right)) == (left == right)

    def test_numeric_lookalikes_share_one_encoding(self):
        # 1 == True == 1.0 in Python, so their cells must be one join key.
        assert encode_cell(1) == encode_cell(True) == encode_cell(1.0)
        assert encode_cell(0) == encode_cell(False) == encode_cell(-0.0)
        assert encode_cell(2.5) != encode_cell(2)

    def test_decoded_values_stay_python_equal(self):
        for value in (True, False, 1.0, -3.0, 7, None):
            assert decode_cell(encode_cell(value)) == value

    @settings(max_examples=60, deadline=None)
    @given(text=st.text(alphabet=st.characters(min_codepoint=0, max_codepoint=0x2FF), max_size=12))
    def test_control_character_strings_roundtrip(self, text):
        assert decode_cell(encode_cell(text)) == text

    def test_skolem_arguments_canonicalize_like_scalars(self):
        lookalike = SkolemTerm("SK_a", (True, 2.0))
        canonical = SkolemTerm("SK_a", (1, 2))
        assert lookalike == canonical
        assert encode_cell(lookalike) == encode_cell(canonical)

    def test_storage_deduplicates_numeric_lookalikes(self, instance):
        assert instance.insert("R", (1, "a"))
        assert not instance.insert("R", (True, "a"))
        assert not instance.insert("R", (1.0, "a"))
        assert instance.count("R") == 1


class TestBatchedWrites:
    def test_insert_many_commits_once(self, instance):
        before = instance.commit_count
        added = instance.insert_many("R", [(i, "v") for i in range(100)])
        assert added == 100
        assert instance.commit_count == before + 1

    def test_insert_many_counts_only_new_rows(self, instance):
        instance.insert("R", (1, "a"))
        assert instance.insert_many("R", [(1, "a"), (2, "b"), (2, "b"), (3, "c")]) == 2
        assert instance.count("R") == 3

    def test_delete_many_commits_once(self, instance):
        instance.insert_many("R", [(i, "v") for i in range(50)])
        before = instance.commit_count
        removed = instance.delete_many("R", [(i, "v") for i in range(60)])
        assert removed == 50
        assert instance.commit_count == before + 1
        assert instance.count("R") == 0

    def test_empty_batches_are_noops(self, instance):
        before = instance.commit_count
        assert instance.insert_many("R", []) == 0
        assert instance.delete_many("R", []) == 0
        assert instance.commit_count == before

    def test_batched_writes_maintain_lookup_indexes(self, instance):
        instance.lookup("R", 0, 1)  # build the index first
        instance.insert_many("R", [(1, "a"), (1, "b"), (2, "c")])
        assert instance.lookup("R", 0, 1) == frozenset({(1, "a"), (1, "b")})
        instance.delete_many("R", [(1, "a")])
        assert instance.lookup("R", 0, 1) == frozenset({(1, "b")})

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.lists(st.tuples(st.integers(-20, 20), st.text(max_size=4)), max_size=12),
        doomed=st.lists(st.tuples(st.integers(-20, 20), st.text(max_size=4)), max_size=12),
    )
    def test_batched_writes_match_memory_semantics(self, rows, doomed):
        from repro.storage.memory import MemoryInstance

        memory = MemoryInstance()
        memory.create_relation("R", 2)
        sqlite = SQLiteInstance(":memory:")
        sqlite.create_relation("R", 2)
        assert memory.insert_many("R", rows) == sqlite.insert_many("R", rows)
        assert memory.delete_many("R", doomed) == sqlite.delete_many("R", doomed)
        assert set(memory.scan("R")) == set(sqlite.scan("R"))
        sqlite.close()
