"""Unit tests for the per-peer update log."""

import pytest

from repro.core.transactions import Transaction
from repro.core.updates import Update
from repro.errors import StorageError
from repro.storage.update_log import UpdateLog


def make_transaction(txn_id: str) -> Transaction:
    return Transaction(txn_id, "Peer", (Update.insert("R", (1,), origin="Peer"),))


class TestUpdateLog:
    def test_append_and_len(self):
        log: UpdateLog[Transaction] = UpdateLog()
        log.append(make_transaction("t1"))
        log.append(make_transaction("t2"))
        assert len(log) == 2
        assert [entry.txn_id for entry in log] == ["t1", "t2"]

    def test_duplicate_ids_rejected(self):
        log: UpdateLog[Transaction] = UpdateLog()
        log.append(make_transaction("t1"))
        with pytest.raises(StorageError):
            log.append(make_transaction("t1"))

    def test_entry_lookup(self):
        log: UpdateLog[Transaction] = UpdateLog()
        log.append(make_transaction("t1"))
        assert log.entry("t1").txn_id == "t1"
        assert log.contains("t1")
        assert not log.contains("t9")
        with pytest.raises(StorageError):
            log.entry("t9")

    def test_publication_watermark(self):
        log: UpdateLog[Transaction] = UpdateLog()
        log.extend([make_transaction("t1"), make_transaction("t2")])
        assert [entry.txn_id for entry in log.unpublished()] == ["t1", "t2"]
        log.mark_published()
        assert log.unpublished() == []
        assert [entry.txn_id for entry in log.published()] == ["t1", "t2"]

        log.append(make_transaction("t3"))
        assert [entry.txn_id for entry in log.unpublished()] == ["t3"]
        log.mark_published(1)
        assert log.published_count == 3

    def test_partial_publication(self):
        log: UpdateLog[Transaction] = UpdateLog()
        log.extend([make_transaction("t1"), make_transaction("t2")])
        log.mark_published(1)
        assert [entry.txn_id for entry in log.unpublished()] == ["t2"]

    def test_invalid_publication_count(self):
        log: UpdateLog[Transaction] = UpdateLog()
        log.append(make_transaction("t1"))
        with pytest.raises(StorageError):
            log.mark_published(5)
        with pytest.raises(StorageError):
            log.mark_published(-1)

    def test_custom_key(self):
        log: UpdateLog[dict] = UpdateLog(key=lambda entry: entry["id"])
        log.append({"id": "a"})
        assert log.contains("a")
