"""Tests for the SQL pushdown execution backend.

Three layers:

* unit tests pinning the compiled SQL shape — table naming, explain
  output, canonical-encoding joins, comparison/negation/skolem
  translation, and the exact fallback reasons;
* statefulness tests: the warm incremental mirror, out-of-band removal
  notifications, and the count guard that forces a reload on drift;
* differential property tests mirroring
  :mod:`tests.datalog.test_plan_executor`: randomly generated CDSS
  networks are driven through plain, incremental, and provenance
  evaluation on both backends, asserting identical databases and
  identical provenance polynomials.  ExecutionStats are deliberately
  never compared — set-at-a-time round staging legitimately differs.
"""

import random

import pytest

from repro.core.system import CDSS
from repro.datalog.ast import Fact, SkolemTerm
from repro.datalog.evaluation import Database, evaluate_program
from repro.datalog.executor import create_backend
from repro.datalog.incremental import IncrementalEngine
from repro.datalog.parser import parse_program
from repro.datalog.plan import compile_program
from repro.datalog.provenance_eval import evaluate_with_provenance
from repro.datalog.sql_executor import SQLExecutionBackend, _table_name, explain_sql
from repro.errors import ConfigurationError, DatalogError
from repro.exchange.rules import published_relation
from repro.workloads.simulation import (
    RandomWorkload,
    SimulationConfig,
    generate_network,
)


def _relation_map(database):
    return {
        predicate: database.relation(predicate) for predicate in database.predicates()
    }


def _all_polynomials(database, graph, max_depth=24):
    return {
        (predicate, values): graph.polynomial_for(predicate, values, max_depth=max_depth)
        for predicate in database.predicates()
        for values in database.relation(predicate)
    }


def _run_both(text, base):
    """Evaluate ``text`` over ``base`` on both backends; assert agreement."""
    program = parse_program(text)
    python = evaluate_program(program, base)
    sql = evaluate_program(program, base, backend=SQLExecutionBackend())
    assert _relation_map(sql) == _relation_map(python)
    return sql


class TestBackendRegistry:
    def test_create_backend_names(self):
        assert create_backend("sql").name == "sql"
        assert create_backend("python").name == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            create_backend("prolog")


class TestTableNaming:
    def test_awkward_predicates_get_distinct_tables(self):
        # Both slug to the same readable hint; the digest disambiguates.
        first = _table_name("rel", "Alaska.OPS!pub", 2)
        second = _table_name("rel", "Alaska OPS pub", 2)
        assert first != second
        assert first.startswith('"rel_alaska_ops_pub_2_')

    def test_arity_separates_tables(self):
        assert _table_name("rel", "R", 1) != _table_name("rel", "R", 2)

    def test_names_are_quoted(self):
        name = _table_name("stg", "Σ1.R", 3)
        assert name.startswith('"') and name.endswith('"')


class TestGeneratedSQL:
    def test_explain_renders_insert_select_per_plan(self):
        rendered = explain_sql(parse_program("path(x, y) :- edge(x, y).\npath(x, z) :- path(x, y), edge(y, z)."))
        assert "INSERT INTO" in rendered
        assert "SELECT" in rendered
        assert "-- delta on body position" in rendered
        # Semi-naive deltas are rowid watermark windows over the relation.
        assert ".rowid > ? AND" in rendered

    def test_negation_becomes_not_exists(self):
        rendered = explain_sql(parse_program("T(x) :- R(x), not S(x)."))
        assert "NOT EXISTS" in rendered

    def test_constants_are_parameterized_not_inlined(self):
        rendered = explain_sql(parse_program("T(y) :- R('key', y)."))
        sql_lines = [line for line in rendered.splitlines() if not line.startswith("--")]
        assert all("key" not in line for line in sql_lines)
        assert any("= ?" in line for line in sql_lines)

    def test_engine_backend_explain_is_sql(self):
        engine = IncrementalEngine(
            parse_program("T(x) :- R(x)."), track_provenance=False,
            execution_backend="sql",
        )
        lines = engine.backend.explain(engine.compiled)
        assert any("INSERT INTO" in line for line in lines)


class TestSQLSemantics:
    def test_recursive_closure(self):
        base = Database.from_dict({"edge": [(1, 2), (2, 3), (3, 4)]})
        result = _run_both(
            "path(x, y) :- edge(x, y).\npath(x, z) :- path(x, y), edge(y, z).", base
        )
        assert (1, 4) in result.relation("path")

    def test_numeric_lookalikes_join(self):
        # 1 == True in Python; the canonical encoding makes the TEXT join
        # agree, so both backends derive T(1).
        base = Database.from_dict({"R": [(1,)], "S": [(True,)]})
        result = _run_both("T(x) :- R(x), S(x).", base)
        assert result.relation("T") == frozenset({(1,)})

    def test_ordering_comparison_mirrors_python_type_rules(self):
        base = Database.from_dict(
            {"R": [(1, 2), (2, 1), ("a", "b"), (1, "z"), (None, 5), (1.5, 2)]}
        )
        result = _run_both("T(x, y) :- R(x, y), x < y.", base)
        # Mixed-type and None pairs are False (Python's TypeError), numbers
        # compare numerically across int/float, strings lexicographically.
        assert result.relation("T") == frozenset({(1, 2), ("a", "b"), (1.5, 2)})

    def test_negation_anti_join(self):
        base = Database.from_dict({"R": [(1,), (2,), (3,)], "S": [(2,)]})
        result = _run_both("T(x) :- R(x), not S(x).", base)
        assert result.relation("T") == frozenset({(1,), (3,)})

    def test_skolem_head_builds_labelled_null(self):
        base = Database.from_dict({"R": [("a",), ("b",)]})
        result = _run_both("T(x, SK_id(x)) :- R(x).", base)
        assert result.relation("T") == frozenset(
            {("a", SkolemTerm("SK_id", ("a",))), ("b", SkolemTerm("SK_id", ("b",)))}
        )

    def test_skolem_argument_in_negated_atom_stays_on_sql(self):
        base = Database.from_dict(
            {"R": [("a",), ("b",)], "S": [(SkolemTerm("SK_id", ("a",)),)]}
        )
        rendered = explain_sql(parse_program("T(x) :- R(x), not S(SK_id(x))."))
        assert "python fallback" not in rendered
        result = _run_both("T(x) :- R(x), not S(SK_id(x)).", base)
        assert result.relation("T") == frozenset({("b",)})

    def test_repeated_variable_within_atom(self):
        base = Database.from_dict({"B": [(1, 1), (1, 2), (3, 3)]})
        result = _run_both("A(x) :- B(x, x).", base)
        assert result.relation("A") == frozenset({(1,), (3,)})

    def test_max_iterations_raises(self):
        base = Database.from_dict({"edge": [(i, i + 1) for i in range(8)]})
        program = parse_program(
            "path(x, y) :- edge(x, y).\npath(x, z) :- path(x, y), edge(y, z)."
        )
        with pytest.raises(DatalogError):
            evaluate_program(
                program, base, backend=SQLExecutionBackend(), max_iterations=2
            )


class TestFallback:
    def test_positive_body_skolem_falls_back(self):
        text = "A(x) :- B(x, SK_id(x))."
        rendered = explain_sql(parse_program(text))
        assert rendered.startswith("-- python fallback: skolem term in positive body atom")
        base = Database.from_dict(
            {"B": [("a", SkolemTerm("SK_id", ("a",))), ("b", "not-a-null")]}
        )
        result = _run_both(text, base)
        assert result.relation("A") == frozenset({("a",)})

    def test_arity_zero_head_falls_back(self):
        rendered = explain_sql(parse_program("T() :- R(x)."))
        assert rendered.startswith("-- python fallback: arity-0 head atom")
        base = Database.from_dict({"R": [(1,)]})
        result = _run_both("T() :- R(x).", base)
        assert result.relation("T") == frozenset({()})

    def test_ordering_comparisons_stay_on_sql(self):
        # Ordering used to require the JSON1 extension; the native cell
        # mapping expresses Python's comparison rules with a typeof CASE.
        rendered = explain_sql(parse_program("T(x, y) :- R(x, y), x < y."))
        assert "python fallback" not in rendered
        assert "typeof" in rendered


class TestNativeCells:
    """The Python <-> SQLite cell codec underneath the generated SQL."""

    def test_scalars_round_trip(self):
        from repro.datalog.sql_executor import _from_blob, _to_sql

        for value in (0, 1, -7, 2**62, "x", "", "ü\n", True, 3.0, None, 1.5,
                      -2.5e-3, 2**70, -(2**70), float(2**80),
                      SkolemTerm("SK_f", ()), SkolemTerm("SK_f", ("a", 1)),
                      SkolemTerm("SK_f", (SkolemTerm("SK_g", (None, 2.5)), "b:c"))):
            cell = _to_sql(value)
            decoded = cell if type(cell) in (int, str) else _from_blob(cell)
            assert decoded == value, value

    def test_canonical_with_python_equality(self):
        from repro.datalog.sql_executor import _to_sql

        assert _to_sql(1) == _to_sql(True) == _to_sql(1.0)
        assert _to_sql(0) == _to_sql(False) == _to_sql(-0.0)
        assert _to_sql(SkolemTerm("SK_a", (True, 2.0))) == _to_sql(
            SkolemTerm("SK_a", (1, 2))
        )
        assert _to_sql("1") != _to_sql(1)

    def test_blobs_are_valid_utf8(self):
        # The SELECT list rebuilds skolem blobs through TEXT concatenation,
        # which silently requires every tagged encoding to decode as UTF-8.
        from repro.datalog.sql_executor import _to_sql

        for value in (None, 1.5, 2**70, SkolemTerm("SK_f", ("ü", 2.5, None))):
            _to_sql(value).decode("utf-8")

    def test_sql_built_skolem_matches_python_encoding(self):
        # A skolem head assembled inside SQLite must dedup against the same
        # labelled null inserted from Python.
        base = Database.from_dict(
            {"R": [("a",)], "T": [("a", SkolemTerm("SK_id", ("a",)))]}
        )
        result = _run_both("T(x, SK_id(x)) :- R(x).", base)
        assert result.relation("T") == frozenset({("a", SkolemTerm("SK_id", ("a",)))})


class TestIncrementalMirror:
    PROGRAM = "path(x, y) :- edge(x, y).\npath(x, z) :- path(x, y), edge(y, z)."

    def test_mirror_stays_warm_across_insertions(self):
        engine = IncrementalEngine(
            parse_program(self.PROGRAM), track_provenance=False,
            execution_backend="sql",
        )
        engine.apply_insertions([Fact("edge", (1, 2))])
        backend = engine.backend
        assert backend._db_ref is engine.database
        engine.apply_insertions([Fact("edge", (2, 3))])
        assert backend._db_ref is engine.database
        assert engine.database.contains("path", (1, 3))
        # Mirror counts track the engine database exactly.
        for predicate in engine.database.predicates():
            assert backend._counts.get(predicate, 0) == engine.database.count(predicate)

    def test_deletions_keep_mirror_consistent(self):
        engine = IncrementalEngine(
            parse_program(self.PROGRAM), track_provenance=False,
            execution_backend="sql",
        )
        engine.apply_insertions([Fact("edge", (1, 2)), Fact("edge", (2, 3))])
        engine.apply_deletions([Fact("edge", (2, 3))])
        engine.apply_insertions([Fact("edge", (2, 4))])
        assert engine.database.contains("path", (1, 4))
        assert not engine.database.contains("path", (1, 3))

    def test_count_guard_forces_reload_on_drift(self):
        engine = IncrementalEngine(
            parse_program(self.PROGRAM), track_provenance=False,
            execution_backend="sql",
        )
        engine.apply_insertions([Fact("edge", (1, 2))])
        backend = engine.backend
        compiled = engine.compiled
        # Mutate the database behind the backend's back: the count guard
        # must detect the drift and reload rather than trust the warm mirror.
        engine.database.add("edge", (5, 6))
        engine.database.add("edge", (6, 7))
        backend.propagate(compiled, engine.database, {"edge": {(6, 7)}})
        assert backend._counts["edge"] == engine.database.count("edge")
        # The reload pulled the drifted (5, 6) into the mirror, so a later
        # delta can join against it: 4 -> 5 -> 6 -> 7 closes transitively.
        engine.database.add("edge", (4, 5))
        inserted = backend.propagate(compiled, engine.database, {"edge": {(4, 5)}})
        assert (4, 7) in inserted.get("path", set())


class TestSQLMatchesPython:
    """Differential properties over randomly generated CDSS networks."""

    CONFIG = SimulationConfig(epochs=3, max_peers=4, transactions_per_epoch=(2, 6))

    def _epoch_fact_batches(self, spec, workload):
        """Per-epoch (delete_facts, insert_facts) over published relations."""
        batches = []
        for _ in range(self.CONFIG.epochs):
            deletes, inserts = [], []
            for command in workload.epoch_commands():
                relation = published_relation(command.peer, command.relation)
                if command.kind == "delete":
                    deletes.append(Fact(relation, command.values))
                elif command.kind == "modify":
                    deletes.append(Fact(relation, command.old_values))
                    inserts.append(Fact(relation, command.values))
                else:  # insert / conflict
                    inserts.append(Fact(relation, command.values))
            batches.append((deletes, inserts))
        return batches

    @pytest.mark.parametrize("seed", range(1, 9))
    def test_plain_incremental_and_provenance_agree(self, seed):
        rng = random.Random(seed)
        spec = generate_network(rng, self.CONFIG)
        workload = RandomWorkload(spec, self.CONFIG, rng)
        program = CDSS.from_spec(spec).engine.program

        sql_provenance = IncrementalEngine(
            program, track_provenance=True, execution_backend="sql"
        )
        sql_dred = IncrementalEngine(
            program, track_provenance=False, execution_backend="sql"
        )
        python_provenance = IncrementalEngine(program, track_provenance=True)
        python_dred = IncrementalEngine(program, track_provenance=False)
        plain_backend = SQLExecutionBackend()
        base = Database()

        for epoch, (deletes, inserts) in enumerate(
            self._epoch_fact_batches(spec, workload), start=1
        ):
            engines = (sql_provenance, sql_dred, python_provenance, python_dred)
            for engine in engines:
                engine.apply_deletions(deletes)
                engine.apply_insertions(inserts)
            for fact in deletes:
                base.remove(fact.predicate, fact.values)
            for fact in inserts:
                base.add(fact.predicate, fact.values)

            context = f"seed {seed} epoch {epoch}"

            # Plain from-scratch evaluation agrees across backends.
            python_plain = evaluate_program(program, base)
            sql_plain = evaluate_program(program, base, backend=plain_backend)
            assert _relation_map(sql_plain) == _relation_map(python_plain), context

            # Incremental maintenance on the SQL backend tracks the Python
            # backend exactly, for both deletion strategies.
            assert _relation_map(sql_provenance.database) == _relation_map(
                python_provenance.database
            ), f"{context}: provenance-deletion engines diverged"
            assert _relation_map(sql_dred.database) == _relation_map(
                python_dred.database
            ), f"{context}: DRed engines diverged"

            # Executor accounting parity: both backends derive exactly the
            # same set of new tuples, so the ``tuples_derived`` counter must
            # agree even though raw per-round firing counts legitimately
            # differ (set-at-a-time staging vs intra-round insertions — see
            # the ExecutionBackend protocol docstring).
            assert (
                sql_provenance.stats.tuples_derived
                == python_provenance.stats.tuples_derived
            ), f"{context}: tuples_derived diverged (provenance engines)"
            assert (
                sql_dred.stats.tuples_derived == python_dred.stats.tuples_derived
            ), f"{context}: tuples_derived diverged (DRed engines)"
            # rules_fired semantics differ per backend, but firing activity
            # must coincide: whenever one backend derived tuples, both
            # backends report non-zero firings.
            if python_provenance.stats.tuples_derived:
                assert python_provenance.stats.rules_fired > 0, context
                assert sql_provenance.stats.rules_fired > 0, context

            # The recorder hook rides along: incremental provenance graphs
            # yield identical polynomials tuple by tuple.
            assert _all_polynomials(
                sql_provenance.database, sql_provenance.graph
            ) == _all_polynomials(
                python_provenance.database, python_provenance.graph
            ), f"{context}: incremental provenance diverged"

            # From-scratch provenance recording agrees too.
            sql_result = evaluate_with_provenance(
                program, base, backend=SQLExecutionBackend()
            )
            python_result = evaluate_with_provenance(program, base)
            assert _all_polynomials(
                sql_result.database, sql_result.graph
            ) == _all_polynomials(
                python_result.database, python_result.graph
            ), f"{context}: from-scratch provenance diverged"
