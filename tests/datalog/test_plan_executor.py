"""Tests for the compiled rule-execution core (plan + executor).

Two layers:

* unit tests pinning down plan compilation — greedy atom ordering, probe
  selection, early guard placement, delta plans, cache sharing;
* differential property tests: a naive tuple-at-a-time *interpreted*
  evaluator (built on the original :mod:`repro.datalog.unification`
  machinery, the pre-compilation execution path) is run against the
  compiled executor over randomly generated CDSS networks from
  :mod:`repro.workloads.simulation`, asserting identical databases and
  identical provenance polynomials across plain, incremental, and
  provenance evaluation.
"""

import random

import pytest

from repro.core.system import CDSS
from repro.datalog.ast import Atom, Comparison, Fact, SkolemTerm
from repro.datalog.evaluation import Database, evaluate_program, evaluate_rule_once
from repro.datalog.executor import ExecutionStats
from repro.datalog.incremental import IncrementalEngine
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.plan import compile_program, compile_rule
from repro.datalog.provenance_eval import (
    default_variable_namer,
    evaluate_with_provenance,
)
from repro.datalog.stratification import stratify
from repro.datalog.unification import Substitution, match_atom
from repro.errors import DatalogError
from repro.exchange.rules import published_relation
from repro.provenance.graph import ProvenanceGraph
from repro.workloads.simulation import (
    RandomWorkload,
    SimulationConfig,
    generate_network,
)


class TestPlanCompilation:
    def test_probe_on_joined_variable(self):
        compiled = compile_rule(parse_rule("T(x, z) :- R(x, y), S(y, z)."))
        assert compiled.plan_for(None).description == ("scan R", "probe S[0]")

    def test_probe_on_constant(self):
        compiled = compile_rule(parse_rule("T(y) :- R('key', y)."))
        assert compiled.plan_for(None).description == ("probe R[0]",)

    def test_comparison_placed_at_earliest_bound_point(self):
        compiled = compile_rule(parse_rule("T(x, z) :- R(x, y), S(y, z), x < y."))
        assert compiled.plan_for(None).description == (
            "scan R",
            "compare <",
            "probe S[0]",
        )

    def test_negation_placed_before_unrelated_atom(self):
        compiled = compile_rule(parse_rule("T(x, y) :- R(x), not S(x), U(x, y)."))
        assert compiled.plan_for(None).description == (
            "scan R",
            "negation S",
            "probe U[0]",
        )

    def test_delta_atom_leads_its_plan(self):
        rule = parse_rule("T(x, z) :- R(x, y), S(y, z), x < y.")
        compiled = compile_rule(rule)
        # Body position 1 is S(y, z): the delta binds y and z, R is probed
        # on its y column, and the guard fires once x is bound.
        assert compiled.plan_for(1).description == (
            "delta S",
            "probe R[1]",
            "compare <",
        )

    def test_greedy_ordering_prefers_shared_variables(self):
        # Body order would join R x U as a cross product before S connects
        # them; the greedy order interposes S.
        compiled = compile_rule(parse_rule("T(a, c) :- R(a, b), U(c, d), S(b, c)."))
        assert compiled.plan_for(None).description == (
            "scan R",
            "probe S[0]",
            "probe U[0]",
        )

    def test_demanded_indexes_cover_all_plans(self):
        compiled = compile_rule(parse_rule("T(x, z) :- R(x, y), S(y, z)."))
        # Plain plan probes S[0]; delta-on-S probes R[1]; delta-on-R probes S[0].
        assert compiled.demanded_indexes == frozenset({("S", 0), ("R", 1)})

    def test_program_cache_shares_structural_duplicates(self):
        text = "T(x) :- R(x, y).\nU(x) :- T(x)."
        assert compile_program(parse_program(text)) is compile_program(parse_program(text))

    def test_rule_cache_shares_across_programs(self):
        rule = "T(x) :- R(x, y)."
        first = compile_program(parse_program(rule + "\nU(x) :- S(x)."))
        second = compile_program(parse_program(rule + "\nV(x) :- S(x)."))
        assert first.rules[0] is second.rules[0]

    def test_unsafe_rule_rejected_at_compile_time(self):
        with pytest.raises(DatalogError):
            compile_rule(parse_rule("T(x) :- R(y)."))

    def test_delta_plan_for_non_positive_position_rejected(self):
        compiled = compile_rule(parse_rule("T(x) :- R(x), not S(x)."))
        with pytest.raises(DatalogError):
            compiled.plan_for(1)


class TestExecutorSemantics:
    def test_skolem_term_in_body_matches_structurally(self):
        rule = parse_rule("A(x) :- B(x, SK_id(x)).")
        db = Database.from_dict(
            {
                "B": [
                    ("a", SkolemTerm("SK_id", ("a",))),
                    ("b", SkolemTerm("SK_id", ("mismatch",))),
                    ("c", "not-a-null"),
                ]
            }
        )
        assert evaluate_rule_once(rule, db) == {("a",)}

    def test_skolem_binding_feeds_later_plain_variable(self):
        # The skolem matcher at position 0 binds y; the plain occurrence of
        # y at position 1 must check against that binding.
        rule = parse_rule("A(y) :- B(SK_id(y), y).")
        db = Database.from_dict(
            {
                "B": [
                    (SkolemTerm("SK_id", ("a",)), "a"),
                    (SkolemTerm("SK_id", ("b",)), "other"),
                ]
            }
        )
        assert evaluate_rule_once(rule, db) == {("a",)}

    def test_repeated_variable_within_atom(self):
        rule = parse_rule("A(x) :- B(x, x).")
        db = Database.from_dict({"B": [(1, 1), (1, 2), (3, 3)]})
        assert evaluate_rule_once(rule, db) == {(1,), (3,)}

    def test_arity_mismatched_rows_are_skipped(self):
        rule = parse_rule("A(x) :- B(x, y).")
        db = Database.from_dict({"B": [(1, 2), (9,), (3, 4, 5)]})
        assert evaluate_rule_once(rule, db) == {(1,)}

    def test_stats_count_firings(self):
        stats = ExecutionStats()
        program = parse_program("T(x) :- R(x, y).")
        db = Database.from_dict({"R": [(1, 2), (1, 3), (4, 5)]})
        evaluate_program(program, db, stats=stats)
        # Three satisfying substitutions project onto two distinct heads.
        assert stats.rules_fired == 3
        assert stats.tuples_derived == 2


# ---------------------------------------------------------------------------
# Naive interpreted reference evaluator (the pre-compilation path)
# ---------------------------------------------------------------------------

def _interpreted_matches(rule, database):
    """Tuple-at-a-time matching: positive atoms in body order, guards last."""
    positives = [
        literal
        for literal in rule.body
        if isinstance(literal, Atom) and not literal.negated
    ]
    guards = [
        literal
        for literal in rule.body
        if not (isinstance(literal, Atom) and not literal.negated)
    ]

    def passes_guards(subst):
        for guard in guards:
            if isinstance(guard, Comparison):
                if not guard.evaluate(
                    subst.apply_term(guard.left), subst.apply_term(guard.right)
                ):
                    return False
            else:  # negated atom
                if database.contains(guard.predicate, subst.ground_values(guard)):
                    return False
        return True

    def extend(subst, index):
        if index == len(positives):
            if passes_guards(subst):
                yield subst
            return
        atom = positives[index]
        for row in database.relation(atom.predicate):
            extended = match_atom(atom, row, subst)
            if extended is not None:
                yield from extend(extended, index + 1)

    yield from extend(Substitution(), 0)


def interpreted_fixpoint(program, base, graph=None):
    """Naive stratified fixpoint via Substitution/match_atom (no plans/indexes)."""
    working = base.copy()
    if graph is not None:
        for predicate in working.predicates():
            for values in working.relation(predicate):
                graph.add_base_tuple(
                    predicate, values, default_variable_namer(predicate, values)
                )
    for stratum in stratify(program):
        changed = True
        while changed:
            changed = False
            for rule in stratum:
                label = rule.label or f"rule:{rule.head.predicate}"
                for subst in list(_interpreted_matches(rule, working)):
                    head_values = subst.ground_values(rule.head)
                    if graph is not None:
                        sources = [
                            (atom.predicate, subst.ground_values(atom))
                            for atom in rule.body
                            if isinstance(atom, Atom) and not atom.negated
                        ]
                        graph.add_derivation(
                            label, (rule.head.predicate, head_values), sources
                        )
                    if working.add(rule.head.predicate, head_values):
                        changed = True
    return working


def _relation_map(database):
    return {
        predicate: database.relation(predicate) for predicate in database.predicates()
    }


def _all_polynomials(database, graph, max_depth=24):
    return {
        (predicate, values): graph.polynomial_for(predicate, values, max_depth=max_depth)
        for predicate in database.predicates()
        for values in database.relation(predicate)
    }


class TestCompiledMatchesInterpreted:
    """Differential properties over randomly generated CDSS networks."""

    CONFIG = SimulationConfig(
        epochs=3, max_peers=4, transactions_per_epoch=(2, 6)
    )

    def _epoch_fact_batches(self, spec, workload):
        """Per-epoch (delete_facts, insert_facts) over published relations."""
        batches = []
        for _ in range(self.CONFIG.epochs):
            deletes, inserts = [], []
            for command in workload.epoch_commands():
                relation = published_relation(command.peer, command.relation)
                if command.kind == "delete":
                    deletes.append(Fact(relation, command.values))
                elif command.kind == "modify":
                    deletes.append(Fact(relation, command.old_values))
                    inserts.append(Fact(relation, command.values))
                else:  # insert / conflict
                    inserts.append(Fact(relation, command.values))
            batches.append((deletes, inserts))
        return batches

    @pytest.mark.parametrize("seed", range(1, 9))
    def test_plain_incremental_and_provenance_agree(self, seed):
        rng = random.Random(seed)
        spec = generate_network(rng, self.CONFIG)
        workload = RandomWorkload(spec, self.CONFIG, rng)
        program = CDSS.from_spec(spec).engine.program

        with_provenance = IncrementalEngine(program, track_provenance=True)
        without_provenance = IncrementalEngine(program, track_provenance=False)
        base = Database()

        for epoch, (deletes, inserts) in enumerate(
            self._epoch_fact_batches(spec, workload), start=1
        ):
            for engine in (with_provenance, without_provenance):
                engine.apply_deletions(deletes)
                engine.apply_insertions(inserts)
            for fact in deletes:
                base.remove(fact.predicate, fact.values)
            for fact in inserts:
                base.add(fact.predicate, fact.values)

            context = f"seed {seed} epoch {epoch}"
            reference = interpreted_fixpoint(program, base)
            compiled_plain = evaluate_program(program, base)
            assert _relation_map(compiled_plain) == _relation_map(reference), context

            # Incremental maintenance (both deletion strategies) reaches the
            # same fixpoint as the interpreted from-scratch evaluation.
            assert _relation_map(with_provenance.database) == _relation_map(
                reference
            ), f"{context}: provenance-deletion engine diverged"
            assert _relation_map(without_provenance.database) == _relation_map(
                reference
            ), f"{context}: DRed engine diverged"

            # Provenance: compiled recording produces the same polynomials as
            # the interpreted recorder, tuple by tuple.
            interpreted_graph = ProvenanceGraph()
            interpreted = interpreted_fixpoint(program, base, graph=interpreted_graph)
            compiled_result = evaluate_with_provenance(program, base)
            assert _all_polynomials(
                compiled_result.database, compiled_result.graph
            ) == _all_polynomials(interpreted, interpreted_graph), context
