"""Unit tests for negation stratification."""

import pytest

from repro.datalog.parser import parse_program
from repro.datalog.stratification import (
    dependency_graph,
    is_recursive,
    is_stratifiable,
    stratify,
    stratum_numbers,
)
from repro.errors import StratificationError


class TestStratumNumbers:
    def test_positive_program_single_stratum(self):
        program = parse_program("T(x) :- R(x).\nU(x) :- T(x).")
        numbers = stratum_numbers(program)
        assert numbers["T"] == 0
        assert numbers["U"] == 0

    def test_negation_increases_stratum(self):
        program = parse_program("T(x) :- R(x).\nU(x) :- R(x), not T(x).")
        numbers = stratum_numbers(program)
        assert numbers["U"] == numbers["T"] + 1

    def test_negation_through_recursion_rejected(self):
        program = parse_program("T(x) :- R(x), not U(x).\nU(x) :- R(x), not T(x).")
        with pytest.raises(StratificationError):
            stratum_numbers(program)

    def test_is_stratifiable(self):
        good = parse_program("T(x) :- R(x).\nU(x) :- R(x), not T(x).")
        bad = parse_program("T(x) :- R(x), not T(x).")
        assert is_stratifiable(good)
        assert not is_stratifiable(bad)


class TestStratify:
    def test_strata_order(self):
        program = parse_program(
            "Reach(y) :- Reach(x), Edge(x, y).\n"
            "Reach(x) :- Start(x).\n"
            "Missing(x) :- Node(x), not Reach(x)."
        )
        strata = stratify(program)
        assert len(strata) == 2
        first_heads = {rule.head.predicate for rule in strata[0]}
        second_heads = {rule.head.predicate for rule in strata[1]}
        assert first_heads == {"Reach"}
        assert second_heads == {"Missing"}

    def test_empty_program(self):
        assert stratify(parse_program("")) == []

    def test_all_rules_preserved(self):
        program = parse_program(
            "A(x) :- E(x).\nB(x) :- A(x).\nC(x) :- E(x), not B(x).\nD(x) :- C(x)."
        )
        strata = stratify(program)
        total = sum(len(stratum) for stratum in strata)
        assert total == len(program)


class TestGraphHelpers:
    def test_dependency_graph(self):
        program = parse_program("T(x) :- R(x), not S(x).")
        graph = dependency_graph(program)
        assert ("R", False) in graph["T"]
        assert ("S", True) in graph["T"]

    def test_is_recursive(self):
        recursive = parse_program("P(x, z) :- P(x, y), E(y, z).\nP(x, y) :- E(x, y).")
        flat = parse_program("T(x) :- R(x).")
        assert is_recursive(recursive)
        assert not is_recursive(flat)

    def test_mutual_recursion_detected(self):
        program = parse_program("A(x) :- B(x).\nB(x) :- A(x).\nA(x) :- E(x).")
        assert is_recursive(program)
