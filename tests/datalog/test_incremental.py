"""Unit tests for incremental (insertion/deletion) maintenance."""

import random

import pytest

from repro.datalog.ast import Fact
from repro.datalog.evaluation import Database, evaluate_program
from repro.datalog.incremental import IncrementalEngine, full_recompute
from repro.datalog.parser import parse_program

JOIN_PROGRAM = """
OPS(org, prot, seq) :- O(org, oid), P(prot, pid), S(oid, pid, seq).
"""

TC_PROGRAM = """
Path(x, y) :- Edge(x, y).
Path(x, z) :- Path(x, y), Edge(y, z).
"""


def make_join_engine(track_provenance: bool = True) -> IncrementalEngine:
    program = parse_program(JOIN_PROGRAM)
    base = Database.from_dict(
        {"O": [("ecoli", 1)], "P": [("lacZ", 10)], "S": [(1, 10, "ATG")]}
    )
    return IncrementalEngine(program, base, track_provenance=track_provenance)


class TestInsertions:
    def test_initial_fixpoint(self):
        engine = make_join_engine()
        assert engine.database.relation("OPS") == frozenset({("ecoli", "lacZ", "ATG")})

    def test_incremental_insert_joins_with_existing(self):
        engine = make_join_engine()
        result = engine.apply_insertions([Fact("S", (1, 10, "GGG"))])
        assert ("ecoli", "lacZ", "GGG") in engine.database.relation("OPS")
        assert result.inserted_count >= 1

    def test_duplicate_insert_is_noop(self):
        engine = make_join_engine()
        result = engine.apply_insertions([Fact("S", (1, 10, "ATG"))])
        assert result.inserted_count == 0

    def test_matches_full_recomputation(self):
        program = parse_program(TC_PROGRAM)
        engine = IncrementalEngine(program, track_provenance=False)
        edges = [(1, 2), (2, 3), (3, 4), (4, 5), (2, 5)]
        for edge in edges:
            engine.apply_insertions([Fact("Edge", edge)])
        expected = full_recompute(program, Database.from_dict({"Edge": edges}))
        assert engine.database.relation("Path") == expected.relation("Path")

    def test_batched_and_single_inserts_agree(self):
        program = parse_program(TC_PROGRAM)
        batched = IncrementalEngine(program)
        single = IncrementalEngine(program)
        edges = [(1, 2), (2, 3), (3, 1), (3, 4)]
        batched.apply_insertions([Fact("Edge", edge) for edge in edges])
        for edge in edges:
            single.apply_insertions([Fact("Edge", edge)])
        assert batched.database.relation("Path") == single.database.relation("Path")

    def test_program_mutation_after_construction_is_honored(self):
        # Program is mutable; rules added after the engine was built must
        # fire on subsequently inserted facts (the compilation refreshes).
        from repro.datalog.parser import parse_rule

        program = parse_program("Copy(x) :- R(x).")
        engine = IncrementalEngine(program, track_provenance=False)
        engine.apply_insertions([Fact("R", (1,))])
        program.add(parse_rule("Twice(x) :- Copy(x), R(x)."))
        result = engine.apply_insertions([Fact("R", (2,))])
        assert engine.database.relation("Copy") == frozenset({(1,), (2,)})
        assert (2,) in engine.database.relation("Twice")
        assert (2,) in result.inserted.get("Twice", set())


class TestDeletions:
    def test_delete_base_removes_derived(self):
        engine = make_join_engine()
        result = engine.apply_deletions([Fact("S", (1, 10, "ATG"))])
        assert ("ecoli", "lacZ", "ATG") not in engine.database.relation("OPS")
        assert result.deleted_count >= 1

    def test_delete_keeps_alternative_derivations(self):
        program = parse_program("T(x) :- R(x).\nT(x) :- Q(x).")
        engine = IncrementalEngine(
            program, Database.from_dict({"R": [(1,)], "Q": [(1,)]})
        )
        engine.apply_deletions([Fact("R", (1,))])
        assert (1,) in engine.database.relation("T")
        engine.apply_deletions([Fact("Q", (1,))])
        assert (1,) not in engine.database.relation("T")

    def test_delete_unknown_fact_is_noop(self):
        engine = make_join_engine()
        result = engine.apply_deletions([Fact("S", (99, 99, "NOPE"))])
        assert result.deleted_count == 0

    def test_deletion_matches_recomputation_with_provenance(self):
        program = parse_program(TC_PROGRAM)
        edges = [(1, 2), (2, 3), (3, 4), (1, 3)]
        engine = IncrementalEngine(program, Database.from_dict({"Edge": edges}))
        engine.apply_deletions([Fact("Edge", (2, 3))])
        remaining = [edge for edge in edges if edge != (2, 3)]
        expected = full_recompute(program, Database.from_dict({"Edge": remaining}))
        assert engine.database.relation("Path") == expected.relation("Path")

    def test_deletion_matches_recomputation_without_provenance(self):
        program = parse_program(TC_PROGRAM)
        edges = [(1, 2), (2, 3), (3, 4), (1, 3)]
        engine = IncrementalEngine(
            program, Database.from_dict({"Edge": edges}), track_provenance=False
        )
        engine.apply_deletions([Fact("Edge", (2, 3))])
        remaining = [edge for edge in edges if edge != (2, 3)]
        expected = full_recompute(program, Database.from_dict({"Edge": remaining}))
        assert engine.database.relation("Path") == expected.relation("Path")

    def test_reinsert_after_delete(self):
        engine = make_join_engine()
        engine.apply_deletions([Fact("S", (1, 10, "ATG"))])
        engine.apply_insertions([Fact("S", (1, 10, "ATG"))])
        assert ("ecoli", "lacZ", "ATG") in engine.database.relation("OPS")


def _state(engine: IncrementalEngine) -> dict[str, frozenset]:
    database = engine.database
    return {predicate: database.relation(predicate) for predicate in database.predicates()}


class TestDeletionStrategyParity:
    """Provenance-based deletion and DRed must produce identical databases,
    especially on programs where tuples have alternative derivations."""

    def _twin_engines(self, program_text, base):
        program_a = parse_program(program_text)
        program_b = parse_program(program_text)
        provenance = IncrementalEngine(
            program_a, Database.from_dict(base), track_provenance=True
        )
        dred = IncrementalEngine(
            program_b, Database.from_dict(base), track_provenance=False
        )
        return provenance, dred

    def test_union_rule_alternative_derivations(self):
        provenance, dred = self._twin_engines(
            "T(x) :- R(x).\nT(x) :- Q(x).",
            {"R": [(1,), (2,)], "Q": [(1,), (3,)]},
        )
        for fact in [Fact("R", (1,)), Fact("Q", (3,)), Fact("Q", (1,))]:
            provenance.apply_deletions([fact])
            dred.apply_deletions([fact])
            assert _state(provenance) == _state(dred)
        assert (1,) not in provenance.database.relation("T")

    def test_diamond_program_keeps_tuple_until_all_paths_die(self):
        diamond = "B(x) :- A(x).\nC(x) :- A(x).\nD(x) :- B(x).\nD(x) :- C(x).\nE(x) :- D(x)."
        provenance, dred = self._twin_engines(diamond, {"A": [(1,)], "B": [(1,)]})
        # A's deletion removes one support; the asserted B fact keeps D and E.
        provenance.apply_deletions([Fact("A", (1,))])
        dred.apply_deletions([Fact("A", (1,))])
        assert _state(provenance) == _state(dred)
        assert (1,) in provenance.database.relation("E")
        provenance.apply_deletions([Fact("B", (1,))])
        dred.apply_deletions([Fact("B", (1,))])
        assert _state(provenance) == _state(dred)
        assert (1,) not in provenance.database.relation("E")

    def test_transitive_closure_with_redundant_edges(self):
        edges = [(1, 2), (2, 3), (1, 3), (3, 4), (2, 4)]
        provenance, dred = self._twin_engines(TC_PROGRAM, {"Edge": edges})
        for edge in [(2, 3), (1, 3), (3, 4)]:
            provenance.apply_deletions([Fact("Edge", edge)])
            dred.apply_deletions([Fact("Edge", edge)])
            assert _state(provenance) == _state(dred)

    @pytest.mark.parametrize("seed", range(1, 11))
    def test_random_interleaved_streams_agree(self, seed):
        rng = random.Random(seed)
        provenance, dred = self._twin_engines(TC_PROGRAM, {})
        alive: list[tuple] = []
        for _ in range(30):
            if alive and rng.random() < 0.4:
                edge = alive.pop(rng.randrange(len(alive)))
                batch = [Fact("Edge", edge)]
                provenance.apply_deletions(batch)
                dred.apply_deletions(batch)
            else:
                edge = (rng.randint(1, 5), rng.randint(1, 5))
                if edge not in alive:
                    alive.append(edge)
                batch = [Fact("Edge", edge)]
                provenance.apply_insertions(batch)
                dred.apply_insertions(batch)
            assert _state(provenance) == _state(dred)
            reference = full_recompute(
                provenance.program, Database.from_dict({"Edge": alive})
            )
            assert provenance.database.relation("Path") == reference.relation("Path")

    def test_reference_database_matches_incremental_state(self):
        for track in (True, False):
            engine = IncrementalEngine(
                parse_program(TC_PROGRAM),
                Database.from_dict({"Edge": [(1, 2), (2, 3), (1, 3)]}),
                track_provenance=track,
            )
            engine.apply_deletions([Fact("Edge", (2, 3))])
            engine.apply_insertions([Fact("Edge", (3, 5))])
            reference = engine.reference_database()
            assert {
                p: reference.relation(p) for p in reference.predicates()
            } == _state(engine)


class TestProvenanceAccess:
    def test_provenance_polynomial_available(self):
        engine = make_join_engine()
        provenance = engine.provenance()
        polynomial = provenance.polynomial("OPS", ("ecoli", "lacZ", "ATG"))
        assert not polynomial.is_zero()

    def test_provenance_disabled_raises(self):
        engine = make_join_engine(track_provenance=False)
        with pytest.raises(Exception):
            engine.provenance()

    def test_recompute_matches_incremental(self):
        engine = make_join_engine()
        engine.apply_insertions([Fact("O", ("yeast", 2)), Fact("S", (2, 10, "CCC"))])
        incremental_state = {
            predicate: engine.database.relation(predicate)
            for predicate in ("O", "P", "S", "OPS")
        }
        engine.recompute()
        for predicate, rows in incremental_state.items():
            assert engine.database.relation(predicate) == rows
