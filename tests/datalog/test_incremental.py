"""Unit tests for incremental (insertion/deletion) maintenance."""

import pytest

from repro.datalog.ast import Fact
from repro.datalog.evaluation import Database, evaluate_program
from repro.datalog.incremental import IncrementalEngine, full_recompute
from repro.datalog.parser import parse_program

JOIN_PROGRAM = """
OPS(org, prot, seq) :- O(org, oid), P(prot, pid), S(oid, pid, seq).
"""

TC_PROGRAM = """
Path(x, y) :- Edge(x, y).
Path(x, z) :- Path(x, y), Edge(y, z).
"""


def make_join_engine(track_provenance: bool = True) -> IncrementalEngine:
    program = parse_program(JOIN_PROGRAM)
    base = Database.from_dict(
        {"O": [("ecoli", 1)], "P": [("lacZ", 10)], "S": [(1, 10, "ATG")]}
    )
    return IncrementalEngine(program, base, track_provenance=track_provenance)


class TestInsertions:
    def test_initial_fixpoint(self):
        engine = make_join_engine()
        assert engine.database.relation("OPS") == frozenset({("ecoli", "lacZ", "ATG")})

    def test_incremental_insert_joins_with_existing(self):
        engine = make_join_engine()
        result = engine.apply_insertions([Fact("S", (1, 10, "GGG"))])
        assert ("ecoli", "lacZ", "GGG") in engine.database.relation("OPS")
        assert result.inserted_count >= 1

    def test_duplicate_insert_is_noop(self):
        engine = make_join_engine()
        result = engine.apply_insertions([Fact("S", (1, 10, "ATG"))])
        assert result.inserted_count == 0

    def test_matches_full_recomputation(self):
        program = parse_program(TC_PROGRAM)
        engine = IncrementalEngine(program, track_provenance=False)
        edges = [(1, 2), (2, 3), (3, 4), (4, 5), (2, 5)]
        for edge in edges:
            engine.apply_insertions([Fact("Edge", edge)])
        expected = full_recompute(program, Database.from_dict({"Edge": edges}))
        assert engine.database.relation("Path") == expected.relation("Path")

    def test_batched_and_single_inserts_agree(self):
        program = parse_program(TC_PROGRAM)
        batched = IncrementalEngine(program)
        single = IncrementalEngine(program)
        edges = [(1, 2), (2, 3), (3, 1), (3, 4)]
        batched.apply_insertions([Fact("Edge", edge) for edge in edges])
        for edge in edges:
            single.apply_insertions([Fact("Edge", edge)])
        assert batched.database.relation("Path") == single.database.relation("Path")


class TestDeletions:
    def test_delete_base_removes_derived(self):
        engine = make_join_engine()
        result = engine.apply_deletions([Fact("S", (1, 10, "ATG"))])
        assert ("ecoli", "lacZ", "ATG") not in engine.database.relation("OPS")
        assert result.deleted_count >= 1

    def test_delete_keeps_alternative_derivations(self):
        program = parse_program("T(x) :- R(x).\nT(x) :- Q(x).")
        engine = IncrementalEngine(
            program, Database.from_dict({"R": [(1,)], "Q": [(1,)]})
        )
        engine.apply_deletions([Fact("R", (1,))])
        assert (1,) in engine.database.relation("T")
        engine.apply_deletions([Fact("Q", (1,))])
        assert (1,) not in engine.database.relation("T")

    def test_delete_unknown_fact_is_noop(self):
        engine = make_join_engine()
        result = engine.apply_deletions([Fact("S", (99, 99, "NOPE"))])
        assert result.deleted_count == 0

    def test_deletion_matches_recomputation_with_provenance(self):
        program = parse_program(TC_PROGRAM)
        edges = [(1, 2), (2, 3), (3, 4), (1, 3)]
        engine = IncrementalEngine(program, Database.from_dict({"Edge": edges}))
        engine.apply_deletions([Fact("Edge", (2, 3))])
        remaining = [edge for edge in edges if edge != (2, 3)]
        expected = full_recompute(program, Database.from_dict({"Edge": remaining}))
        assert engine.database.relation("Path") == expected.relation("Path")

    def test_deletion_matches_recomputation_without_provenance(self):
        program = parse_program(TC_PROGRAM)
        edges = [(1, 2), (2, 3), (3, 4), (1, 3)]
        engine = IncrementalEngine(
            program, Database.from_dict({"Edge": edges}), track_provenance=False
        )
        engine.apply_deletions([Fact("Edge", (2, 3))])
        remaining = [edge for edge in edges if edge != (2, 3)]
        expected = full_recompute(program, Database.from_dict({"Edge": remaining}))
        assert engine.database.relation("Path") == expected.relation("Path")

    def test_reinsert_after_delete(self):
        engine = make_join_engine()
        engine.apply_deletions([Fact("S", (1, 10, "ATG"))])
        engine.apply_insertions([Fact("S", (1, 10, "ATG"))])
        assert ("ecoli", "lacZ", "ATG") in engine.database.relation("OPS")


class TestProvenanceAccess:
    def test_provenance_polynomial_available(self):
        engine = make_join_engine()
        provenance = engine.provenance()
        polynomial = provenance.polynomial("OPS", ("ecoli", "lacZ", "ATG"))
        assert not polynomial.is_zero()

    def test_provenance_disabled_raises(self):
        engine = make_join_engine(track_provenance=False)
        with pytest.raises(Exception):
            engine.provenance()

    def test_recompute_matches_incremental(self):
        engine = make_join_engine()
        engine.apply_insertions([Fact("O", ("yeast", 2)), Fact("S", (2, 10, "CCC"))])
        incremental_state = {
            predicate: engine.database.relation(predicate)
            for predicate in ("O", "P", "S", "OPS")
        }
        engine.recompute()
        for predicate, rows in incremental_state.items():
            assert engine.database.relation(predicate) == rows
