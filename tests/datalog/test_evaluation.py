"""Unit tests for naive/semi-naive datalog evaluation."""

import pytest

from repro.datalog.ast import Fact
from repro.datalog.evaluation import Database, derived_tuples, evaluate_program, evaluate_rule_once
from repro.datalog.parser import parse_program, parse_rule
from repro.errors import DatalogError


class TestDatabase:
    def test_add_and_contains(self):
        db = Database()
        assert db.add("R", (1, 2))
        assert not db.add("R", (1, 2))
        assert db.contains("R", (1, 2))
        assert not db.contains("R", (2, 1))

    def test_remove(self):
        db = Database()
        db.add("R", (1,))
        assert db.remove("R", (1,))
        assert not db.remove("R", (1,))
        assert not db.contains("R", (1,))

    def test_from_dict_and_count(self):
        db = Database.from_dict({"R": [(1,), (2,)], "S": [(3, 4)]})
        assert db.count("R") == 2
        assert db.count() == 3

    def test_copy_is_independent(self):
        db = Database.from_dict({"R": [(1,)]})
        clone = db.copy()
        clone.add("R", (2,))
        assert db.count("R") == 1
        assert clone.count("R") == 2

    def test_merge_and_diff(self):
        left = Database.from_dict({"R": [(1,)]})
        right = Database.from_dict({"R": [(1,), (2,)]})
        diff = right.diff(left)
        assert diff.relation("R") == frozenset({(2,)})
        added = left.merge(right)
        assert added == 1
        assert left.count("R") == 2

    def test_equality_ignores_empty_relations(self):
        left = Database.from_dict({"R": [(1,)]})
        right = Database.from_dict({"R": [(1,)], "S": []})
        assert left == right

    def test_facts_iteration(self):
        db = Database.from_dict({"R": [(1,)]})
        facts = list(db.facts())
        assert facts == [Fact("R", (1,))]

    def test_lookup_builds_and_maintains_index(self):
        db = Database.from_dict({"R": [(1, "a"), (2, "b"), (1, "c")]})
        assert db.lookup("R", 0, 1) == frozenset({(1, "a"), (1, "c")})
        # The index is maintained by later inserts and deletes.
        db.add("R", (1, "d"))
        assert db.lookup("R", 0, 1) == frozenset({(1, "a"), (1, "c"), (1, "d")})
        db.remove("R", (1, "a"))
        assert db.lookup("R", 0, 1) == frozenset({(1, "c"), (1, "d")})
        assert db.lookup("R", 1, "b") == frozenset({(2, "b")})
        assert db.lookup("R", 1, "missing") == frozenset()

    def test_lookup_on_unknown_relation(self):
        db = Database()
        assert db.lookup("Nothing", 0, 1) == frozenset()

    def test_copy_does_not_share_indexes(self):
        db = Database.from_dict({"R": [(1, "a")]})
        db.lookup("R", 0, 1)
        clone = db.copy()
        clone.add("R", (1, "b"))
        assert db.lookup("R", 0, 1) == frozenset({(1, "a")})
        assert clone.lookup("R", 0, 1) == frozenset({(1, "a"), (1, "b")})

    def test_remove_drops_empty_index_buckets(self):
        # Regression: delete-heavy runs used to leave one empty `value ->
        # set()` entry per historical key in every column index.
        db = Database.from_dict({"R": [(i, "x") for i in range(100)]})
        db.lookup("R", 0, 0)  # build the column-0 index
        for i in range(100):
            db.remove("R", (i, "x"))
        buckets = db._indexes["R"][0]
        assert buckets == {}
        # The index keeps working after draining.
        db.add("R", (7, "y"))
        assert db.lookup("R", 0, 7) == frozenset({(7, "y")})
        assert set(buckets) == {7}

    def test_ensure_indexes_prebuilds_and_maintains(self):
        db = Database.from_dict({"R": [(1, "a"), (2, "b")]})
        db.ensure_indexes([("R", 1), ("S", 0)])
        assert db._indexes["R"][1] == {"a": {(1, "a")}, "b": {(2, "b")}}
        # Pre-built indexes are maintained by later mutations, including for
        # relations that were empty at ensure time.
        db.add("S", ("k", 1))
        assert db.lookup("S", 0, "k") == frozenset({("k", 1)})
        db.remove("R", (1, "a"))
        assert db.lookup("R", 1, "a") == frozenset()


class TestEvaluateRuleOnce:
    def test_projection(self):
        rule = parse_rule("T(x) :- R(x, y).")
        db = Database.from_dict({"R": [(1, 2), (1, 3), (4, 5)]})
        assert evaluate_rule_once(rule, db) == {(1,), (4,)}

    def test_join(self):
        rule = parse_rule("T(x, z) :- R(x, y), S(y, z).")
        db = Database.from_dict({"R": [(1, 2)], "S": [(2, 3), (9, 9)]})
        assert evaluate_rule_once(rule, db) == {(1, 3)}

    def test_comparison_filters(self):
        rule = parse_rule("T(x) :- R(x, y), x < y.")
        db = Database.from_dict({"R": [(1, 2), (3, 1)]})
        assert evaluate_rule_once(rule, db) == {(1,)}

    def test_constant_in_body(self):
        rule = parse_rule("T(y) :- R('key', y).")
        db = Database.from_dict({"R": [("key", 1), ("other", 2)]})
        assert evaluate_rule_once(rule, db) == {(1,)}

    def test_skolem_head_produces_labelled_null(self):
        rule = parse_rule("T(SK_id(x), y) :- R(x, y).")
        db = Database.from_dict({"R": [("a", 1)]})
        results = evaluate_rule_once(rule, db)
        assert len(results) == 1
        (null, value), = results
        assert value == 1
        assert null.function == "SK_id"
        assert null.arguments == ("a",)


class TestEvaluateProgram:
    def test_non_recursive_program(self):
        program = parse_program("T(x) :- R(x, y).\nU(x) :- T(x).")
        db = Database.from_dict({"R": [(1, 2)]})
        result = evaluate_program(program, db)
        assert result.relation("U") == frozenset({(1,)})

    def test_input_database_not_mutated(self):
        program = parse_program("T(x) :- R(x).")
        db = Database.from_dict({"R": [(1,)]})
        evaluate_program(program, db)
        assert db.count("T") == 0

    def test_transitive_closure(self):
        program = parse_program(
            "Path(x, y) :- Edge(x, y).\nPath(x, z) :- Path(x, y), Edge(y, z)."
        )
        db = Database.from_dict({"Edge": [(1, 2), (2, 3), (3, 4)]})
        result = evaluate_program(program, db)
        assert (1, 4) in result.relation("Path")
        assert result.count("Path") == 6

    def test_transitive_closure_with_cycle_terminates(self):
        program = parse_program(
            "Path(x, y) :- Edge(x, y).\nPath(x, z) :- Path(x, y), Edge(y, z)."
        )
        db = Database.from_dict({"Edge": [(1, 2), (2, 1)]})
        result = evaluate_program(program, db)
        assert result.count("Path") == 4

    def test_mutual_recursion(self):
        program = parse_program(
            "Even(x) :- Zero(x).\n"
            "Even(y) :- Odd(x), Succ(x, y).\n"
            "Odd(y) :- Even(x), Succ(x, y)."
        )
        db = Database.from_dict({"Zero": [(0,)], "Succ": [(i, i + 1) for i in range(6)]})
        result = evaluate_program(program, db)
        assert (4,) in result.relation("Even")
        assert (5,) in result.relation("Odd")
        assert (5,) not in result.relation("Even")

    def test_stratified_negation(self):
        program = parse_program(
            "Reach(x) :- Start(x).\n"
            "Reach(y) :- Reach(x), Edge(x, y).\n"
            "Unreached(x) :- Node(x), not Reach(x)."
        )
        db = Database.from_dict(
            {
                "Start": [(1,)],
                "Edge": [(1, 2)],
                "Node": [(1,), (2,), (3,)],
            }
        )
        result = evaluate_program(program, db)
        assert result.relation("Unreached") == frozenset({(3,)})

    def test_max_iterations_guard(self):
        program = parse_program(
            "Path(x, y) :- Edge(x, y).\nPath(x, z) :- Path(x, y), Edge(y, z)."
        )
        db = Database.from_dict({"Edge": [(i, i + 1) for i in range(50)]})
        with pytest.raises(DatalogError):
            evaluate_program(program, db, max_iterations=2)

    def test_derived_tuples_only_returns_new(self):
        program = parse_program("T(x) :- R(x).")
        db = Database.from_dict({"R": [(1,)]})
        delta = derived_tuples(program, db)
        assert delta.relation("T") == frozenset({(1,)})
        assert delta.count("R") == 0

    def test_skolem_composition_terminates(self):
        # A cyclic split/join mapping pair: labelled nulls must not cascade
        # into ever-new values.
        program = parse_program(
            "B(x, SK_id(x)) :- A(x).\n"
            "A(x) :- B(x, y)."
        )
        db = Database.from_dict({"A": [("seed",)]})
        result = evaluate_program(program, db)
        assert result.count("A") == 1
        assert result.count("B") == 1
