"""Regression tests for plan-cache correctness under mutation and eviction."""

import pytest

from repro.datalog import plan as plan_module
from repro.datalog.ast import Atom, Program, Rule, Variable
from repro.datalog.evaluation import Database
from repro.datalog.incremental import IncrementalEngine
from repro.datalog.plan import (
    cached_program_count,
    clear_plan_caches,
    compile_program,
    evict_program,
)


def _rule(head: str, head_vars, body_pred: str, body_vars) -> Rule:
    return Rule(
        head=Atom(head, tuple(Variable(v) for v in head_vars)),
        body=(Atom(body_pred, tuple(Variable(v) for v in body_vars)),),
    )


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_plan_caches()
    yield
    clear_plan_caches()


class TestProgramSnapshot:
    def test_cached_compilation_is_immune_to_later_mutation(self):
        # A program is compiled, then mutated: a later rule re-registers the
        # body predicate S at a different arity.  The cache entry for the
        # *original* structure must keep serving the original program — not a
        # live alias that silently grew the extra rule.
        program = Program([_rule("D", ["x"], "S", ["x"])])
        compile_program(program)
        program.add(_rule("S", ["x", "y"], "T", ["x", "y"]))  # arity change for S
        compile_program(program)

        twin = Program([_rule("D", ["x"], "S", ["x"])])
        compiled = compile_program(twin)
        assert tuple(compiled.program.rules) == tuple(twin.rules)
        # And the compiled plans match the one-rule structure.
        assert len(compiled.rules) == 1

    def test_same_structure_shares_compilation(self):
        first = compile_program(Program([_rule("D", ["x"], "S", ["x"])]))
        second = compile_program(Program([_rule("D", ["x"], "S", ["x"])]))
        assert first is second


class TestDefensiveEviction:
    def test_engine_schema_change_evicts_old_entry(self):
        program = Program([_rule("D", ["x"], "S", ["x"])])
        engine = IncrementalEngine(program, track_provenance=False)
        old_key = tuple(program.rules)
        assert old_key in plan_module._PROGRAM_CACHE
        # Schema change: S becomes an IDB predicate at arity 2.
        program.add(_rule("S", ["x", "y"], "T", ["x", "y"]))
        engine.compiled  # triggers recompilation + defensive eviction
        assert old_key not in plan_module._PROGRAM_CACHE
        assert tuple(program.rules) in plan_module._PROGRAM_CACHE

    def test_engine_still_evaluates_after_schema_change(self):
        program = Program([_rule("D", ["x"], "S", ["x"])])
        engine = IncrementalEngine(program, track_provenance=False)
        from repro.datalog.ast import Fact

        engine.apply_insertions([Fact("S", ("a",))])
        assert engine.database.contains("D", ("a",))
        program.add(_rule("S", ["x", "y"], "T", ["x", "y"]))
        engine.apply_insertions([Fact("T", ("b", "c"))])
        assert engine.database.contains("S", ("b", "c"))

    def test_evict_program_api(self):
        program = Program([_rule("D", ["x"], "S", ["x"])])
        compile_program(program)
        assert evict_program(program) is True
        assert evict_program(program) is False  # already gone

    def test_fifo_eviction_respects_limit(self):
        limit = plan_module._PROGRAM_CACHE_LIMIT
        for index in range(limit + 10):
            compile_program(Program([_rule(f"D{index}", ["x"], "S", ["x"])]))
        assert cached_program_count() <= limit
        # The most recent entries survive; the oldest were evicted.
        newest = tuple(Program([_rule(f"D{limit + 9}", ["x"], "S", ["x"])]).rules)
        oldest = tuple(Program([_rule("D0", ["x"], "S", ["x"])]).rules)
        assert newest in plan_module._PROGRAM_CACHE
        assert oldest not in plan_module._PROGRAM_CACHE
