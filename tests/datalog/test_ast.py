"""Unit tests for the datalog AST: terms, atoms, rules, programs."""

import pytest

from repro.datalog.ast import (
    Atom,
    Comparison,
    Constant,
    Fact,
    Program,
    Rule,
    SkolemTerm,
    Variable,
    make_atom,
    term_variables,
)
from repro.errors import DatalogError, UnsafeRuleError


class TestTerms:
    def test_variable_equality(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_constant_wraps_value(self):
        assert Constant(5).value == 5
        assert Constant("abc").value == "abc"

    def test_skolem_term_is_ground_without_variables(self):
        term = SkolemTerm("SK_f", ("a", 1))
        assert term.is_ground

    def test_skolem_term_not_ground_with_variable(self):
        term = SkolemTerm("SK_f", (Variable("x"),))
        assert not term.is_ground

    def test_nested_skolem_groundness(self):
        inner = SkolemTerm("SK_g", (Variable("y"),))
        outer = SkolemTerm("SK_f", (inner,))
        assert not outer.is_ground

    def test_skolem_terms_equal_by_structure(self):
        assert SkolemTerm("f", (1, 2)) == SkolemTerm("f", (1, 2))
        assert SkolemTerm("f", (1, 2)) != SkolemTerm("f", (2, 1))
        assert SkolemTerm("f", (1,)) != SkolemTerm("g", (1,))

    def test_term_variables_recurses_into_skolems(self):
        term = SkolemTerm("f", (Variable("x"), SkolemTerm("g", (Variable("y"),))))
        assert {v.name for v in term_variables(term)} == {"x", "y"}


class TestAtoms:
    def test_arity(self):
        atom = Atom("R", (Constant(1), Variable("x")))
        assert atom.arity == 2

    def test_variables(self):
        atom = Atom("R", (Constant(1), Variable("x"), SkolemTerm("f", (Variable("y"),))))
        assert {v.name for v in atom.variables()} == {"x", "y"}

    def test_is_ground(self):
        assert Atom("R", (Constant(1),)).is_ground()
        assert not Atom("R", (Variable("x"),)).is_ground()

    def test_negate_flips_flag(self):
        atom = Atom("R", (Constant(1),))
        assert atom.negate().negated
        assert not atom.negate().negate().negated

    def test_make_atom_heuristics(self):
        atom = make_atom("R", "X", "?y", 3, "lower")
        assert isinstance(atom.terms[0], Variable)
        assert isinstance(atom.terms[1], Variable)
        assert atom.terms[1].name == "y"
        assert isinstance(atom.terms[2], Constant)
        assert isinstance(atom.terms[3], Constant)


class TestComparison:
    def test_supported_operators(self):
        comparison = Comparison("<", Variable("x"), Constant(3))
        assert comparison.evaluate(2, 3)
        assert not comparison.evaluate(4, 3)

    def test_unknown_operator_rejected(self):
        with pytest.raises(DatalogError):
            Comparison("~~", Variable("x"), Constant(3))

    def test_mixed_type_comparison_is_false(self):
        comparison = Comparison("<", Variable("x"), Constant(3))
        assert comparison.evaluate("a", 3) is False

    def test_equality_operators(self):
        assert Comparison("=", Variable("x"), Variable("y")).evaluate(1, 1)
        assert Comparison("!=", Variable("x"), Variable("y")).evaluate(1, 2)


class TestRules:
    def test_negated_head_rejected(self):
        with pytest.raises(DatalogError):
            Rule(Atom("R", (Variable("x"),), negated=True), ())

    def test_safe_rule_validates(self):
        rule = Rule(
            Atom("T", (Variable("x"),)),
            (Atom("R", (Variable("x"), Variable("y"))),),
        )
        rule.validate()

    def test_unsafe_head_variable(self):
        rule = Rule(Atom("T", (Variable("z"),)), (Atom("R", (Variable("x"),)),))
        with pytest.raises(UnsafeRuleError):
            rule.validate()

    def test_unsafe_negated_variable(self):
        rule = Rule(
            Atom("T", (Variable("x"),)),
            (
                Atom("R", (Variable("x"),)),
                Atom("S", (Variable("y"),), negated=True),
            ),
        )
        with pytest.raises(UnsafeRuleError):
            rule.validate()

    def test_unsafe_comparison_variable(self):
        rule = Rule(
            Atom("T", (Variable("x"),)),
            (Atom("R", (Variable("x"),)), Comparison("<", Variable("z"), Constant(3))),
        )
        with pytest.raises(UnsafeRuleError):
            rule.validate()

    def test_skolem_in_head_is_safe_when_arguments_bound(self):
        rule = Rule(
            Atom("T", (SkolemTerm("f", (Variable("x"),)),)),
            (Atom("R", (Variable("x"),)),),
        )
        rule.validate()

    def test_body_partitions(self):
        rule = Rule(
            Atom("T", (Variable("x"),)),
            (
                Atom("R", (Variable("x"),)),
                Atom("S", (Variable("x"),), negated=True),
                Comparison(">", Variable("x"), Constant(0)),
            ),
        )
        assert len(rule.positive_body) == 1
        assert len(rule.negative_body) == 1
        assert len(rule.comparisons) == 1

    def test_is_fact(self):
        assert Rule(Atom("R", (Constant(1),)), ()).is_fact
        assert not Rule(Atom("R", (Variable("x"),)), (Atom("S", (Variable("x"),)),)).is_fact

    def test_rename_variables(self):
        rule = Rule(
            Atom("T", (Variable("x"),)),
            (Atom("R", (Variable("x"), Variable("y"))),),
        )
        renamed = rule.rename_variables("_1")
        assert {v.name for v in renamed.head.variables()} == {"x_1"}
        assert {v.name for v in renamed.body[0].variables()} == {"x_1", "y_1"}


class TestProgram:
    def _simple_program(self) -> Program:
        program = Program()
        program.add(
            Rule(Atom("T", (Variable("x"),)), (Atom("R", (Variable("x"),)),))
        )
        program.add(
            Rule(Atom("U", (Variable("x"),)), (Atom("T", (Variable("x"),)),))
        )
        return program

    def test_idb_and_edb_predicates(self):
        program = self._simple_program()
        assert program.idb_predicates == {"T", "U"}
        assert program.edb_predicates == {"R"}

    def test_rules_for(self):
        program = self._simple_program()
        assert len(program.rules_for("T")) == 1
        assert program.rules_for("missing") == []

    def test_add_validates(self):
        program = Program()
        with pytest.raises(UnsafeRuleError):
            program.add(Rule(Atom("T", (Variable("x"),)), ()))

    def test_dependency_edges(self):
        program = self._simple_program()
        edges = set(program.dependency_edges())
        assert ("T", "R", False) in edges
        assert ("U", "T", False) in edges

    def test_len_and_iter(self):
        program = self._simple_program()
        assert len(program) == 2
        assert len(list(program)) == 2


class TestFact:
    def test_fact_values_tuple(self):
        fact = Fact("R", [1, 2])
        assert fact.values == (1, 2)
        assert fact.arity == 2
