"""Unit tests for provenance-annotated datalog evaluation."""

from repro.datalog.evaluation import Database, evaluate_program
from repro.datalog.parser import parse_program
from repro.datalog.provenance_eval import (
    default_variable_namer,
    evaluate_with_provenance,
    provenance_for_all,
)
from repro.provenance import BooleanSemiring, CountingSemiring, TropicalSemiring
from repro.provenance.polynomial import Monomial

JOIN_PROGRAM = """
OPS(org, prot, seq) :- O(org, oid), P(prot, pid), S(oid, pid, seq).
"""

UNION_PROGRAM = """
T(x) :- R(x).
T(x) :- Q(x).
"""


class TestProvenanceEvaluation:
    def test_database_matches_plain_evaluation(self):
        program = parse_program(JOIN_PROGRAM)
        db = Database.from_dict(
            {"O": [("ecoli", 1)], "P": [("lacZ", 10)], "S": [(1, 10, "ATG")]}
        )
        plain = evaluate_program(program, db)
        with_provenance = evaluate_with_provenance(program, db)
        assert plain.relation("OPS") == with_provenance.database.relation("OPS")

    def test_join_polynomial_is_product(self):
        program = parse_program(JOIN_PROGRAM)
        db = Database.from_dict(
            {"O": [("ecoli", 1)], "P": [("lacZ", 10)], "S": [(1, 10, "ATG")]}
        )
        result = evaluate_with_provenance(program, db)
        polynomial = result.polynomial("OPS", ("ecoli", "lacZ", "ATG"))
        assert polynomial.monomial_count() == 1
        (monomial,) = polynomial.terms()
        assert monomial.degree == 3

    def test_union_polynomial_is_sum(self):
        program = parse_program(UNION_PROGRAM)
        db = Database.from_dict({"R": [(1,)], "Q": [(1,)]})
        result = evaluate_with_provenance(program, db)
        polynomial = result.polynomial("T", (1,))
        assert polynomial.monomial_count() == 2

    def test_counting_semiring_counts_derivations(self):
        program = parse_program(UNION_PROGRAM)
        db = Database.from_dict({"R": [(1,)], "Q": [(1,)]})
        result = evaluate_with_provenance(program, db)
        polynomial = result.polynomial("T", (1,))
        counting = CountingSemiring()
        count = polynomial.evaluate(
            counting, {variable: 1 for variable in polynomial.variables()}
        )
        assert count == 2

    def test_tropical_semiring_cheapest_derivation(self):
        program = parse_program(UNION_PROGRAM)
        db = Database.from_dict({"R": [(1,)], "Q": [(1,)]})
        result = evaluate_with_provenance(program, db)
        polynomial = result.polynomial("T", (1,))
        costs = {}
        for variable in polynomial.variables():
            costs[variable] = 5.0 if variable.startswith("R") else 2.0
        assert polynomial.evaluate(TropicalSemiring(), costs) == 2.0

    def test_trusted_respects_variable_set(self):
        program = parse_program(UNION_PROGRAM)
        db = Database.from_dict({"R": [(1,)], "Q": [(1,)]})
        result = evaluate_with_provenance(program, db)
        r_variable = default_variable_namer("R", (1,))
        q_variable = default_variable_namer("Q", (1,))
        assert result.trusted("T", (1,), {r_variable})
        assert result.trusted("T", (1,), {q_variable})
        assert not result.trusted("T", (1,), set())

    def test_recursive_program_provenance_terminates(self):
        program = parse_program(
            "Path(x, y) :- Edge(x, y).\nPath(x, z) :- Path(x, y), Edge(y, z)."
        )
        db = Database.from_dict({"Edge": [(1, 2), (2, 1)]})
        result = evaluate_with_provenance(program, db)
        polynomial = result.polynomial("Path", (1, 1), max_depth=8)
        assert not polynomial.is_zero()

    def test_provenance_for_all(self):
        program = parse_program(UNION_PROGRAM)
        db = Database.from_dict({"R": [(1,), (2,)], "Q": [(1,)]})
        result = evaluate_with_provenance(program, db)
        polynomials = provenance_for_all(result, ["T"])
        assert set(polynomials) == {("T", (1,)), ("T", (2,))}

    def test_base_fact_in_idb_relation_gets_variable(self):
        # A tuple asserted directly into a derived relation keeps its own
        # provenance variable (per-tuple EDB/IDB split).
        program = parse_program("T(x) :- R(x).")
        db = Database.from_dict({"R": [(1,)], "T": [(2,)]})
        result = evaluate_with_provenance(program, db)
        polynomial = result.polynomial("T", (2,))
        assert polynomial.variables() == {default_variable_namer("T", (2,))}
