"""Unit tests for skolemisation of existential variables."""

from repro.datalog.ast import Atom, SkolemTerm, Variable
from repro.datalog.parser import parse_atom
from repro.datalog.skolem import (
    SkolemFactory,
    is_labelled_null,
    rules_with_skolemized_heads,
    skolemize_head,
)


class TestSkolemFactory:
    def test_deterministic_function_names(self):
        factory = SkolemFactory()
        first = factory.function_name("M_CA", "oid")
        second = factory.function_name("M_CA", "oid")
        assert first == second

    def test_distinct_names_per_variable_and_mapping(self):
        factory = SkolemFactory()
        assert factory.function_name("M_CA", "oid") != factory.function_name("M_CA", "pid")
        assert factory.function_name("M_CA", "oid") != factory.function_name("M_X", "oid")

    def test_prefix_respected(self):
        factory = SkolemFactory(prefix="NULL")
        assert factory.function_name("m", "v").startswith("NULL_")

    def test_issued_functions(self):
        factory = SkolemFactory()
        factory.function_name("m", "a")
        factory.function_name("m", "b")
        assert len(factory.issued_functions()) == 2


class TestSkolemizeHead:
    def test_no_existentials_unchanged(self):
        heads = [parse_atom("T(x, y)")]
        body_vars = {Variable("x"), Variable("y")}
        result = skolemize_head(heads, body_vars, "m", SkolemFactory())
        assert result == heads

    def test_existential_replaced_by_skolem(self):
        heads = [parse_atom("O(org, oid)")]
        body_vars = {Variable("org")}
        result = skolemize_head(heads, body_vars, "m", SkolemFactory())
        oid_term = result[0].terms[1]
        assert isinstance(oid_term, SkolemTerm)
        assert oid_term.arguments == (Variable("org"),)

    def test_same_existential_shared_across_head_atoms(self):
        heads = [parse_atom("O(org, oid)"), parse_atom("S(oid, seq)")]
        body_vars = {Variable("org"), Variable("seq")}
        result = skolemize_head(heads, body_vars, "m", SkolemFactory())
        assert result[0].terms[1] == result[1].terms[0]

    def test_two_existentials_get_different_functions(self):
        heads = [parse_atom("S(oid, pid, seq)")]
        body_vars = {Variable("seq")}
        result = skolemize_head(heads, body_vars, "m", SkolemFactory())
        oid_term, pid_term, _ = result[0].terms
        assert isinstance(oid_term, SkolemTerm)
        assert isinstance(pid_term, SkolemTerm)
        assert oid_term.function != pid_term.function


class TestLabelledNulls:
    def test_is_labelled_null(self):
        assert is_labelled_null(SkolemTerm("SK_f", ("a",)))
        assert not is_labelled_null(SkolemTerm("SK_f", (Variable("x"),)))
        assert not is_labelled_null("plain value")

    def test_rules_with_skolemized_heads(self):
        body = [parse_atom("OPS(org, prot, seq)")]
        heads = [parse_atom("O(org, oid)"), parse_atom("P(prot, pid)")]
        rules = rules_with_skolemized_heads(body, heads, "M_CA", SkolemFactory())
        assert len(rules) == 2
        for rule in rules:
            rule.validate()
            assert rule.label == "M_CA"
