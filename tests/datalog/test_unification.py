"""Unit tests for substitutions, matching and unification."""

from repro.datalog.ast import Atom, Constant, SkolemTerm, Variable
from repro.datalog.unification import Substitution, match_atom, match_term, unify_terms


class TestSubstitution:
    def test_bind_new_variable(self):
        subst = Substitution()
        extended = subst.bind(Variable("x"), 1)
        assert extended is not None
        assert extended.get(Variable("x")) == 1
        # Original substitution is unchanged.
        assert Variable("x") not in subst

    def test_bind_conflicting_value_fails(self):
        subst = Substitution({Variable("x"): 1})
        assert subst.bind(Variable("x"), 2) is None

    def test_bind_same_value_succeeds(self):
        subst = Substitution({Variable("x"): 1})
        assert subst.bind(Variable("x"), 1) is subst

    def test_apply_term_constant_and_variable(self):
        subst = Substitution({Variable("x"): 7})
        assert subst.apply_term(Constant(3)) == 3
        assert subst.apply_term(Variable("x")) == 7
        assert subst.apply_term(Variable("unbound")) == Variable("unbound")

    def test_apply_term_builds_ground_skolem(self):
        subst = Substitution({Variable("x"): "E. coli"})
        value = subst.apply_term(SkolemTerm("f", (Variable("x"),)))
        assert isinstance(value, SkolemTerm)
        assert value.is_ground
        assert value.arguments == ("E. coli",)

    def test_apply_atom(self):
        subst = Substitution({Variable("x"): 1})
        atom = subst.apply_atom(Atom("R", (Variable("x"), Variable("y"))))
        assert atom.terms[0] == Constant(1)
        assert atom.terms[1] == Variable("y")

    def test_ground_values(self):
        subst = Substitution({Variable("x"): 1, Variable("y"): 2})
        values = subst.ground_values(Atom("R", (Variable("x"), Variable("y"))))
        assert values == (1, 2)

    def test_equality_and_hash(self):
        a = Substitution({Variable("x"): 1})
        b = Substitution({Variable("x"): 1})
        assert a == b
        assert hash(a) == hash(b)


class TestMatching:
    def test_match_constant(self):
        assert match_term(Constant(1), 1, Substitution()) is not None
        assert match_term(Constant(1), 2, Substitution()) is None

    def test_match_variable_binds(self):
        result = match_term(Variable("x"), 5, Substitution())
        assert result is not None
        assert result.get(Variable("x")) == 5

    def test_match_skolem_structure(self):
        pattern = SkolemTerm("f", (Variable("x"),))
        value = SkolemTerm("f", ("E. coli",))
        result = match_term(pattern, value, Substitution())
        assert result is not None
        assert result.get(Variable("x")) == "E. coli"

    def test_match_skolem_wrong_function(self):
        pattern = SkolemTerm("f", (Variable("x"),))
        assert match_term(pattern, SkolemTerm("g", ("a",)), Substitution()) is None

    def test_match_skolem_against_scalar_fails(self):
        pattern = SkolemTerm("f", (Variable("x"),))
        assert match_term(pattern, "not-a-skolem", Substitution()) is None

    def test_match_atom_repeated_variable(self):
        atom = Atom("R", (Variable("x"), Variable("x")))
        assert match_atom(atom, (1, 1)) is not None
        assert match_atom(atom, (1, 2)) is None

    def test_match_atom_wrong_arity(self):
        assert match_atom(Atom("R", (Variable("x"),)), (1, 2)) is None


class TestUnification:
    def test_unify_variable_with_constant(self):
        result = unify_terms(Variable("x"), Constant(3))
        assert result is not None
        assert result.apply_term(Variable("x")) == 3

    def test_unify_two_variables(self):
        result = unify_terms(Variable("x"), Variable("y"))
        assert result is not None

    def test_unify_mismatched_constants(self):
        assert unify_terms(Constant(1), Constant(2)) is None

    def test_unify_skolems_structurally(self):
        left = SkolemTerm("f", (Variable("x"), Constant(2)))
        right = SkolemTerm("f", (Constant(1), Variable("y")))
        result = unify_terms(left, right)
        assert result is not None
        assert result.apply_term(Variable("x")) == 1
        assert result.apply_term(Variable("y")) == 2

    def test_unify_skolems_different_functions(self):
        assert unify_terms(SkolemTerm("f", ()), SkolemTerm("g", ())) is None
