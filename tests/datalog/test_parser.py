"""Unit tests for the datalog text parser."""

import pytest

from repro.datalog.ast import Constant, SkolemTerm, Variable
from repro.datalog.parser import parse_atom, parse_fact, parse_program, parse_rule
from repro.errors import DatalogParseError


class TestParseAtom:
    def test_variables_and_constants(self):
        atom = parse_atom("R(x, 'abc', 42)")
        assert atom.predicate == "R"
        assert isinstance(atom.terms[0], Variable)
        assert atom.terms[1] == Constant("abc")
        assert atom.terms[2] == Constant(42)

    def test_floats_and_booleans_and_null(self):
        atom = parse_atom("R(1.5, true, false, null)")
        assert atom.terms[0] == Constant(1.5)
        assert atom.terms[1] == Constant(True)
        assert atom.terms[2] == Constant(False)
        assert atom.terms[3] == Constant(None)

    def test_question_mark_variables(self):
        atom = parse_atom("R(?x, ?Y)")
        assert atom.terms[0] == Variable("x")
        assert atom.terms[1] == Variable("Y")

    def test_skolem_term(self):
        atom = parse_atom("R(SK_oid(org), seq)")
        assert isinstance(atom.terms[0], SkolemTerm)
        assert atom.terms[0].function == "SK_oid"
        assert atom.terms[0].arguments == (Variable("org"),)

    def test_empty_argument_list(self):
        atom = parse_atom("Empty()")
        assert atom.arity == 0

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DatalogParseError):
            parse_atom("R(x) extra")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(DatalogParseError):
            parse_atom("R(x")


class TestParseRule:
    def test_simple_rule(self):
        rule = parse_rule("T(x) :- R(x, y).")
        assert rule.head.predicate == "T"
        assert len(rule.body) == 1

    def test_rule_without_period(self):
        rule = parse_rule("T(x) :- R(x, y)")
        assert rule.head.predicate == "T"

    def test_join_rule(self):
        rule = parse_rule("OPS(org, prot, seq) :- O(org, oid), P(prot, pid), S(oid, pid, seq).")
        assert len(rule.positive_body) == 3

    def test_negation(self):
        rule = parse_rule("T(x) :- R(x), not S(x).")
        assert len(rule.negative_body) == 1

    def test_comparison(self):
        rule = parse_rule("T(x) :- R(x, y), x != y.")
        assert len(rule.comparisons) == 1

    def test_labelled_rule(self):
        rule = parse_rule("[m1] T(x) :- R(x).")
        assert rule.label == "m1"

    def test_ground_fact_rule(self):
        rule = parse_rule("R('E. coli', 17).")
        assert rule.is_fact

    def test_unsafe_rule_rejected(self):
        with pytest.raises(Exception):
            parse_rule("T(z) :- R(x).")

    def test_skolem_head(self):
        rule = parse_rule("S(SK_oid(org), seq) :- OPS(org, prot, seq).")
        assert isinstance(rule.head.terms[0], SkolemTerm)

    def test_quoted_string_with_spaces(self):
        rule = parse_rule("R('E. coli', x) :- S(x).")
        assert rule.head.terms[0] == Constant("E. coli")


class TestParseFact:
    def test_simple_fact(self):
        fact = parse_fact("O('E. coli', 17).")
        assert fact.predicate == "O"
        assert fact.values == ("E. coli", 17)

    def test_ground_skolem_in_fact(self):
        fact = parse_fact("S(SK_oid('E. coli'), 'ATG').")
        assert isinstance(fact.values[0], SkolemTerm)
        assert fact.values[0].is_ground

    def test_non_ground_fact_rejected(self):
        with pytest.raises(DatalogParseError):
            parse_fact("O(x, 17).")


class TestParseProgram:
    def test_multiple_rules(self):
        program = parse_program(
            """
            % the Figure-2 join mapping
            OPS(org, prot, seq) :- O(org, oid), P(prot, pid), S(oid, pid, seq).
            # and a projection
            Orgs(org) :- OPS(org, prot, seq).
            """
        )
        assert len(program) == 2
        assert program.idb_predicates == {"OPS", "Orgs"}

    def test_comments_ignored(self):
        program = parse_program("% nothing here\n# nor here\nT(x) :- R(x).")
        assert len(program) == 1

    def test_string_containing_period(self):
        program = parse_program("R('E. coli', 1).\nT(x) :- R(x, y).")
        assert len(program) == 2

    def test_empty_program(self):
        assert len(parse_program("")) == 0

    def test_roundtrip_through_repr(self):
        rule = parse_rule("T(x) :- R(x, y), not S(x).")
        assert "not" in repr(rule)


class TestPeerQualifiedAtomsAndTgds:
    def test_qualified_atom(self):
        atom = parse_atom("@Alaska.O(org, oid)")
        assert atom.predicate == "Alaska.O"
        assert len(atom.terms) == 2

    def test_qualified_rule(self):
        rule = parse_rule(
            "[m1] @Crete.OPS(org, prot, seq) :- @Alaska.O(org, oid), "
            "@Alaska.P(prot, pid), @Alaska.S(oid, pid, seq)."
        )
        assert rule.label == "m1"
        assert rule.head.predicate == "Crete.OPS"
        assert rule.body_predicates() == {"Alaska.O", "Alaska.P", "Alaska.S"}

    def test_tgd_multi_head_with_existentials(self):
        from repro.datalog.parser import parse_tgd

        tgd = parse_tgd(
            "[M_CA] @Alaska.O(org, oid), @Alaska.P(prot, pid), "
            "@Alaska.S(oid, pid, seq) :- @Crete.OPS(org, prot, seq)."
        )
        assert tgd.label == "M_CA"
        assert len(tgd.heads) == 3
        assert tgd.body[0].predicate == "Crete.OPS"

    def test_tgd_rejects_negation_and_comparisons(self):
        from repro.datalog.parser import parse_tgd

        with pytest.raises(DatalogParseError, match="negation"):
            parse_tgd("[M] @B.R(x) :- @A.R(x), not @A.S(x).")
        with pytest.raises(DatalogParseError, match="comparisons"):
            parse_tgd("[M] @B.R(x) :- @A.R(x), x > 1.")

    def test_program_with_qualified_atoms_splits_correctly(self):
        program = parse_program(
            "@B.R(x) :- @A.R(x).\n@C.R(x) :- @B.R(x)."
        )
        assert len(program) == 2
        assert program.idb_predicates == {"B.R", "C.R"}

    def test_decimal_numbers_survive_statement_splitting(self):
        program = parse_program("T(x) :- R(x, y), y > 1.5.")
        assert len(program) == 1
