"""End-to-end observability: parity views, determinism, overhead guard.

* Satellite parity: the legacy accessors (`Network.message_stats`,
  `ExchangeEngine.statistics`, async `report.runtime`) are thin views over
  the shared metrics registry and must agree with it exactly.
* Determinism: two same-seed Figure-2 runs produce byte-identical Chrome
  trace JSON and identical metrics snapshots.
* Overhead: with no tracer installed, the instrumented executor path stays
  within a few percent of an uninstrumented backend (nominal budget 2%;
  the assertion leaves headroom for scheduler noise).
"""

import time

from repro.api.builder import NetworkBuilder
from repro.datalog.evaluation import Database
from repro.datalog.executor import PythonExecutionBackend
from repro.datalog.parser import parse_program
from repro.datalog.plan import compile_program
from repro.obs import NULL_SPAN, Observability, validate_metric_keys
from repro.p2p.network import LatencyModel
from repro.trace import run_figure2


def _pair(observe="metrics"):
    builder = NetworkBuilder("pair")
    builder.peer("Source").relation("R", "k", "v", key=["k"])
    builder.peer("Target").relation("R", "k", "v", key=["k"])
    builder.mapping("[M] @Target.R(k, v) :- @Source.R(k, v).")
    if observe is not None:
        builder.observe(observe)
    return builder.build()


class TestMessageStatsParity:
    def test_view_agrees_with_registry(self):
        cdss = _pair()
        cdss.network.set_latency_model(LatencyModel(seed=3))
        cdss.peer("Source").insert("R", (1, "a"))
        cdss.sync()
        stats = cdss.network.message_stats()
        metrics = cdss.obs.metrics
        assert stats["messages"] == int(metrics.counter_value("net.messages.sent"))
        assert stats["bytes"] == int(metrics.counter_value("net.bytes.sent"))
        assert stats["messages"] > 0
        # The per-peer breakdown is exactly the labelled series, and the
        # labelled series rolls up to the unlabelled totals.
        sent = metrics.labelled_counters("net.messages.sent")
        assert sum(sent.values()) == stats["messages"]
        for name, entry in stats["per_peer"].items():
            assert entry["sent"] == int(sent.get(name, 0))
            assert entry["bytes_received"] == int(
                metrics.counter_value("net.bytes.received", label=name)
            )


class TestEngineStatisticsParity:
    def test_view_agrees_with_execution_stats(self):
        cdss = _pair()
        for index in range(3):
            cdss.peer("Source").insert("R", (index, f"v{index}"))
        cdss.sync()
        engine = cdss.engine
        statistics = engine.statistics()
        assert statistics["rules_fired"] == engine.execution_stats.rules_fired
        assert statistics["tuples_derived"] == engine.execution_stats.tuples_derived
        assert statistics["rules_fired"] > 0
        assert statistics["tuples_derived"] > 0

    def test_registry_survives_engine_rebuild(self):
        # CDSS rebuilds the exchange engine on schema changes and replays
        # the store; the per-engine view must stay scoped to one engine
        # while the registry keeps the system-wide cumulative count.
        cdss = _pair()
        cdss.peer("Source").insert("R", (1, "a"))
        cdss.sync()
        fired_before = cdss.obs.metrics.counter_value("exchange.rules_fired")
        assert fired_before > 0
        cdss._invalidate_engine()
        engine = cdss.engine  # rebuild + replay
        assert engine.statistics()["rules_fired"] == engine.execution_stats.rules_fired
        assert (
            cdss.obs.metrics.counter_value("exchange.rules_fired") >= fired_before
        )


class TestAsyncRuntimeParity:
    def test_accounting_agrees_with_registry(self):
        cdss = _pair()
        cdss.network.set_latency_model(LatencyModel(seed=3))
        cdss.peer("Source").insert("R", (1, "a"))
        report = cdss.sync(runtime="async")
        runtime = report.runtime
        metrics = cdss.obs.metrics
        assert runtime["transfers"] == int(
            metrics.counter_value("sync.runtime.transfers")
        )
        assert runtime["transfers"] > 0
        assert runtime["backpressure_stalls"] == int(
            metrics.counter_value("sync.runtime.backpressure_stalls")
        )
        assert runtime["max_in_flight"] == metrics.gauge_value(
            "sync.runtime.max_in_flight"
        )
        assert runtime["max_queue_depth_seen"] == metrics.gauge_value(
            "sync.runtime.max_queue_depth"
        )
        assert runtime["virtual_seconds"] == metrics.gauge_value(
            "sync.runtime.virtual_seconds"
        )


class TestReportMetrics:
    def test_off_by_default(self):
        cdss = _pair(observe=None)
        cdss.peer("Source").insert("R", (1, "a"))
        report = cdss.sync()
        assert report.metrics is None
        assert "metrics" not in report.to_dict()

    def test_metrics_mode_attaches_per_run_delta(self):
        cdss = _pair()
        cdss.peer("Source").insert("R", (1, "a"))
        report = cdss.sync()
        assert report.metrics is not None
        assert report.metrics["sync.rounds"] >= 1
        assert report.to_dict()["metrics"] == report.metrics
        # The delta is per-run: a quiescent follow-up sync reports its own
        # (smaller) movement, not the cumulative registry.
        follow_up = cdss.sync()
        assert follow_up.metrics["sync.rounds"] == 1

    def test_sync_trace_true_installs_tracer(self):
        cdss = _pair(observe=None)
        cdss.peer("Source").insert("R", (1, "a"))
        report = cdss.sync(trace=True)
        assert cdss.obs.tracer is not None
        assert report.metrics is not None
        names = {event["name"] for event in cdss.trace_events()}
        assert "sync.round" in names and "publish" in names
        cdss.sync(trace=False)
        assert cdss.obs.tracer is None

    def test_snapshot_keys_pass_lint(self):
        cdss = run_figure2(seed=5)
        assert validate_metric_keys(cdss.metrics_snapshot()) == []


class TestDeterminism:
    def test_same_seed_runs_are_byte_identical(self):
        from repro.obs import trace_json

        first = run_figure2(seed=11)
        second = run_figure2(seed=11)
        assert trace_json(first.obs.tracer) == trace_json(second.obs.tracer)
        assert first.metrics_snapshot() == second.metrics_snapshot()

    def test_different_seeds_differ(self):
        from repro.obs import trace_json

        first = run_figure2(seed=11)
        second = run_figure2(seed=12)
        assert trace_json(first.obs.tracer) != trace_json(second.obs.tracer)


class TestDisabledOverhead:
    N = 160

    def _workload(self):
        program = parse_program(
            """
            tc(x, y) :- edge(x, y).
            tc(x, z) :- edge(x, y), tc(y, z).
            """
        )
        compiled = compile_program(program)
        base = Database()
        for index in range(self.N):
            base.add("edge", (index, index + 1))
        return compiled, base

    @staticmethod
    def _time(backend, compiled, base, repeats=7):
        best = float("inf")
        for _ in range(repeats):
            database = base.copy()
            database.ensure_indexes(compiled.demanded_indexes)
            started = time.perf_counter()
            backend.run_program(compiled, database)
            best = min(best, time.perf_counter() - started)
        return best

    def test_disabled_tracer_is_allocation_free(self):
        obs = Observability()
        backend = PythonExecutionBackend()
        backend.observability = obs
        # No tracer installed: the backend resolves to the shared no-op
        # span; nothing is allocated per call.
        assert obs.span("anything", a=1) is NULL_SPAN
        assert backend._tracer() is None

    def test_disabled_tracer_overhead_within_budget(self):
        compiled, base = self._workload()
        bare = PythonExecutionBackend()
        observed = PythonExecutionBackend()
        observed.observability = Observability()  # registry, no tracer

        # Warm both (plan caches, interning) before timing.
        self._time(bare, compiled, base, repeats=1)
        self._time(observed, compiled, base, repeats=1)

        # Nominal budget is 2%; min-of-k interleaved timings are stable,
        # but leave headroom for scheduler noise on shared CI runners.
        # Three attempts, pass on the first that lands under the ceiling.
        ratio = float("inf")
        for _ in range(3):
            bare_best = self._time(bare, compiled, base)
            observed_best = self._time(observed, compiled, base)
            ratio = min(ratio, observed_best / bare_best)
            if ratio < 1.05:
                break
        assert ratio < 1.05, (
            f"disabled-tracer path is {ratio:.3f}x the uninstrumented backend"
        )
