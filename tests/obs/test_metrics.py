"""Unit tests for the metrics registry and the metric-name lint."""

import pytest

from repro.obs import METRIC_NAME_RE, MetricsRegistry, validate_metric_name


class TestNameLint:
    def test_dotted_lowercase_accepted(self):
        for name in ("sync.rounds", "net.bytes.sent", "store.quorum.degraded_writes"):
            assert validate_metric_name(name) == []
            assert METRIC_NAME_RE.match(name)

    def test_labelled_form_accepted(self):
        assert validate_metric_name("net.bytes.sent[Alaska]") == []
        assert validate_metric_name("net.bytes.sent[#archive]") == []

    def test_single_segment_rejected(self):
        assert validate_metric_name("rounds")

    def test_uppercase_and_dashes_rejected(self):
        assert validate_metric_name("Sync.rounds")
        assert validate_metric_name("sync.Rounds")
        assert validate_metric_name("sync-rounds.total")

    def test_diagnostic_code_components_rejected(self):
        # CDSS### is the static analyzer's diagnostic namespace; metric
        # names must not collide with it in any segment.
        assert validate_metric_name("cdss001.fired")
        assert validate_metric_name("lint.cdss013")
        assert validate_metric_name("cdss.fired") == []  # no digits: fine

    def test_registry_raises_on_bad_name(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter_add("BadName", 1)
        with pytest.raises(ValueError):
            registry.gauge_set("cdss007.things", 1)


class TestCounters:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.counter_add("a.b", 2)
        registry.counter_add("a.b", 3)
        assert registry.counter_value("a.b") == 5

    def test_labels_roll_into_total(self):
        registry = MetricsRegistry()
        registry.counter_add("net.messages.sent", 1, label="A")
        registry.counter_add("net.messages.sent", 2, label="B")
        assert registry.counter_value("net.messages.sent") == 3
        assert registry.labelled_counters("net.messages.sent") == {"A": 1, "B": 2}
        assert registry.counter_value("net.messages.sent", label="B") == 2

    def test_snapshot_renders_labels_in_brackets(self):
        registry = MetricsRegistry()
        registry.counter_add("net.messages.sent", 1, label="A")
        snapshot = registry.snapshot()
        assert snapshot["net.messages.sent"] == 1
        assert snapshot["net.messages.sent[A]"] == 1


class TestGaugesAndHistograms:
    def test_gauge_set_overwrites_gauge_max_keeps_peak(self):
        registry = MetricsRegistry()
        registry.gauge_set("q.depth", 4)
        registry.gauge_set("q.depth", 2)
        assert registry.gauge_value("q.depth") == 2
        registry.gauge_max("q.peak", 4)
        registry.gauge_max("q.peak", 2)
        assert registry.gauge_value("q.peak") == 4

    def test_histogram_snapshot_keys(self):
        registry = MetricsRegistry()
        registry.observe("delta.size", 3)
        registry.observe("delta.size", 5)
        snapshot = registry.snapshot()
        assert snapshot["delta.size.count"] == 2
        assert snapshot["delta.size.total"] == 8
        assert snapshot["delta.size.min"] == 3
        assert snapshot["delta.size.max"] == 5


class TestSince:
    def test_counters_diff_and_zero_deltas_drop(self):
        registry = MetricsRegistry()
        registry.counter_add("a.b", 2)
        registry.counter_add("c.d", 1)
        before = registry.snapshot()
        registry.counter_add("a.b", 3)
        delta = registry.since(before)
        assert delta["a.b"] == 3
        assert "c.d" not in delta  # unchanged counters drop out

    def test_gauges_pass_through(self):
        registry = MetricsRegistry()
        registry.gauge_set("g.v", 1)
        before = registry.snapshot()
        registry.gauge_set("g.v", 7)
        assert registry.since(before)["g.v"] == 7

    def test_new_series_appear_whole(self):
        registry = MetricsRegistry()
        before = registry.snapshot()
        registry.counter_add("fresh.series", 4)
        assert registry.since(before)["fresh.series"] == 4
