"""Unit tests for the span tracer, the no-op path, and the Chrome export."""

import json

import pytest

from repro.obs import (
    NULL_SPAN,
    NullTracer,
    Observability,
    Tracer,
    chrome_trace,
    trace_json,
    validate_chrome_trace,
)
from repro.p2p.network import VirtualClock


class TestTracer:
    def test_exit_order_events_with_containment(self):
        tracer = Tracer(VirtualClock())
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
        events = tracer.events()
        assert [event["name"] for event in events] == ["inner", "outer"]
        inner, outer = events
        # Perfetto nests by ts/dur containment: the parent must strictly
        # contain the child even when the virtual clock never advanced.
        assert outer["ts"] < inner["ts"]
        assert outer["ts"] + outer["dur"] > inner["ts"] + inner["dur"]
        assert outer["args"] == {"kind": "test"}

    def test_timestamps_follow_virtual_clock(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        clock.advance(1.5)  # seconds -> 1.5e6 microseconds
        with tracer.span("after.advance"):
            pass
        event = tracer.events()[0]
        assert event["ts"] == pytest.approx(1.5e6)

    def test_events_are_chrome_complete_events(self):
        tracer = Tracer(VirtualClock())
        with tracer.span("x"):
            pass
        event = tracer.events()[0]
        assert event["ph"] == "X"
        assert event["pid"] == 1 and event["tid"] == 1
        assert event["dur"] > 0

    def test_clear_resets(self):
        tracer = Tracer(VirtualClock())
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.events() == []


class TestDisabledPath:
    def test_null_tracer_returns_shared_singleton(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.span("anything", key=1) is NULL_SPAN
        assert tracer.events() == []

    def test_observability_without_tracer_is_null_span(self):
        obs = Observability()
        assert obs.tracer is None
        assert obs.span("anything") is NULL_SPAN
        assert obs.active_tracer() is None

    def test_null_span_context_manager_is_noop(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN

    def test_tracer_swappable_at_runtime(self):
        obs = Observability()
        tracer = Tracer(VirtualClock())
        obs.tracer = tracer
        with obs.span("live"):
            pass
        assert [event["name"] for event in tracer.events()] == ["live"]
        obs.tracer = None
        assert obs.span("dead") is NULL_SPAN


class TestExport:
    def test_chrome_trace_envelope_validates(self):
        tracer = Tracer(VirtualClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        payload = chrome_trace(tracer)
        assert payload["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(payload) == []

    def test_trace_json_is_canonical(self):
        tracer = Tracer(VirtualClock())
        with tracer.span("a", z=1, a=2):
            pass
        text = trace_json(tracer)
        assert text == json.dumps(json.loads(text), sort_keys=True,
                                  separators=(",", ":"))

    def test_validator_flags_bad_events(self):
        assert validate_chrome_trace({"traceEvents": "nope"})
        assert validate_chrome_trace(
            {"displayTimeUnit": "ms", "traceEvents": [{"name": "x", "ph": "B"}]}
        )
        assert validate_chrome_trace(
            {
                "displayTimeUnit": "ms",
                "traceEvents": [
                    {"name": "", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1}
                ],
            }
        )

    def test_same_clock_same_spans_byte_identical(self):
        def capture():
            tracer = Tracer(VirtualClock())
            with tracer.span("outer"):
                with tracer.span("inner", n=3):
                    pass
            return trace_json(tracer)

        assert capture() == capture()
