"""Structured tracing and metrics over a synchronization run.

Runs the Figure-2 bioinformatics network with the observability layer on:
``observe trace`` in the spec (or ``StoreConfig(observability="trace")``)
installs a deterministic span tracer whose timestamps come from the
network's virtual clock — the same seed always produces byte-identical
trace JSON.  The trace nests ``sync.round`` over ``publish``/``reconcile``
over ``exchange.stratum``/``rule.fire``, alongside the store's quorum I/O
and the gossip layer's sessions and sketch decodes.

The exported file is Chrome-trace-event JSON: open it at
https://ui.perfetto.dev (or ``chrome://tracing``) to see the nested spans
on a timeline.  The flat metrics registry rides along — per-sync deltas in
``report.metrics``, the cumulative snapshot via ``cdss.metrics_snapshot()``.

Run with:  python examples/trace_sync.py
"""

from __future__ import annotations

import json
from collections import Counter

from repro.trace import run_figure2


def main() -> None:
    # One call drives the whole traced workload: distributed store, gossip
    # catch-up, two sync phases with fresh insertions in between.
    cdss = run_figure2(seed=42)

    # The tracer's events are already Chrome-trace shaped; write_trace
    # serializes them canonically (sorted keys, fixed separators).
    cdss.write_trace("figure2-trace.json")
    events = cdss.trace_events()
    by_name = Counter(event["name"] for event in events)
    print(f"wrote figure2-trace.json ({len(events)} spans)")
    for name, count in sorted(by_name.items()):
        print(f"  {name:<22} x{count}")
    print("open it at https://ui.perfetto.dev to see the timeline\n")

    # The metrics registry is always on alongside the tracer; the snapshot
    # is a flat dict of dotted-lowercase keys (label series in brackets).
    snapshot = cdss.metrics_snapshot()
    interesting = (
        "sync.rounds",
        "exchange.rules_fired",
        "exchange.tuples_derived",
        "gossip.sessions",
        "net.bytes.sent",
        "store.quorum.writes",
    )
    print("selected metrics:")
    print(json.dumps({key: snapshot[key] for key in interesting if key in snapshot},
                     indent=2, sort_keys=True))

    # Per-sync deltas appear on the report whenever observability is on.
    report = cdss.sync()
    print(f"\nanother sync converged in {report.round_count} round(s); "
          f"its own metrics delta has {len(report.metrics or {})} entries")


if __name__ == "__main__":
    main()
