"""Static analysis: lint a network spec before anything runs.

The analyzer inspects a network description — chase termination (weak
acyclicity of the skolemized mapping graph), rule safety, trust-policy
lints, topology, and SQL-backend compilability — and reports findings with
stable ``CDSS0xx`` codes and source positions, exactly like a compiler.

This example first analyzes a deliberately problematic network (a mapping
pair whose labelled nulls feed their own creation — the chase would never
terminate — plus shadowed trust and an isolated peer), shows how
``build(strict=True)`` refuses it, then verifies the Figure 2 bioinformatics
network is clean.

Run with:  python examples/analyze_network.py
"""

from __future__ import annotations

from repro.analysis import analyze_network_spec
from repro.api.builder import build_network
from repro.errors import SpecError
from repro.workloads.bioinformatics import FIGURE2_SPEC

#: A network with real problems: M_ping invents a labelled null at B.R[0]
#: that M_pong copies straight back into the position M_ping reads — the
#: chase diverges.  Cadiz trusts itself (a no-op row) and Elba is mapped
#: to no one.
BROKEN_SPEC = """
network broken-demo
peer Ankara
  relation R(x, y)
peer Bern
  relation R(x, y)
peer Cadiz
  relation S(x)
  trust Cadiz 3
peer Elba
  relation S(x)
mapping [M_ping] @Bern.R(e, x) :- @Ankara.R(x, y).
mapping [M_pong] @Ankara.R(x, y) :- @Bern.R(x, y).
mapping [M_bc] @Cadiz.S(x) :- @Bern.R(x, y).
"""


def main() -> None:
    # 1. Analyze without building: every finding, with code and position.
    report = analyze_network_spec(BROKEN_SPEC, source_name="broken-demo.spec")
    print("-- diagnostics for the broken network --")
    print(report.render())

    # 2. A strict build refuses networks with error-severity findings.
    try:
        build_network(BROKEN_SPEC, strict=True)
    except SpecError as error:
        first_line = str(error).splitlines()[0]
        print("\nstrict build rejected the network:")
        print(f"  {first_line}  (code {error.code})")

    # 3. The lenient path still builds — and cdss.analyze() re-runs the
    #    analyzer against the live system at any time.
    cdss = build_network(BROKEN_SPEC)
    live = cdss.analyze()
    assert not live.ok
    print(f"\nlive system analysis: {len(live.errors())} error(s), "
          f"{len(live.warnings())} warning(s)")

    # 4. The shipped Figure 2 network is analyzer-clean.
    clean = analyze_network_spec(FIGURE2_SPEC, source_name="FIGURE2_SPEC")
    assert clean.ok and len(clean) == 0
    print("\nFigure 2 bioinformatics network: no findings")


if __name__ == "__main__":
    main()
