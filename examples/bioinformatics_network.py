"""The Figure-2 bioinformatics CDSS, end to end.

Reproduces the demonstration setting of the paper: four universities
(Alaska, Beijing, Crete, Dresden) share protein reference sequences across
two schemas (Σ1 with identifiers, Σ2 denormalised), connected by identity,
join and split mappings, with Crete trusting only Beijing and Dresden.

The whole network is written in the declarative spec language
(:data:`repro.workloads.FIGURE2_SPEC`); a single ``sync()`` call replaces
the hand-rolled publish/reconcile loops, and the returned
:class:`~repro.api.sync.SyncReport` carries every per-peer outcome.

Run with:  python examples/bioinformatics_network.py
"""

from __future__ import annotations

from repro.workloads.bioinformatics import BioDataGenerator, build_figure2_network
from repro.workloads.reporting import (
    render_mappings,
    render_peer_state,
    render_reconciliation,
)


def main() -> None:
    # FIGURE2_SPEC -> CDSS.from_spec: peers, trust, and tgd mappings in one text.
    network = build_figure2_network()
    cdss = network.cdss

    print(render_mappings(cdss))
    print()

    # Alaska arrives with pre-existing Σ1 data; Dresden with Σ2 data.
    generator = BioDataGenerator(seed=42)
    generator.load_sigma1(network.alaska, organisms=4, proteins=5, sequences_per_pair=0.5)
    generator.load_sigma2(network.dresden, pairs=3)
    cdss.import_existing_data("Alaska")
    cdss.import_existing_data("Dresden")

    # Beijing contributes fresh measurements as ordinary transactions.
    generator.insertion_transactions(network.beijing, count=2, start_index=50)

    # One call: everyone publishes, everyone reconciles, until quiescence.
    report = cdss.sync()
    print(
        f"sync converged in {report.round_count} round(s): "
        f"{report.published_transactions} transactions published, "
        f"{report.translated_changes} translated changes"
    )
    for outcome in report.rounds[0].published:
        if outcome.published:
            print(f"  {outcome.peer} published {len(outcome.published)} transaction(s) "
                  f"({outcome.translated_changes} translated changes)")
    print()
    for outcome in report.rounds[0].reconciled:
        print(render_reconciliation(outcome, cdss.reconciliation_state(outcome.peer)))
        print()

    for peer in network.peers():
        print(render_peer_state(peer))
        print()

    # Crete distrusts Alaska, so Alaska-origin data is visible at Dresden but
    # not at Crete; Dresden-origin data is visible everywhere.
    dresden_ops = network.dresden.tuples("OPS")
    crete_ops = network.crete.tuples("OPS")
    print(f"Dresden OPS tuples: {len(dresden_ops)}; Crete OPS tuples: {len(crete_ops)}")
    assert len(crete_ops) <= len(dresden_ops)

    # The provenance-annotated query API answers "which sequences does Crete
    # hold, and how were they derived?" in one call.
    answers = cdss.query("Crete", "Answer(org, prot) :- OPS(org, prot, seq).")
    print(f"Crete (organism, protein) pairs via query(): {len(answers)}")
    print("bioinformatics network example completed successfully")


if __name__ == "__main__":
    main()
