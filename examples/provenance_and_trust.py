"""Provenance polynomials and trust evaluation via semiring homomorphisms.

Shows the machinery of the PODS'07 companion paper inside the CDSS: every
tuple that update exchange derives carries a provenance polynomial over the
published base tuples, and different trust questions are answered by
evaluating that provenance in different semirings:

* boolean semiring — "is this tuple derivable from peers I trust?"
* tropical semiring — "what is the cheapest mapping path that produced it?"
* security semiring — "what clearance is needed to see it?"

Run with:  python examples/provenance_and_trust.py
"""

from __future__ import annotations

from repro.provenance import BooleanSemiring, SecuritySemiring, TropicalSemiring, TrustLevel
from repro.provenance.homomorphism import specialize_assignment
from repro.workloads.bioinformatics import build_figure2_network


def main() -> None:
    network = build_figure2_network()
    cdss = network.cdss
    alaska, beijing = network.alaska, network.beijing

    # Alaska publishes an organism/protein pair; Beijing independently
    # publishes the same sequence (two derivations of one Σ2 tuple).
    for peer in (alaska, beijing):
        builder = peer.new_transaction()
        builder.insert("O", ("E. coli", 1))
        builder.insert("P", ("recA", 11))
        builder.insert("S", (1, 11, "ATGGCGGAT"))
        peer.commit(builder)

    # One orchestrated sync publishes both and reconciles Dresden.
    cdss.sync(peers=["Alaska", "Beijing", "Dresden"])

    graph = cdss.engine.provenance
    target = ("Dresden.OPS", ("E. coli", "recA", "ATGGCGGAT"))
    polynomial = graph.polynomial_for(*target)
    print("provenance polynomial of Dresden's OPS('E. coli', 'recA', ...):")
    print(f"  {polynomial}")
    nodes, edges = graph.dag_size(*target)
    store_nodes, store_edges = graph.circuit_size()
    print(
        f"  distinct derivations (monomials): {polynomial.monomial_count()}  "
        f"|  stored DAG: {nodes} nodes / {edges} edges "
        f"(whole store: {store_nodes} / {store_edges}, shared across tuples)"
    )

    # Boolean trust: derivable from Alaska alone?  From Beijing alone?
    by_peer = {
        variable: variable.split(".", 1)[0]
        for variable in graph.base_variables()
    }
    for trusted in ({"Alaska"}, {"Beijing"}, set()):
        trusted_variables = {v for v, peer in by_peer.items() if peer in trusted}
        derivable = graph.is_derivable(*target, trusted_variables=trusted_variables)
        print(f"  derivable trusting only {sorted(trusted) or 'nobody'}: {derivable}")

    # Tropical trust: assign each peer's contributions a cost and compute the
    # cheapest derivation.
    costs = {variable: (1.0 if peer == "Beijing" else 5.0) for variable, peer in by_peer.items()}
    annotations = graph.evaluate(TropicalSemiring(), costs)
    print(f"  cheapest-derivation cost (Beijing=1, Alaska=5 per tuple): {annotations[target]}")

    # Security clearances: Alaska's data is SECRET, Beijing's is PUBLIC; the
    # clearance needed for the derived tuple is the best alternative.
    clearances = {
        variable: (TrustLevel.PUBLIC if peer == "Beijing" else TrustLevel.SECRET)
        for variable, peer in by_peer.items()
    }
    annotations = graph.evaluate(SecuritySemiring(), clearances)
    print(f"  clearance required: {annotations[target].name}")

    assert annotations[target] == TrustLevel.PUBLIC

    # A trust policy itself induces a semiring assignment: Crete's priority
    # table (Beijing=2, Dresden=1, everyone else distrusted) becomes tropical
    # costs — higher priority, cheaper hop; distrusted peers cost infinity.
    priorities = network.crete.trust.priorities_by_peer(
        ["Alaska", "Beijing", "Crete", "Dresden"]
    )
    costs_by_peer = {
        peer: (1.0 / priority if priority else float("inf"))
        for peer, priority in priorities.items()
    }
    assignment = specialize_assignment(by_peer, costs_by_peer, float("inf"))
    crete_cost = graph.evaluate(TropicalSemiring(), assignment)[target]
    print(f"  cheapest derivation using only peers Crete trusts: {crete_cost}")
    assert crete_cost != float("inf")  # Beijing's copy alone supports it

    # The same provenance machinery backs ad-hoc queries over a peer's
    # instance: every answer row carries its polynomial over local tuples.
    result = cdss.query(
        "Dresden",
        "Answer(org, seq) :- OPS(org, prot, seq), prot = 'recA'.",
        provenance=True,
    )
    for row in sorted(result.rows):
        print(f"  query answer {row}: provenance {result.provenance[row]}")

    print("\nprovenance and trust example completed successfully")


if __name__ == "__main__":
    main()
