"""A flash crowd rejoining under epidemic gossip catch-up.

In cursor mode every returning peer replays the archive's log tail straight
from the store — N rejoiners, N replays, all served by one archive.  Gossip
mode replaces that with sketch-based set reconciliation: peers exchange
constant-size clocks, an IBLT of the *difference*, and only the entries the
other side is provably missing, with deterministically chosen fanout
partners spreading the diff peer-to-peer.

This example shows both layers:

1. a CDSS network in ``sync gossip`` mode where half the peers disconnect,
   the rest keep publishing, and the crowd rejoins at once — the sync
   report's gossip phase says how many rounds, sessions, and bytes the
   catch-up cost, and the network's traffic counters show how little of it
   the archive itself had to serve;
2. the reconcile layer head-to-head on a "patchwork" cache missing a few
   scattered entries of a long log, where a scalar cursor must replay
   nearly everything but a sketch session moves O(diff) bytes.

Run with ``PYTHONPATH=src python examples/gossip_catchup.py``.
"""

from repro import CDSS
from repro.core.transactions import Transaction
from repro.core.updates import Update
from repro.p2p.reconcile import (
    EntryCache,
    ReconcileConfig,
    SetReconciler,
    StoreView,
    cursor_transfer_bytes,
)
from repro.p2p.store import UpdateStore

PEERS = ["Aarhus", "Bergen", "Cadiz", "Delft", "Eltville", "Fulda"]

SPEC = "network flash-crowd\nsync gossip fanout 2 sketch iblt\n" + "".join(
    f"peer {name}\n  relation Reading(id, value) key(id)\n" for name in PEERS
) + "".join(
    f"mapping [M{i}] @{PEERS[i + 1]}.Reading(id, v) :- @{PEERS[i]}.Reading(id, v).\n"
    for i in range(len(PEERS) - 1)
)


def flash_crowd() -> None:
    cdss = CDSS.from_spec(SPEC)
    crowd, stayers = PEERS[: len(PEERS) // 2], PEERS[len(PEERS) // 2:]

    for index in range(6):
        cdss.peer(PEERS[0]).insert("Reading", (index, index * 10))
    cdss.sync()

    print(f"{', '.join(crowd)} go OFFLINE; the rest keep publishing...")
    for peer in crowd:
        cdss.set_online(peer, False)
    for index in range(6, 18):
        cdss.peer(stayers[0]).insert("Reading", (index, index * 10))
    cdss.sync(peers=stayers)

    print(f"{', '.join(crowd)} rejoin at once — the flash crowd.")
    traffic_before = cdss.network.message_stats()
    for peer in crowd:
        cdss.set_online(peer, True)
    report = cdss.sync()
    gossip = report.gossip or {}
    traffic = cdss.network.message_stats()

    print(f"  converged           : {report.converged}")
    print(f"  gossip rounds       : {gossip.get('rounds')}")
    print(f"  sessions / messages : {gossip.get('sessions')} / {gossip.get('messages')}")
    print(f"  entries delivered   : {gossip.get('entries_delivered')}")
    print(f"  total bytes moved   : {gossip.get('bytes')}")
    delta_bytes = traffic["bytes"] - traffic_before["bytes"]
    archive = traffic["per_peer"].get("#archive", {})
    archive_before = traffic_before["per_peer"].get("#archive", {})
    archive_bytes = (
        archive.get("bytes_sent", 0) + archive.get("bytes_received", 0)
        - archive_before.get("bytes_sent", 0) - archive_before.get("bytes_received", 0)
    )
    print(f"  archive's share     : {archive_bytes} of {delta_bytes} bytes")
    for peer in crowd:
        stats = traffic["per_peer"][peer]
        print(
            f"  {peer:<10} received {stats['bytes_received']} B "
            f"in {stats['received']} messages"
        )
    rows = cdss.peer_snapshot(PEERS[-1])["Reading"]
    print(f"  {PEERS[-1]} now holds {len(rows)} readings")


def patchwork_rejoiner() -> None:
    log_length, holes = 500, 12
    store = UpdateStore()
    for epoch in range(1, log_length + 1):
        txn = Transaction(
            f"t{epoch}", "Aarhus",
            (Update.insert("Reading", (epoch, epoch * 10), origin="Aarhus"),),
        )
        store.archive([txn], epoch=epoch, publisher="Aarhus")

    # The rejoiner was intermittently online: it holds everything except a
    # few scattered entries, so its scalar cursor is pinned at its earliest
    # hole and cursor replay would ship nearly the whole log again.
    entries = store.published_since(0)
    missing = set(range(3, log_length, log_length // holes))
    cache = EntryCache("rejoiner")
    cache.add_entries(e for i, e in enumerate(entries) if i not in missing)
    cursor = min(entries[i].epoch for i in missing) - 1
    cursor_bytes = cursor_transfer_bytes(store.published_since(cursor))

    view = StoreView(store)
    view.refresh()
    reconciler = SetReconciler(ReconcileConfig(algorithm="iblt"))
    result = reconciler.reconcile(cache, view)
    stats = reconciler.stats

    print(f"  log length / holes  : {log_length} / {len(missing)}")
    print(f"  cursor replay       : {cursor_bytes} B (tail from epoch {cursor})")
    print(
        f"  sketch session      : {stats.bytes} B "
        f"({stats.sketch_bytes} B sketches + {stats.entry_bytes} B entries)"
    )
    print(f"  delivered / converged: {result.delivered} entries / {result.converged}")
    print(f"  cursor/sketch ratio : {cursor_bytes / stats.bytes:.1f}x")


def main() -> None:
    print("== Flash crowd under gossip sync ==")
    flash_crowd()
    print("\n== Patchwork rejoiner: sketch vs cursor ==")
    patchwork_rejoiner()


if __name__ == "__main__":
    main()
