"""Conflict deferral and manual resolution (demonstration Scenario 4).

Beijing and Alaska publish conflicting reference sequences for the same
(organism, protein) pair.  Dresden trusts both equally, so its reconciliation
defers the conflict to the administrator; Crete meanwhile prefers Beijing and
publishes a correction on top of Beijing's value, which Dresden must also
defer.  The administrator then resolves the conflict in Beijing's favour and
Crete's dependent correction is accepted automatically.

The exchange is driven entirely by ``cdss.sync()``: the returned
:class:`~repro.api.sync.SyncReport` names the deferred transactions and the
conflicts left open for the administrator.

Run with:  python examples/conflict_resolution.py
"""

from __future__ import annotations

from repro.workloads.bioinformatics import build_figure2_network
from repro.workloads.reporting import render_peer_state, render_reconciliation


def main() -> None:
    network = build_figure2_network()
    cdss = network.cdss
    alaska, beijing, crete, dresden = (
        network.alaska,
        network.beijing,
        network.crete,
        network.dresden,
    )

    # Two conflicting claims about S. cerevisiae hsp70.
    for peer, sequence in ((beijing, "ACGTACGTACGT"), (alaska, "TGCATGCATGCA")):
        builder = peer.new_transaction()
        builder.insert("O", ("S. cerevisiae", 5))
        builder.insert("P", ("hsp70", 14))
        builder.insert("S", (5, 14, sequence))
        transaction = peer.commit(builder)
        print(f"{peer.name} committed {transaction.txn_id}: sequence {sequence}")

    # One sync spreads both claims; Dresden defers, Crete prefers Beijing.
    report = cdss.sync()
    print(f"\nsync: open conflicts per peer: {report.open_conflicts}")
    dresden_outcome = next(
        outcome for outcome in report.rounds[0].reconciled if outcome.peer == "Dresden"
    )
    print(render_reconciliation(dresden_outcome, cdss.reconciliation_state("Dresden")))

    # Crete trusts Beijing over Alaska, accepted Beijing's value during the
    # sync, and now publishes a correction that depends on it.
    correction = crete.modify(
        "OPS",
        ("S. cerevisiae", "hsp70", "ACGTACGTACGT"),
        ("S. cerevisiae", "hsp70", "ACGTACGTAAAA"),
    )
    print(f"\nCrete published a correction: {correction.txn_id}")
    report = cdss.sync(peers=["Crete", "Dresden"])
    dresden_outcome = next(
        outcome for outcome in report.rounds[0].reconciled if outcome.peer == "Dresden"
    )
    print(render_reconciliation(dresden_outcome, cdss.reconciliation_state("Dresden")))

    # The administrator resolves the deferred conflict in Beijing's favour.
    conflict = cdss.open_conflicts("Dresden")[0]
    beijing_txn = next(txn for txn in conflict.txn_ids if txn.startswith("Beijing"))
    resolution = cdss.resolve_conflict("Dresden", beijing_txn)
    print(f"\nadministrator chose {resolution.winner}")
    print(f"  accepted: {resolution.accepted}")
    print(f"  rejected: {resolution.rejected}")

    print()
    print(render_peer_state(dresden))
    assert ("S. cerevisiae", "hsp70", "ACGTACGTAAAA") in dresden.tuples("OPS")
    print("\nconflict resolution example completed successfully")


if __name__ == "__main__":
    main()
