"""A sync round surviving a shard host going offline.

The distributed update store partitions the published-transaction archive
across the peers themselves: epoch-ordered log segments are consistent-hashed
onto shards, each shard is replicated on ``replication`` peer-hosted servers,
and quorum reads merge the per-shard logs back into the canonical total
order.  This example publishes data, knocks a shard-hosting peer offline,
and shows that the remaining peers still reconcile everything — the store
re-replicates the lost host's shards from surviving copies, and the host
catches up by gossip when it returns.

Run with ``PYTHONPATH=src python examples/distributed_store.py``.
"""

from repro import CDSS

SPEC = """
network durable-exchange
store distributed shards 4 replication 2
peer Athens
  relation Measurement(id, value) key(id)
peer Berlin
  relation Measurement(id, value) key(id)
peer Cairo
  relation Measurement(id, value) key(id)
mapping [M_AB] @Berlin.Measurement(i, v) :- @Athens.Measurement(i, v).
mapping [M_BC] @Cairo.Measurement(i, v) :- @Berlin.Measurement(i, v).
"""


def show_health(cdss: CDSS, moment: str) -> None:
    health = cdss.store.health()
    print(f"[{moment}]")
    print(f"  archived transactions : {health['transactions']}")
    for info in health["per_shard"]:
        print(
            f"  shard {info['shard']}: {info['online_replicas']}/{info['replicas']} "
            f"replicas online on {info['hosts']} ({info['entries']} entries)"
        )
    print(
        f"  re-replications: {health['re_replications']}, "
        f"anti-entropy rounds: {health['anti_entropy_rounds']}, "
        f"degraded writes: {health['degraded_writes']}"
    )


def main() -> None:
    cdss = CDSS.from_spec(SPEC)
    print("Update store backend:", cdss.store.health()["backend"])

    # Athens measures; everyone synchronizes.
    for index in range(8):
        cdss.peer("Athens").insert("Measurement", (index, 20 + index))
    report = cdss.sync()
    print(
        f"\nFirst sync: {report.published_transactions} transactions published, "
        f"Cairo holds {len(cdss.peer_snapshot('Cairo')['Measurement'])} measurements"
    )
    show_health(cdss, "after first sync")

    # A peer that hosts shard replicas drops off the network.
    victim = next(peer for peer in ("Berlin", "Cairo") if cdss.store.host_shards(peer))
    hosted = cdss.store.host_shards(victim)
    print(f"\n{victim} hosted shards {hosted} and goes OFFLINE...")
    cdss.set_online(victim, False)
    show_health(cdss, f"after {victim} disconnected (re-replication ran)")

    # Athens keeps publishing; the survivors reconcile from the re-replicated
    # shards — the archive never became unavailable.
    for index in range(8, 12):
        cdss.peer("Athens").insert("Measurement", (index, 20 + index))
    survivors = [peer for peer in ("Athens", "Berlin", "Cairo") if peer != victim]
    report = cdss.sync(peers=survivors)
    reader = survivors[-1]
    print(
        f"\nSecond sync without {victim}: converged={report.converged}, "
        f"{reader} now holds "
        f"{len(cdss.peer_snapshot(reader)['Measurement'])} measurements"
    )

    # The victim returns and catches up via gossip/anti-entropy.
    cdss.set_online(victim, True)
    report = cdss.sync()
    print(
        f"\n{victim} reconnected: holds "
        f"{len(cdss.peer_snapshot(victim)['Measurement'])} measurements, "
        f"under-replicated shards: {len(cdss.store.under_replicated())}"
    )
    show_health(cdss, "after catch-up")
    print("\nConnectivity churn:", cdss.network.churn_stats()["events"], "events")


if __name__ == "__main__":
    main()
