"""Quickstart: a two-peer collaborative data sharing system.

Builds the smallest useful CDSS — a source peer and a target peer connected
by one schema mapping — then walks through the full update-exchange loop:
local edits, publication, reconciliation, and a deletion that propagates.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CDSS, PeerSchema
from repro.core.mapping import join_mapping
from repro.workloads.reporting import render_peer_state


def main() -> None:
    cdss = CDSS()

    # 1. Two autonomous peers, each with its own (here: identical) schema.
    source = cdss.add_peer("Source", PeerSchema.build("S", {"R": ["key", "value"]}, {"R": ["key"]}))
    target = cdss.add_peer("Target", PeerSchema.build("T", {"R": ["key", "value"]}, {"R": ["key"]}))

    # 2. A declarative schema mapping: whatever Source asserts in R flows to Target.
    cdss.add_mapping(join_mapping("M_source_to_target", "Source", "Target",
                                  "R(key, value)", ["R(key, value)"]))

    # 3. Source edits its local instance (one transaction, two inserts).
    builder = source.new_transaction()
    builder.insert("R", (1, "hello"))
    builder.insert("R", (2, "world"))
    source.commit(builder)

    # 4. Publish: the transaction is archived in the shared update store and
    #    translated by the exchange engine.
    publish = cdss.publish("Source")
    print(f"published {len(publish.published)} transaction(s) at epoch {publish.epoch}")

    # 5. Reconcile: Target pulls the newly published transactions, translated
    #    into its schema, and applies the ones its trust policy accepts.
    outcome = cdss.reconcile("Target")
    print(f"Target accepted {len(outcome.accepted)} transaction(s)")
    print(render_peer_state(target))

    # 6. Updates include deletions: removing the tuple at the source removes
    #    it at the target on the next exchange.
    source.delete("R", (1, "hello"))
    cdss.publish("Source")
    cdss.reconcile("Target")
    print("\nafter the deletion propagates:")
    print(render_peer_state(target))

    assert target.tuples("R") == frozenset({(2, "world")})
    print("\nquickstart completed successfully")


if __name__ == "__main__":
    main()
