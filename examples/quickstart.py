"""Quickstart: a two-peer collaborative data sharing system.

Describes the smallest useful CDSS — a source peer and a target peer
connected by one schema mapping — in the declarative network-spec language,
then drives the full update-exchange loop with single ``sync()`` calls:
local edits, orchestrated publication + reconciliation, a deletion that
propagates, and an ad-hoc datalog query over the result.

(The imperative facade — ``add_peer`` / ``add_mapping`` / ``publish`` /
``reconcile`` — remains fully supported; ``sync()`` composes it.)

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CDSS
from repro.workloads.reporting import render_peer_state

#: Peers, relations with keys, and a tgd mapping — the whole network as text.
SPEC = """
network quickstart
peer Source
  relation R(key, value) key(key)
peer Target
  relation R(key, value) key(key)
mapping [M_source_to_target] @Target.R(k, v) :- @Source.R(k, v).
"""


def main() -> None:
    # 1. Build the whole network from its declarative description.
    cdss = CDSS.from_spec(SPEC)
    source, target = cdss.peer("Source"), cdss.peer("Target")

    # 2. Source edits its local instance (one transaction, two inserts).
    builder = source.new_transaction()
    builder.insert("R", (1, "hello"))
    builder.insert("R", (2, "world"))
    source.commit(builder)

    # 3. One sync orchestrates the whole exchange: every online peer
    #    publishes, every online peer reconciles, repeating until quiescence.
    report = cdss.sync()
    print(
        f"sync converged in {report.round_count} round(s): "
        f"{report.published_transactions} transaction(s) published, "
        f"{report.translated_changes} translated changes"
    )
    print(f"Target accepted {len(report.accepted('Target'))} transaction(s)")
    print(render_peer_state(target))

    # 4. Updates include deletions: removing the tuple at the source removes
    #    it at the target on the next sync.
    source.delete("R", (1, "hello"))
    cdss.sync()
    print("\nafter the deletion propagates:")
    print(render_peer_state(target))
    assert target.tuples("R") == frozenset({(2, "world")})

    # 5. Ad-hoc datalog over a peer's instance.
    result = cdss.query("Target", "Answer(v) :- R(k, v).")
    print(f"\nquery answers at Target: {sorted(result.rows)}")
    assert ("world",) in result

    # 6. The report serializes for dashboards/CI artifacts.
    assert report.to_dict()["converged"] is True
    print("\nquickstart completed successfully")


if __name__ == "__main__":
    main()
