"""Experiment SQL-PUSHDOWN: set-at-a-time SQL execution vs the closure executor.

The Figure-2 bioinformatics exchange (Alaska -> Crete join mapping, Crete ->
Alaska split mapping) is driven with a *stream* of bulk published
transactions per scale — a pipeline of large deltas through one engine,
which is the shape continuous update exchange produces and where
set-at-a-time execution should win: the Python closure executor pays
interpreter overhead per binding on every batch, while the SQL backend
keeps a warm SQLite mirror across batches and runs one ``INSERT ... SELECT``
per rule plan per round.  The first batch charges SQL its one-time mirror
load and DDL; the remaining batches exercise the warm delta-fold path.

Scales are 1x / 10x / 100x of a small per-batch size.  The headline series
runs with provenance tracking off (pure join throughput); a secondary
series keeps the recorder attached, where the SQL backend streams matched
body rows back out of the cursor and the gap narrows.

Both backends must derive identical instances — the benchmark asserts the
derived OPS counts agree at every scale, and that SQL beats Python on the
100x stream (the acceptance bar for the committed baseline).

Knobs:

* ``SQLEXEC_BENCH_SMOKE=1`` runs only the 1x scale with one round (CI).
* ``SQLEXEC_BENCH_RECORD=1`` (re)writes the committed baseline
  ``BENCH_sqlexec.json`` next to this module.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.config import ExchangeConfig
from repro.core.transactions import Transaction
from repro.core.updates import Update
from repro.exchange.engine import ExchangeEngine
from repro.workloads.bioinformatics import BioDataGenerator

from ._reporting import print_table
from .bench_exchange_scaling import _figure2_program


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no", "off")


SMOKE = _env_flag("SQLEXEC_BENCH_SMOKE")
RECORD = _env_flag("SQLEXEC_BENCH_RECORD")
BASELINE_PATH = Path(__file__).with_name("BENCH_sqlexec.json")

#: Transactions folded into each 1x bulk batch (each carries 3 inserts).
BASE_TRANSACTIONS = 20
#: Bulk batches streamed through one engine per measurement.
PIPELINE_BATCHES = 5
SCALES = (1,) if SMOKE else (1, 10, 100)
ROUNDS = 1 if SMOKE else 3


def _record(experiment: str, payload) -> None:
    if not RECORD:
        return
    baseline = {}
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
    baseline[experiment] = payload
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")


def _bulk_transaction(count: int, start: int = 0) -> Transaction:
    """One transaction publishing ``count`` O/P/S triples at Alaska."""
    generator = BioDataGenerator(seed=99)
    updates = []
    for index in range(start, start + count):
        oid, pid = 1000 + index, 500_000 + index
        updates.append(Update.insert("O", (generator.organism(index), oid), origin="Alaska"))
        updates.append(Update.insert("P", (generator.protein(index), pid), origin="Alaska"))
        updates.append(Update.insert("S", (oid, pid, generator.sequence()), origin="Alaska"))
    return Transaction(f"BULK{start}", "Alaska", tuple(updates))


def _bulk_stream(count: int) -> list[Transaction]:
    """``PIPELINE_BATCHES`` disjoint bulk batches of ``count`` triples each."""
    return [
        _bulk_transaction(count, start=batch * count)
        for batch in range(PIPELINE_BATCHES)
    ]


def _measure_pair(count: int, provenance: bool) -> dict[str, dict]:
    """Best-of-``ROUNDS`` seconds per backend, rounds *interleaved*.

    Alternating python/sql within every round means a machine-state drift
    (thermal, noisy neighbour) hits both backends alike instead of biasing
    whichever series ran second.
    """
    stream = _bulk_stream(count)
    best = {"python": float("inf"), "sql": float("inf")}
    derived = {}
    for _ in range(ROUNDS):
        for backend in ("python", "sql"):
            config = ExchangeConfig(
                track_provenance=provenance, execution_backend=backend
            )
            engine = ExchangeEngine(_figure2_program(), config)
            started = time.perf_counter()
            for transaction in stream:
                engine.process_transaction(transaction)
            elapsed = time.perf_counter() - started
            best[backend] = min(best[backend], elapsed)
            derived[backend] = len(engine.derived_tuples("Crete", "OPS"))
    return {
        backend: {
            "batches": PIPELINE_BATCHES,
            "transactions_per_batch": count,
            "updates": PIPELINE_BATCHES * count * 3,
            "derived_OPS_at_Crete": derived[backend],
            "seconds": round(best[backend], 6),
        }
        for backend in best
    }


def _run_series(provenance: bool):
    rows = []
    results = {}
    for scale in SCALES:
        count = BASE_TRANSACTIONS * scale
        pair = _measure_pair(count, provenance)
        python, sql = pair["python"], pair["sql"]
        assert python["derived_OPS_at_Crete"] == sql["derived_OPS_at_Crete"], (
            f"backends diverged at {scale}x: {python} vs {sql}"
        )
        speedup = python["seconds"] / sql["seconds"] if sql["seconds"] else float("inf")
        results[f"{scale}x"] = {
            "python": python,
            "sql": sql,
            "speedup": round(speedup, 2),
        }
        rows.append(
            [
                f"{scale}x",
                PIPELINE_BATCHES * count * 3,
                python["derived_OPS_at_Crete"],
                f"{python['seconds']:.4f}",
                f"{sql['seconds']:.4f}",
                f"{speedup:.2f}x",
            ]
        )
    return results, rows


def test_sql_pushdown_beats_python_on_bulk_exchange():
    """Headline: provenance off, bulk delta stream; SQL must win at the top scale."""
    results, rows = _run_series(provenance=False)
    print_table(
        "SQL-PUSHDOWN: bulk Figure-2 exchange stream, provenance off",
        ["scale", "updates", "derived OPS", "python s", "sql s", "speedup"],
        rows,
    )
    _record("bulk_exchange_no_provenance", results)
    if not SMOKE:
        top = results[f"{SCALES[-1]}x"]
        assert top["sql"]["seconds"] < top["python"]["seconds"], (
            f"SQL pushdown lost at {SCALES[-1]}x: {top}"
        )


def test_sql_pushdown_with_provenance_recording():
    """Secondary: recorder attached — SQL streams firings back out, gap narrows."""
    results, rows = _run_series(provenance=True)
    print_table(
        "SQL-PUSHDOWN: bulk Figure-2 exchange stream, provenance on",
        ["scale", "updates", "derived OPS", "python s", "sql s", "speedup"],
        rows,
    )
    _record("bulk_exchange_with_provenance", results)
