"""Experiment FIG1-architecture: the publish → archive → translate → reconcile pipeline.

Figure 1 of the paper shows the CDSS architecture: peers publish transactions
into a shared (peer-to-peer) archive, the update-exchange engine translates
them, and each peer reconciles against its trust policy — all while peers
connect and disconnect.  This benchmark drives a three-peer chain
(A → B → C), built with the fluent :class:`~repro.api.NetworkBuilder`,
through that pipeline with churn at the publisher and reports the
per-stage costs and the availability the archive provides.
"""

from __future__ import annotations

import pytest

from repro import CDSS, NetworkBuilder

from ._reporting import print_outcomes, print_table

TRANSACTIONS = 40


def build_chain() -> CDSS:
    return (
        NetworkBuilder("fig1-chain")
        .peer("A").relation("R", "k", "v", key=("k",))
        .peer("B").relation("R", "k", "v", key=("k",))
        .peer("C").relation("R", "k", "v", key=("k",))
        .mapping("[M_AB] @B.R(k, v) :- @A.R(k, v).")
        .mapping("[M_BC] @C.R(k, v) :- @B.R(k, v).")
        .build()
    )


def run_pipeline() -> dict[str, object]:
    cdss = build_chain()
    source = cdss.peer("A")
    for index in range(TRANSACTIONS):
        source.insert("R", (index, f"value-{index}"))
    publish = cdss.publish("A")

    # The publisher disconnects: its updates must stay retrievable, and the
    # orchestrated sync reports the offline peer instead of dropping it.
    cdss.set_online("A", False)
    report = cdss.sync()

    return {
        "published": len(publish.published),
        "translated_changes": publish.translated_changes,
        "b_accepted": len(report.accepted("B")),
        "c_accepted": len(report.accepted("C")),
        "skipped_offline": report.skipped_offline,
        "c_tuples": cdss.peer("C").instance.count("R"),
        "archive_size": len(cdss.store),
        "availability": cdss.replication.availability_ratio(
            [entry.txn_id for entry in cdss.store.all_entries()]
        ),
        "publish_outcome": publish,
    }


def test_fig1_pipeline(benchmark):
    stats = benchmark(run_pipeline)
    assert stats["published"] == TRANSACTIONS
    assert stats["c_accepted"] == TRANSACTIONS
    assert stats["c_tuples"] == TRANSACTIONS
    assert stats["skipped_offline"] == ["A"]
    print_table(
        "FIG1: publish -> archive -> translate -> reconcile over a 3-peer chain",
        ["metric", "value"],
        [[key, value] for key, value in stats.items() if key != "publish_outcome"],
    )
    print_outcomes(
        "FIG1: publication outcome (serialized)",
        [stats["publish_outcome"]],
        ["peer", "epoch", "published", "translated_changes"],
    )


@pytest.mark.parametrize("stage", ["publish", "reconcile"])
def test_fig1_stage_costs(benchmark, stage):
    """Per-stage cost of the pipeline (publication vs reconciliation)."""
    def setup():
        cdss = build_chain()
        source = cdss.peer("A")
        for index in range(TRANSACTIONS):
            source.insert("R", (index, f"value-{index}"))
        if stage == "reconcile":
            cdss.publish("A")
        return (cdss,), {}

    def run(cdss: CDSS):
        if stage == "publish":
            return cdss.publish("A")
        return cdss.reconcile("C")

    result = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert result is not None
