"""Experiment FIG1-architecture: the publish → archive → translate → reconcile pipeline.

Figure 1 of the paper shows the CDSS architecture: peers publish transactions
into a shared (peer-to-peer) archive, the update-exchange engine translates
them, and each peer reconciles against its trust policy — all while peers
connect and disconnect.  This benchmark drives a three-peer chain
(A → B → C) through that pipeline with churn at the publisher and reports the
per-stage costs and the availability the archive provides.
"""

from __future__ import annotations

import pytest

from repro import CDSS, PeerSchema
from repro.core.mapping import join_mapping

from ._reporting import print_table

TRANSACTIONS = 40


def build_chain() -> CDSS:
    cdss = CDSS()
    for name in ("A", "B", "C"):
        cdss.add_peer(name, PeerSchema.build(name, {"R": ["k", "v"]}, {"R": ["k"]}))
    cdss.add_mapping(join_mapping("M_AB", "A", "B", "R(k, v)", ["R(k, v)"]))
    cdss.add_mapping(join_mapping("M_BC", "B", "C", "R(k, v)", ["R(k, v)"]))
    return cdss


def run_pipeline() -> dict[str, object]:
    cdss = build_chain()
    source = cdss.peer("A")
    for index in range(TRANSACTIONS):
        source.insert("R", (index, f"value-{index}"))
    publish = cdss.publish("A")

    # The publisher disconnects: its updates must stay retrievable.
    cdss.set_online("A", False)
    middle = cdss.reconcile("B")
    tail = cdss.reconcile("C")

    return {
        "published": len(publish.published),
        "translated_changes": publish.translated_changes,
        "b_accepted": len(middle.accepted),
        "c_accepted": len(tail.accepted),
        "c_tuples": cdss.peer("C").instance.count("R"),
        "archive_size": len(cdss.store),
        "availability": cdss.replication.availability_ratio(
            [entry.txn_id for entry in cdss.store.all_entries()]
        ),
    }


def test_fig1_pipeline(benchmark):
    stats = benchmark(run_pipeline)
    assert stats["published"] == TRANSACTIONS
    assert stats["c_accepted"] == TRANSACTIONS
    assert stats["c_tuples"] == TRANSACTIONS
    print_table(
        "FIG1: publish -> archive -> translate -> reconcile over a 3-peer chain",
        ["metric", "value"],
        [[key, value] for key, value in stats.items()],
    )


@pytest.mark.parametrize("stage", ["publish", "reconcile"])
def test_fig1_stage_costs(benchmark, stage):
    """Per-stage cost of the pipeline (publication vs reconciliation)."""
    def setup():
        cdss = build_chain()
        source = cdss.peer("A")
        for index in range(TRANSACTIONS):
            source.insert("R", (index, f"value-{index}"))
        if stage == "reconcile":
            cdss.publish("A")
        return (cdss,), {}

    def run(cdss: CDSS):
        if stage == "publish":
            return cdss.publish("A")
        return cdss.reconcile("C")

    result = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert result is not None
