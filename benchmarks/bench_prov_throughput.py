"""Experiment PROV-THROUGHPUT: hash-consed provenance vs expanded polynomials.

The provenance refactor stores one hash-consed circuit (DAG) per network and
answers every trust question by memoized semiring evaluation over it; the
expanded ``N[X]`` polynomial per tuple is kept only as a lazy view.  These
benchmarks quantify that trade on the paper's Figure-2 provenance:

* ``trust re-evaluation`` — answering the same trust questions in several
  semirings (boolean derivability, counting, tropical cheapest-derivation,
  security clearances) over the stored DAG versus expanding every tuple's
  polynomial and evaluating it (the pre-refactor representation).  The
  committed baseline must show a >= 2x speedup across >= 3 semirings.
* ``provenance sync-round latency`` — the end-to-end cost of folding a
  transaction batch (inserts, then a deletion wave that exercises the
  incremental memo/root invalidation) into the exchange engine with circuit
  provenance on, versus provenance off.

Knobs:

* ``PROV_BENCH_SMOKE=1`` shrinks sizes so the module runs in seconds (CI).
* ``PROV_BENCH_RECORD=1`` (re)writes the committed baseline
  ``BENCH_prov.json`` next to this module.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.config import ExchangeConfig
from repro.core.transactions import Transaction
from repro.core.updates import Update
from repro.exchange.engine import ExchangeEngine
from repro.provenance import (
    BooleanSemiring,
    CountingSemiring,
    SecuritySemiring,
    TropicalSemiring,
    TrustLevel,
)

from ._reporting import print_table
from .bench_exchange_scaling import _figure2_program, _insert_transactions


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no", "off")


SMOKE = _env_flag("PROV_BENCH_SMOKE")
RECORD = _env_flag("PROV_BENCH_RECORD")
BASELINE_PATH = Path(__file__).with_name("BENCH_prov.json")

BATCH = 40 if SMOKE else 200
ROUNDS = 2 if SMOKE else 3


def _record(experiment: str, payload: dict) -> None:
    if not RECORD:
        return
    baseline = {}
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
    baseline[experiment] = payload
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")


def _loaded_engine(batch: int) -> ExchangeEngine:
    engine = ExchangeEngine(_figure2_program())
    engine.process_transactions(_insert_transactions(batch))
    return engine


def _semiring_cases(graph):
    """Four trust questions over one stored provenance."""
    by_peer = {
        variable: variable.split(".", 1)[0] for variable in graph.base_variables()
    }
    costs = {"Alaska": 5.0, "Crete": 1.0}
    clearances = {"Alaska": TrustLevel.SECRET, "Crete": TrustLevel.PUBLIC}
    return [
        (BooleanSemiring(), {v: True for v in by_peer}),
        (CountingSemiring(), {v: 1 for v in by_peer}),
        (TropicalSemiring(), {v: costs.get(peer, 2.0) for v, peer in by_peer.items()}),
        (
            SecuritySemiring(),
            {v: clearances.get(peer, TrustLevel.CONFIDENTIAL) for v, peer in by_peer.items()},
        ),
    ]


def test_trust_reevaluation_dag_vs_expanded():
    """Trust re-evaluation over 4 semirings: memoized DAG vs expanded polynomials."""
    engine = _loaded_engine(BATCH)
    graph = engine.provenance
    assert graph is not None
    keys = [node.key for node in graph.tuples()]
    # Warm the circuit roots outside both timings: compiling tuple provenance
    # into the store is shared work both representations start from.
    for relation, values in keys:
        graph.root(relation, values)
    cases = _semiring_cases(graph)

    def run_expanded():
        results = []
        for semiring, assignment in cases:
            annotations = {}
            for relation, values in keys:
                polynomial = graph.polynomial_for(relation, values)
                completed = {
                    v: assignment.get(v, semiring.one())
                    for v in polynomial.variables()
                }
                annotations[(relation, values)] = polynomial.evaluate(semiring, completed)
            results.append(annotations)
        return results

    def run_dag():
        return [graph.evaluate(semiring, assignment) for semiring, assignment in cases]

    expanded_seconds = min(
        _timed(run_expanded)[0] for _ in range(ROUNDS)
    )
    dag_elapsed, dag_results = _timed(run_dag)
    for _ in range(ROUNDS - 1):
        elapsed, _ = _timed(run_dag)
        dag_elapsed = min(dag_elapsed, elapsed)

    # Same answers from both representations.
    _, expanded_results = _timed(run_expanded)
    assert dag_results == expanded_results

    speedup = expanded_seconds / dag_elapsed if dag_elapsed else float("inf")
    nodes, edges = graph.circuit_size()
    monomials = sum(
        graph.polynomial_for(relation, values).monomial_count()
        for relation, values in keys
    )
    rows = [
        ["tuples annotated", len(keys)],
        ["semirings", len(cases)],
        ["circuit nodes / edges", f"{nodes} / {edges}"],
        ["total monomials (expanded view)", monomials],
        ["expanded s", f"{expanded_seconds:.4f}"],
        ["dag s", f"{dag_elapsed:.4f}"],
        ["speedup", f"{speedup:.1f}x"],
    ]
    print_table("PROV-THROUGHPUT: trust re-evaluation", ["metric", "value"], rows)
    _record(
        "trust_reevaluation",
        {
            "transactions": BATCH,
            "tuples": len(keys),
            "semirings": len(cases),
            "circuit_nodes": nodes,
            "circuit_edges": edges,
            "expanded_monomials": monomials,
            "expanded_seconds": round(expanded_seconds, 4),
            "dag_seconds": round(dag_elapsed, 4),
            "speedup": round(speedup, 1),
        },
    )
    if not SMOKE:
        assert speedup >= 2.0, f"expected >= 2x over expanded polynomials, got {speedup:.2f}x"


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def _delete_transactions(count: int) -> list[Transaction]:
    """Deletion wave undoing the first ``count`` insert transactions."""
    inserts = _insert_transactions(count)
    deletions = []
    for transaction in inserts:
        updates = tuple(
            Update.delete(u.relation, u.values, origin=transaction.peer)
            for u in transaction.updates
        )
        deletions.append(
            Transaction(f"del-{transaction.txn_id}", transaction.peer, updates)
        )
    return deletions


def test_provenance_sync_round_latency():
    """Exchange-batch latency with circuit provenance on vs off, incl. deletions."""
    inserts = _insert_transactions(BATCH)
    deletions = _delete_transactions(BATCH // 2)

    def run(track: bool) -> tuple[float, ExchangeEngine]:
        engine = ExchangeEngine(
            _figure2_program(), ExchangeConfig(track_provenance=track)
        )
        started = time.perf_counter()
        engine.process_transactions(inserts)
        engine.process_transactions(deletions)
        return time.perf_counter() - started, engine

    provenance_seconds, provenance_engine = min(
        (run(True) for _ in range(ROUNDS)), key=lambda item: item[0]
    )
    plain_seconds, plain_engine = min(
        (run(False) for _ in range(ROUNDS)), key=lambda item: item[0]
    )
    # Both deletion strategies (provenance vs DRed) must land on the same state.
    assert (
        plain_engine.statistics()["database_tuples"]
        == provenance_engine.statistics()["database_tuples"]
    )
    stats = provenance_engine.statistics()
    overhead = provenance_seconds / plain_seconds if plain_seconds else float("inf")
    rows = [
        ["transactions (insert + delete)", f"{BATCH} + {BATCH // 2}"],
        ["database tuples", stats["database_tuples"]],
        ["circuit nodes / edges", f"{stats['provenance_circuit_nodes']} / {stats['provenance_circuit_edges']}"],
        ["provenance batch s", f"{provenance_seconds:.4f}"],
        ["no-provenance batch s", f"{plain_seconds:.4f}"],
        ["provenance overhead", f"{overhead:.1f}x"],
    ]
    print_table("PROV-THROUGHPUT: sync-round latency", ["metric", "value"], rows)
    _record(
        "sync_round_latency",
        {
            "insert_transactions": BATCH,
            "delete_transactions": BATCH // 2,
            "database_tuples": stats["database_tuples"],
            "circuit_nodes": stats["provenance_circuit_nodes"],
            "circuit_edges": stats["provenance_circuit_edges"],
            "provenance_seconds": round(provenance_seconds, 4),
            "no_provenance_seconds": round(plain_seconds, 4),
            "overhead_factor": round(overhead, 1),
        },
    )
