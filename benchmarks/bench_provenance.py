"""Experiment PROV-OVERHEAD: the cost and value of provenance.

Measures (a) the overhead that maintaining the provenance graph adds to
update exchange, and (b) the cost of answering trust questions by evaluating
the stored provenance in different semirings (boolean derivability, tropical
cheapest-derivation, security clearances) — the homomorphism property that
lets ORCHESTRA store provenance once and reuse it for many policies.

Expected shape: provenance tracking costs a constant factor on exchange
(well under an order of magnitude), and semiring evaluation over the stored
graph is much cheaper than re-running the exchange.
"""

from __future__ import annotations

import time

import pytest

from repro.config import ExchangeConfig
from repro.exchange.engine import ExchangeEngine
from repro.provenance import BooleanSemiring, SecuritySemiring, TropicalSemiring, TrustLevel

from .bench_exchange_scaling import _figure2_program, _insert_transactions
from ._reporting import print_table

BATCH = 100


@pytest.mark.parametrize("track_provenance", [True, False], ids=["provenance_on", "provenance_off"])
def test_exchange_with_and_without_provenance(benchmark, track_provenance):
    """Cost of one exchange batch with provenance tracking on vs. off."""
    transactions = _insert_transactions(BATCH)

    def setup():
        engine = ExchangeEngine(
            _figure2_program(), ExchangeConfig(track_provenance=track_provenance)
        )
        return (engine,), {}

    def run(engine: ExchangeEngine):
        engine.process_transactions(transactions)
        return engine

    engine = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    stats = engine.statistics()
    print_table(
        f"PROV-OVERHEAD: exchange of {BATCH} transactions "
        f"({'with' if track_provenance else 'without'} provenance)",
        ["metric", "value"],
        [
            ["database tuples", stats["database_tuples"]],
            ["provenance tuple nodes", stats["provenance_tuple_nodes"]],
            ["provenance derivations", stats["provenance_derivations"]],
        ],
    )


def test_trust_evaluation_by_homomorphism(benchmark):
    """Answering three different trust questions from one stored provenance graph."""
    engine = ExchangeEngine(_figure2_program())
    engine.process_transactions(_insert_transactions(BATCH))
    graph = engine.provenance
    assert graph is not None
    variables_by_peer = {
        variable: variable.split(".", 1)[0] for variable in graph.base_variables()
    }

    def evaluate_all():
        boolean = graph.evaluate(
            BooleanSemiring(), {variable: True for variable in variables_by_peer}
        )
        tropical = graph.evaluate(
            TropicalSemiring(),
            {variable: 1.0 for variable in variables_by_peer},
        )
        security = graph.evaluate(
            SecuritySemiring(),
            {variable: TrustLevel.PUBLIC for variable in variables_by_peer},
        )
        return boolean, tropical, security

    boolean, tropical, security = benchmark(evaluate_all)
    derivable = sum(1 for value in boolean.values() if value)
    cheapest = min(value for value in tropical.values() if value != float("inf"))
    print_table(
        "PROV-OVERHEAD: trust evaluation via semiring homomorphisms",
        ["semiring", "result summary"],
        [
            ["boolean", f"{derivable} derivable tuples"],
            ["tropical", f"cheapest derivation cost {cheapest}"],
            ["security", f"{sum(1 for v in security.values() if v == TrustLevel.PUBLIC)} tuples at PUBLIC"],
        ],
    )
    assert derivable > 0


def test_polynomial_expansion_cost(benchmark):
    """Expanding provenance polynomials for every derived Σ2 tuple."""
    engine = ExchangeEngine(_figure2_program())
    engine.process_transactions(_insert_transactions(BATCH))
    graph = engine.provenance
    assert graph is not None
    targets = [("Crete.OPS", values) for values in engine.derived_tuples("Crete", "OPS")]

    def expand():
        return [graph.polynomial_for(relation, values) for relation, values in targets]

    polynomials = benchmark(expand)
    assert len(polynomials) == BATCH
    degrees = {polynomial.degree for polynomial in polynomials}
    print_table(
        "PROV-OVERHEAD: provenance polynomials of derived OPS tuples",
        ["metric", "value"],
        [
            ["tuples expanded", len(polynomials)],
            ["polynomial degrees observed", sorted(degrees)],
            ["monomials per tuple", sorted({p.monomial_count() for p in polynomials})],
        ],
    )
