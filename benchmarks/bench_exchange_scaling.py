"""Experiments SCALE-EXCHANGE and ABL-INCREMENTAL: update-translation cost.

The demo paper's claim is qualitative — ORCHESTRA "has been tested
extensively on ... update-heavy workloads" — and the companion paper's
evaluation varies the number of published updates and compares incremental
maintenance against recomputation.  These benchmarks regenerate that shape:

* SCALE-EXCHANGE: cost of processing a batch of published transactions
  through the exchange engine as the batch size grows (expected: roughly
  linear growth in the number of updates);
* ABL-INCREMENTAL: incremental delta propagation versus full recomputation
  after a small change to a large instance (expected: incremental wins, and
  the gap widens with instance size).
"""

from __future__ import annotations

import time

import pytest

from repro.config import ExchangeConfig
from repro.exchange.engine import ExchangeEngine
from repro.exchange.rules import compile_mappings
from repro.workloads.bioinformatics import (
    BioDataGenerator,
    build_figure2_network,
    sigma1_schema,
    sigma2_schema,
)
from repro.core.mapping import join_mapping, split_mapping
from repro.core.transactions import Transaction
from repro.core.updates import Update

from ._reporting import print_table

BATCH_SIZES = [50, 100, 200]


def _figure2_program():
    mappings = [
        join_mapping(
            "M_AC", "Alaska", "Crete",
            "OPS(org, prot, seq)",
            ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
        ),
        split_mapping(
            "M_CA", "Crete", "Alaska",
            ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
            "OPS(org, prot, seq)",
        ),
    ]
    return compile_mappings(
        [("Alaska", sigma1_schema()), ("Crete", sigma2_schema())], mappings
    )


def _insert_transactions(count: int) -> list[Transaction]:
    generator = BioDataGenerator(seed=99)
    transactions = []
    for index in range(count):
        oid, pid = 1000 + index, 5000 + index
        updates = (
            Update.insert("O", (generator.organism(index), oid), origin="Alaska"),
            Update.insert("P", (generator.protein(index), pid), origin="Alaska"),
            Update.insert("S", (oid, pid, generator.sequence()), origin="Alaska"),
        )
        transactions.append(Transaction(f"A{index}", "Alaska", updates))
    return transactions


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_exchange_scaling_with_batch_size(benchmark, batch_size):
    """SCALE-EXCHANGE: translation cost vs. number of published transactions."""
    transactions = _insert_transactions(batch_size)

    def setup():
        return (ExchangeEngine(_figure2_program()),), {}

    def run(engine: ExchangeEngine):
        engine.process_transactions(transactions)
        return engine

    engine = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert engine.statistics()["processed_transactions"] == batch_size
    derived = len(engine.derived_tuples("Crete", "OPS"))
    print_table(
        f"SCALE-EXCHANGE: batch of {batch_size} transactions",
        ["metric", "value"],
        [
            ["transactions", batch_size],
            ["updates", batch_size * 3],
            ["derived OPS tuples at Crete", derived],
            ["database tuples", engine.statistics()["database_tuples"]],
        ],
    )


@pytest.mark.parametrize("instance_size", [100, 300])
def test_incremental_vs_full(benchmark, instance_size):
    """ABL-INCREMENTAL: one new transaction, incremental delta vs. full recompute."""
    base = _insert_transactions(instance_size)
    extra = Transaction(
        "A-extra",
        "Alaska",
        (
            Update.insert("O", ("novel organism", 9999), origin="Alaska"),
            Update.insert("P", ("novel protein", 8888), origin="Alaska"),
            Update.insert("S", (9999, 8888, "ACGTACGT"), origin="Alaska"),
        ),
    )

    def setup():
        engine = ExchangeEngine(_figure2_program())
        engine.process_transactions(base)
        return (engine,), {}

    def incremental(engine: ExchangeEngine):
        return engine.process_transaction(extra)

    delta = benchmark.pedantic(incremental, setup=setup, rounds=3, iterations=1)
    assert delta.change_count() > 0

    # Contrast with recomputing the whole derived state from scratch.
    engine = ExchangeEngine(_figure2_program())
    engine.process_transactions(base)
    engine.process_transaction(extra)
    started = time.perf_counter()
    engine.recompute()
    full_seconds = time.perf_counter() - started

    print_table(
        f"ABL-INCREMENTAL: instance of {instance_size} transactions + 1 new",
        ["strategy", "seconds (one measurement)"],
        [
            ["incremental delta", f"{benchmark.stats.stats.mean:.4f} (mean of benchmark rounds)"],
            ["full recomputation", f"{full_seconds:.4f}"],
        ],
    )
    # Shape check: incremental maintenance should beat recomputing everything.
    assert benchmark.stats.stats.mean < full_seconds


def test_deletion_heavy_stream(benchmark):
    """ABL-INCREMENTAL (deletions): provenance-guided deletion propagation."""
    transactions = _insert_transactions(60)
    deletions = [
        Transaction(
            f"D{index}",
            "Alaska",
            (Update.delete("S", (1000 + index, 5000 + index, transactions[index].updates[2].values[2]),
                           origin="Alaska"),),
            frozenset({f"A{index}"}),
        )
        for index in range(0, 60, 2)
    ]

    def setup():
        engine = ExchangeEngine(_figure2_program())
        engine.process_transactions(transactions)
        return (engine,), {}

    def run(engine: ExchangeEngine):
        engine.process_transactions(deletions)
        return engine

    engine = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    remaining = len(engine.derived_tuples("Crete", "OPS"))
    print_table(
        "Deletion-heavy stream (60 inserts, 30 deletes)",
        ["metric", "value"],
        [["remaining OPS tuples at Crete", remaining]],
    )
    assert remaining == 30
