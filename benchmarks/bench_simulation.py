"""SIM-THROUGHPUT: cost of the randomized differential-oracle harness.

The simulator is the safety net for every scaling/perf PR, so its own
throughput matters: these benchmarks measure how many seeded networks (and
workload transactions) the full four-oracle campaign sustains per second,
at the pytest-slice scale and at the larger nightly scale.
"""

from __future__ import annotations

import time

import pytest

from repro.workloads.simulation import SimulationConfig, run_campaign, run_simulation

from ._reporting import print_table

SCALES = {
    "slice": SimulationConfig(epochs=3, max_peers=4, transactions_per_epoch=(2, 5)),
    "nightly": SimulationConfig(epochs=6, max_peers=6, transactions_per_epoch=(3, 9)),
}


@pytest.mark.parametrize("scale", list(SCALES))
def test_simulation_campaign_throughput(benchmark, scale):
    config = SCALES[scale]
    seeds = range(1, 11)

    def run():
        return run_campaign(seeds, config)

    campaign = benchmark.pedantic(run, rounds=3, iterations=1)
    assert campaign.ok, "\n".join(f.describe() for f in campaign.failures)

    elapsed = benchmark.stats.stats.mean
    transactions = sum(result.transactions for result in campaign.results)
    checks = sum(result.oracle_checks for result in campaign.results)
    print_table(
        f"SIM-THROUGHPUT ({scale})",
        ["seeds", "transactions", "oracle checks", "mean s", "txns/s", "checks/s"],
        [[
            len(campaign.results),
            transactions,
            checks,
            f"{elapsed:.3f}",
            f"{transactions / elapsed:.0f}",
            f"{checks / elapsed:.0f}",
        ]],
    )


def test_single_seed_oracle_cost():
    """Relative cost of one fully-oracled epoch vs an uncheck-free sync run
    is dominated by the from-scratch recomputation; record the absolute
    figure so regressions in the oracle path are visible."""
    config = SimulationConfig(epochs=5, max_peers=5, transactions_per_epoch=(4, 8))
    started = time.perf_counter()
    for seed in range(50, 55):
        result = run_simulation(seed, config)
        assert result.ok
    elapsed = time.perf_counter() - started
    print_table(
        "SIM-ORACLE-COST",
        ["seeds", "epochs/seed", "seconds", "seconds/seed"],
        [[5, config.epochs, f"{elapsed:.3f}", f"{elapsed / 5:.3f}"]],
    )
