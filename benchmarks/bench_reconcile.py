"""Experiment RECONCILE: sketch reconciliation vs cursor replay at scale.

Measures the wire cost of the :mod:`repro.p2p.reconcile` subsystem on
networks of 100+ peers:

* ``patchwork`` — a reconnecting peer holds the archive's log minus a
  scattered diff (it was intermittently online, so its scalar cursor is
  pinned at its *earliest* hole).  Cursor replay ships nearly the whole
  log tail; an IBLT session ships O(diff) bytes no matter how long the
  shared history is.  Bloom is measured too, as the ablation: its sketch
  grows with the set, not the diff, which is why IBLT is the default.
* ``flash-crowd`` — half of a 128-peer gossip network disconnects, the
  archive keeps publishing, and the crowd reconnects at once.  Reports
  total/per-peer bytes and messages, rounds to convergence, and how much
  of the traffic the archive itself had to serve, against the baseline of
  every rejoiner replaying its cursor straight from the store.

Knobs:

* ``RECONCILE_BENCH_SMOKE=1`` shrinks sizes so the module runs in seconds
  (CI).
* ``RECONCILE_BENCH_RECORD=1`` (re)writes the committed baseline
  ``BENCH_reconcile.json`` next to this module.
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

from repro.core.transactions import Transaction
from repro.core.updates import Update
from repro.p2p.gossip import GossipCoordinator
from repro.p2p.network import Network
from repro.p2p.reconcile import (
    EntryCache,
    ReconcileConfig,
    SetReconciler,
    StoreView,
    cursor_transfer_bytes,
)
from repro.p2p.store import UpdateStore

from ._reporting import print_table


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no", "off")


SMOKE = _env_flag("RECONCILE_BENCH_SMOKE")
RECORD = _env_flag("RECONCILE_BENCH_RECORD")
BASELINE_PATH = Path(__file__).with_name("BENCH_reconcile.json")

LOG_LENGTH = 600 if SMOKE else 3000
DIFF_SIZES = (10, 40, 160) if SMOKE else (25, 100, 400)
CROWD_PEERS = 128
CROWD_HISTORY = 120 if SMOKE else 400
CROWD_DIFF = 60 if SMOKE else 200


def _record(experiment: str, payload) -> None:
    if not RECORD:
        return
    baseline = {}
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
    baseline[experiment] = payload
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")


def _filled_store(count: int, publisher: str = "P0") -> UpdateStore:
    store = UpdateStore()
    for epoch in range(1, count + 1):
        txn = Transaction(
            f"{publisher}-e{epoch}",
            publisher,
            (Update.insert("R", (epoch, "payload"), origin=publisher),),
        )
        store.archive([txn], epoch=epoch, publisher=publisher)
    return store


def _patchwork_peer(store: UpdateStore, holes: int, seed: int) -> tuple[EntryCache, int]:
    """A peer cache holding everything except ``holes`` scattered entries.

    Returns the cache and the peer's scalar cursor: the epoch just below its
    earliest hole, which is where cursor replay would have to restart.
    """
    entries = store.published_since(0)
    rng = random.Random(seed)
    missing = set(rng.sample(range(len(entries)), holes))
    cache = EntryCache("rejoiner")
    cache.add_entries(e for i, e in enumerate(entries) if i not in missing)
    cursor = min(entries[i].epoch for i in missing) - 1
    return cache, cursor


def test_patchwork_catchup_bytes_scale_with_diff():
    """Sketch bytes track the diff; cursor bytes track the log tail."""
    store = _filled_store(LOG_LENGTH)
    rows = []
    results = {"log_length": LOG_LENGTH, "diffs": []}
    for diff in DIFF_SIZES:
        cache, cursor = _patchwork_peer(store, diff, seed=diff)
        cursor_bytes = cursor_transfer_bytes(store.published_since(cursor))
        measurements = {}
        for algorithm in ("iblt", "bloom"):
            view = StoreView(store)
            view.refresh()
            reconciler = SetReconciler(ReconcileConfig(algorithm=algorithm))
            peer, _ = _patchwork_peer(store, diff, seed=diff)
            result = reconciler.reconcile(peer, view)
            assert result.converged
            assert peer.count == len(store)
            measurements[algorithm] = reconciler.stats.to_dict()
        record = {
            "diff": diff,
            "cursor_replay_bytes": cursor_bytes,
            "iblt_bytes": measurements["iblt"]["bytes"],
            "iblt_sketch_bytes": measurements["iblt"]["sketch_bytes"],
            "iblt_messages": measurements["iblt"]["messages"],
            "bloom_bytes": measurements["bloom"]["bytes"],
        }
        results["diffs"].append(record)
        rows.append([
            diff,
            cursor_bytes,
            record["iblt_bytes"],
            record["iblt_sketch_bytes"],
            record["iblt_messages"],
            record["bloom_bytes"],
            f"{cursor_bytes / record['iblt_bytes']:.1f}x",
        ])

    print_table(
        f"RECONCILE: patchwork rejoiner over a {LOG_LENGTH}-entry log",
        ["diff", "cursor B", "iblt B", "iblt sketch B", "iblt msgs", "bloom B", "cursor/iblt"],
        rows,
    )
    # The acceptance property: catch-up cost follows the diff, not the log.
    small, large = results["diffs"][0], results["diffs"][-1]
    growth = DIFF_SIZES[-1] / DIFF_SIZES[0]
    assert large["iblt_bytes"] < small["iblt_bytes"] * growth * 2
    # Every IBLT session beats replaying the scattered peer's cursor tail.
    for record in results["diffs"]:
        assert record["iblt_bytes"] < record["cursor_replay_bytes"]
    _record("patchwork", results)


def test_flash_crowd_gossip_on_128_peers():
    """Half a 128-peer network rejoins at once; gossip spreads the diff."""
    peers = [f"P{index}" for index in range(CROWD_PEERS)]
    network = Network(peers)
    store = _filled_store(CROWD_HISTORY)
    coordinator = GossipCoordinator(network, store, fanout=2)
    for peer in peers:
        coordinator.register_peer(peer)
    coordinator.run_until_converged()

    crowd = peers[: CROWD_PEERS // 2]
    for peer in crowd:
        network.set_online(peer, False)
    for epoch in range(CROWD_HISTORY + 1, CROWD_HISTORY + CROWD_DIFF + 1):
        txn = Transaction(
            f"P0-e{epoch}", "P0",
            (Update.insert("R", (epoch, "payload"), origin="P0"),),
        )
        store.archive([txn], epoch=epoch, publisher="P0")
    coordinator.run_until_converged()

    for peer in crowd:
        network.set_online(peer, True)
    before = coordinator.stats.snapshot()
    traffic_before = network.message_stats()
    report = coordinator.run_until_converged()
    assert report.converged
    delta = coordinator.stats.since(before)
    traffic = network.message_stats()

    # Baseline: every rejoiner replays its cursor straight from the store.
    diff_entries = store.published_since(CROWD_HISTORY)
    cursor_baseline = len(crowd) * cursor_transfer_bytes(diff_entries)
    archive_bytes = (
        traffic["per_peer"]["#archive"]["bytes_sent"]
        + traffic["per_peer"]["#archive"]["bytes_received"]
        - traffic_before["per_peer"]["#archive"]["bytes_sent"]
        - traffic_before["per_peer"]["#archive"]["bytes_received"]
    )
    measurement = {
        "peers": CROWD_PEERS,
        "rejoining_peers": len(crowd),
        "history_entries": CROWD_HISTORY,
        "diff_entries": CROWD_DIFF,
        "rounds": report.round_count,
        "sessions": delta.sessions,
        "messages": delta.messages,
        "bytes": delta.bytes,
        "bytes_per_rejoiner": delta.bytes // len(crowd),
        "entries_delivered": delta.entries_delivered,
        "decode_failures": delta.decode_failures,
        "fallbacks": delta.fallbacks,
        "archive_served_bytes": archive_bytes,
        "cursor_baseline_bytes": cursor_baseline,
    }
    print_table(
        f"RECONCILE: flash crowd, {len(crowd)}/{CROWD_PEERS} peers rejoin",
        ["metric", "value"],
        [[key, value] for key, value in measurement.items()],
    )
    # Every rejoiner got exactly the diff (plus sketch overhead), and the
    # archive served only a fraction of the traffic — the crowd carried the
    # rest peer-to-peer.
    assert delta.entries_delivered >= CROWD_DIFF * len(crowd)
    assert archive_bytes < measurement["bytes"]
    _record("flash_crowd", measurement)
