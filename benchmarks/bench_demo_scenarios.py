"""Experiment DEMO-S1..S5: the five demonstration scenarios of Section 4.

Each benchmark reruns one scripted scenario end to end (network construction,
local edits, publication, exchange, reconciliation, and — for Scenario 4 —
manual conflict resolution), verifies the paper's described outcome, and
reports the wall-clock cost of the whole interaction.
"""

from __future__ import annotations

import pytest

from repro.workloads.scenarios import (
    scenario_1_bidirectional_translation,
    scenario_2_conflict_and_dependent_rejection,
    scenario_3_antecedent_acceptance,
    scenario_4_deferral_and_resolution,
    scenario_5_offline_publisher,
)

from ._reporting import print_table


def test_scenario_1_bidirectional_translation(benchmark):
    outcome = benchmark(scenario_1_bidirectional_translation)
    obs = outcome.observations
    assert obs["dresden_accepted_alaska"] and obs["alaska_accepted_dresden"]
    print_table(
        "DEMO-S1: bidirectional translation",
        ["observation", "value"],
        [[key, obs[key]] for key in (
            "dresden_accepted_alaska",
            "alaska_accepted_dresden",
            "alaska_has_translated_organism",
            "alaska_has_translated_sequence",
        )],
    )


def test_scenario_2_conflict_and_dependent_rejection(benchmark):
    outcome = benchmark(scenario_2_conflict_and_dependent_rejection)
    obs = outcome.observations
    assert obs["crete_accepts_beijing"] and obs["crete_rejects_dresden"]
    assert obs["crete_rejects_follow_up"]
    print_table(
        "DEMO-S2: trust-based conflict resolution",
        ["observation", "value"],
        [[key, obs[key]] for key in (
            "crete_accepts_beijing",
            "crete_rejects_dresden",
            "crete_rejects_follow_up",
            "crete_sequence_is_beijings",
        )],
    )


def test_scenario_3_antecedent_acceptance(benchmark):
    outcome = benchmark(scenario_3_antecedent_acceptance)
    obs = outcome.observations
    assert obs["crete_accepts_beijing"] and obs["crete_accepts_alaska_antecedent"]
    print_table(
        "DEMO-S3: untrusted antecedent accepted with trusted dependent",
        ["observation", "value"],
        [[key, obs[key]] for key in (
            "beijing_depends_on_alaska",
            "crete_accepts_beijing",
            "crete_accepts_alaska_antecedent",
            "crete_has_modified_sequence",
        )],
    )


def test_scenario_4_deferral_and_resolution(benchmark):
    outcome = benchmark(scenario_4_deferral_and_resolution)
    obs = outcome.observations
    assert obs["dresden_defers_both"]
    assert obs["resolution_accepts_beijing"] and obs["resolution_rejects_alaska"]
    assert obs["resolution_accepts_crete_automatically"]
    print_table(
        "DEMO-S4: deferral and manual resolution",
        ["observation", "value"],
        [[key, obs[key]] for key in (
            "dresden_defers_both",
            "dresden_defers_crete",
            "resolution_accepts_beijing",
            "resolution_rejects_alaska",
            "resolution_accepts_crete_automatically",
            "dresden_final_sequence",
        )],
    )


def test_scenario_5_offline_publisher(benchmark):
    outcome = benchmark(scenario_5_offline_publisher)
    obs = outcome.observations
    assert obs["alaska_accepted_all"] and obs["store_still_has_beijing"]
    print_table(
        "DEMO-S5: publisher offline, archive still serves its updates",
        ["observation", "value"],
        [[key, obs[key]] for key in (
            "beijing_online",
            "alaska_accepted_all",
            "store_still_has_beijing",
            "archive_availability",
        )],
    )
