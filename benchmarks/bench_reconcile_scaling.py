"""Experiment SCALE-RECONCILE: reconciliation cost and quality.

Sweeps the number of candidate transactions and the conflict rate on the
Figure-2 network and reports, per configuration, the reconciliation cost at a
Σ2 peer and the decision mix (accepted / rejected / deferred).  Expected
shape: cost grows roughly linearly with the number of candidates, the number
of deferred transactions tracks the injected conflict rate, and the greedy
algorithm accepts every non-conflicting trusted transaction.

The ablation ABL-ORDER compares the paper's defer-on-ties policy against a
deterministic tie-breaking baseline: the baseline never defers, but decides
conflicts arbitrarily instead of leaving them to the administrator.
"""

from __future__ import annotations

import pytest

from repro.config import ReconciliationConfig, SystemConfig
from repro.workloads.bioinformatics import build_figure2_network
from repro.workloads.generator import SyntheticWorkload, WorkloadConfig

from ._reporting import print_table

SWEEP = [
    {"transactions": 30, "conflict_rate": 0.0},
    {"transactions": 30, "conflict_rate": 0.3},
    {"transactions": 60, "conflict_rate": 0.3},
]


def run_workload(transactions: int, conflict_rate: float, defer_on_ties: bool = True):
    config = SystemConfig(reconciliation=ReconciliationConfig(defer_on_ties=defer_on_ties))
    network = build_figure2_network(config)
    workload = SyntheticWorkload(
        network,
        WorkloadConfig(transactions=transactions, conflict_rate=conflict_rate, seed=31),
    )
    workload.generate()
    workload.publish_all()
    outcome = network.cdss.reconcile("Dresden")
    return network, outcome


@pytest.mark.parametrize("params", SWEEP, ids=lambda p: f"n{p['transactions']}_c{p['conflict_rate']}")
def test_reconcile_scaling(benchmark, params):
    def setup():
        config = SystemConfig()
        network = build_figure2_network(config)
        workload = SyntheticWorkload(
            network,
            WorkloadConfig(
                transactions=params["transactions"],
                conflict_rate=params["conflict_rate"],
                seed=31,
            ),
        )
        workload.generate()
        workload.publish_all()
        return (network,), {}

    def run(network):
        return network.cdss.reconcile("Dresden")

    outcome = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    summary = outcome.result.summary()
    assert summary["accepted"] > 0
    if params["conflict_rate"] > 0:
        assert summary["deferred"] > 0

    print_table(
        f"SCALE-RECONCILE: {params['transactions']} txns, conflict rate {params['conflict_rate']}",
        ["metric", "value"],
        [
            ["candidates considered", outcome.candidates_considered],
            ["accepted", summary["accepted"]],
            ["rejected", summary["rejected"]],
            ["deferred", summary["deferred"]],
            ["open conflicts", summary["conflicts_deferred"]],
            ["applied updates", summary["applied_updates"]],
        ],
    )


def test_reconcile_order_ablation(benchmark):
    """ABL-ORDER: defer-on-ties (paper) vs. deterministic tie-breaking."""
    def run_both():
        results = {}
        for label, defer in (("defer_on_ties", True), ("tie_break", False)):
            network, outcome = run_workload(40, 0.4, defer_on_ties=defer)
            results[label] = {
                "summary": outcome.result.summary(),
                "dresden_tuples": network.dresden.instance.count("OPS"),
            }
        return results

    results = benchmark(run_both)
    paper = results["defer_on_ties"]["summary"]
    baseline = results["tie_break"]["summary"]
    # The paper's policy defers conflicts; the ablation decides them all.
    assert paper["deferred"] > 0
    assert baseline["deferred"] == 0
    assert baseline["accepted"] >= paper["accepted"]
    print_table(
        "ABL-ORDER: conflict handling policy",
        ["policy", "accepted", "rejected", "deferred", "Dresden OPS tuples"],
        [
            ["defer on ties (paper)", paper["accepted"], paper["rejected"], paper["deferred"],
             results["defer_on_ties"]["dresden_tuples"]],
            ["deterministic tie-break", baseline["accepted"], baseline["rejected"],
             baseline["deferred"], results["tie_break"]["dresden_tuples"]],
        ],
    )
