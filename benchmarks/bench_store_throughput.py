"""Experiment STORE-THROUGHPUT: the distributed update store under load.

Measures the cost of the availability layer the distributed archive adds
under the exchange pipeline:

* ``publish`` — archiving transaction batches into the store (writes fan
  out to every reachable replica of the target shard), versus the
  centralized in-memory archive, at shard counts 1 / 4 / 16.
* ``catch-up`` — a reconciling peer's ``published_since(watermark)`` quorum
  read (per-shard epoch-bisected cursors merged to the canonical order),
  for a peer half an archive behind and for a cold full read.
* ``churn`` — the same workload with seeded disconnect/reconnect cycles
  between batches, reporting the re-replication and anti-entropy work the
  store performed to keep every shard at its replication factor.

Knobs:

* ``STORE_BENCH_SMOKE=1`` shrinks sizes so the module runs in seconds (CI).
* ``STORE_BENCH_RECORD=1`` (re)writes the committed baseline
  ``BENCH_store.json`` next to this module.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.core.transactions import Transaction
from repro.core.updates import Update
from repro.p2p.distributed import DistributedUpdateStore
from repro.p2p.network import Network
from repro.p2p.store import UpdateStore

from ._reporting import print_table


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no", "off")


SMOKE = _env_flag("STORE_BENCH_SMOKE")
RECORD = _env_flag("STORE_BENCH_RECORD")
BASELINE_PATH = Path(__file__).with_name("BENCH_store.json")

PEERS = [f"P{index}" for index in range(8)]
BATCHES = 80 if SMOKE else 1500
SHARD_COUNTS = (1, 4, 16)
CATCHUP_READS = 5 if SMOKE else 25


def _record(experiment: str, payload) -> None:
    if not RECORD:
        return
    baseline = {}
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
    baseline[experiment] = payload
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")


def _batches(count: int, seed: int = 17) -> list[tuple[str, list[Transaction]]]:
    """A deterministic publication workload: (publisher, transactions) pairs."""
    rng = random.Random(seed)
    batches = []
    for index in range(count):
        publisher = rng.choice(PEERS)
        transactions = [
            Transaction(
                f"b{index}-t{offset}",
                publisher,
                (Update.insert("R", (index, offset), origin=publisher),),
            )
            for offset in range(rng.randint(1, 3))
        ]
        batches.append((publisher, transactions))
    return batches


def _drive(store, batches, network=None, churn_rate=0.0, seed=23) -> dict:
    """Publish every batch; returns publish/catch-up timings and counts."""
    rng = random.Random(seed)
    offline: list[str] = []
    publish_seconds = 0.0
    for epoch, (publisher, transactions) in enumerate(batches, start=1):
        if network is not None and churn_rate:
            if offline and rng.random() < 0.5:
                network.connect(offline.pop())
            if rng.random() < churn_rate:
                candidates = [
                    peer for peer in PEERS if peer != publisher and peer not in offline
                ]
                victim = rng.choice(candidates)
                offline.append(victim)
                network.disconnect(victim)
        started = time.perf_counter()
        store.archive(transactions, epoch, publisher)
        publish_seconds += time.perf_counter() - started
    for peer in offline:
        network.connect(peer)

    total = len(store)
    halfway_epoch = len(batches) // 2
    started = time.perf_counter()
    for _ in range(CATCHUP_READS):
        behind = store.published_since(halfway_epoch)
    catchup_seconds = (time.perf_counter() - started) / CATCHUP_READS
    started = time.perf_counter()
    full = store.published_since(0)
    full_seconds = time.perf_counter() - started
    assert len(full) == total
    transactions = sum(len(batch) for _, batch in batches)
    assert total == transactions
    return {
        "batches": len(batches),
        "transactions": transactions,
        "publish_seconds": round(publish_seconds, 4),
        "publishes_per_second": round(len(batches) / publish_seconds, 0),
        "catchup_entries": len(behind),
        "catchup_seconds": round(catchup_seconds, 5),
        "full_read_seconds": round(full_seconds, 5),
    }


def test_publish_and_catchup_vs_shard_count():
    """Publish + catch-up throughput: centralized vs 1/4/16-shard distributed."""
    batches = _batches(BATCHES)
    rows = []
    results = {}

    measurement = _drive(UpdateStore(), batches)
    results["centralized"] = measurement
    rows.append(["centralized", "-", *_row_cells(measurement)])

    for shard_count in SHARD_COUNTS:
        network = Network(PEERS)
        store = DistributedUpdateStore(
            network, shard_count=shard_count, replication_factor=2, segment_size=4
        )
        measurement = _drive(store, batches, network)
        assert store.under_replicated() == {}
        results[f"shards_{shard_count}"] = measurement
        rows.append([f"distributed x{shard_count}", shard_count, *_row_cells(measurement)])

    print_table(
        "STORE-THROUGHPUT: publish + catch-up vs shard count",
        ["store", "shards", "txns", "publish s", "pub/s", "catch-up s", "full read s"],
        rows,
    )
    _record("shard_scaling", results)


def _row_cells(measurement: dict) -> list:
    return [
        measurement["transactions"],
        f"{measurement['publish_seconds']:.4f}",
        f"{measurement['publishes_per_second']:.0f}",
        f"{measurement['catchup_seconds']:.5f}",
        f"{measurement['full_read_seconds']:.5f}",
    ]


def test_throughput_under_churn():
    """The same workload with seeded churn: repairs happen, nothing is lost."""
    batches = _batches(BATCHES)
    network = Network(PEERS)
    store = DistributedUpdateStore(
        network, shard_count=4, replication_factor=2, segment_size=4
    )
    measurement = _drive(store, batches, network, churn_rate=0.3)
    store.anti_entropy()
    assert store.under_replicated() == {}
    health = store.health()
    churn = network.churn_stats()
    measurement.update(
        {
            "churn_events": churn["events"],
            "re_replications": health["re_replications"],
            "entries_transferred": health["entries_transferred"],
            "degraded_writes": health["degraded_writes"],
        }
    )
    print_table(
        "STORE-THROUGHPUT: churned configuration (4 shards x2)",
        ["metric", "value"],
        [[key, value] for key, value in measurement.items()],
    )
    _record("churned", measurement)
