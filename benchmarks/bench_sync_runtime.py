"""Experiment SYNC-RUNTIME: serial vs pipelined-async sync scheduling.

Drives a star network (every spoke maps into one hub) with 100+ online
peers under the seeded latency model and syncs it to quiescence with both
schedulers on both store backends.  Compute is identical by construction
(the async runtime replays the serial loop's canonical order, and the
concurrent-vs-serial oracle asserts report equality here too); what the
experiment measures is how the *simulated traffic* occupies the virtual
clock:

* ``serial`` transmits one message at a time, so the clock advances by the
  sum of every per-message delay;
* ``async`` overlaps independent transfers under admission control, so the
  clock advances by the pipeline's critical path.

Sustained throughput is transactions per *virtual* second; wall-clock
seconds are reported as a secondary column (the scheduler itself must not
cost more real time than it saves simulated time).

Knobs:

* ``SYNC_BENCH_SMOKE=1`` shrinks the network so the module runs in seconds (CI).
* ``SYNC_BENCH_RECORD=1`` (re)writes the committed baseline
  ``BENCH_sync.json`` next to this module.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.config import StoreConfig, SystemConfig
from repro.core.mapping import join_mapping
from repro.core.schema import PeerSchema
from repro.core.system import CDSS
from repro.core.trust import TrustPolicy
from repro.p2p.network import LatencyModel

from ._reporting import print_table


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no", "off")


SMOKE = _env_flag("SYNC_BENCH_SMOKE")
RECORD = _env_flag("SYNC_BENCH_RECORD")
BASELINE_PATH = Path(__file__).with_name("BENCH_sync.json")

#: Online peers in the star (spokes + 1 hub).  The committed baseline runs
#: the full size; CI smoke shrinks it.
SPOKES = 11 if SMOKE else 100
LATENCY_SEED = 20260808


def _record(experiment: str, payload) -> None:
    if not RECORD:
        return
    baseline = {}
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
    baseline[experiment] = payload
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")


def _build_star(runtime: str, backend: str) -> CDSS:
    """``SPOKES`` publishers all mapping into one hub peer, fully online."""
    store = StoreConfig(
        backend=backend,
        sync_runtime=runtime,
        sync_workers=16,
        shard_count=8,
        replication_factor=2,
    )
    cdss = CDSS(replace(SystemConfig.default(), store=store))
    spokes = [f"S{index:03d}" for index in range(SPOKES)]
    priorities = {name: 5 for name in [*spokes, "Hub"]}
    cdss.add_peer(
        "Hub",
        PeerSchema.build("Hub", {"R": ["a", "b"]}, {"R": ["a"]}),
        TrustPolicy.trust_only("Hub", priorities),
    )
    for name in spokes:
        cdss.add_peer(
            name,
            PeerSchema.build(name, {"R": ["a", "b"]}, {"R": ["a"]}),
            TrustPolicy.trust_only(name, priorities),
        )
        cdss.add_mapping(join_mapping(f"M_{name}", name, "Hub", "R(a, b)", ["R(a, b)"]))
    cdss.network.set_latency_model(LatencyModel(seed=LATENCY_SEED))
    return cdss


def _measure(runtime: str, backend: str) -> dict:
    cdss = _build_star(runtime, backend)
    for index in range(SPOKES):
        cdss.peer(f"S{index:03d}").insert("R", (index, f"v{index}"))
    clock_before = cdss.network.clock.now
    started = time.perf_counter()
    report = cdss.sync()
    wall_seconds = time.perf_counter() - started
    virtual_seconds = cdss.network.clock.now - clock_before
    assert report.converged
    transactions = report.published_transactions
    assert transactions == SPOKES
    measurement = {
        "peers_online": SPOKES + 1,
        "transactions": transactions,
        "rounds": report.round_count,
        "virtual_seconds": round(virtual_seconds, 6),
        "virtual_txn_per_sec": round(transactions / virtual_seconds, 1),
        "wall_seconds": round(wall_seconds, 4),
        "wall_txn_per_sec": round(transactions / wall_seconds, 1),
    }
    if report.runtime is not None:
        measurement["max_in_flight"] = report.runtime["max_in_flight"]
        measurement["backpressure_stalls"] = report.runtime["backpressure_stalls"]
    return measurement


def test_serial_vs_async_sync_throughput():
    """Star network at 100+ online peers: async sustains >= serial txn/sec
    (virtual time) on both store backends."""
    results = {}
    rows = []
    for backend in ("centralized", "distributed"):
        for runtime in ("serial", "async"):
            measurement = _measure(runtime, backend)
            results[f"{runtime}_{backend}"] = measurement
            rows.append(
                [
                    runtime,
                    backend,
                    measurement["peers_online"],
                    measurement["transactions"],
                    f"{measurement['virtual_seconds']:.4f}",
                    f"{measurement['virtual_txn_per_sec']:.1f}",
                    f"{measurement['wall_seconds']:.3f}",
                ]
            )
        serial = results[f"serial_{backend}"]
        on_async = results[f"async_{backend}"]
        # The acceptance bar: overlap must never be slower than serial.
        assert (
            on_async["virtual_txn_per_sec"] >= serial["virtual_txn_per_sec"]
        ), f"async slower than serial on {backend}: {on_async} vs {serial}"
    print_table(
        f"SYNC-RUNTIME: serial vs async at {SPOKES + 1} online peers",
        ["runtime", "store", "peers", "txns", "virtual s", "txn/s (virtual)", "wall s"],
        rows,
    )
    _record("star_100_peers", results)
