"""Experiment EVAL-THROUGHPUT: throughput of the compiled rule-execution core.

Every update-exchange round is, at the bottom, datalog rule firings through
the shared compiled executor (:mod:`repro.datalog.executor`).  These
benchmarks measure that core directly — rules fired per second and
sync-round latency — on the paper's Figure-2 network and on randomly
generated networks from the simulation workload, so plan-cache or executor
regressions show up as a throughput drop rather than only as slower
end-to-end suites.

Knobs:

* ``EVAL_BENCH_SMOKE=1`` shrinks every size so the whole module runs in a
  few seconds (the CI smoke step).
* ``EVAL_BENCH_RECORD=1`` (re)writes the committed baseline
  ``BENCH_eval.json`` next to this module with the measured figures.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.system import CDSS
from repro.datalog.ast import Fact
from repro.datalog.evaluation import Database, evaluate_program
from repro.datalog.executor import ExecutionStats
from repro.datalog.incremental import IncrementalEngine
from repro.exchange.engine import ExchangeEngine
from repro.exchange.rules import published_relation
from repro.workloads.bioinformatics import BioDataGenerator, build_figure2_network
from repro.workloads.simulation import (
    RandomWorkload,
    SimulationConfig,
    generate_network,
)

from ._reporting import print_table
from .bench_exchange_scaling import _figure2_program, _insert_transactions

def _env_flag(name: str) -> bool:
    """True unless the variable is unset, empty, or an explicit off value."""
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no", "off")


SMOKE = _env_flag("EVAL_BENCH_SMOKE")
RECORD = _env_flag("EVAL_BENCH_RECORD")
BASELINE_PATH = Path(__file__).with_name("BENCH_eval.json")

#: Workload sizes; the smoke profile keeps CI under a few seconds.
TRANSACTIONS = 40 if SMOKE else 200
GENERATED_SEEDS = range(1, 3) if SMOKE else range(1, 7)
GENERATED_CONFIG = SimulationConfig(
    epochs=2 if SMOKE else 4,
    max_peers=4 if SMOKE else 5,
    transactions_per_epoch=(2, 4) if SMOKE else (4, 8),
)
ROUNDS = 2 if SMOKE else 3


def _record(experiment: str, payload: dict) -> None:
    """Merge one experiment's figures into the committed baseline file."""
    if not RECORD:
        return
    baseline = {}
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
    baseline[experiment] = payload
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")


def test_figure2_exchange_rule_throughput(benchmark):
    """Rules fired per second while translating a Figure-2 update batch."""
    transactions = _insert_transactions(TRANSACTIONS)

    def setup():
        return (ExchangeEngine(_figure2_program()),), {}

    def run(engine: ExchangeEngine):
        engine.process_transactions(transactions)
        return engine

    engine = benchmark.pedantic(run, setup=setup, rounds=ROUNDS, iterations=1)
    elapsed = benchmark.stats.stats.mean
    fired = engine.statistics()["rules_fired"]
    assert fired > 0
    rows = [
        ["transactions", TRANSACTIONS],
        ["rules fired", fired],
        ["mean s", f"{elapsed:.4f}"],
        ["rules fired / s", f"{fired / elapsed:.0f}"],
        ["transactions / s", f"{TRANSACTIONS / elapsed:.0f}"],
    ]
    print_table("EVAL-THROUGHPUT: Figure-2 exchange", ["metric", "value"], rows)
    _record(
        "figure2_exchange",
        {
            "transactions": TRANSACTIONS,
            "rules_fired": fired,
            "mean_seconds": round(elapsed, 4),
            "rules_per_second": round(fired / elapsed),
        },
    )


def test_figure2_sync_round_latency(benchmark):
    """Latency of one orchestrated ``sync()`` over the loaded Figure-2 CDSS."""

    def setup():
        network = build_figure2_network()
        generator = BioDataGenerator(seed=23)
        generator.load_sigma1(
            network.alaska, organisms=6, proteins=8, sequences_per_pair=0.4
        )
        generator.load_sigma2(network.dresden, pairs=10)
        network.cdss.import_existing_data("Alaska")
        network.cdss.import_existing_data("Dresden")
        return (network.cdss,), {}

    def run(cdss: CDSS):
        report = cdss.sync()
        assert report.converged
        return cdss, report

    cdss, report = benchmark.pedantic(run, setup=setup, rounds=ROUNDS, iterations=1)
    elapsed = benchmark.stats.stats.mean
    rounds = len(report.rounds)
    fired = cdss.engine.statistics()["rules_fired"]
    rows = [
        ["sync rounds", rounds],
        ["rules fired", fired],
        ["mean sync s", f"{elapsed:.4f}"],
        ["mean s / round", f"{elapsed / max(rounds, 1):.4f}"],
    ]
    print_table("EVAL-THROUGHPUT: Figure-2 sync latency", ["metric", "value"], rows)
    _record(
        "figure2_sync",
        {
            "sync_rounds": rounds,
            "rules_fired": fired,
            "mean_sync_seconds": round(elapsed, 4),
            "seconds_per_round": round(elapsed / max(rounds, 1), 4),
        },
    )


def _generated_base(seed: int) -> tuple:
    """A generated network's mapping program plus insert-only base facts."""
    import random

    rng = random.Random(seed)
    spec = generate_network(rng, GENERATED_CONFIG)
    workload = RandomWorkload(spec, GENERATED_CONFIG, rng)
    program = CDSS.from_spec(spec).engine.program
    facts = []
    for _ in range(GENERATED_CONFIG.epochs):
        for command in workload.epoch_commands():
            if command.kind in ("insert", "conflict"):
                facts.append(
                    Fact(published_relation(command.peer, command.relation), command.values)
                )
    return program, facts


def test_generated_network_eval_throughput(benchmark):
    """From-scratch + incremental firing throughput over generated networks."""
    cases = [_generated_base(seed) for seed in GENERATED_SEEDS]

    def run():
        stats = ExecutionStats()
        for program, facts in cases:
            base = Database()
            for fact in facts:
                base.add(fact.predicate, fact.values)
            evaluate_program(program, base, stats=stats)
        return stats

    stats = benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    elapsed = benchmark.stats.stats.mean

    # Incremental propagation over the same networks (one timed pass).
    started = time.perf_counter()
    incremental_stats = ExecutionStats()
    for program, facts in cases:
        engine = IncrementalEngine(program, track_provenance=True)
        engine.apply_insertions(facts)
        incremental_stats.rules_fired += engine.stats.rules_fired
    incremental_elapsed = time.perf_counter() - started

    rows = [
        ["networks", len(cases)],
        ["from-scratch rules fired", stats.rules_fired],
        ["from-scratch rules / s", f"{stats.rules_fired / elapsed:.0f}"],
        ["incremental rules fired", incremental_stats.rules_fired],
        [
            "incremental rules / s",
            f"{incremental_stats.rules_fired / incremental_elapsed:.0f}",
        ],
    ]
    print_table("EVAL-THROUGHPUT: generated networks", ["metric", "value"], rows)
    _record(
        "generated_networks",
        {
            "networks": len(cases),
            "from_scratch_rules_fired": stats.rules_fired,
            "from_scratch_rules_per_second": round(stats.rules_fired / elapsed),
            "incremental_rules_fired": incremental_stats.rules_fired,
            "incremental_rules_per_second": round(
                incremental_stats.rules_fired / incremental_elapsed
            ),
        },
    )
