"""Benchmark harness (pytest-benchmark based).

Run with::

    PYTHONPATH=src python -m pytest benchmarks -q -s

Making this directory a package lets ``bench_*`` modules share the
``_reporting`` helpers through a relative import regardless of how pytest
is invoked.
"""
