"""Experiment FIG2-bioinformatics: the four-peer network of Figure 2.

Builds the Alaska/Beijing/Crete/Dresden CDSS, loads synthetic organism,
protein and sequence data at the Σ1 and Σ2 peers, runs a full round of
publication and reconciliation at every peer, and reports the per-peer
instance sizes and decision counts.  The shape to check against the paper:
data flows across the join/split mappings in both directions, and Crete —
the only peer with a restrictive trust policy — ends up with a subset of what
Dresden holds.
"""

from __future__ import annotations

import pytest

from repro.workloads.bioinformatics import BioDataGenerator, build_figure2_network
from repro.workloads.reporting import render_decision_table

from ._reporting import print_table

SCALE = {"organisms": 6, "proteins": 8, "sequences_per_pair": 0.4, "sigma2_pairs": 10}


def run_figure2_round() -> dict[str, dict[str, int]]:
    network = build_figure2_network()
    cdss = network.cdss
    generator = BioDataGenerator(seed=23)
    generator.load_sigma1(
        network.alaska,
        organisms=SCALE["organisms"],
        proteins=SCALE["proteins"],
        sequences_per_pair=SCALE["sequences_per_pair"],
    )
    generator.load_sigma2(network.dresden, pairs=SCALE["sigma2_pairs"])
    cdss.import_existing_data("Alaska")
    cdss.import_existing_data("Dresden")
    generator.insertion_transactions(network.beijing, count=3, start_index=200)

    for peer in network.peer_names():
        cdss.publish(peer)
    summaries = {}
    for peer in network.peer_names():
        outcome = cdss.reconcile(peer)
        summaries[peer] = outcome.result.summary()

    sizes = {
        peer.name: {relation.name: peer.instance.count(relation.name) for relation in peer.schema}
        for peer in network.peers()
    }
    return {"decisions": summaries, "sizes": sizes, "stats": cdss.statistics(),
            "states": [cdss.reconciliation_state(name) for name in network.peer_names()]}


def test_fig2_full_round(benchmark):
    result = benchmark(run_figure2_round)
    sizes = result["sizes"]
    # Data flowed Σ1 -> Σ2 and Σ2 -> Σ1.
    assert sizes["Dresden"]["OPS"] > SCALE["sigma2_pairs"]
    assert sizes["Beijing"]["S"] > 0
    # Crete distrusts Alaska, so it holds no more than Dresden.
    assert sizes["Crete"]["OPS"] <= sizes["Dresden"]["OPS"]

    print_table(
        "FIG2: per-peer instance sizes after one full exchange round",
        ["peer", "relation", "tuples"],
        [[peer, relation, count] for peer, relations in sorted(sizes.items())
         for relation, count in sorted(relations.items())],
    )
    print_table(
        "FIG2: per-peer reconciliation decisions",
        ["peer", "accepted", "rejected", "deferred", "pending"],
        [[peer, summary["accepted"], summary["rejected"], summary["deferred"], summary["pending"]]
         for peer, summary in sorted(result["decisions"].items())],
    )
    print(render_decision_table(result["states"]))


def test_fig2_exchange_statistics(benchmark):
    """System-level statistics of the Figure-2 round (provenance graph size etc.)."""
    result = benchmark(run_figure2_round)
    stats = result["stats"]
    assert stats["peers"] == 4
    assert stats["mappings"] == 10
    assert stats["provenance_derivations"] > 0
    print_table(
        "FIG2: exchange engine statistics",
        ["metric", "value"],
        [[key, value] for key, value in sorted(stats.items())],
    )
