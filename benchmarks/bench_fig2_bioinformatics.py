"""Experiment FIG2-bioinformatics: the four-peer network of Figure 2.

Builds the Alaska/Beijing/Crete/Dresden CDSS from its declarative spec
(:data:`repro.workloads.FIGURE2_SPEC`), loads synthetic organism, protein
and sequence data at the Σ1 and Σ2 peers, runs one orchestrated ``sync()``
(publication + reconciliation at every peer until quiescence), and reports
the per-peer instance sizes and decision counts.  The shape to check against
the paper: data flows across the join/split mappings in both directions, and
Crete — the only peer with a restrictive trust policy — ends up with a
subset of what Dresden holds.
"""

from __future__ import annotations

import pytest

from repro.workloads.bioinformatics import BioDataGenerator, build_figure2_network
from repro.workloads.reporting import render_decision_table

from ._reporting import print_sync_report, print_table

SCALE = {"organisms": 6, "proteins": 8, "sequences_per_pair": 0.4, "sigma2_pairs": 10}


def run_figure2_round() -> dict[str, object]:
    network = build_figure2_network()
    cdss = network.cdss
    generator = BioDataGenerator(seed=23)
    generator.load_sigma1(
        network.alaska,
        organisms=SCALE["organisms"],
        proteins=SCALE["proteins"],
        sequences_per_pair=SCALE["sequences_per_pair"],
    )
    generator.load_sigma2(network.dresden, pairs=SCALE["sigma2_pairs"])
    cdss.import_existing_data("Alaska")
    cdss.import_existing_data("Dresden")
    generator.insertion_transactions(network.beijing, count=3, start_index=200)

    # One call replaces the per-peer publish and reconcile loops.
    report = cdss.sync()

    sizes = {
        peer.name: {relation.name: peer.instance.count(relation.name) for relation in peer.schema}
        for peer in network.peers()
    }
    return {"report": report, "sizes": sizes, "stats": cdss.statistics(),
            "states": [cdss.reconciliation_state(name) for name in network.peer_names()]}


def test_fig2_full_round(benchmark):
    result = benchmark(run_figure2_round)
    sizes = result["sizes"]
    report = result["report"]
    assert report.converged and not report.skipped_offline
    # Data flowed Σ1 -> Σ2 and Σ2 -> Σ1.
    assert sizes["Dresden"]["OPS"] > SCALE["sigma2_pairs"]
    assert sizes["Beijing"]["S"] > 0
    # Crete distrusts Alaska, so it holds no more than Dresden.
    assert sizes["Crete"]["OPS"] <= sizes["Dresden"]["OPS"]

    print_table(
        "FIG2: per-peer instance sizes after one full sync",
        ["peer", "relation", "tuples"],
        [[peer, relation, count] for peer, relations in sorted(sizes.items())
         for relation, count in sorted(relations.items())],
    )
    print_sync_report("FIG2", report)
    print(render_decision_table(result["states"]))


def test_fig2_exchange_statistics(benchmark):
    """System-level statistics of the Figure-2 round (provenance graph size etc.)."""
    result = benchmark(run_figure2_round)
    stats = result["stats"]
    assert stats["peers"] == 4
    assert stats["mappings"] == 10
    assert stats["provenance_derivations"] > 0
    print_table(
        "FIG2: exchange engine statistics",
        ["metric", "value"],
        [[key, value] for key, value in sorted(stats.items())],
    )
