"""Reporting helpers for the benchmark harness.

Every benchmark prints the rows/series it regenerates (the textual
counterpart of the paper's figures) in addition to the timing collected by
pytest-benchmark, so that EXPERIMENTS.md can quote them directly.

The helpers consume the ``to_dict()`` serialization of the library's outcome
objects (:class:`~repro.core.system.PublishOutcome`,
:class:`~repro.core.system.ReconcileOutcome`,
:class:`~repro.api.sync.SyncReport`), so whatever a benchmark prints is the
same plain data a dashboard or CI artifact would ingest.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a small fixed-width table under a banner (captured with -s)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header)), *(len(str(row[index])) for row in rows)) if rows else len(str(header))
        for index, header in enumerate(headers)
    ]
    print("  " + "  ".join(str(header).ljust(width) for header, width in zip(headers, widths)))
    for row in rows:
        print("  " + "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))


def print_outcomes(title: str, outcomes, columns: list[str]) -> None:
    """Tabulate ``to_dict()``-serializable outcomes, one row per outcome.

    List-valued fields are rendered as their length (e.g. the ``published``
    id list becomes a count), scalars verbatim.
    """
    rows = []
    for outcome in outcomes:
        data = outcome.to_dict()
        row = []
        for column in columns:
            value = data.get(column)
            row.append(len(value) if isinstance(value, (list, dict)) else value)
        rows.append(row)
    print_table(title, columns, rows)


def print_metrics(title: str, metrics: dict, limit: int = 0) -> None:
    """Tabulate a flat metrics snapshot (``MetricsRegistry.snapshot()`` form).

    ``limit`` > 0 keeps only the first N keys (sorted) — benchmark output
    stays quotable while the full dict remains available to JSON sinks.
    """
    items = sorted(metrics.items())
    dropped = 0
    if limit and len(items) > limit:
        dropped = len(items) - limit
        items = items[:limit]
    rows = [[name, round(value, 6) if isinstance(value, float) else value]
            for name, value in items]
    if dropped:
        rows.append([f"... {dropped} more", ""])
    print_table(title, ["metric", "value"], rows)


def print_sync_report(title: str, report) -> None:
    """Print the round-by-round shape of a :class:`SyncReport` via its dict form."""
    data = report.to_dict()
    print_table(
        f"{title}: rounds",
        ["round", "published", "translated", "candidates", "skipped_offline"],
        [
            [
                round_["index"],
                round_["published_transactions"],
                round_["translated_changes"],
                round_["candidates_considered"],
                ",".join(round_["skipped_offline"]) or "-",
            ]
            for round_ in data["rounds"]
        ],
    )
    print_table(
        f"{title}: per-peer decisions",
        ["peer", "accepted", "rejected", "deferred", "pending", "open_conflicts"],
        [
            [peer, *(summary[key] for key in
                     ("accepted", "rejected", "deferred", "pending", "open_conflicts"))]
            for peer, summary in sorted(data["decisions"].items())
        ],
    )
    if data.get("metrics"):
        print_metrics(f"{title}: metrics", data["metrics"], limit=20)
