"""Reporting helpers for the benchmark harness.

Every benchmark prints the rows/series it regenerates (the textual
counterpart of the paper's figures) in addition to the timing collected by
pytest-benchmark, so that EXPERIMENTS.md can quote them directly.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a small fixed-width table under a banner (captured with -s)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header)), *(len(str(row[index])) for row in rows)) if rows else len(str(header))
        for index, header in enumerate(headers)
    ]
    print("  " + "  ".join(str(header).ljust(width) for header, width in zip(headers, widths)))
    for row in rows:
        print("  " + "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))
