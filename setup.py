"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that editable installs work in offline environments where the ``wheel``
package (needed by PEP 517 editable builds) is unavailable.
"""

from setuptools import setup

setup()
