"""Packaging metadata for the ORCHESTRA CDSS reproduction.

Kept as a plain ``setup.py`` (rather than a PEP 517 ``pyproject.toml``
build) so that editable installs keep working in offline environments where
the ``wheel`` package is unavailable.
"""

from setuptools import find_packages, setup

setup(
    name="repro-orchestra",
    version="1.1.0",
    description=(
        "Reproduction of ORCHESTRA (SIGMOD 2007): collaborative data sharing "
        "with declarative schema mappings, provenance-aware update exchange, "
        "and trust-based reconciliation"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    license="MIT",
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Database",
        "Intended Audience :: Science/Research",
    ],
)
