#!/usr/bin/env python
"""AST lint: unordered set/dict iteration feeding canonical-order paths.

The repo's distributed oracles (sketch reconciliation, provenance digests,
spec round-trips) rely on *canonical* encodings: any value that reaches
``stable_hash``/``canonical_encode``/``xor_checksum`` and friends must be
assembled in a deterministic order.  ``canonical_encode`` itself sorts sets
and dicts internally, so *passing* a set to it is fine — the bug pattern is
iterating an unordered set (or materialising it into a sequence) inside a
function that feeds those sinks, where the iteration order leaks into the
result.

Findings:

* ``DET001`` — ``for ... in <set-expression>`` inside a sensitive function.
* ``DET002`` — ``tuple(...)``, ``list(...)`` or ``str.join(...)`` over a
  set expression inside a sensitive function.

A *sensitive function* is one whose body calls any canonical-order sink
(``stable_hash``, ``canonical_encode``, ``stable_text_hash``, ``mix64``,
``xor_checksum``).  A *set expression* is a syntactic set: a set literal or
comprehension, a ``set()``/``frozenset()`` call, set algebra (``&``, ``|``,
``-``, ``^``) over one, or ``.intersection()``/``.union()``/
``.difference()``/``.symmetric_difference()`` calls.  Wrapping the
expression in ``sorted(...)`` clears the finding; a trailing ``# det: ok``
comment suppresses it when the order is provably irrelevant.

Usage::

    python tools/lint_determinism.py src/repro
    python tools/lint_determinism.py src/repro --json

Exit status is 1 when any finding survives, 0 otherwise.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

SINKS = frozenset(
    {"stable_hash", "canonical_encode", "stable_text_hash", "mix64", "xor_checksum"}
)
SET_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference"}
)
SUPPRESSION = "det: ok"


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    root = annotation
    if isinstance(root, ast.Subscript):  # set[int], Set[str], ...
        root = root.value
    if isinstance(root, ast.Attribute):  # typing.Set, typing.AbstractSet
        return root.attr in ("Set", "FrozenSet", "AbstractSet", "MutableSet")
    if isinstance(root, ast.Name):
        return root.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet")
    return False


def set_locals(function: ast.AST) -> frozenset:
    """Local names bound to set expressions (simple single-target assigns)."""
    names = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
            if isinstance(target, ast.Name) and is_set_expression(value):
                names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_is_set(node.annotation) or (
                node.value is not None and is_set_expression(node.value)
            ):
                names.add(node.target.id)
    return frozenset(names)


def is_set_expression(node: ast.AST, local_sets: frozenset = frozenset()) -> bool:
    """True for expressions that are syntactically unordered sets.

    ``local_sets`` extends the syntactic check with names the enclosing
    function bound to set expressions, so one level of variable indirection
    (``pending = set(...); for x in pending``) is still caught.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in local_sets
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if isinstance(node.func, ast.Name) and name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and name in SET_METHODS:
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        return is_set_expression(node.left, local_sets) or is_set_expression(
            node.right, local_sets
        )
    return False


def _calls_any(node: ast.AST, names: frozenset) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and _call_name(child) in names:
            return True
    return False


def transitive_sinks(trees: List[Tuple[Path, ast.Module]]) -> frozenset:
    """The primitive sinks plus their direct wrappers.

    A function that wraps ``stable_hash`` (``entry_digest``,
    ``content_payload``, ...) is itself order-sensitive, so callers of the
    wrapper get the same scrutiny as callers of the primitive.  Matching is
    by bare function name and deliberately limited to ONE hop: a full
    fixpoint over bare names taints half the repo through common method
    names (``validate``, ``to_dict``) and drowns real findings in noise.
    """
    sinks = set(SINKS)
    primitives = frozenset(SINKS)
    for _path, tree in trees:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in sinks and _calls_any(node, primitives):
                sinks.add(node.name)
    return frozenset(sinks)


class Finding:
    def __init__(self, path: Path, line: int, code: str, message: str) -> None:
        self.path = path
        self.line = line
        self.code = code
        self.message = message

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": str(self.path),
            "line": self.line,
            "code": self.code,
            "message": self.message,
        }


def _sensitive_functions(tree: ast.Module, sinks: frozenset) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and _calls_any(
            node, sinks
        ):
            yield node


def _suppressed(lines: List[str], lineno: int) -> bool:
    if 1 <= lineno <= len(lines):
        return SUPPRESSION in lines[lineno - 1]
    return False


#: Consumers whose result does not depend on argument order — iteration
#: inside them is fine (``sorted(v for v in some_set)``).
ORDER_INSENSITIVE = frozenset(
    {"sorted", "set", "frozenset", "sum", "max", "min", "len", "any", "all",
     "xor_checksum", "Counter"}
)


def _order_insensitive_nodes(function: ast.AST) -> set:
    """Every AST node nested under an order-insensitive consumer call."""
    covered: set = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Call) and _call_name(node) in ORDER_INSENSITIVE:
            for argument in node.args:
                for child in ast.walk(argument):
                    covered.add(id(child))
    return covered


def check_function(
    function: ast.AST, path: Path, lines: List[str], findings: List[Finding]
) -> None:
    name = getattr(function, "name", "<lambda>")
    local_sets = set_locals(function)
    covered = _order_insensitive_nodes(function)
    for node in ast.walk(function):
        if id(node) in covered:
            continue
        if isinstance(node, (ast.For, ast.AsyncFor)) and is_set_expression(
            node.iter, local_sets
        ):
            if not _suppressed(lines, node.lineno):
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        "DET001",
                        f"function {name!r} feeds canonical-order sinks but "
                        "iterates an unordered set here; wrap the iterable in "
                        "sorted(...)",
                    )
                )
        elif isinstance(node, ast.comprehension) and is_set_expression(
            node.iter, local_sets
        ):
            lineno = node.iter.lineno
            if not _suppressed(lines, lineno):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "DET001",
                        f"function {name!r} feeds canonical-order sinks but a "
                        "comprehension iterates an unordered set here; wrap "
                        "the iterable in sorted(...)",
                    )
                )
        elif isinstance(node, ast.Call):
            callee = _call_name(node)
            materialises = (
                isinstance(node.func, ast.Name) and callee in ("tuple", "list")
            ) or (isinstance(node.func, ast.Attribute) and callee == "join")
            if (
                materialises
                and node.args
                and is_set_expression(node.args[0], local_sets)
                and not _suppressed(lines, node.lineno)
            ):
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        "DET002",
                        f"function {name!r} feeds canonical-order sinks but "
                        f"materialises an unordered set via {callee}(...); "
                        "use sorted(...) instead",
                    )
                )


def parse_files(files: List[Path]) -> Tuple[List[Tuple[Path, ast.Module]], List[Finding]]:
    trees: List[Tuple[Path, ast.Module]] = []
    findings: List[Finding] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            trees.append((path, ast.parse(source, filename=str(path))))
        except SyntaxError as error:
            findings.append(
                Finding(path, error.lineno or 1, "DET000", f"syntax error: {error.msg}")
            )
    return trees, findings


def lint_trees(trees: List[Tuple[Path, ast.Module]]) -> List[Finding]:
    sinks = transitive_sinks(trees)
    findings: List[Finding] = []
    for path, tree in trees:
        lines = path.read_text(encoding="utf-8").splitlines()
        for function in _sensitive_functions(tree, sinks):
            check_function(function, path, lines, findings)
    return findings


def lint_file(path: Path) -> List[Finding]:
    trees, findings = parse_files([path])
    return findings + lint_trees(trees)


def collect_files(paths: List[Path]) -> Tuple[List[Path], List[str]]:
    files: List[Path] = []
    problems: List[str] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            problems.append(f"{path}: no such file or directory")
    return files, problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/lint_determinism.py",
        description="Flag unordered set iteration feeding canonical-order paths.",
    )
    parser.add_argument("paths", nargs="+", type=Path)
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)

    files, problems = collect_files(list(args.paths))
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 2

    trees, findings = parse_files(files)
    findings.extend(lint_trees(trees))
    findings.sort(key=lambda finding: (str(finding.path), finding.line, finding.code))

    if args.as_json:
        print(
            json.dumps(
                {
                    "findings": [finding.to_dict() for finding in findings],
                    "files": len(files),
                    "ok": not findings,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        print(f"{len(files)} file(s) checked: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
