"""Stratification of datalog programs with negation.

A program is stratifiable when no predicate depends negatively on itself
through a cycle in the predicate dependency graph.  Stratified evaluation
computes each stratum to fixpoint before any rule in a later stratum reads a
negated atom over it, which gives the standard perfect-model semantics.
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import StratificationError
from .ast import Program, Rule


def dependency_graph(program: Program) -> dict[str, set[tuple[str, bool]]]:
    """Return ``{head: {(body_predicate, negated), ...}}`` for the program."""
    graph: dict[str, set[tuple[str, bool]]] = defaultdict(set)
    for head, body, negated in program.dependency_edges():
        graph[head].add((body, negated))
    return dict(graph)


def stratum_numbers(program: Program) -> dict[str, int]:
    """Assign a stratum number to every IDB predicate.

    Uses the classic iterative algorithm: the stratum of a head predicate must
    be at least the stratum of every positive body predicate and strictly
    greater than the stratum of every negated body predicate.  EDB predicates
    live in stratum 0.  If numbers exceed the number of predicates, the
    program has negation through recursion and is rejected.
    """
    idb = program.idb_predicates
    numbers: dict[str, int] = {predicate: 0 for predicate in idb}
    if not idb:
        return numbers

    limit = len(idb) + 1
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            head = rule.head.predicate
            for literal_predicate, negated in (
                (atom.predicate, atom.negated)
                for atom in rule.body
                if hasattr(atom, "predicate")
            ):
                if literal_predicate not in idb:
                    continue
                required = numbers[literal_predicate] + (1 if negated else 0)
                if numbers[head] < required:
                    numbers[head] = required
                    if numbers[head] > limit:
                        raise StratificationError(
                            "program is not stratifiable: predicate "
                            f"{head!r} depends negatively on itself through recursion"
                        )
                    changed = True
    return numbers


def stratify(program: Program) -> list[list[Rule]]:
    """Partition the program's rules into an ordered list of strata.

    Each stratum is a list of rules that can be evaluated to fixpoint
    together; strata must be evaluated in the returned order.
    """
    numbers = stratum_numbers(program)
    if not program.rules:
        return []
    buckets: dict[int, list[Rule]] = defaultdict(list)
    for rule in program.rules:
        buckets[numbers[rule.head.predicate]].append(rule)
    return [buckets[level] for level in sorted(buckets)]


def is_stratifiable(program: Program) -> bool:
    """True when the program admits a stratification."""
    try:
        stratum_numbers(program)
    except StratificationError:
        return False
    return True


def is_recursive(program: Program) -> bool:
    """True when some IDB predicate (transitively) depends on itself."""
    graph: dict[str, set[str]] = defaultdict(set)
    for head, body, _negated in program.dependency_edges():
        graph[head].add(body)

    idb = program.idb_predicates

    def reachable(start: str) -> set[str]:
        seen: set[str] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for successor in graph.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    return any(predicate in reachable(predicate) for predicate in idb)
