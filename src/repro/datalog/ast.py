"""Abstract syntax for the datalog rule language.

The language is positive datalog extended with:

* stratified negation (``not R(x, y)`` in rule bodies),
* built-in comparison atoms (``x < y``, ``x != y`` and friends), and
* skolem terms (``SK_f(x, y)``) in rule heads, used by the update-exchange
  engine to represent existential variables of schema mappings as labelled
  nulls.

Terms are :class:`Variable`, :class:`Constant` or :class:`SkolemTerm`.  Atoms
are predicates applied to terms; rules are a head atom plus a body of
(possibly negated) relational atoms and built-in comparisons.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence, Union

from ..errors import DatalogError, SourceSpan, UnsafeRuleError

#: Values that may appear inside facts: Python scalars plus labelled nulls
#: (represented by ground :class:`SkolemTerm` instances).
GroundValue = Union[str, int, float, bool, None, "SkolemTerm"]


@dataclass(frozen=True, order=True)
class Variable:
    """A datalog variable, written as a bare identifier (``X``, ``org``)."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"?{self.name}"


@dataclass(frozen=True)
class Constant:
    """A literal constant appearing in a rule or fact."""

    value: GroundValue

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(self.value)


@dataclass(frozen=True)
class SkolemTerm:
    """A skolem function application ``SK_f(t1, ..., tn)``.

    In rules the arguments may contain variables; in facts they are ground
    values, in which case the term acts as a *labelled null*: two labelled
    nulls are equal exactly when they were produced by the same skolem
    function applied to the same arguments.
    """

    function: str
    arguments: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "arguments", tuple(self.arguments))

    @property
    def is_ground(self) -> bool:
        """True when no argument is (or contains) a variable."""
        return all(not _contains_variable(arg) for arg in self.arguments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(repr(a) for a in self.arguments)
        return f"{self.function}({args})"


#: A term is anything that can appear as an argument of an atom in a rule.
Term = Union[Variable, Constant, SkolemTerm]


def _contains_variable(value: object) -> bool:
    if isinstance(value, Variable):
        return True
    if isinstance(value, SkolemTerm):
        return any(_contains_variable(arg) for arg in value.arguments)
    return False


def term_variables(term: Term) -> Iterator[Variable]:
    """Yield every variable occurring in ``term`` (recursing into skolems)."""
    if isinstance(term, Variable):
        yield term
    elif isinstance(term, SkolemTerm):
        for arg in term.arguments:
            if isinstance(arg, (Variable, Constant, SkolemTerm)):
                yield from term_variables(arg)


@dataclass(frozen=True)
class Atom:
    """A relational atom ``predicate(t1, ..., tn)``, possibly negated.

    ``span`` records where the atom appeared in source text when it was
    produced by the parser; it is excluded from equality/hashing so that
    structurally identical atoms from different locations still compare
    equal (plan caches rely on structural identity).
    """

    predicate: str
    terms: tuple
    negated: bool = False
    span: SourceSpan | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> set[Variable]:
        """All variables occurring anywhere in the atom."""
        found: set[Variable] = set()
        for term in self.terms:
            found.update(term_variables(term))
        return found

    def is_ground(self) -> bool:
        """True when the atom contains no variables."""
        return not self.variables()

    def negate(self) -> "Atom":
        """Return a copy of this atom with the negation flag flipped."""
        return Atom(self.predicate, self.terms, negated=not self.negated, span=self.span)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(repr(t) for t in self.terms)
        prefix = "not " if self.negated else ""
        return f"{prefix}{self.predicate}({inner})"


_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Comparison:
    """A built-in comparison atom such as ``X != Y`` or ``X < 10``.

    Comparisons never bind variables; every variable they mention must be
    bound by a positive relational atom earlier in the rule body (rule
    safety, checked by :meth:`Rule.validate`).
    """

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise DatalogError(f"unsupported comparison operator: {self.op!r}")

    def variables(self) -> set[Variable]:
        found: set[Variable] = set()
        found.update(term_variables(self.left))
        found.update(term_variables(self.right))
        return found

    def evaluate(self, left_value: object, right_value: object) -> bool:
        """Apply the comparison to two ground values."""
        try:
            return _COMPARATORS[self.op](left_value, right_value)
        except TypeError:
            # Mixed-type comparisons (e.g. str < int) are treated as false
            # rather than crashing rule evaluation.
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.left!r} {self.op} {self.right!r}"


BodyLiteral = Union[Atom, Comparison]


@dataclass(frozen=True)
class Rule:
    """A datalog rule ``head :- body``.

    Attributes:
        head: The single head atom (never negated).
        body: Relational atoms and comparisons, evaluated as a conjunction.
        label: An optional identifier.  The update-exchange engine labels each
            rule with the schema mapping it was compiled from, which is how
            provenance records which mapping produced a derived tuple.
    """

    head: Atom
    body: tuple = ()
    label: str | None = None
    span: SourceSpan | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if self.head.negated:
            raise DatalogError("rule heads may not be negated")

    @property
    def positive_body(self) -> tuple[Atom, ...]:
        return tuple(
            literal
            for literal in self.body
            if isinstance(literal, Atom) and not literal.negated
        )

    @property
    def negative_body(self) -> tuple[Atom, ...]:
        return tuple(
            literal
            for literal in self.body
            if isinstance(literal, Atom) and literal.negated
        )

    @property
    def comparisons(self) -> tuple[Comparison, ...]:
        return tuple(
            literal for literal in self.body if isinstance(literal, Comparison)
        )

    @property
    def is_fact(self) -> bool:
        """A rule with an empty body and a ground head is a fact."""
        return not self.body and self.head.is_ground()

    def body_predicates(self) -> set[str]:
        return {
            literal.predicate for literal in self.body if isinstance(literal, Atom)
        }

    def validate(self) -> None:
        """Check rule safety.

        Every variable appearing in the head, in a negated atom, or in a
        comparison must also appear in a positive relational body atom.
        Skolem terms in the head are allowed as long as their argument
        variables are safe.
        """
        bound: set[Variable] = set()
        for atom in self.positive_body:
            bound.update(atom.variables())

        def check(vars_needed: Iterable[Variable], where: str) -> None:
            missing = {v for v in vars_needed if v not in bound}
            if missing:
                names = ", ".join(sorted(v.name for v in missing))
                raise UnsafeRuleError(
                    f"unsafe rule {self!r}: variable(s) {names} in {where} are "
                    "not bound by a positive body atom",
                    span=self.span,
                )

        check(self.head.variables(), "the head")
        for atom in self.negative_body:
            check(atom.variables(), f"negated atom {atom!r}")
        for comparison in self.comparisons:
            check(comparison.variables(), f"comparison {comparison!r}")

    def rename_variables(self, suffix: str) -> "Rule":
        """Return a copy of the rule with every variable renamed by ``suffix``.

        Used when the same rule must be instantiated several times in a
        larger program without variable capture.
        """

        def rename_term(term: Term) -> Term:
            if isinstance(term, Variable):
                return Variable(term.name + suffix)
            if isinstance(term, SkolemTerm):
                return SkolemTerm(
                    term.function, tuple(rename_term(a) for a in term.arguments)
                )
            return term

        def rename_atom(atom: Atom) -> Atom:
            return Atom(
                atom.predicate,
                tuple(rename_term(t) for t in atom.terms),
                negated=atom.negated,
            )

        new_body: list[BodyLiteral] = []
        for literal in self.body:
            if isinstance(literal, Atom):
                new_body.append(rename_atom(literal))
            else:
                new_body.append(
                    Comparison(
                        literal.op,
                        rename_term(literal.left),
                        rename_term(literal.right),
                    )
                )
        return Rule(rename_atom(self.head), tuple(new_body), label=self.label, span=self.span)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.body:
            return f"{self.head!r}."
        body = ", ".join(repr(b) for b in self.body)
        return f"{self.head!r} :- {body}."


@dataclass(frozen=True)
class Fact:
    """A ground fact: a predicate name plus a tuple of ground values."""

    predicate: str
    values: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))

    @property
    def arity(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.predicate}({inner})"


@dataclass
class Program:
    """A collection of rules evaluated together.

    The program distinguishes *intensional* predicates (appearing in some rule
    head) from *extensional* predicates (base data only); this drives
    stratification and semi-naive evaluation.
    """

    rules: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.rules = list(self.rules)

    def add(self, rule: Rule) -> None:
        rule.validate()
        self.rules.append(rule)

    def extend(self, rules: Iterable[Rule]) -> None:
        for rule in rules:
            self.add(rule)

    @property
    def idb_predicates(self) -> set[str]:
        """Predicates defined by at least one rule head."""
        return {rule.head.predicate for rule in self.rules}

    @property
    def edb_predicates(self) -> set[str]:
        """Predicates that appear only in rule bodies."""
        used: set[str] = set()
        for rule in self.rules:
            used.update(rule.body_predicates())
        return used - self.idb_predicates

    def rules_for(self, predicate: str) -> list[Rule]:
        """All rules whose head predicate is ``predicate``."""
        return [rule for rule in self.rules if rule.head.predicate == predicate]

    def validate(self) -> None:
        for rule in self.rules:
            rule.validate()

    def dependency_edges(self) -> Iterator[tuple[str, str, bool]]:
        """Yield ``(head, body, negated)`` dependency edges between predicates."""
        for rule in self.rules:
            for literal in rule.body:
                if isinstance(literal, Atom):
                    yield rule.head.predicate, literal.predicate, literal.negated

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "\n".join(repr(rule) for rule in self.rules)


def make_atom(predicate: str, *terms: object, negated: bool = False) -> Atom:
    """Convenience constructor that wraps raw Python values as constants.

    Strings that start with an uppercase letter or ``?`` are interpreted as
    variables (mirroring the textual syntax); everything else becomes a
    constant.  Pass explicit :class:`Variable`/:class:`Constant` instances to
    avoid the heuristic.
    """
    converted: list[Term] = []
    for term in terms:
        if isinstance(term, (Variable, Constant, SkolemTerm)):
            converted.append(term)
        elif isinstance(term, str) and term.startswith("?"):
            converted.append(Variable(term[1:]))
        elif isinstance(term, str) and term[:1].isupper():
            converted.append(Variable(term))
        else:
            converted.append(Constant(term))
    return Atom(predicate, tuple(converted), negated=negated)
