"""Bottom-up (naive and semi-naive) evaluation of datalog programs.

The evaluator works over a :class:`Database`, a mutable mapping from predicate
names to sets of ground tuples.  Values inside tuples may be any hashable
Python scalars plus ground :class:`~repro.datalog.ast.SkolemTerm` instances,
which play the role of labelled nulls produced by existential variables of
schema mappings.

Negation is handled by stratifying the program first
(:mod:`repro.datalog.stratification`) and evaluating strata in order, so that
a negated atom is only ever evaluated against a fully computed relation.

Since the compiled-execution refactor, this module no longer interprets rule
bodies itself: rules are compiled once into join plans
(:mod:`repro.datalog.plan`) and executed by the shared engine
(:mod:`repro.datalog.executor`) that also powers incremental maintenance and
provenance recording.  :class:`Database` pre-builds the column indexes a
compiled program's plans demand instead of waiting for the first probe.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Mapping, Optional

from .ast import Fact, Program, Rule
from .executor import ExecutionStats, fire_rule, run_program
from .indexing import ColumnIndexes, build_column_index, index_discard, index_insert
from .plan import compile_program, compile_rule

_EMPTY_SET: frozenset = frozenset()


class Database:
    """A mutable relational database: predicate name -> set of ground tuples.

    Hash indexes on individual columns keep join probes near-linear in the
    number of matching tuples.  They are pre-built for every ``(predicate,
    position)`` a compiled plan can probe (:meth:`ensure_indexes`), built
    lazily for ad-hoc :meth:`lookup` calls, and maintained on every
    insert/delete afterwards.
    """

    def __init__(self, facts: Optional[Iterable[Fact]] = None) -> None:
        self._relations: dict[str, set[tuple]] = defaultdict(set)
        #: predicate -> position -> value -> set of tuples.
        self._indexes: dict[str, ColumnIndexes] = {}
        if facts is not None:
            for fact in facts:
                self.add_fact(fact)

    @classmethod
    def from_dict(cls, relations: Mapping[str, Iterable[tuple]]) -> "Database":
        """Build a database from ``{predicate: iterable of tuples}``."""
        database = cls()
        for predicate, tuples in relations.items():
            for values in tuples:
                database.add(predicate, tuple(values))
        return database

    def add(self, predicate: str, values: tuple) -> bool:
        """Insert a tuple; returns True when it was not already present."""
        relation = self._relations[predicate]
        values = tuple(values)
        if values in relation:
            return False
        relation.add(values)
        positions = self._indexes.get(predicate)
        if positions:
            index_insert(positions, values)
        return True

    def add_many(self, predicate: str, rows: Iterable[tuple]) -> list[tuple]:
        """Bulk :meth:`add` of ready-made tuples; returns the genuinely new ones.

        Hoists the relation/index lookups out of the per-tuple loop — the
        set-at-a-time executor promotes thousands of derived tuples per
        round and the per-call overhead of :meth:`add` is measurable there.
        """
        relation = self._relations[predicate]
        positions = self._indexes.get(predicate)
        fresh: list[tuple] = []
        append = fresh.append
        add = relation.add
        contains = relation.__contains__
        for values in rows:
            if contains(values):
                continue
            add(values)
            append(values)
            if positions:
                index_insert(positions, values)
        return fresh

    def add_fact(self, fact: Fact) -> bool:
        return self.add(fact.predicate, fact.values)

    def remove(self, predicate: str, values: tuple) -> bool:
        """Remove a tuple; returns True when it was present.

        Index buckets whose tuple set empties are dropped entirely, so
        long delete-heavy runs do not accumulate empty ``value -> set()``
        entries per historical key.
        """
        relation = self._relations.get(predicate)
        if relation is None:
            return False
        values = tuple(values)
        if values not in relation:
            return False
        relation.remove(values)
        positions = self._indexes.get(predicate)
        if positions:
            index_discard(positions, values)
        return True

    def _build_index(self, predicate: str, position: int) -> dict[object, set[tuple]]:
        buckets = build_column_index(self._relations.get(predicate, ()), position)
        self._indexes.setdefault(predicate, {})[position] = buckets
        return buckets

    def ensure_indexes(self, demanded: Iterable[tuple[str, int]]) -> None:
        """Pre-build the column indexes a compiled program's plans will probe."""
        for predicate, position in demanded:
            positions = self._indexes.get(predicate)
            if positions is None or position not in positions:
                self._build_index(predicate, position)

    def probe(self, predicate: str, position: int, value: object) -> set[tuple]:
        """Matching tuples for an index probe, *without* defensive copying.

        Executor-internal: callers must not mutate the database while
        iterating the returned set (rule firing materialises its results
        before any insertion, so plan execution never does).
        """
        positions = self._indexes.get(predicate)
        if positions is None:
            buckets = self._build_index(predicate, position)
        else:
            buckets = positions.get(position)
            if buckets is None:
                buckets = self._build_index(predicate, position)
        return buckets.get(value, _EMPTY_SET)

    def rows(self, predicate: str) -> set[tuple]:
        """The live tuple set of ``predicate`` (executor-internal; do not mutate)."""
        return self._relations.get(predicate, _EMPTY_SET)

    def lookup(self, predicate: str, position: int, value: object) -> frozenset[tuple]:
        """Tuples of ``predicate`` whose column ``position`` equals ``value``.

        Builds (and afterwards maintains) a hash index on that column the
        first time it is probed.
        """
        return frozenset(self.probe(predicate, position, value))

    def contains(self, predicate: str, values: tuple) -> bool:
        relation = self._relations.get(predicate)
        return relation is not None and tuple(values) in relation

    def relation(self, predicate: str) -> frozenset[tuple]:
        """A snapshot of the tuples currently stored for ``predicate``."""
        return frozenset(self._relations.get(predicate, ()))

    def predicates(self) -> set[str]:
        return {name for name, rows in self._relations.items() if rows}

    def facts(self) -> Iterator[Fact]:
        for predicate, rows in self._relations.items():
            for values in rows:
                yield Fact(predicate, values)

    def count(self, predicate: Optional[str] = None) -> int:
        if predicate is not None:
            return len(self._relations.get(predicate, ()))
        return sum(len(rows) for rows in self._relations.values())

    def copy(self) -> "Database":
        clone = Database()
        for predicate, rows in self._relations.items():
            clone._relations[predicate] = set(rows)
        return clone

    def merge(self, other: "Database") -> int:
        """Add every tuple of ``other``; returns the number of new tuples."""
        added = 0
        for predicate, rows in other._relations.items():
            for values in rows:
                if self.add(predicate, values):
                    added += 1
        return added

    def diff(self, other: "Database") -> "Database":
        """Tuples present in ``self`` but not in ``other``."""
        result = Database()
        for predicate, rows in self._relations.items():
            missing = rows - other._relations.get(predicate, set())
            if missing:
                result._relations[predicate] = set(missing)
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine = {k: v for k, v in self._relations.items() if v}
        theirs = {k: v for k, v in other._relations.items() if v}
        return mine == theirs

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            f"{predicate}: {len(rows)} tuples"
            for predicate, rows in sorted(self._relations.items())
            if rows
        ]
        return "Database(" + ", ".join(parts) + ")"


def evaluate_rule_once(
    rule: Rule,
    database: Database,
    delta: Optional[dict[str, set[tuple]]] = None,
    delta_position: Optional[int] = None,
) -> set[tuple]:
    """Compute the set of head tuples derivable by one application of ``rule``."""
    return fire_rule(compile_rule(rule), database, delta, delta_position)


def evaluate_program(
    program: Program,
    database: Database,
    max_iterations: int = 0,
    copy: bool = True,
    stats: Optional[ExecutionStats] = None,
    backend=None,
) -> Database:
    """Evaluate ``program`` over ``database`` and return the resulting database.

    The input database is not modified unless ``copy=False``.  Negation is
    supported through stratification; an unstratifiable program raises
    :class:`~repro.errors.StratificationError`.  The program is compiled
    once (cached across calls by structural identity) and executed through
    the shared engine in :mod:`repro.datalog.executor` — or through an
    explicit :class:`~repro.datalog.executor.ExecutionBackend` strategy
    (for example the SQL pushdown backend) when ``backend`` is given.
    """
    compiled = compile_program(program)
    working = database.copy() if copy else database
    if backend is None:
        run_program(compiled, working, stats=stats, max_iterations=max_iterations)
    else:
        backend.run_program(
            compiled, working, stats=stats, max_iterations=max_iterations
        )
    return working


def derived_tuples(
    program: Program, database: Database, max_iterations: int = 0
) -> Database:
    """Return only the tuples added by evaluating ``program`` (the IDB delta)."""
    result = evaluate_program(program, database, max_iterations=max_iterations)
    return result.diff(database)
