"""Bottom-up (naive and semi-naive) evaluation of datalog programs.

The evaluator works over a :class:`Database`, a mutable mapping from predicate
names to sets of ground tuples.  Values inside tuples may be any hashable
Python scalars plus ground :class:`~repro.datalog.ast.SkolemTerm` instances,
which play the role of labelled nulls produced by existential variables of
schema mappings.

Negation is handled by stratifying the program first
(:mod:`repro.datalog.stratification`) and evaluating strata in order, so that
a negated atom is only ever evaluated against a fully computed relation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Mapping, Optional

from ..errors import DatalogError
from .ast import Atom, Comparison, Fact, Program, Rule, SkolemTerm, Variable
from .stratification import stratify
from .unification import Substitution, match_atom


class Database:
    """A mutable relational database: predicate name -> set of ground tuples.

    Hash indexes on individual columns are built lazily the first time a join
    probes a relation on a bound column and are maintained on every
    insert/delete afterwards, which keeps join evaluation near-linear in the
    number of matching tuples instead of scanning whole relations.
    """

    def __init__(self, facts: Optional[Iterable[Fact]] = None) -> None:
        self._relations: dict[str, set[tuple]] = defaultdict(set)
        #: (predicate, position) -> value -> set of tuples.
        self._indexes: dict[tuple[str, int], dict[object, set[tuple]]] = {}
        if facts is not None:
            for fact in facts:
                self.add_fact(fact)

    @classmethod
    def from_dict(cls, relations: Mapping[str, Iterable[tuple]]) -> "Database":
        """Build a database from ``{predicate: iterable of tuples}``."""
        database = cls()
        for predicate, tuples in relations.items():
            for values in tuples:
                database.add(predicate, tuple(values))
        return database

    def add(self, predicate: str, values: tuple) -> bool:
        """Insert a tuple; returns True when it was not already present."""
        relation = self._relations[predicate]
        values = tuple(values)
        if values in relation:
            return False
        relation.add(values)
        for (indexed_predicate, position), buckets in self._indexes.items():
            if indexed_predicate == predicate and position < len(values):
                buckets.setdefault(values[position], set()).add(values)
        return True

    def add_fact(self, fact: Fact) -> bool:
        return self.add(fact.predicate, fact.values)

    def remove(self, predicate: str, values: tuple) -> bool:
        """Remove a tuple; returns True when it was present."""
        relation = self._relations.get(predicate)
        if relation is None:
            return False
        values = tuple(values)
        if values in relation:
            relation.remove(values)
            for (indexed_predicate, position), buckets in self._indexes.items():
                if indexed_predicate == predicate and position < len(values):
                    bucket = buckets.get(values[position])
                    if bucket is not None:
                        bucket.discard(values)
            return True
        return False

    def lookup(self, predicate: str, position: int, value: object) -> frozenset[tuple]:
        """Tuples of ``predicate`` whose column ``position`` equals ``value``.

        Builds (and afterwards maintains) a hash index on that column the
        first time it is probed.
        """
        key = (predicate, position)
        buckets = self._indexes.get(key)
        if buckets is None:
            buckets = {}
            for row in self._relations.get(predicate, ()):
                if position < len(row):
                    buckets.setdefault(row[position], set()).add(row)
            self._indexes[key] = buckets
        return frozenset(buckets.get(value, ()))

    def contains(self, predicate: str, values: tuple) -> bool:
        relation = self._relations.get(predicate)
        return relation is not None and tuple(values) in relation

    def relation(self, predicate: str) -> frozenset[tuple]:
        """A snapshot of the tuples currently stored for ``predicate``."""
        return frozenset(self._relations.get(predicate, ()))

    def predicates(self) -> set[str]:
        return {name for name, rows in self._relations.items() if rows}

    def facts(self) -> Iterator[Fact]:
        for predicate, rows in self._relations.items():
            for values in rows:
                yield Fact(predicate, values)

    def count(self, predicate: Optional[str] = None) -> int:
        if predicate is not None:
            return len(self._relations.get(predicate, ()))
        return sum(len(rows) for rows in self._relations.values())

    def copy(self) -> "Database":
        clone = Database()
        for predicate, rows in self._relations.items():
            clone._relations[predicate] = set(rows)
        return clone

    def merge(self, other: "Database") -> int:
        """Add every tuple of ``other``; returns the number of new tuples."""
        added = 0
        for predicate, rows in other._relations.items():
            for values in rows:
                if self.add(predicate, values):
                    added += 1
        return added

    def diff(self, other: "Database") -> "Database":
        """Tuples present in ``self`` but not in ``other``."""
        result = Database()
        for predicate, rows in self._relations.items():
            missing = rows - other._relations.get(predicate, set())
            if missing:
                result._relations[predicate] = set(missing)
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine = {k: v for k, v in self._relations.items() if v}
        theirs = {k: v for k, v in other._relations.items() if v}
        return mine == theirs

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            f"{predicate}: {len(rows)} tuples"
            for predicate, rows in sorted(self._relations.items())
            if rows
        ]
        return "Database(" + ", ".join(parts) + ")"


def _candidate_tuples(
    atom: Atom, database: Database, subst: Substitution
) -> Iterable[tuple]:
    """Candidate tuples for matching ``atom``, using an index when possible.

    If some argument of the atom is already ground under the current
    substitution (a constant, a bound variable, or a ground skolem term), the
    relation is probed through a column index on that position instead of
    being scanned in full.
    """
    for position, term in enumerate(atom.terms):
        value = subst.apply_term(term)
        if isinstance(value, Variable):
            continue
        if isinstance(value, SkolemTerm) and not value.is_ground:
            continue
        return database.lookup(atom.predicate, position, value)
    return database.relation(atom.predicate)


def _evaluation_plan(rule: Rule, delta_position: Optional[int]) -> list[tuple[object, bool]]:
    """Order the body literals for evaluation.

    Returns ``(literal, use_delta)`` pairs.  When a delta position is given,
    the delta atom is evaluated first so that the (usually tiny) delta binds
    variables before the other atoms are probed through column indexes; the
    remaining positive atoms follow in their original order, and negated
    atoms plus comparisons go last (rule safety guarantees their variables
    are bound by then).
    """
    if delta_position is None:
        return [(literal, False) for literal in rule.body]
    plan: list[tuple[object, bool]] = [(rule.body[delta_position], True)]
    positives: list[Atom] = []
    guards: list[tuple[object, bool]] = []
    for index, literal in enumerate(rule.body):
        if index == delta_position:
            continue
        if isinstance(literal, Atom) and not literal.negated:
            positives.append(literal)
        else:
            guards.append((literal, False))

    # Greedy join ordering: repeatedly pick the atom sharing the most
    # variables with what is already bound, so that every probe can use a
    # column index instead of a full scan.
    bound: set[Variable] = set(rule.body[delta_position].variables())
    while positives:
        best = max(positives, key=lambda atom: (len(atom.variables() & bound), -rule.body.index(atom)))
        positives.remove(best)
        plan.append((best, False))
        bound.update(best.variables())
    return plan + guards


def _satisfy_body(
    rule: Rule,
    database: Database,
    subst: Substitution,
    literal_index: int,
    delta: Optional[dict[str, set[tuple]]] = None,
    delta_position: Optional[int] = None,
    plan: Optional[list[tuple[object, bool]]] = None,
) -> Iterator[Substitution]:
    """Enumerate substitutions satisfying the rule body from ``literal_index``.

    When ``delta`` and ``delta_position`` are given, the positive atom at that
    body position is matched against the delta relation instead of the full
    database (the semi-naive rewriting), and the body is re-ordered so that
    the delta atom is evaluated first.
    """
    if plan is None:
        plan = _evaluation_plan(rule, delta_position if delta is not None else None)
    if literal_index >= len(plan):
        yield subst
        return

    literal, use_delta = plan[literal_index]

    if isinstance(literal, Comparison):
        left = subst.apply_term(literal.left)
        right = subst.apply_term(literal.right)
        if isinstance(left, Variable) or isinstance(right, Variable):
            raise DatalogError(
                f"comparison {literal!r} evaluated with unbound variable in rule {rule!r}"
            )
        if literal.evaluate(left, right):
            yield from _satisfy_body(
                rule, database, subst, literal_index + 1, delta, delta_position, plan
            )
        return

    atom = literal
    if atom.negated:
        grounded = subst.apply_atom(atom)
        if not grounded.is_ground():
            raise DatalogError(
                f"negated atom {atom!r} not ground when evaluated in rule {rule!r}"
            )
        values = tuple(
            term.value if hasattr(term, "value") else term for term in grounded.terms
        )
        if not database.contains(atom.predicate, values):
            yield from _satisfy_body(
                rule, database, subst, literal_index + 1, delta, delta_position, plan
            )
        return

    if delta is not None and use_delta:
        candidates: Iterable[tuple] = delta.get(atom.predicate, ())
    else:
        candidates = _candidate_tuples(atom, database, subst)

    for values in candidates:
        extended = match_atom(atom, values, subst)
        if extended is not None:
            yield from _satisfy_body(
                rule, database, extended, literal_index + 1, delta, delta_position, plan
            )


def _head_values(rule: Rule, subst: Substitution) -> tuple:
    """Instantiate the head atom of ``rule`` to a ground tuple."""
    values = []
    for term in rule.head.terms:
        value = subst.apply_term(term)
        if isinstance(value, Variable):
            raise DatalogError(
                f"head variable {value.name} unbound when firing rule {rule!r}"
            )
        if isinstance(value, SkolemTerm) and not value.is_ground:
            raise DatalogError(
                f"head skolem term {value!r} not ground when firing rule {rule!r}"
            )
        values.append(value)
    return tuple(values)


def evaluate_rule_once(
    rule: Rule,
    database: Database,
    delta: Optional[dict[str, set[tuple]]] = None,
    delta_position: Optional[int] = None,
) -> set[tuple]:
    """Compute the set of head tuples derivable by one application of ``rule``."""
    derived: set[tuple] = set()
    for subst in _satisfy_body(rule, database, Substitution(), 0, delta, delta_position):
        derived.add(_head_values(rule, subst))
    return derived


def _positive_body_positions(rule: Rule, idb_predicates: set[str]) -> list[int]:
    """Body positions holding positive atoms over IDB (recursive) predicates."""
    positions = []
    for index, literal in enumerate(rule.body):
        if isinstance(literal, Atom) and not literal.negated:
            if literal.predicate in idb_predicates:
                positions.append(index)
    return positions


def _evaluate_stratum(
    rules: list[Rule],
    database: Database,
    max_iterations: int = 0,
) -> dict[str, set[tuple]]:
    """Semi-naive evaluation of one stratum; mutates ``database`` in place.

    Returns the tuples newly derived in this stratum, per predicate.
    """
    idb = {rule.head.predicate for rule in rules}
    all_new: dict[str, set[tuple]] = defaultdict(set)

    # First round: naive application of every rule.
    delta: dict[str, set[tuple]] = defaultdict(set)
    for rule in rules:
        for values in evaluate_rule_once(rule, database):
            if database.add(rule.head.predicate, values):
                delta[rule.head.predicate].add(values)
                all_new[rule.head.predicate].add(values)

    iterations = 1
    while delta:
        if max_iterations and iterations >= max_iterations:
            raise DatalogError(
                f"evaluation did not converge within {max_iterations} iterations"
            )
        next_delta: dict[str, set[tuple]] = defaultdict(set)
        for rule in rules:
            positions = _positive_body_positions(rule, idb)
            if not positions:
                continue  # Non-recursive rule: already fully applied above.
            for position in positions:
                literal = rule.body[position]
                if literal.predicate not in delta:
                    continue
                for values in evaluate_rule_once(rule, database, delta, position):
                    if database.add(rule.head.predicate, values):
                        next_delta[rule.head.predicate].add(values)
                        all_new[rule.head.predicate].add(values)
        delta = next_delta
        iterations += 1
    return dict(all_new)


def evaluate_program(
    program: Program,
    database: Database,
    max_iterations: int = 0,
    copy: bool = True,
) -> Database:
    """Evaluate ``program`` over ``database`` and return the resulting database.

    The input database is not modified unless ``copy=False``.  Negation is
    supported through stratification; an unstratifiable program raises
    :class:`~repro.errors.StratificationError`.
    """
    program.validate()
    working = database.copy() if copy else database
    for stratum in stratify(program):
        _evaluate_stratum(list(stratum), working, max_iterations=max_iterations)
    return working


def derived_tuples(
    program: Program, database: Database, max_iterations: int = 0
) -> Database:
    """Return only the tuples added by evaluating ``program`` (the IDB delta)."""
    result = evaluate_program(program, database, max_iterations=max_iterations)
    return result.diff(database)
