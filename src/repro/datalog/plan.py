"""Compilation of datalog rules into executable join plans.

Historically the repo carried three tuple-at-a-time evaluators (plain,
incremental, provenance) that each re-planned joins on every rule
application: every candidate tuple allocated a fresh
:class:`~repro.datalog.unification.Substitution`, every probe re-derived
which column index to use, and every semi-naive round re-sorted the body.
This module does all of that work **once per rule**:

* **Variable slots** — every variable of a rule is assigned an integer slot
  in a flat environment list, so binding/checking a variable is a list
  access instead of a dict copy.
* **Greedy bound-variable atom ordering** — body atoms are ordered so that
  each atom shares as many already-bound variables as possible with the
  prefix before it (the delta atom, when compiling a semi-naive variant,
  always comes first).
* **Pre-resolved index probes** — for each atom the compiler picks the
  first position that is statically ground (a constant, an already-bound
  variable, or a skolem term over bound variables) and emits a
  ``(predicate, position)`` probe against the database's column index; the
  set of all probes a plan can issue is exported as
  :attr:`CompiledProgram.demanded_indexes` so databases can pre-build them.
* **Early guard placement** — comparisons and negated atoms run at the
  earliest point where all their variables are bound, instead of trailing
  the whole join.
* **Head projection closure** — the head atom compiles to a closure from
  the environment to the ground output tuple (building labelled nulls for
  skolem terms).

Plans compile to chains of continuation closures executed by
:mod:`repro.datalog.executor`; the firing hooks (plain derivation,
delta-substitution, provenance recording) are supplied at execution time,
which is what lets all three evaluators share this single backbone.

Compiled rules and programs are cached by *structural identity* (rules are
frozen dataclasses, so two independently compiled copies of the same
mapping program share one plan), bounded by a FIFO eviction policy.
"""

from __future__ import annotations

from typing import Optional

from ..errors import DatalogError
from .ast import (
    Atom,
    Comparison,
    Constant,
    Program,
    Rule,
    SkolemTerm,
    Variable,
    term_variables,
)
from .stratification import stratify

#: Sentinel stored in environment slots that carry no binding yet.
UNBOUND = object()

_EMPTY: tuple = ()


# ---------------------------------------------------------------------------
# Value getters: env -> ground value (for probes, guards, head projection)
# ---------------------------------------------------------------------------

def _value_getter(term, slots: dict[Variable, int], bound: set[Variable]):
    """Compile ``term`` to a closure ``env -> ground value``.

    Every variable the term mentions must already be in ``bound``; rule
    safety (checked at compile time) guarantees this for heads and guards.
    """
    if isinstance(term, Constant):
        value = term.value
        return lambda env: value
    if isinstance(term, Variable):
        if term not in bound:
            raise DatalogError(
                f"variable {term.name} used before it is bound by a positive atom"
            )
        slot = slots[term]
        return lambda env: env[slot]
    if isinstance(term, SkolemTerm):
        getters = tuple(
            _value_getter(argument, slots, bound)
            if isinstance(argument, (Constant, Variable, SkolemTerm))
            else (lambda raw: (lambda env: raw))(argument)
            for argument in term.arguments
        )
        function = term.function
        return lambda env: SkolemTerm(function, tuple(g(env) for g in getters))
    raise DatalogError(f"cannot compile term {term!r}")


def _term_is_ground(term, bound: set[Variable]) -> bool:
    """Can ``term`` be evaluated to a ground value given ``bound``?"""
    if isinstance(term, Constant):
        return True
    if isinstance(term, Variable):
        return term in bound
    if isinstance(term, SkolemTerm):
        return all(v in bound for v in term_variables(term))
    return False


# ---------------------------------------------------------------------------
# Atom matching: row x env -> bool (binding fresh slots in place)
# ---------------------------------------------------------------------------

def _compile_skolem_matcher(
    term: SkolemTerm,
    slots: dict[Variable, int],
    bound: set[Variable],
    fresh: list[int],
):
    """Structural matcher for a skolem term in a body position.

    Mirrors :func:`repro.datalog.unification.match_term`: the candidate
    value must be a skolem term with the same function and arity, and the
    arguments match recursively (binding still-free variables).
    """
    ops: list[tuple] = []
    for index, argument in enumerate(term.arguments):
        if isinstance(argument, Constant):
            ops.append(("const", index, argument.value))
        elif isinstance(argument, Variable):
            if argument in bound:
                ops.append(("check", index, slots[argument]))
            else:
                bound.add(argument)
                fresh.append(slots[argument])
                ops.append(("bind", index, slots[argument]))
        elif isinstance(argument, SkolemTerm):
            ops.append(
                ("skolem", index, _compile_skolem_matcher(argument, slots, bound, fresh))
            )
        else:  # raw pre-ground value inside a skolem term
            ops.append(("const", index, argument))
    function = term.function
    arity = len(term.arguments)

    def matcher(value, env) -> bool:
        if (
            not isinstance(value, SkolemTerm)
            or value.function != function
            or len(value.arguments) != arity
        ):
            return False
        arguments = value.arguments
        for kind, index, payload in ops:
            if kind == "const":
                if payload != arguments[index]:
                    return False
            elif kind == "check":
                if env[payload] != arguments[index]:
                    return False
            elif kind == "bind":
                env[payload] = arguments[index]
            else:  # nested skolem
                if not payload(arguments[index], env):
                    return False
        return True

    return matcher


def _compile_atom_match(
    atom: Atom,
    slots: dict[Variable, int],
    bound: set[Variable],
    skip_position: Optional[int],
):
    """Compile the per-row match test of one positive atom.

    Returns ``(match, fresh_slots)`` where ``match(row, env)`` extends the
    environment in place and ``fresh_slots`` lists the slots this atom may
    bind (they are reset by the executor after each candidate).  The probed
    position, if any, is skipped: the index bucket already guarantees it.
    """
    arity = len(atom.terms)
    const_checks: list[tuple[int, object]] = []
    slot_checks: list[tuple[int, int]] = []  # against slots bound before this atom
    post_checks: list[tuple[int, int]] = []  # against slots this atom binds
    binds: list[tuple[int, int]] = []
    ordered: list[tuple] = []  # generic path preserving position order
    fresh: list[int] = []
    fresh_variables: set[Variable] = set()
    needs_order = False

    for position, term in enumerate(atom.terms):
        if position == skip_position:
            continue
        if isinstance(term, Constant):
            const_checks.append((position, term.value))
            ordered.append(("const", position, term.value))
        elif isinstance(term, Variable):
            if term in fresh_variables:
                # Repeated variable within this atom: its binding happens at
                # an earlier position, so the check must run after the binds.
                post_checks.append((position, slots[term]))
                ordered.append(("check", position, slots[term]))
            elif term in bound:
                slot_checks.append((position, slots[term]))
                ordered.append(("check", position, slots[term]))
            else:
                bound.add(term)
                fresh_variables.add(term)
                fresh.append(slots[term])
                binds.append((position, slots[term]))
                ordered.append(("bind", position, slots[term]))
        elif isinstance(term, SkolemTerm):
            # A later plain-variable check may depend on a slot this matcher
            # binds, so the generic ordered path must be used.
            needs_order = True
            before = set(bound)
            matcher = _compile_skolem_matcher(term, slots, bound, fresh)
            fresh_variables |= bound - before
            ordered.append(("skolem", position, matcher))
        else:
            raise DatalogError(f"cannot compile body term {term!r} of {atom!r}")

    if needs_order:
        steps = tuple(ordered)

        def match(row, env) -> bool:
            if len(row) != arity:
                return False
            for kind, position, payload in steps:
                if kind == "const":
                    if payload != row[position]:
                        return False
                elif kind == "check":
                    if env[payload] != row[position]:
                        return False
                elif kind == "bind":
                    env[payload] = row[position]
                else:
                    if not payload(row[position], env):
                        return False
            return True

        return match, tuple(fresh)

    consts = tuple(const_checks)
    checks = tuple(slot_checks)
    bind_ops = tuple(binds)
    late_checks = tuple(post_checks)

    def match(row, env) -> bool:
        if len(row) != arity:
            return False
        for position, value in consts:
            if value != row[position]:
                return False
        for position, slot in checks:
            if env[slot] != row[position]:
                return False
        for position, slot in bind_ops:
            env[slot] = row[position]
        for position, slot in late_checks:
            if env[slot] != row[position]:
                return False
        return True

    return match, tuple(fresh)


# ---------------------------------------------------------------------------
# Step continuations
# ---------------------------------------------------------------------------

def _terminal(database, delta, env, regs, emit) -> None:
    emit(env, regs)


def _make_atom_step(
    atom: Atom,
    slots: dict[Variable, int],
    bound: set[Variable],
    reg: int,
    use_delta: bool,
    next_step,
    describe: list[str],
):
    """Compile one positive body atom into a candidate-enumeration step."""
    predicate = atom.predicate

    probe_position: Optional[int] = None
    probe_getter = None
    if not use_delta:
        for position, term in enumerate(atom.terms):
            if _term_is_ground(term, bound):
                probe_position = position
                probe_getter = _value_getter(term, slots, bound)
                break

    match, fresh = _compile_atom_match(atom, slots, bound, probe_position)
    reset = fresh  # slots this step binds; statically unbound before it

    if use_delta:
        describe.append(f"delta {predicate}")

        def step(database, delta, env, regs, emit):
            for row in delta.get(predicate, _EMPTY):
                if match(row, env):
                    regs[reg] = row
                    next_step(database, delta, env, regs, emit)
                for slot in reset:
                    env[slot] = UNBOUND

    elif probe_position is not None:
        describe.append(f"probe {predicate}[{probe_position}]")
        position = probe_position
        getter = probe_getter

        def step(database, delta, env, regs, emit):
            for row in database.probe(predicate, position, getter(env)):
                if match(row, env):
                    regs[reg] = row
                    next_step(database, delta, env, regs, emit)
                for slot in reset:
                    env[slot] = UNBOUND

    else:
        describe.append(f"scan {predicate}")

        def step(database, delta, env, regs, emit):
            for row in database.rows(predicate):
                if match(row, env):
                    regs[reg] = row
                    next_step(database, delta, env, regs, emit)
                for slot in reset:
                    env[slot] = UNBOUND

    return step, (predicate, probe_position) if probe_position is not None else None


def _make_comparison_step(
    comparison: Comparison,
    slots: dict[Variable, int],
    bound: set[Variable],
    next_step,
    describe: list[str],
):
    left = _value_getter(comparison.left, slots, bound)
    right = _value_getter(comparison.right, slots, bound)
    evaluate = comparison.evaluate
    describe.append(f"compare {comparison.op}")

    def step(database, delta, env, regs, emit):
        if evaluate(left(env), right(env)):
            next_step(database, delta, env, regs, emit)

    return step


def _make_negation_step(
    atom: Atom,
    slots: dict[Variable, int],
    bound: set[Variable],
    next_step,
    describe: list[str],
):
    getters = tuple(_value_getter(term, slots, bound) for term in atom.terms)
    predicate = atom.predicate
    describe.append(f"negation {predicate}")

    def step(database, delta, env, regs, emit):
        if not database.contains(predicate, tuple(g(env) for g in getters)):
            next_step(database, delta, env, regs, emit)

    return step


# ---------------------------------------------------------------------------
# Literal ordering
# ---------------------------------------------------------------------------

def _order_literals(
    rule: Rule, delta_position: Optional[int]
) -> list[tuple[int, object, bool]]:
    """Greedy bound-variable ordering of the rule body.

    Returns ``(body_position, literal, use_delta)`` triples.  The delta atom
    (if any) leads; each following positive atom is the one sharing the most
    variables with everything bound so far (ties: more statically-ground
    positions, then original body order); comparisons and negations are
    flushed as soon as all their variables are bound.
    """
    positives: list[tuple[int, Atom]] = []
    guards: list[tuple[int, object]] = []
    for position, literal in enumerate(rule.body):
        if position == delta_position:
            continue
        if isinstance(literal, Atom) and not literal.negated:
            positives.append((position, literal))
        else:
            guards.append((position, literal))

    ordered: list[tuple[int, object, bool]] = []
    bound: set[Variable] = set()

    def flush_guards() -> None:
        remaining: list[tuple[int, object]] = []
        for position, literal in guards:
            if literal.variables() <= bound:
                ordered.append((position, literal, False))
            else:
                remaining.append((position, literal))
        guards[:] = remaining

    if delta_position is not None:
        delta_atom = rule.body[delta_position]
        ordered.append((delta_position, delta_atom, True))
        bound |= delta_atom.variables()

    flush_guards()
    while positives:
        def score(entry: tuple[int, Atom]) -> tuple[int, int, int]:
            position, atom = entry
            ground_positions = sum(
                1 for term in atom.terms if _term_is_ground(term, bound)
            )
            return (len(atom.variables() & bound), ground_positions, -position)

        best = max(positives, key=score)
        positives.remove(best)
        ordered.append((best[0], best[1], False))
        bound |= best[1].variables()
        flush_guards()

    if guards:
        # Rule.validate (run before compiling) rejects unsafe rules, so any
        # leftover guard is a compiler bug, not a user error.
        raise DatalogError(
            f"internal error: guards {guards!r} of rule {rule!r} never became ground"
        )
    return ordered


# ---------------------------------------------------------------------------
# Compiled rule / program
# ---------------------------------------------------------------------------

class RulePlan:
    """One executable ordering of a rule body plus its head projection.

    ``run(database, delta, env, regs, emit)`` enumerates every satisfying
    environment; ``project(env)`` instantiates the head;
    ``source_specs`` names the ``(predicate, register)`` pairs whose matched
    rows justify a firing (in original body order, for provenance).
    """

    __slots__ = ("run", "project", "source_specs", "probes", "description")

    def __init__(self, run, project, source_specs, probes, description) -> None:
        self.run = run
        self.project = project
        self.source_specs = source_specs
        self.probes = probes
        self.description = description


class CompiledRule:
    """A rule compiled once: a plain plan plus one delta plan per positive atom."""

    __slots__ = ("rule", "num_slots", "reg_count", "positive_positions", "_plans")

    def __init__(self, rule: Rule) -> None:
        rule.validate()
        self.rule = rule
        variables: set[Variable] = set()
        variables.update(rule.head.variables())
        for literal in rule.body:
            variables.update(literal.variables())
        slots = {
            variable: index
            for index, variable in enumerate(sorted(variables, key=lambda v: v.name))
        }
        self.num_slots = len(slots)
        self.reg_count = len(rule.body)
        self.positive_positions = tuple(
            position
            for position, literal in enumerate(rule.body)
            if isinstance(literal, Atom) and not literal.negated
        )
        self._plans: dict[Optional[int], RulePlan] = {
            None: self._build_plan(slots, None)
        }
        for position in self.positive_positions:
            self._plans[position] = self._build_plan(slots, position)

    def _build_plan(
        self, slots: dict[Variable, int], delta_position: Optional[int]
    ) -> RulePlan:
        rule = self.rule
        ordered = _order_literals(rule, delta_position)
        bound: set[Variable] = set()
        probes: set[tuple[str, int]] = set()
        description: list[str] = []

        # Build steps in plan order, each wired to a one-cell forwarder that
        # is patched to the next step afterwards (so descriptions and the
        # bound-variable set both evolve forward).
        steps: list = []
        cells: list[list] = []

        def make_forwarder(cell: list):
            def forward(database, delta, env, regs, emit):
                cell[0](database, delta, env, regs, emit)
            return forward

        for position, literal, use_delta in ordered:
            cell = [_terminal]
            cells.append(cell)
            nxt = make_forwarder(cell)
            if isinstance(literal, Comparison):
                steps.append(
                    _make_comparison_step(literal, slots, bound, nxt, description)
                )
            elif literal.negated:
                steps.append(
                    _make_negation_step(literal, slots, bound, nxt, description)
                )
            else:
                step, probe = _make_atom_step(
                    literal, slots, bound, position, use_delta, nxt, description
                )
                if probe is not None:
                    probes.add(probe)
                steps.append(step)
        for index in range(len(steps) - 1):
            cells[index][0] = steps[index + 1]
        run = steps[0] if steps else _terminal

        project_getters = tuple(
            _value_getter(term, slots, bound) for term in rule.head.terms
        )

        def project(env) -> tuple:
            return tuple(getter(env) for getter in project_getters)

        source_specs = tuple(
            (rule.body[position].predicate, position)
            for position in self.positive_positions
        )
        return RulePlan(run, project, source_specs, frozenset(probes), tuple(description))

    def plan_for(self, delta_position: Optional[int] = None) -> RulePlan:
        try:
            return self._plans[delta_position]
        except KeyError:
            raise DatalogError(
                f"body position {delta_position} of rule {self.rule!r} is not a "
                "positive atom; no delta plan exists for it"
            ) from None

    @property
    def demanded_indexes(self) -> frozenset[tuple[str, int]]:
        demanded: set[tuple[str, int]] = set()
        for plan in self._plans.values():
            demanded |= plan.probes
        return frozenset(demanded)


class CompiledProgram:
    """A program compiled once: strata of compiled rules plus demanded indexes."""

    __slots__ = ("program", "strata", "demanded_indexes")

    def __init__(self, program: Program) -> None:
        program.validate()
        # Snapshot the rule list: Program is mutable, and cached compilations
        # are shared across callers.  Without the copy, a caller mutating its
        # program after compiling (e.g. registering an extra rule that gives
        # a predicate a new arity) would silently rewrite the ``program``
        # attribute of the cache entry other callers receive.
        self.program = Program(list(program.rules))
        self.strata: tuple[tuple[CompiledRule, ...], ...] = tuple(
            tuple(compile_rule(rule) for rule in stratum)
            for stratum in stratify(program)
        )
        demanded: set[tuple[str, int]] = set()
        for stratum in self.strata:
            for compiled in stratum:
                demanded |= compiled.demanded_indexes
        self.demanded_indexes = frozenset(demanded)

    @property
    def rules(self) -> tuple[CompiledRule, ...]:
        return tuple(compiled for stratum in self.strata for compiled in stratum)


# ---------------------------------------------------------------------------
# Caches
# ---------------------------------------------------------------------------

_RULE_CACHE: dict[Rule, CompiledRule] = {}
_RULE_CACHE_LIMIT = 4096
_PROGRAM_CACHE: dict[tuple, CompiledProgram] = {}
_PROGRAM_CACHE_LIMIT = 256


def compile_rule(rule: Rule) -> CompiledRule:
    """Compile (or fetch the cached compilation of) a single rule."""
    compiled = _RULE_CACHE.get(rule)
    if compiled is None:
        compiled = CompiledRule(rule)
        if len(_RULE_CACHE) >= _RULE_CACHE_LIMIT:
            _RULE_CACHE.pop(next(iter(_RULE_CACHE)))
        _RULE_CACHE[rule] = compiled
    return compiled


def compile_program(program: Program) -> CompiledProgram:
    """Compile (or fetch the cached compilation of) a whole program.

    Keyed by the structural identity of the rule list, so every engine,
    replica, or simulation epoch evaluating the same mapping program — even
    through independently constructed ``Program`` objects — shares one set
    of strata and plans.
    """
    key = tuple(program.rules)
    compiled = _PROGRAM_CACHE.get(key)
    if compiled is None:
        compiled = CompiledProgram(program)
        if len(_PROGRAM_CACHE) >= _PROGRAM_CACHE_LIMIT:
            _PROGRAM_CACHE.pop(next(iter(_PROGRAM_CACHE)))
        _PROGRAM_CACHE[key] = compiled
    return compiled


def evict_program(program_or_key) -> bool:
    """Defensively evict one program's cached compilation.

    Called on schema change (e.g. when an engine's mapping program gains
    rules that register a predicate at a new arity): the previously cached
    entry for the old structure is dropped so no caller can be served a plan
    compiled against the superseded schema.  Accepts a :class:`Program` or a
    rule-tuple cache key; returns True when an entry was evicted.
    """
    key = (
        tuple(program_or_key.rules)
        if isinstance(program_or_key, Program)
        else tuple(program_or_key)
    )
    return _PROGRAM_CACHE.pop(key, None) is not None


def cached_program_count() -> int:
    """Number of cached program compilations (introspection for tests)."""
    return len(_PROGRAM_CACHE)


def clear_plan_caches() -> None:
    """Drop all cached compilations (test isolation helper)."""
    _RULE_CACHE.clear()
    _PROGRAM_CACHE.clear()
