"""Datalog evaluation that records semiring provenance.

:func:`evaluate_with_provenance` runs the same semi-naive fixpoint as
:mod:`repro.datalog.evaluation` but additionally records every rule firing in
a :class:`~repro.provenance.graph.ProvenanceGraph`: base (EDB) tuples become
provenance variables, and each firing of a rule becomes a derivation
hyper-edge from the matched body tuples to the derived head tuple.  The
resulting :class:`ProvenanceDatabase` bundles the derived database with its
provenance graph so that callers can ask for polynomials or evaluate trust
policies afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..provenance.graph import ProvenanceGraph
from ..provenance.polynomial import Polynomial
from .ast import Atom, Program, Rule
from .evaluation import Database, _satisfy_body
from .stratification import stratify
from .unification import Substitution


def default_variable_namer(relation: str, values: tuple) -> str:
    """Default provenance-variable naming scheme for base tuples."""
    rendered = ",".join(str(value) for value in values)
    return f"{relation}({rendered})"


@dataclass
class ProvenanceDatabase:
    """A database plus the provenance graph that justifies its derived tuples."""

    database: Database
    graph: ProvenanceGraph = field(default_factory=ProvenanceGraph)

    def polynomial(self, relation: str, values: tuple, max_depth: int = 32) -> Polynomial:
        """Provenance polynomial of one tuple."""
        return self.graph.polynomial_for(relation, values, max_depth=max_depth)

    def trusted(self, relation: str, values: tuple, trusted_variables: set[str]) -> bool:
        """Is the tuple derivable using only trusted base tuples?"""
        return self.graph.is_derivable(relation, values, trusted_variables)


def _record_base_tuples(
    graph: ProvenanceGraph,
    database: Database,
    namer,
) -> None:
    # Every tuple present before evaluation is extensional: peers assert
    # facts directly into relations that mappings also derive into, so the
    # IDB/EDB split is per-tuple, not per-predicate.
    for predicate in database.predicates():
        for values in database.relation(predicate):
            graph.add_base_tuple(predicate, values, namer(predicate, values))


def _fire_rule_with_provenance(
    rule: Rule,
    database: Database,
    graph: ProvenanceGraph,
    delta: Optional[dict[str, set[tuple]]] = None,
    delta_position: Optional[int] = None,
) -> set[tuple]:
    """Apply one rule, recording a derivation per satisfying substitution."""
    derived: set[tuple] = set()
    label = rule.label or f"rule:{rule.head.predicate}"
    for subst in _satisfy_body(rule, database, Substitution(), 0, delta, delta_position):
        head_values = _ground_head(rule, subst)
        sources = []
        for literal in rule.body:
            if isinstance(literal, Atom) and not literal.negated:
                sources.append((literal.predicate, subst.ground_values(literal)))
        graph.add_derivation(label, (rule.head.predicate, head_values), sources)
        derived.add(head_values)
    return derived


def _ground_head(rule: Rule, subst: Substitution) -> tuple:
    return subst.ground_values(rule.head)


def evaluate_with_provenance(
    program: Program,
    database: Database,
    graph: Optional[ProvenanceGraph] = None,
    variable_namer=default_variable_namer,
    max_iterations: int = 0,
) -> ProvenanceDatabase:
    """Evaluate ``program`` over ``database`` recording provenance.

    Args:
        program: The (stratified) datalog program to evaluate.
        database: Base data; it is not modified.
        graph: An existing provenance graph to extend (used by the incremental
            exchange engine); a fresh one is created when omitted.
        variable_namer: Function ``(relation, values) -> str`` naming the
            provenance variable of each base tuple.
        max_iterations: Optional safety bound on fixpoint rounds per stratum.

    Returns:
        A :class:`ProvenanceDatabase` with the full derived database and the
        provenance graph covering every derivation discovered.
    """
    program.validate()
    working = database.copy()
    provenance_graph = graph if graph is not None else ProvenanceGraph()
    _record_base_tuples(provenance_graph, working, variable_namer)

    from ..errors import DatalogError

    for stratum in stratify(program):
        rules = list(stratum)
        idb = {rule.head.predicate for rule in rules}

        delta: dict[str, set[tuple]] = {}
        for rule in rules:
            new_values = _fire_rule_with_provenance(rule, working, provenance_graph)
            for values in new_values:
                if working.add(rule.head.predicate, values):
                    delta.setdefault(rule.head.predicate, set()).add(values)

        iterations = 1
        while delta:
            if max_iterations and iterations >= max_iterations:
                raise DatalogError(
                    f"provenance evaluation did not converge within {max_iterations} iterations"
                )
            next_delta: dict[str, set[tuple]] = {}
            for rule in rules:
                for position, literal in enumerate(rule.body):
                    if not isinstance(literal, Atom) or literal.negated:
                        continue
                    if literal.predicate not in idb or literal.predicate not in delta:
                        continue
                    new_values = _fire_rule_with_provenance(
                        rule, working, provenance_graph, delta, position
                    )
                    for values in new_values:
                        if working.add(rule.head.predicate, values):
                            next_delta.setdefault(rule.head.predicate, set()).add(values)
            delta = next_delta
            iterations += 1

    return ProvenanceDatabase(working, provenance_graph)


def provenance_for_all(
    result: ProvenanceDatabase, predicates: Iterable[str], max_depth: int = 16
) -> dict[tuple[str, tuple], Polynomial]:
    """Expand provenance polynomials for every tuple of the given predicates."""
    polynomials: dict[tuple[str, tuple], Polynomial] = {}
    for predicate in predicates:
        for values in result.database.relation(predicate):
            polynomials[(predicate, values)] = result.polynomial(
                predicate, values, max_depth=max_depth
            )
    return polynomials
