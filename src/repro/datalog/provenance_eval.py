"""Datalog evaluation that records semiring provenance.

:func:`evaluate_with_provenance` runs the same compiled semi-naive fixpoint
as :mod:`repro.datalog.evaluation` — both drive the shared execution engine
in :mod:`repro.datalog.executor` — but plugs in a provenance-recording
firing hook: base (EDB) tuples become provenance variables, and each firing
of a rule becomes a derivation hyper-edge from the matched body tuples to
the derived head tuple in a :class:`~repro.provenance.graph.ProvenanceGraph`.
The resulting :class:`ProvenanceDatabase` bundles the derived database with
its provenance graph so that callers can ask for polynomials or evaluate
trust policies afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..provenance.graph import ProvenanceGraph
from ..provenance.polynomial import Polynomial
from .ast import Program
from .evaluation import Database
from .executor import ExecutionStats, run_program
from .plan import compile_program


def default_variable_namer(relation: str, values: tuple) -> str:
    """Default provenance-variable naming scheme for base tuples."""
    rendered = ",".join(str(value) for value in values)
    return f"{relation}({rendered})"


@dataclass
class ProvenanceDatabase:
    """A database plus the provenance graph that justifies its derived tuples."""

    database: Database
    graph: ProvenanceGraph = field(default_factory=ProvenanceGraph)

    def polynomial(
        self,
        relation: str,
        values: tuple,
        max_depth: int = 32,
        max_monomials: Optional[int] = ProvenanceGraph.DEFAULT_EXPANSION_BUDGET,
    ) -> Polynomial:
        """Provenance polynomial of one tuple (a lazy view over the circuit).

        ``max_monomials`` bounds the expansion (``None`` lifts the bound);
        the circuit itself stays compact no matter how large the expanded
        polynomial would be.
        """
        return self.graph.polynomial_for(
            relation, values, max_depth=max_depth, max_monomials=max_monomials
        )

    def annotation(self, relation: str, values: tuple, semiring, assignment=None, default=None):
        """One tuple's annotation evaluated directly on the provenance DAG."""
        return self.graph.annotation(relation, values, semiring, assignment, default)

    def dag_size(self, relation: str, values: tuple) -> tuple[int, int]:
        """``(nodes, edges)`` of one tuple's hash-consed provenance DAG."""
        return self.graph.dag_size(relation, values)

    def trusted(self, relation: str, values: tuple, trusted_variables: set[str]) -> bool:
        """Is the tuple derivable using only trusted base tuples?"""
        return self.graph.is_derivable(relation, values, trusted_variables)


def _record_base_tuples(
    graph: ProvenanceGraph,
    database: Database,
    namer,
) -> None:
    # Every tuple present before evaluation is extensional: peers assert
    # facts directly into relations that mappings also derive into, so the
    # IDB/EDB split is per-tuple, not per-predicate.
    for predicate in database.predicates():
        for values in database.relation(predicate):
            graph.add_base_tuple(predicate, values, namer(predicate, values))


def evaluate_with_provenance(
    program: Program,
    database: Database,
    graph: Optional[ProvenanceGraph] = None,
    variable_namer=default_variable_namer,
    max_iterations: int = 0,
    stats: Optional[ExecutionStats] = None,
    backend=None,
) -> ProvenanceDatabase:
    """Evaluate ``program`` over ``database`` recording provenance.

    Args:
        program: The (stratified) datalog program to evaluate.
        database: Base data; it is not modified.
        graph: An existing provenance graph to extend (used by the incremental
            exchange engine); a fresh one is created when omitted.
        variable_namer: Function ``(relation, values) -> str`` naming the
            provenance variable of each base tuple.
        max_iterations: Optional safety bound on fixpoint rounds per stratum.
        stats: Optional :class:`ExecutionStats` accumulating firing counters.
        backend: Optional :class:`~repro.datalog.executor.ExecutionBackend`
            strategy (for example the SQL pushdown backend); the recorder
            hook rides along either way.

    Returns:
        A :class:`ProvenanceDatabase` with the full derived database and the
        provenance graph covering every derivation discovered.
    """
    compiled = compile_program(program)
    working = database.copy()
    provenance_graph = graph if graph is not None else ProvenanceGraph()
    _record_base_tuples(provenance_graph, working, variable_namer)
    if backend is None:
        run_program(
            compiled,
            working,
            recorder=provenance_graph.add_derivation,
            stats=stats,
            max_iterations=max_iterations,
        )
    else:
        backend.run_program(
            compiled,
            working,
            recorder=provenance_graph.add_derivation,
            stats=stats,
            max_iterations=max_iterations,
        )
    return ProvenanceDatabase(working, provenance_graph)


def provenance_for_all(
    result: ProvenanceDatabase, predicates: Iterable[str], max_depth: int = 16
) -> dict[tuple[str, tuple], Polynomial]:
    """Expand provenance polynomials for every tuple of the given predicates."""
    polynomials: dict[tuple[str, tuple], Polynomial] = {}
    for predicate in predicates:
        for values in result.database.relation(predicate):
            polynomials[(predicate, values)] = result.polynomial(
                predicate, values, max_depth=max_depth
            )
    return polynomials
