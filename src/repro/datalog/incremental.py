"""Incremental maintenance of datalog-derived relations.

The update-exchange engine must keep each peer's derived instance (and its
provenance) up to date as new transactions arrive, without recomputing from
scratch.  This module implements:

* **insertion propagation** — the standard delta-rule/semi-naive approach:
  a batch of new base facts is treated as the initial delta and propagated to
  fixpoint;
* **deletion propagation** — two strategies:

  - *provenance-based* (the ORCHESTRA approach): base deletions demote the
    corresponding provenance-graph nodes, after which every derived tuple
    that has lost all support is removed;
  - *DRed* (delete-and-rederive): over-delete everything potentially
    depending on the deleted facts, then re-derive what still has an
    alternative derivation.  Used as the non-provenance ablation baseline.

Both paths fire rules through the shared compiled executor
(:mod:`repro.datalog.executor`): the program is compiled to join plans once
at engine construction (cached by structural identity, so every engine over
the same mapping program shares the plans), and provenance recording is just
a different firing hook on the same plans.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

from ..errors import DatalogError
from ..provenance.graph import ProvenanceGraph
from .ast import Fact, Program
from .evaluation import Database, evaluate_program
from .executor import ExecutionBackend, ExecutionStats, create_backend
from .plan import CompiledProgram, compile_program, evict_program
from .provenance_eval import (
    ProvenanceDatabase,
    default_variable_namer,
    evaluate_with_provenance,
)


@dataclass
class MaintenanceResult:
    """Summary of one incremental maintenance step."""

    inserted: dict[str, set[tuple]]
    deleted: dict[str, set[tuple]]

    @property
    def inserted_count(self) -> int:
        return sum(len(values) for values in self.inserted.values())

    @property
    def deleted_count(self) -> int:
        return sum(len(values) for values in self.deleted.values())


class IncrementalEngine:
    """Maintains the fixpoint of a datalog program under base-fact changes.

    The engine owns a :class:`Database` holding base and derived tuples, an
    optional :class:`ProvenanceGraph`, and the program whose fixpoint is being
    maintained.  ``apply_insertions``/``apply_deletions`` update the database
    in place and report exactly which derived tuples changed.
    """

    def __init__(
        self,
        program: Program,
        database: Optional[Database] = None,
        track_provenance: bool = True,
        variable_namer=default_variable_namer,
        provenance_mode: str = "circuit",
        execution_backend: str | ExecutionBackend = "python",
        observability=None,
    ) -> None:
        self._program = program
        self._backend: ExecutionBackend = (
            create_backend(execution_backend)
            if isinstance(execution_backend, str)
            else execution_backend
        )
        # Backends carry the shared observability holder as an instance
        # attribute (rather than widening the protocol's call signatures);
        # they re-read ``observability.tracer`` at fire time, so tracers
        # installed after construction are picked up.
        if observability is not None:
            self._backend.observability = observability
        self._observability = observability
        self._compiled: CompiledProgram = compile_program(program)
        self._compiled_key: tuple = tuple(program.rules)
        self._track_provenance = track_provenance
        self._variable_namer = variable_namer
        self._provenance_mode = provenance_mode
        self._graph: Optional[ProvenanceGraph] = (
            ProvenanceGraph(evaluation_mode=provenance_mode) if track_provenance else None
        )
        if self._graph is not None and observability is not None:
            self._graph.observability = observability
        self._database = Database()
        self._ensure_demanded_indexes()
        self._base = Database()
        self._stats = ExecutionStats()
        if database is not None:
            self.apply_insertions(
                Fact(predicate, values)
                for predicate in database.predicates()
                for values in database.relation(predicate)
            )

    # -- accessors ----------------------------------------------------------
    @property
    def database(self) -> Database:
        """The current materialised database (base plus derived tuples)."""
        return self._database

    @property
    def base(self) -> Database:
        """Only the base (extensional) tuples currently asserted."""
        return self._base

    @property
    def graph(self) -> Optional[ProvenanceGraph]:
        return self._graph

    @property
    def program(self) -> Program:
        return self._program

    @property
    def compiled(self) -> CompiledProgram:
        """The compiled join plans this engine executes.

        ``Program`` is deliberately mutable (rules can be added after
        construction), so the compilation is refreshed whenever the rule
        list changed — matching the pre-compilation behavior of
        re-deriving strata on every propagation.  Unchanged programs pay
        only a tuple comparison.
        """
        key = tuple(self._program.rules)
        if key != self._compiled_key:
            # Schema change: the program this engine maintains gained or lost
            # rules (possibly re-registering a predicate at a new arity).
            # Evict the superseded structure's cache entry defensively so an
            # eviction-churned cache can never rotate the stale compilation
            # back in for this engine's old key.
            evict_program(self._compiled_key)
            self._compiled = compile_program(self._program)
            self._compiled_key = key
            self._ensure_demanded_indexes()
        return self._compiled

    def _ensure_demanded_indexes(self) -> None:
        """Pre-build plan-demanded column indexes for probing backends only.

        Set-at-a-time backends (SQL pushdown) join inside their own engine
        and never probe the database's hash indexes; pre-building would tax
        every ``add`` for nothing.  :meth:`Database.probe` still builds any
        index lazily, so a fallback to the Python executor stays correct.
        """
        if getattr(self._backend, "uses_database_indexes", True):
            self._database.ensure_indexes(self._compiled.demanded_indexes)

    @property
    def stats(self) -> ExecutionStats:
        """Cumulative executor counters (rule firings across all maintenance)."""
        return self._stats

    @property
    def backend(self) -> ExecutionBackend:
        """The execution strategy firing this engine's compiled plans."""
        return self._backend

    def provenance(self) -> ProvenanceDatabase:
        if self._graph is None:
            raise DatalogError("provenance tracking is disabled for this engine")
        return ProvenanceDatabase(self._database, self._graph)

    # -- insertions ----------------------------------------------------------
    def apply_insertions(self, facts: Iterable[Fact]) -> MaintenanceResult:
        """Insert base facts and propagate them through the program."""
        inserted: dict[str, set[tuple]] = defaultdict(set)
        delta: dict[str, set[tuple]] = defaultdict(set)

        for fact in facts:
            # Facts may be asserted into relations that mappings also derive
            # into; the base/derived distinction is per-tuple (tracked by
            # ``self._base`` and the provenance graph), not per-predicate.
            if self._base.add(fact.predicate, fact.values):
                if self._database.add(fact.predicate, fact.values):
                    delta[fact.predicate].add(fact.values)
                    inserted[fact.predicate].add(fact.values)
                if self._graph is not None:
                    self._graph.add_base_tuple(
                        fact.predicate,
                        fact.values,
                        self._variable_namer(fact.predicate, fact.values),
                    )

        if not delta:
            return MaintenanceResult({}, {})

        self._propagate_insertions(delta, inserted)
        return MaintenanceResult(dict(inserted), {})

    def _propagate_insertions(
        self, delta: dict[str, set[tuple]], inserted: dict[str, set[tuple]]
    ) -> None:
        """Semi-naive propagation of a batch of new tuples across all strata."""
        recorder = self._graph.add_derivation if self._graph is not None else None
        derived = self._backend.propagate(
            self.compiled, self._database, delta, recorder=recorder, stats=self._stats
        )
        for predicate, values in derived.items():
            inserted[predicate].update(values)

    # -- deletions -------------------------------------------------------------
    def apply_deletions(self, facts: Iterable[Fact]) -> MaintenanceResult:
        """Delete base facts and remove derived tuples that lost all support."""
        removed_base: dict[str, set[tuple]] = defaultdict(set)
        for fact in facts:
            if self._base.remove(fact.predicate, fact.values):
                removed_base[fact.predicate].add(fact.values)

        if not removed_base:
            return MaintenanceResult({}, {})

        if self._graph is not None:
            deleted = self._delete_with_provenance(removed_base)
        else:
            deleted = self._delete_with_dred(removed_base)
        return MaintenanceResult({}, deleted)

    def _delete_with_provenance(
        self, removed_base: dict[str, set[tuple]]
    ) -> dict[str, set[tuple]]:
        assert self._graph is not None
        for predicate, values_set in removed_base.items():
            for values in values_set:
                self._graph.remove_base_tuple(predicate, values)

        deleted: dict[str, set[tuple]] = defaultdict(set)
        for relation, values in self._graph.unsupported_tuples():
            if self._database.remove(relation, values):
                deleted[relation].add(values)
        # Base tuples removed above may still be derivable through mappings;
        # only count them as deleted when they really left the database.
        for predicate, values_set in removed_base.items():
            for values in values_set:
                if not self._graph.is_derivable(predicate, values):
                    if self._database.remove(predicate, values):
                        deleted[predicate].add(values)
        if deleted:
            self._backend.notify_removals(deleted)
        return dict(deleted)

    def _delete_with_dred(
        self, removed_base: dict[str, set[tuple]]
    ) -> dict[str, set[tuple]]:
        """Delete-and-rederive without provenance (the ablation baseline)."""
        # Over-delete: remove the base facts and anything transitively
        # derivable from them, then recompute the fixpoint from the remaining
        # base facts and re-insert what is still derivable.
        for predicate, values_set in removed_base.items():
            for values in values_set:
                self._database.remove(predicate, values)

        before = self._database.copy()
        recomputed = evaluate_program(
            self._program, self._base, copy=True, stats=self._stats,
            backend=self._backend,
        )
        deleted: dict[str, set[tuple]] = defaultdict(set)
        for predicate in before.predicates():
            for values in before.relation(predicate):
                if not recomputed.contains(predicate, values):
                    deleted[predicate].add(values)
        for predicate, values_set in removed_base.items():
            for values in values_set:
                if not recomputed.contains(predicate, values):
                    deleted[predicate].add(values)
        self._database = recomputed
        return dict(deleted)

    def reference_database(self) -> Database:
        """Recompute the fixpoint from scratch without touching engine state.

        Differential-testing oracle: if incremental maintenance is correct,
        the returned database equals :attr:`database` after any sequence of
        ``apply_insertions``/``apply_deletions`` calls.  Provenance-tracking
        engines recompute through :func:`evaluate_with_provenance` (on a
        throwaway graph) so the oracle exercises the same evaluation path
        that :meth:`recompute` uses.
        """
        if self._graph is not None:
            return evaluate_with_provenance(
                self._program,
                self._base,
                graph=ProvenanceGraph(),
                variable_namer=self._variable_namer,
            ).database
        return evaluate_program(self._program, self._base, copy=True)

    # -- full recomputation (ablation baseline) --------------------------------
    def recompute(self) -> Database:
        """Recompute the fixpoint from scratch (used for ablation benchmarks)."""
        if self._graph is not None:
            # Reuse the circuit store: sub-derivations interned by earlier
            # epochs are shared with the rebuilt graph instead of re-stored.
            self._graph = ProvenanceGraph(
                store=self._graph.circuit,
                evaluation_mode=self._provenance_mode,
            )
            if self._observability is not None:
                self._graph.observability = self._observability
            result = evaluate_with_provenance(
                self._program,
                self._base,
                graph=self._graph,
                variable_namer=self._variable_namer,
                stats=self._stats,
                backend=self._backend,
            )
            self._database = result.database
        else:
            self._database = evaluate_program(
                self._program, self._base, copy=True, stats=self._stats,
                backend=self._backend,
            )
        return self._database


def full_recompute(program: Program, base: Database) -> Database:
    """Convenience helper: evaluate the program from scratch over ``base``."""
    return evaluate_program(program, base, copy=True)
