"""Shared execution engine for compiled datalog rules.

All three evaluation modes of the repo — plain bottom-up evaluation
(:mod:`repro.datalog.evaluation`), incremental delta propagation
(:mod:`repro.datalog.incremental`), and provenance-recording evaluation
(:mod:`repro.datalog.provenance_eval`) — drive the functions in this module.
What differs between them is only the *firing hook*:

* plain derivation collects the projected head tuples;
* delta-seminaive execution substitutes a delta relation for one body atom
  (``delta_position``) so a rule only re-fires on new tuples;
* provenance recording additionally reports, for every satisfying
  substitution, the matched body rows (in body order) to a recorder such as
  :meth:`repro.provenance.graph.ProvenanceGraph.add_derivation`, which
  records the firing as a derivation hyper-edge and later compiles it into
  the hash-consed provenance circuit (:mod:`repro.provenance.circuit`)
  instead of multiplying out polynomials per derived tuple.

The semi-naive fixpoint loop itself (:func:`run_stratum` /
:func:`run_program`) is likewise shared, so the firing semantics of a whole
evaluation is chosen by passing (or omitting) a ``recorder``.

The loop is also where execution *strategies* plug in: an
:class:`ExecutionBackend` owns the fixpoint iteration, so the tuple-at-a-time
closure executor in this module (:class:`PythonExecutionBackend`) and the
set-at-a-time SQL pushdown backend
(:class:`repro.datalog.sql_executor.SQLExecutionBackend`) are interchangeable
behind the same firing-hook contract and :class:`ExecutionStats` counters.
Pick one with :func:`create_backend`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Optional, Protocol, Sequence, runtime_checkable

from ..errors import ConfigurationError, DatalogError
from ..obs import NULL_SPAN
from .plan import UNBOUND, CompiledProgram, CompiledRule

#: ``recorder(label, (head_predicate, head_values), sources)`` — invoked once
#: per satisfying substitution, with ``sources`` the matched positive body
#: rows as ``(predicate, values)`` pairs in original body order.
Recorder = Callable[[str, tuple[str, tuple], list[tuple[str, tuple]]], object]


class ExecutionStats:
    """Counters accumulated across executor calls (cheap enough to always keep)."""

    __slots__ = ("rules_fired", "tuples_derived", "rounds")

    def __init__(self) -> None:
        self.rules_fired = 0
        self.tuples_derived = 0
        self.rounds = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "rules_fired": self.rules_fired,
            "tuples_derived": self.tuples_derived,
            "rounds": self.rounds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionStats(rules_fired={self.rules_fired}, "
            f"tuples_derived={self.tuples_derived}, rounds={self.rounds})"
        )


def fire_rule(
    compiled: CompiledRule,
    database,
    delta: Optional[dict[str, set[tuple]]] = None,
    delta_position: Optional[int] = None,
    recorder: Optional[Recorder] = None,
    stats: Optional[ExecutionStats] = None,
) -> set[tuple]:
    """Apply one compiled rule and return the set of derivable head tuples.

    With ``delta``/``delta_position`` the atom at that body position matches
    the delta relation instead of the database (semi-naive firing).  With a
    ``recorder`` every satisfying substitution is reported as a derivation
    before its head tuple joins the result set.
    """
    plan = compiled.plan_for(delta_position if delta is not None else None)
    env = [UNBOUND] * compiled.num_slots
    regs: list = [None] * compiled.reg_count
    derived: set[tuple] = set()
    project = plan.project
    fired = 0

    if recorder is None:
        def emit(env, regs):
            nonlocal fired
            fired += 1
            derived.add(project(env))
    else:
        rule = compiled.rule
        label = rule.label or f"rule:{rule.head.predicate}"
        head_predicate = rule.head.predicate
        source_specs = plan.source_specs

        def emit(env, regs):
            nonlocal fired
            fired += 1
            head_values = project(env)
            sources = [(predicate, regs[reg]) for predicate, reg in source_specs]
            recorder(label, (head_predicate, head_values), sources)
            derived.add(head_values)

    plan.run(database, delta, env, regs, emit)
    if stats is not None:
        stats.rules_fired += fired
    return derived


def _traced_fire(
    tracer,
    compiled: CompiledRule,
    database,
    delta=None,
    delta_position=None,
    recorder: Optional[Recorder] = None,
    stats: Optional[ExecutionStats] = None,
) -> set[tuple]:
    """One ``rule.fire`` span around :func:`fire_rule` (tracing paths only)."""
    rule = compiled.rule
    with tracer.span("rule.fire", rule=rule.label or rule.head.predicate):
        return fire_rule(
            compiled, database, delta, delta_position, recorder=recorder, stats=stats
        )


def run_stratum(
    stratum: Sequence[CompiledRule],
    database,
    recorder: Optional[Recorder] = None,
    stats: Optional[ExecutionStats] = None,
    max_iterations: int = 0,
    tracer=None,
) -> dict[str, set[tuple]]:
    """Semi-naive fixpoint of one stratum; mutates ``database`` in place.

    Returns the tuples newly derived in this stratum, per predicate.  With
    a ``tracer`` every rule application is wrapped in a ``rule.fire`` span;
    the disabled path pays exactly one ``is None`` check per firing.
    """
    idb = {compiled.rule.head.predicate for compiled in stratum}
    all_new: dict[str, set[tuple]] = defaultdict(set)

    # First round: naive application of every rule.
    delta: dict[str, set[tuple]] = defaultdict(set)
    for compiled in stratum:
        head = compiled.rule.head.predicate
        if tracer is None:
            derived = fire_rule(compiled, database, recorder=recorder, stats=stats)
        else:
            derived = _traced_fire(
                tracer, compiled, database, recorder=recorder, stats=stats
            )
        for values in derived:
            if database.add(head, values):
                delta[head].add(values)
                all_new[head].add(values)

    iterations = 1
    while delta:
        if max_iterations and iterations >= max_iterations:
            raise DatalogError(
                f"evaluation did not converge within {max_iterations} iterations"
            )
        if stats is not None:
            stats.rounds += 1
        next_delta: dict[str, set[tuple]] = defaultdict(set)
        for compiled in stratum:
            head = compiled.rule.head.predicate
            body = compiled.rule.body
            for position in compiled.positive_positions:
                if body[position].predicate not in idb:
                    continue  # Non-recursive occurrence: fully applied above.
                if body[position].predicate not in delta:
                    continue
                if tracer is None:
                    derived = fire_rule(
                        compiled, database, delta, position,
                        recorder=recorder, stats=stats,
                    )
                else:
                    derived = _traced_fire(
                        tracer, compiled, database, delta, position,
                        recorder=recorder, stats=stats,
                    )
                for values in derived:
                    if database.add(head, values):
                        next_delta[head].add(values)
                        all_new[head].add(values)
        delta = next_delta
        iterations += 1
    if stats is not None:
        for values in all_new.values():
            stats.tuples_derived += len(values)
    return dict(all_new)


def run_program(
    compiled: CompiledProgram,
    database,
    recorder: Optional[Recorder] = None,
    stats: Optional[ExecutionStats] = None,
    max_iterations: int = 0,
    tracer=None,
) -> dict[str, set[tuple]]:
    """Evaluate a compiled program to fixpoint, stratum by stratum.

    Mutates ``database`` in place (callers copy first when needed) after
    pre-building every column index the compiled plans can probe.  Returns
    all newly derived tuples per predicate.
    """
    database.ensure_indexes(compiled.demanded_indexes)
    all_new: dict[str, set[tuple]] = {}
    for index, stratum in enumerate(compiled.strata):
        span = (
            tracer.span("exchange.stratum", index=index, rules=len(stratum))
            if tracer is not None
            else NULL_SPAN
        )
        with span:
            derived = run_stratum(
                stratum, database, recorder=recorder, stats=stats,
                max_iterations=max_iterations, tracer=tracer,
            )
        for predicate, values in derived.items():
            all_new.setdefault(predicate, set()).update(values)
    return all_new


@runtime_checkable
class ExecutionBackend(Protocol):
    """Strategy protocol behind :func:`run_program` and delta propagation.

    Both backends share the firing-hook contract: every derivation is (or is
    equivalent to) one ``recorder(label, head, sources)`` call, head tuples
    land in the ``database`` via :meth:`Database.add`, and counters accumulate
    in :class:`ExecutionStats`.  The two backends reach the same fixpoint and
    record the same derivation *set*, but their per-round firing counts may
    differ (the SQL backend stages each round strictly while the closure
    executor sees intra-round insertions), so differential tests compare
    databases and provenance — never raw stats.
    """

    name: str

    def run_program(
        self,
        compiled: CompiledProgram,
        database,
        recorder: Optional[Recorder] = None,
        stats: Optional[ExecutionStats] = None,
        max_iterations: int = 0,
    ) -> dict[str, set[tuple]]:
        """Evaluate ``compiled`` to fixpoint, mutating ``database`` in place."""
        ...

    def propagate(
        self,
        compiled: CompiledProgram,
        database,
        delta: dict[str, set[tuple]],
        recorder: Optional[Recorder] = None,
        stats: Optional[ExecutionStats] = None,
    ) -> dict[str, set[tuple]]:
        """Semi-naive propagation of newly inserted tuples across all strata.

        ``delta`` maps predicates to tuples that were just added to
        ``database`` (they are already present).  Mutates ``database`` with
        every consequence and returns the newly derived tuples per predicate.
        """
        ...

    def notify_removals(self, deleted: dict[str, set[tuple]]) -> None:
        """Tuples were removed from the maintained database behind our back.

        Stateful backends (the SQL mirror) use this to stay in sync with
        deletion paths that bypass :meth:`run_program`/:meth:`propagate`;
        the stateless Python backend ignores it.
        """
        ...


class PythonExecutionBackend:
    """The tuple-at-a-time closure executor (the default strategy).

    A thin, stateless wrapper over this module's :func:`run_program` plus the
    delta-propagation loop historically owned by
    :class:`repro.datalog.incremental.IncrementalEngine`.
    """

    name = "python"
    # Installed (as an instance attribute) by IncrementalEngine when the
    # owning system carries an Observability holder; backends stay usable
    # standalone with tracing and metrics simply absent.
    observability = None

    def _tracer(self):
        obs = self.observability
        return obs.active_tracer() if obs is not None else None

    def run_program(
        self,
        compiled: CompiledProgram,
        database,
        recorder: Optional[Recorder] = None,
        stats: Optional[ExecutionStats] = None,
        max_iterations: int = 0,
    ) -> dict[str, set[tuple]]:
        return run_program(
            compiled, database, recorder=recorder, stats=stats,
            max_iterations=max_iterations, tracer=self._tracer(),
        )

    def propagate(
        self,
        compiled: CompiledProgram,
        database,
        delta: dict[str, set[tuple]],
        recorder: Optional[Recorder] = None,
        stats: Optional[ExecutionStats] = None,
    ) -> dict[str, set[tuple]]:
        tracer = self._tracer()
        inserted: dict[str, set[tuple]] = defaultdict(set)
        # Derivations of earlier strata join the delta seen by later strata.
        accumulated = {predicate: set(values) for predicate, values in delta.items()}
        for index, stratum in enumerate(compiled.strata):
            span = (
                tracer.span("exchange.stratum", index=index, rules=len(stratum))
                if tracer is not None
                else NULL_SPAN
            )
            with span:
                current = {
                    predicate: set(values) for predicate, values in accumulated.items()
                }
                while current:
                    if stats is not None:
                        stats.rounds += 1
                    next_delta: dict[str, set[tuple]] = defaultdict(set)
                    for rule in stratum:
                        head = rule.rule.head.predicate
                        body = rule.rule.body
                        for position in rule.positive_positions:
                            if body[position].predicate not in current:
                                continue
                            if tracer is None:
                                derived = fire_rule(
                                    rule, database, current, position,
                                    recorder=recorder, stats=stats,
                                )
                            else:
                                derived = _traced_fire(
                                    tracer, rule, database, current, position,
                                    recorder=recorder, stats=stats,
                                )
                            for values in derived:
                                if database.add(head, values):
                                    next_delta[head].add(values)
                                    inserted[head].add(values)
                                    accumulated.setdefault(head, set()).add(values)
                    current = next_delta
        if stats is not None:
            for values in inserted.values():
                stats.tuples_derived += len(values)
        return dict(inserted)

    def notify_removals(self, deleted: dict[str, set[tuple]]) -> None:
        pass

    def explain(self, compiled: CompiledProgram) -> list[str]:
        """Human-readable join-plan dump, one line per compiled rule."""
        lines = []
        for rule in compiled.rules:
            plan = rule.plan_for(None)
            lines.append(f"{rule.rule}  --  " + " -> ".join(plan.description))
        return lines


def create_backend(name: str) -> ExecutionBackend:
    """Instantiate an execution backend by name (``"python"`` or ``"sql"``).

    Backends may be stateful (the SQL backend keeps a persistent SQLite
    mirror of the database it maintains), so every call returns a fresh
    instance.
    """
    if name == "python":
        return PythonExecutionBackend()
    if name == "sql":
        from .sql_executor import SQLExecutionBackend

        return SQLExecutionBackend()
    raise ConfigurationError(
        f"execution backend must be 'python' or 'sql', got {name!r}"
    )
