"""Skolem functions for existential variables in schema mappings.

A GLAV schema mapping such as::

    OPS(org, prot, seq)  ->  exists oid, pid .
        O(org, oid), P(prot, pid), S(oid, pid, seq)

cannot be evaluated directly as datalog because ``oid`` and ``pid`` do not
appear in the body.  ORCHESTRA (following data exchange practice) replaces
each existential variable with a *skolem term* — a function of the
universally quantified variables it depends on — producing labelled nulls in
the target instance.  :class:`SkolemFactory` creates fresh, deterministic
skolem function names per (mapping, existential variable) pair so that the
same source tuple always produces the same labelled null.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .ast import Atom, Rule, SkolemTerm, Term, Variable


@dataclass
class SkolemFactory:
    """Creates deterministic skolem function names and terms.

    Attributes:
        prefix: Prefix of every generated function name; configurable through
            :class:`repro.config.ExchangeConfig`.
    """

    prefix: str = "SK"
    _issued: dict[tuple[str, str], str] = field(default_factory=dict)

    def function_name(self, mapping_id: str, variable: str) -> str:
        """Return the skolem function name for an existential variable."""
        key = (mapping_id, variable)
        if key not in self._issued:
            self._issued[key] = f"{self.prefix}_{mapping_id}_{variable}"
        return self._issued[key]

    def term(
        self, mapping_id: str, variable: str, arguments: Sequence[Term]
    ) -> SkolemTerm:
        """Build a skolem term for ``variable`` applied to ``arguments``."""
        return SkolemTerm(self.function_name(mapping_id, variable), tuple(arguments))

    def issued_functions(self) -> set[str]:
        """Names of every skolem function created so far."""
        return set(self._issued.values())


def skolemize_head(
    head_atoms: Iterable[Atom],
    body_variables: set[Variable],
    mapping_id: str,
    factory: SkolemFactory,
    argument_order: Sequence[Variable] | None = None,
) -> list[Atom]:
    """Replace existential head variables with skolem terms.

    Args:
        head_atoms: The head atoms of a mapping (conjunctive).
        body_variables: Variables bound by the mapping body (universals).
        mapping_id: Identifier of the mapping, used in function names.
        factory: The skolem factory to draw function names from.
        argument_order: Which universal variables the skolem functions depend
            on, in order.  Defaults to the sorted list of body variables that
            actually appear in the head atoms, which keeps labelled nulls
            stable across runs.

    Returns:
        The head atoms with every existential variable replaced by a skolem
        term over the chosen argument variables.
    """
    head_atoms = list(head_atoms)
    head_variables: set[Variable] = set()
    for atom in head_atoms:
        head_variables.update(atom.variables())
    existentials = head_variables - body_variables
    if not existentials:
        return head_atoms

    if argument_order is None:
        shared = sorted(
            (head_variables & body_variables), key=lambda variable: variable.name
        )
        argument_order = shared

    replacements: dict[Variable, SkolemTerm] = {
        variable: factory.term(mapping_id, variable.name, tuple(argument_order))
        for variable in existentials
    }

    def rewrite_term(term: Term) -> Term:
        if isinstance(term, Variable) and term in replacements:
            return replacements[term]
        if isinstance(term, SkolemTerm):
            return SkolemTerm(
                term.function,
                tuple(
                    rewrite_term(argument)
                    if isinstance(argument, (Variable, SkolemTerm))
                    else argument
                    for argument in term.arguments
                ),
            )
        return term

    rewritten: list[Atom] = []
    for atom in head_atoms:
        rewritten.append(
            Atom(
                atom.predicate,
                tuple(rewrite_term(term) for term in atom.terms),
                negated=atom.negated,
            )
        )
    return rewritten


def is_labelled_null(value: object) -> bool:
    """True when ``value`` is a labelled null (a ground skolem term)."""
    return isinstance(value, SkolemTerm) and value.is_ground


def rules_with_skolemized_heads(
    body: Sequence[Atom],
    heads: Sequence[Atom],
    mapping_id: str,
    factory: SkolemFactory,
    label: str | None = None,
) -> list[Rule]:
    """Compile a (body, heads) mapping into one rule per skolemized head atom."""
    body_variables: set[Variable] = set()
    for atom in body:
        body_variables.update(atom.variables())
    skolemized = skolemize_head(heads, body_variables, mapping_id, factory)
    rules = []
    for atom in skolemized:
        rule = Rule(atom, tuple(body), label=label or mapping_id)
        rule.validate()
        rules.append(rule)
    return rules
