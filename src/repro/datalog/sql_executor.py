"""Set-at-a-time SQL pushdown execution backend.

The closure executor (:mod:`repro.datalog.executor`) fires compiled join
plans tuple-at-a-time in Python; every semi-naive round pays interpreter
overhead per binding.  This module compiles each rule of a
:class:`~repro.datalog.plan.CompiledProgram` to SQL instead and runs the
whole semi-naive iteration *inside* SQLite:

* every ``(predicate, arity)`` pair becomes two tables — ``rel`` (the
  full relation, a rowid table with a UNIQUE constraint over the tuple)
  and ``stg`` (this round's candidate heads, an unkeyed append-only
  heap) — with one untyped column per position
  holding *natively typed* cells: ints, bools and integral floats become
  INTEGER, strings become TEXT verbatim, and only the rare cells SQLite
  has no native shape for (``None``, labelled nulls, non-integral floats,
  ints beyond 64 bits) become tagged BLOBs.  The mapping is canonical with
  respect to Python equality (``1 == True == 1.0`` all map to INTEGER 1,
  and no cell ever maps to SQL NULL), so native ``=`` *is* Python
  equality and scalar cells cross the Python/SQLite boundary with no
  serialisation at all — the encode/decode tax dominated the profile of
  an earlier JSON-encoded TEXT scheme;
* a rule's plain plan and each of its per-position delta plans become one
  ``INSERT INTO stg SELECT ...`` statement each: positive atoms are the
  FROM list, repeated variables and constants become WHERE equalities,
  negated atoms become ``NOT EXISTS`` anti-joins, comparisons become
  WHERE clauses (ordering comparisons mirror Python's
  ``TypeError -> False`` semantics through a ``typeof`` CASE), and skolem
  head terms are assembled in the SELECT list by concatenation that
  reproduces the tagged-BLOB bytes exactly;
* semi-naive deltas are **rowid watermarks**, not separate tables:
  promotion appends new rows to ``rel`` monotonically, so "the tuples new
  in the last round" is just a ``lo < rowid <= hi`` window over the
  relation itself.  A delta statement's delta atom carries the window
  condition, earlier positive atoms carry ``rowid <= lo`` ceilings (so
  per-position delta statements stay disjoint), and each round promotes
  ``stg`` into ``rel`` with a single ``INSERT ... ON CONFLICT DO NOTHING
  RETURNING`` per head relation — the UNIQUE constraint is the novelty
  check and the returned rows are the next window.  The loop repeats
  while any window is non-empty.

Provenance recording rides along: with a recorder attached, the statements
additionally SELECT the matched body rows of every firing, and the backend
streams the cursor in batches through the ordinary recorder hook — the same
derivation *set* the Python executor records (each derivation fires in the
round where its newest body tuple is in the delta; the graph deduplicates),
so databases and provenance polynomials are identical across backends.
Per-round firing *counts* may differ (the SQL rounds are staged strictly
while the closure executor sees intra-round insertions); differential tests
must never compare raw :class:`ExecutionStats`.

Constructs SQL cannot express — skolem terms in positive body atoms (the
structural matcher binds variables inside labelled nulls) and arity-0
atoms — make the backend fall back to the Python executor for the *whole
program*, so a program always runs on exactly one strategy.

Known numeric edges (shared with nothing the generators produce): ordering
comparisons read ints beyond 64 bits through a REAL cast, and non-finite
floats are not comparable in SQL.
"""

from __future__ import annotations

import hashlib
import re
import sqlite3
from collections import OrderedDict, defaultdict
from contextlib import contextmanager
from functools import lru_cache
from typing import Iterable, Optional

from ..errors import DatalogError, StorageError
from ..obs import NULL_SPAN
from .ast import Atom, Comparison, Constant, Rule, SkolemTerm, Variable
from .executor import (
    ExecutionStats,
    PythonExecutionBackend,
    Recorder,
)
from .plan import CompiledProgram, CompiledRule

_SLUG_RE = re.compile(r"[^0-9a-z]+")

#: Rows fetched per batch when streaming recorder-mode SELECTs.
_RECORDER_BATCH = 512

#: Compiled-SQL cache entries kept per backend (FIFO, like the plan caches).
_PROGRAM_CACHE_SIZE = 64

#: Decoded-cell memo entries kept per backend (cleared wholesale when full).
_DECODE_CACHE_SIZE = 1 << 16

_MISSING = object()


@lru_cache(maxsize=4096)
def _table_name(kind: str, predicate: str, arity: int) -> str:
    """A quoted, collision-free table name for one ``(predicate, arity)``.

    Predicate names are arbitrary (``Alaska.OPS!pub``, ``Σ1.R``) and SQLite
    identifiers are case-insensitive, so the readable slug is only a hint;
    uniqueness comes from the digest over the exact predicate and arity.
    """
    slug = _SLUG_RE.sub("_", predicate.lower()).strip("_")[:24] or "rel"
    digest = hashlib.md5(f"{predicate}#{arity}".encode("utf-8")).hexdigest()[:8]
    return f'"{kind}_{slug}_{arity}_{digest}"'


def _placeholders(arity: int) -> str:
    return ", ".join("?" for _ in range(arity))


# ---------------------------------------------------------------------------
# Native cell mapping
# ---------------------------------------------------------------------------
#
# Python cell -> SQLite value, canonical with respect to Python equality:
#
#   int / bool / integral float  ->  INTEGER        (1 == True == 1.0)
#   str                          ->  TEXT verbatim
#   int beyond 64 bits           ->  BLOB  b"i" + decimal digits
#   non-integral float           ->  BLOB  b"f" + repr bytes
#   None                         ->  BLOB  b"n"
#   SkolemTerm                   ->  BLOB  b"s" + netstring(function) +
#                                          netstring(arg) per argument
#
# A netstring is ``<payload byte length>:<payload>``; a payload is a tagged
# byte string (``t`` + utf-8 for strings, ``i`` + decimal for integers, and
# the BLOB encodings above verbatim — they are already tagged).  Length
# prefixes make nesting unambiguous without escaping, and keep every BLOB
# valid UTF-8, which is what lets the SELECT list rebuild the same bytes by
# plain concatenation.  No cell ever maps to SQL NULL, so native ``=`` has
# exactly Python's equality semantics.

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _net(payload: bytes) -> bytes:
    return b"%d:%s" % (len(payload), payload)


def _skolem_payload(value: object) -> bytes:
    """The tagged payload of one skolem argument."""
    cell = _to_sql(value)
    kind = type(cell)
    if kind is int:
        return b"i%d" % cell
    if kind is str:
        return b"t" + cell.encode("utf-8")
    return cell  # tagged BLOB already


def _skolem_blob(term: SkolemTerm) -> bytes:
    parts = [b"s", _net(b"t" + term.function.encode("utf-8"))]
    for argument in term.arguments:
        parts.append(_net(_skolem_payload(argument)))
    return b"".join(parts)


def _to_sql(value: object):
    """Map one cell value to its canonical native SQLite value."""
    kind = type(value)
    if kind is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            return value
        return b"i%d" % value
    if kind is str:
        return value
    if kind is bool:
        return int(value)
    if kind is float:
        if value.is_integer():
            integral = int(value)
            if _INT64_MIN <= integral <= _INT64_MAX:
                return integral
            return b"i%d" % integral
        return b"f" + repr(value).encode("ascii")
    if value is None:
        return b"n"
    if kind is SkolemTerm:
        return _skolem_blob(value)
    raise StorageError(
        f"unsupported cell value of type {type(value).__name__}: {value!r}"
    )


def _parse_skolem(blob: bytes, start: int = 0) -> SkolemTerm:
    # Hot path: every *new* skolem blob a promotion returns is parsed
    # exactly once (then memoised), so this loop is written for speed —
    # inlined tag dispatch and a dataclass construction that skips
    # ``__init__``/``__post_init__`` (the arguments are already a tuple).
    payloads = []
    append = payloads.append
    find = blob.find
    position = start + 1  # skip the b"s" tag
    end = len(blob)
    while position < end:
        colon = find(b":", position)
        body = colon + 1
        position = body + int(blob[position:colon])
        append(blob[body:position])
    arguments = []
    for payload in payloads[1:]:
        tag = payload[0]
        if tag == 116:  # b"t": text
            arguments.append(payload[1:].decode("utf-8"))
        elif tag == 105:  # b"i": integer beyond 64 bits
            arguments.append(int(payload[1:]))
        else:
            arguments.append(_from_blob(payload))
    term = SkolemTerm.__new__(SkolemTerm)
    object.__setattr__(term, "function", payloads[0][1:].decode("utf-8"))
    object.__setattr__(term, "arguments", tuple(arguments))
    return term


def _from_blob(cell: bytes) -> object:
    tag = cell[:1]
    if tag == b"s":
        return _parse_skolem(cell)
    if tag == b"n":
        return None
    if tag == b"i":
        return int(cell[1:])
    if tag == b"f":
        return float(cell[1:])
    raise StorageError(f"cannot decode stored cell {cell!r}")


class _Unsupported(Exception):
    """Raised during SQL compilation for constructs SQL cannot express."""


class _Fallback:
    """Marker cached in place of compiled SQL: run this program on Python."""

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason


class _Statement:
    """One compiled ``INSERT ... SELECT`` (plus its recorder-mode variant).

    ``bounds`` lists the rowid-watermark parameters the statement consumes
    at execution time, in placeholder order: ``((predicate, arity), mode)``
    with mode ``"window"`` (two params, ``rowid > lo AND rowid <= hi`` — the
    atom reads exactly the current delta) or ``"ceiling"`` (one param,
    ``rowid <= lo`` — the atom reads the relation *minus* the current
    delta, keeping per-position delta statements disjoint).

    ``insert_sql`` is the non-recorder form: it inserts the joined heads
    straight into the head *relation* (``ON CONFLICT DO NOTHING
    RETURNING``), so the genuinely new rows come back without ever touching
    the stage heap.  ``select_sql`` is the recorder form, which must see
    every firing (not just novel heads) and therefore streams the matched
    body rows out and stages heads separately.
    """

    __slots__ = ("insert_sql", "select_sql", "params", "bounds")

    def __init__(
        self, insert_sql: str, select_sql: str, params: tuple, bounds: tuple = ()
    ) -> None:
        self.insert_sql = insert_sql
        self.select_sql = select_sql
        self.params = params
        self.bounds = bounds


class _RuleSQL:
    """All SQL artefacts of one rule: the plain plan and every delta plan."""

    __slots__ = (
        "rule",
        "label",
        "head_predicate",
        "head_arity",
        "head_key",
        "source_layout",
        "stage_insert_sql",
        "plain",
        "deltas",
    )

    def __init__(self, rule: Rule) -> None:
        self.rule = rule
        self.label = rule.label or f"rule:{rule.head.predicate}"
        self.head_predicate = rule.head.predicate
        self.head_arity = len(rule.head.terms)
        self.head_key = (self.head_predicate, self.head_arity)
        #: ``(predicate, arity)`` per positive body atom, in body order —
        #: the recorder-mode row layout after the head columns.
        self.source_layout: list[tuple[str, int]] = []
        self.stage_insert_sql = ""
        self.plain: Optional[_Statement] = None
        self.deltas: dict[int, _Statement] = {}


class _ProgramSQL:
    """A whole program compiled to SQL, stratum by stratum."""

    __slots__ = ("strata", "table_keys", "keys_by_predicate", "index_keys")

    def __init__(self) -> None:
        self.strata: list[list[_RuleSQL]] = []
        self.table_keys: set[tuple[str, int]] = set()
        self.keys_by_predicate: dict[str, list[tuple[str, int]]] = {}
        #: ``(predicate, arity, column)`` triples the statements join
        #: through — each gets a secondary index on the ``rel`` table, or
        #: SQLite rebuilds an AUTOMATIC index on every single execution.
        self.index_keys: set[tuple[str, int, int]] = set()


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------

def _netstring_expr(operand_sql: str, operand_params: tuple) -> tuple[str, tuple]:
    """``<byte length>:<payload>`` of one skolem argument, built in SQL.

    The tagged payload is reconstructed per the argument's *runtime* type
    (a column holds whatever the row carries): INTEGER -> ``i`` + decimal,
    TEXT -> ``t`` + the string, BLOB -> the already-tagged bytes.  SQLite's
    ``||`` yields TEXT, so byte lengths are taken through a BLOB cast.
    """
    payload = (
        f"CASE typeof({operand_sql}) "
        f"WHEN 'integer' THEN 'i' || CAST({operand_sql} AS TEXT) "
        f"WHEN 'text' THEN 't' || {operand_sql} "
        f"ELSE CAST({operand_sql} AS TEXT) END"
    )
    sql = f"CAST(LENGTH(CAST(({payload}) AS BLOB)) AS TEXT) || ':' || ({payload})"
    return (sql, operand_params * 4)


def _skolem_expr(term: SkolemTerm, bindings: dict) -> tuple[str, tuple]:
    """A concatenation expression producing ``_skolem_blob(term)``'s bytes.

    The instantiated term is assembled as TEXT (every tagged encoding is
    valid UTF-8) and cast to BLOB at the end, matching the Python-side
    encoding byte for byte so SQL-built labelled nulls dedup against
    Python-inserted ones.
    """
    prefix = b"s" + _net(b"t" + term.function.encode("utf-8"))
    if not term.arguments:
        return ("?", (prefix,))
    parts = ["?"]
    params: list = [prefix.decode("utf-8")]
    for argument in term.arguments:
        operand_sql, operand_params = _operand(argument, bindings)
        net_sql, net_params = _netstring_expr(operand_sql, operand_params)
        parts.append(net_sql)
        params.extend(net_params)
    return ("CAST((" + " || ".join(parts) + ") AS BLOB)", tuple(params))


def _operand(term, bindings: dict) -> tuple[str, tuple]:
    """``(sql, params)`` for one term used as a native-cell operand."""
    if isinstance(term, Variable):
        column = bindings.get(term)
        if column is None:
            raise _Unsupported(f"variable {term} is not bound by a plain positive slot")
        return column, ()
    if isinstance(term, Constant):
        return "?", (_to_sql(term.value),)
    if isinstance(term, SkolemTerm):
        return _skolem_expr(term, bindings)
    raise _Unsupported(f"unsupported term {term!r}")


def _numeric_guard(operand_sql: str) -> str:
    """Is this cell a number?  Native INTEGER, or a ``f``/``i`` tagged BLOB."""
    return (
        f"(typeof({operand_sql}) = 'integer' OR (typeof({operand_sql}) = 'blob' "
        f"AND substr({operand_sql}, 1, 1) IN (x'66', x'69')))"
    )


def _numeric_value(operand_sql: str) -> str:
    """The numeric value of a cell that passed :func:`_numeric_guard`."""
    return (
        f"CASE WHEN typeof({operand_sql}) = 'integer' THEN {operand_sql} "
        f"ELSE CAST(substr({operand_sql}, 2) AS REAL) END"
    )


def _comparison_condition(comparison: Comparison, bindings: dict) -> tuple[str, tuple]:
    left_sql, left_params = _operand(comparison.left, bindings)
    right_sql, right_params = _operand(comparison.right, bindings)
    op = comparison.op
    if op in ("=", "=="):
        # The canonical native mapping makes ``=`` coincide with Python ``==``.
        return (f"{left_sql} = {right_sql}", left_params + right_params)
    if op == "!=":
        return (f"{left_sql} != {right_sql}", left_params + right_params)
    # Mirror Comparison.evaluate: numbers compare numerically (the rare
    # tagged-BLOB numbers are read back through a REAL cast), strings
    # lexicographically (SQLite's binary TEXT collation is UTF-8 memcmp,
    # which preserves code-point order, i.e. Python's), every other pairing
    # — mixed types, labelled nulls, None — is False (Python's TypeError).
    sql = (
        f"(CASE WHEN {_numeric_guard(left_sql)} AND {_numeric_guard(right_sql)} "
        f"THEN {_numeric_value(left_sql)} {op} {_numeric_value(right_sql)} "
        f"WHEN typeof({left_sql}) = 'text' AND typeof({right_sql}) = 'text' "
        f"THEN {left_sql} {op} {right_sql} ELSE 0 END)"
    )
    # Parameters repeat once per textual ``?`` occurrence, in emission order:
    # guards (L*3, R*3), numeric values (L*3, R*3), text typeofs and the
    # text comparison (L, R, L, R).
    params = (
        left_params * 3 + right_params * 3
        + left_params * 3 + right_params * 3
        + left_params + right_params
        + left_params + right_params
    )
    return (sql, params)


def _negation_condition(atom: Atom, bindings: dict) -> tuple[str, tuple]:
    if not atom.terms:
        raise _Unsupported("arity-0 negated atom")
    table = _table_name("rel", atom.predicate, len(atom.terms))
    conditions = []
    params: list[str] = []
    for column, term in enumerate(atom.terms):
        sql, term_params = _operand(term, bindings)
        conditions.append(f"n.c{column} = {sql}")
        params.extend(term_params)
    inner = " AND ".join(conditions)
    return (f"NOT EXISTS (SELECT 1 FROM {table} AS n WHERE {inner})", tuple(params))


# ---------------------------------------------------------------------------
# Rule and program compilation
# ---------------------------------------------------------------------------

def _compile_rule_sql(compiled: CompiledRule) -> _RuleSQL:
    rule = compiled.rule
    entry = _RuleSQL(rule)
    if not rule.head.terms:
        raise _Unsupported("arity-0 head atom")

    positives: list[tuple[int, Atom]] = [
        (position, literal)
        for position, literal in enumerate(rule.body)
        if isinstance(literal, Atom) and not literal.negated
    ]

    bindings: dict[Variable, str] = {}
    conditions: list[tuple[str, tuple]] = []
    for alias, (_, atom) in enumerate(positives):
        if not atom.terms:
            raise _Unsupported("arity-0 positive body atom")
        entry.source_layout.append((atom.predicate, len(atom.terms)))
        for column, term in enumerate(atom.terms):
            column_sql = f"a{alias}.c{column}"
            if isinstance(term, Variable):
                bound = bindings.get(term)
                if bound is None:
                    bindings[term] = column_sql
                else:
                    conditions.append((f"{column_sql} = {bound}", ()))
            elif isinstance(term, Constant):
                conditions.append((f"{column_sql} = ?", (_to_sql(term.value),)))
            else:
                # A skolem term in a positive atom binds variables through
                # structural matching on the labelled null — the one plan
                # construct with no SQL equivalent here.
                raise _Unsupported("skolem term in positive body atom")

    for literal in rule.body:
        if isinstance(literal, Comparison):
            conditions.append(_comparison_condition(literal, bindings))
        elif isinstance(literal, Atom) and literal.negated:
            conditions.append(_negation_condition(literal, bindings))

    head_sqls = []
    head_params: list[str] = []
    for term in rule.head.terms:
        sql, term_params = _operand(term, bindings)
        head_sqls.append(sql)
        head_params.extend(term_params)

    where_sql = " AND ".join(sql for sql, _ in conditions) or "1"
    where_params: list[str] = []
    for _, condition_params in conditions:
        where_params.extend(condition_params)
    select_head = ", ".join(head_sqls)
    source_columns = ", ".join(
        f"a{alias}.c{column}"
        for alias, (_, atom) in enumerate(positives)
        for column in range(len(atom.terms))
    )
    stage = _table_name("stg", entry.head_predicate, entry.head_arity)
    head_rel = _table_name("rel", entry.head_predicate, entry.head_arity)
    head_columns = ", ".join(f"c{i}" for i in range(entry.head_arity))
    entry.stage_insert_sql = (
        f"INSERT INTO {stage} VALUES ({_placeholders(entry.head_arity)})"
    )
    params = tuple(head_params + where_params)

    def _statement(delta_position: Optional[int]) -> _Statement:
        parts: dict[int, str] = {}
        bound_sqls: list[str] = []
        bounds: list[tuple] = []
        delta_alias = None
        for alias, (position, atom) in enumerate(positives):
            table = _table_name("rel", atom.predicate, len(atom.terms))
            parts[alias] = f"{table} AS a{alias}"
            key = (atom.predicate, len(atom.terms))
            if position == delta_position:
                # The delta of a relation is a rowid *window* over its own
                # table: promotion appends new rows monotonically, so
                # ``lo < rowid <= hi`` selects exactly the tuples new in the
                # last round — no separate delta table, no copy.
                delta_alias = alias
                bound_sqls.append(f"a{alias}.rowid > ? AND a{alias}.rowid <= ?")
                bounds.append((key, "window"))
            elif delta_position is not None and position < delta_position:
                # Disjoint semi-naive deltas: atoms before the delta
                # position read ``rel minus delta`` (everything at or below
                # the window floor), so a combination whose tuples span
                # several delta atoms fires in exactly one statement instead
                # of once per delta atom.
                bound_sqls.append(f"a{alias}.rowid <= ?")
                bounds.append((key, "ceiling"))
        if delta_alias is not None:
            # Semi-naive join-order heuristic, enforced: the delta window is
            # (almost always) the smallest relation in the join, but SQLite
            # has no statistics on these ever-changing tables and will
            # happily drive the loop from a full relation instead — an
            # O(|rel|) scan per round that turns warm batches superlinear.
            # CROSS JOIN pins the nesting order: delta outermost, then a
            # greedy walk over the remaining atoms, always preferring one
            # that shares a variable with those already joined (so every
            # inner table is reached by an index probe, never a cartesian
            # blow-up), falling back to body order when the join graph is
            # genuinely disconnected.
            atom_vars: list[set] = [
                {term for term in atom.terms if isinstance(term, Variable)}
                for _, atom in positives
            ]
            order = [delta_alias]
            bound = set(atom_vars[delta_alias])
            remaining = [alias for alias in parts if alias != delta_alias]
            while remaining:
                pick = next(
                    (alias for alias in remaining if atom_vars[alias] & bound),
                    remaining[0],
                )
                order.append(pick)
                bound |= atom_vars[pick]
                remaining.remove(pick)
            from_sql = " FROM " + " CROSS JOIN ".join(
                parts[alias] for alias in order
            )
        else:
            from_sql = (
                (" FROM " + ", ".join(parts[alias] for alias in sorted(parts)))
                if parts
                else ""
            )
        # Watermark conditions go *last* so their runtime-appended parameters
        # line up after the statement's static ones.
        where = " AND ".join([where_sql] + bound_sqls) if bound_sqls else where_sql
        # No DISTINCT, no staging: the joined heads land straight in the
        # head relation, whose UNIQUE constraint rejects known rows (and
        # duplicates within this round's output), and RETURNING hands each
        # genuinely new row back exactly once.  (``WHERE ...`` is always
        # present, which doubles as the upsert-clause disambiguator.)
        insert_sql = (
            f"INSERT INTO {head_rel} "
            f"SELECT {select_head}{from_sql} WHERE {where} "
            f"ON CONFLICT DO NOTHING RETURNING {head_columns}"
        )
        selected = select_head if not source_columns else f"{select_head}, {source_columns}"
        select_sql = f"SELECT {selected}{from_sql} WHERE {where}"
        return _Statement(insert_sql, select_sql, params, tuple(bounds))

    entry.plain = _statement(None)
    for position in compiled.positive_positions:
        entry.deltas[position] = _statement(position)
    return entry


def _collect_index_keys(rule: Rule) -> set[tuple[str, int, int]]:
    """Join columns of one rule's positive atoms, minus the UNIQUE prefix.

    A column is a join key if its term is a constant or a variable shared
    with another slot.  Column 0 is skipped (the UNIQUE composite serves it
    as a prefix), as are negated atoms (anti-joins probe the full tuple, so
    the composite covers them too).
    """
    keys: set[tuple[str, int, int]] = set()
    occurrences: dict[Variable, int] = {}
    positives = [
        literal
        for literal in rule.body
        if isinstance(literal, Atom) and not literal.negated
    ]
    for atom in positives:
        for term in atom.terms:
            if isinstance(term, Variable):
                occurrences[term] = occurrences.get(term, 0) + 1
    for atom in positives:
        arity = len(atom.terms)
        for column, term in enumerate(atom.terms):
            if column == 0:
                continue
            if isinstance(term, Constant) or (
                isinstance(term, Variable) and occurrences.get(term, 0) > 1
            ):
                keys.add((atom.predicate, arity, column))
    return keys


def _compile_program_sql(compiled: CompiledProgram):
    """Compile a whole program to SQL, or a :class:`_Fallback` marker."""
    program = _ProgramSQL()
    try:
        for stratum in compiled.strata:
            entries = [_compile_rule_sql(rule) for rule in stratum]
            program.strata.append(entries)
            for entry in entries:
                program.index_keys.update(_collect_index_keys(entry.rule))
    except _Unsupported as unsupported:
        return _Fallback(str(unsupported))
    for stratum in program.strata:
        for entry in stratum:
            program.table_keys.add(entry.head_key)
            program.table_keys.update(entry.source_layout)
            for literal in entry.rule.body:
                if isinstance(literal, Atom) and literal.negated:
                    program.table_keys.add((literal.predicate, len(literal.terms)))
    for key in program.table_keys:
        program.keys_by_predicate.setdefault(key[0], []).append(key)
    return program


def rule_fallback_reason(rule: Rule) -> Optional[str]:
    """Why the SQL backend cannot compile ``rule``, or ``None`` if it can.

    This is the static-analysis twin of the runtime fallback in
    :func:`_compile_program_sql`: one uncompilable rule makes the backend run
    the whole program on the Python executor.  The analyzer surfaces the
    per-rule reasons as ``CDSS013`` diagnostics, and ``cdss.explain()``
    appends them to its rendering.
    """
    from .plan import compile_rule

    try:
        _compile_rule_sql(compile_rule(rule))
    except _Unsupported as unsupported:
        return str(unsupported)
    return None


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------

class SQLExecutionBackend:
    """Runs compiled programs set-at-a-time inside an in-memory SQLite mirror.

    The backend is *stateful*: it keeps a persistent mirror of the database
    it maintains, so incremental propagation only ships the delta instead of
    reloading the world per call.  :class:`~repro.datalog.incremental.
    IncrementalEngine` reports out-of-band deletions through
    :meth:`notify_removals`; a per-predicate count guard triggers a full
    reload whenever the mirror could have drifted, turning missed
    notifications into a performance bug rather than a wrongness bug.
    """

    name = "sql"

    #: Joins run inside SQLite; the engine database's per-column hash
    #: indexes are never probed, so callers need not pre-build them.
    uses_database_indexes = False

    #: Installed (as an instance attribute) by IncrementalEngine when the
    #: owning system carries an Observability holder.
    observability = None

    def _tracer(self):
        obs = self.observability
        return obs.active_tracer() if obs is not None else None

    def _span(self, tracer, index: int, stratum) -> object:
        if tracer is None:
            return NULL_SPAN
        return tracer.span("exchange.stratum", index=index, rules=len(stratum))

    def __init__(self) -> None:
        self._connection = sqlite3.connect(":memory:")
        self._connection.isolation_level = None  # autocommit; purely in-memory
        # Larger pages mean fewer b-tree levels and fewer page allocations
        # for the same data — a measurable win on the write-heavy promote
        # path.  Must run before any table exists.
        self._connection.execute("PRAGMA page_size=8192")
        self._python = PythonExecutionBackend()
        self._programs: "OrderedDict[tuple, object]" = OrderedDict()
        self._created: set[str] = set()
        self._indexed: set[str] = set()
        self._db_ref = None
        self._program_key: Optional[tuple] = None
        self._counts: dict[str, int] = {}
        #: Rowid high-water mark per ``(predicate, arity)`` — the max rowid
        #: of the relation table the last time its delta was consumed.
        self._marks: dict[tuple[str, int], int] = {}
        #: Current delta window per key: ``(lo, hi)`` means the tuples with
        #: ``lo < rowid <= hi`` are new since the previous round.  Keys
        #: absent here have an empty delta this round.
        self._windows: dict[tuple[str, int], tuple[int, int]] = {}
        #: Decode memos: derived layers repeat whole rows (copy rules
        #: re-derive the same tuple into pub/local/peer relations) and
        #: individual tagged cells (skolem oids recur everywhere), so most
        #: promoted rows decode from a single dict hit.
        self._decoded: dict[tuple, tuple] = {}
        self._cells: dict[bytes, object] = {}

    @contextmanager
    def _mirror_transaction(self):
        """Batch one entry point's mirror writes into a single transaction.

        Autocommit would open and close an implicit transaction around
        *every* statement of every semi-naive round — measurably slower
        even against an in-memory journal.  On failure the mirror rolls
        back and drops its database reference, so the count guard forces a
        clean reload on the next call.
        """
        self._connection.execute("BEGIN")
        try:
            yield
        except BaseException:
            self._connection.execute("ROLLBACK")
            self._db_ref = None
            raise
        self._connection.execute("COMMIT")

    # -- caches --------------------------------------------------------------
    def _program_for(self, compiled: CompiledProgram):
        key = tuple(rule.rule for stratum in compiled.strata for rule in stratum)
        entry = self._programs.get(key)
        if entry is None:
            entry = _compile_program_sql(compiled)
            self._programs[key] = entry
            if len(self._programs) > _PROGRAM_CACHE_SIZE:
                self._programs.popitem(last=False)
        return key, entry

    # -- mirror maintenance --------------------------------------------------
    def _create_table(self, name: str, arity: int, keyed: bool = True) -> None:
        if name in self._created:
            return
        # Untyped columns: no declared affinity, so bound values keep their
        # native storage class (INTEGER stays INTEGER, BLOB stays BLOB).
        # Relations are *rowid* tables with a UNIQUE constraint over the
        # whole tuple: insertion order is the semi-naive bookkeeping (the
        # monotonically growing rowid turns "new since the last round" into
        # a range condition), and the UNIQUE index doubles as both the
        # novelty check during promotion and the column-0 join probe.
        # Stage tables are unkeyed heaps: join output is appended blindly
        # (an O(1) rowid append per row beats a b-tree insert), and
        # duplicates are squeezed out during promotion by the relation's
        # UNIQUE constraint.
        columns = ", ".join(f"c{i} NOT NULL" for i in range(arity))
        if keyed:
            key = ", ".join(f"c{i}" for i in range(arity))
            self._connection.execute(
                f"CREATE TABLE IF NOT EXISTS {name} ({columns}, UNIQUE ({key}))"
            )
        else:
            self._connection.execute(
                f"CREATE TABLE IF NOT EXISTS {name} ({columns})"
            )
        self._created.add(name)


    def _ensure_tables(self, program: _ProgramSQL) -> None:
        for predicate, arity in program.table_keys:
            for kind in ("rel", "stg"):
                self._create_table(
                    _table_name(kind, predicate, arity), arity, keyed=kind != "stg"
                )
        for predicate, arity, column in program.index_keys:
            name = _table_name("rel", predicate, arity)
            index = f'"ix_{name.strip(chr(34))}_{column}"'
            if index in self._indexed:
                continue
            self._connection.execute(
                f"CREATE INDEX IF NOT EXISTS {index} ON {name} (c{column})"
            )
            self._indexed.add(index)

    def _max_rowid(self, name: str) -> int:
        return self._connection.execute(
            f"SELECT COALESCE(MAX(rowid), 0) FROM {name}"
        ).fetchone()[0]

    def _load_mirror(self, program: _ProgramSQL, database) -> None:
        """Full reload: mirror := ``database`` restricted to the program's tables."""
        for name in self._created:
            self._connection.execute(f"DELETE FROM {name}")
        self._ensure_tables(program)
        counts: dict[str, int] = {}
        for predicate in database.predicates():
            rows = database.rows(predicate)
            counts[predicate] = len(rows)
            self._insert_rows(predicate, rows, kind="rel")
        # Reset the watermark bookkeeping: everything currently in a
        # relation is "old" until a caller stages a delta.
        self._windows.clear()
        self._marks = {
            key: self._max_rowid(_table_name("rel", key[0], key[1]))
            for key in program.table_keys
        }
        self._counts = counts
        self._db_ref = database

    def _insert_rows(self, predicate: str, rows: Iterable[tuple], kind: str) -> None:
        by_arity: dict[int, list[tuple]] = {}
        for row in rows:
            if len(row):
                by_arity.setdefault(len(row), []).append(row)
        for arity, bucket in by_arity.items():
            name = _table_name(kind, predicate, arity)
            if name not in self._created:
                continue  # No statement reads this (predicate, arity).
            self._connection.executemany(
                f"INSERT OR IGNORE INTO {name} VALUES ({_placeholders(arity)})",
                [self._encode_row(row) for row in bucket],
            )

    @staticmethod
    def _encode_row(row: tuple) -> list:
        return [_to_sql(value) for value in row]

    def _decode_row(self, row) -> tuple:
        # INTEGER and TEXT cells *are* their Python values; only tagged
        # BLOBs need decoding.  Most rows are all-scalar and pass through
        # untouched, and blob-carrying rows repeat wholesale — copy rules
        # re-derive the same tuple into pub/local/peer relations — so the
        # memo is keyed on the entire raw row.
        values = None
        for index, cell in enumerate(row):
            if type(cell) is not bytes:
                if values is not None:
                    values.append(cell)
                continue
            if values is None:
                cached = self._decoded.get(row)
                if cached is not None:
                    return cached
                values = list(row[:index])
            value = self._cells.get(cell, _MISSING)
            if value is _MISSING:
                value = _from_blob(cell)
                if len(self._cells) >= _DECODE_CACHE_SIZE:
                    self._cells.clear()
                self._cells[cell] = value
            values.append(value)
        if values is None:
            return row
        decoded = tuple(values)
        if len(self._decoded) >= _DECODE_CACHE_SIZE:
            self._decoded.clear()
        self._decoded[row] = decoded
        return decoded

    def _mirror_current(self, database, program_key, delta: dict) -> bool:
        """Count guard: does the mirror plus the pending delta match ``database``?"""
        if self._db_ref is not database or self._program_key != program_key:
            return False
        expected = dict(self._counts)
        for predicate, values in delta.items():
            expected[predicate] = expected.get(predicate, 0) + len(values)
        actual = {
            predicate: database.count(predicate) for predicate in database.predicates()
        }
        return actual == {p: n for p, n in expected.items() if n}

    def notify_removals(self, deleted: dict[str, set[tuple]]) -> None:
        if self._db_ref is None:
            return
        with self._mirror_transaction():
            self._apply_removals(deleted)

    def _apply_removals(self, deleted: dict[str, set[tuple]]) -> None:
        for predicate, values in deleted.items():
            by_arity: dict[int, list[tuple]] = {}
            for row in values:
                if len(row):
                    by_arity.setdefault(len(row), []).append(row)
            for arity, bucket in by_arity.items():
                name = _table_name("rel", predicate, arity)
                if name not in self._created:
                    continue
                condition = " AND ".join(f"c{i} = ?" for i in range(arity))
                self._connection.executemany(
                    f"DELETE FROM {name} WHERE {condition}",
                    [self._encode_row(row) for row in bucket],
                )
                # Deleting the max-rowid row lets SQLite reuse that rowid on
                # the next insert; a stale-high mark would then hide the new
                # row from its delta window.  Re-anchor the mark to reality.
                self._marks[(predicate, arity)] = self._max_rowid(name)
            self._counts[predicate] = self._counts.get(predicate, 0) - len(values)
        self._windows.clear()

    # -- round machinery -----------------------------------------------------
    def _stage_delta_tables(
        self, program: _ProgramSQL, delta: dict[str, set[tuple]], database=None
    ) -> None:
        """Open delta windows over the relations for an accumulated delta dict.

        When the delta covers the whole predicate (a fresh mirror's first
        batch) the window is simply the whole table — nothing is copied or
        re-encoded.  A *partial* delta over an already-loaded relation is
        the rare cold path (a stratum transition right after a reload): the
        delta rows are deleted and re-appended so they sit contiguously
        above the window floor.
        """
        self._windows.clear()
        marks = self._marks
        for predicate, values in delta.items():
            keys = [
                key
                for key in program.keys_by_predicate.get(predicate, ())
                if _table_name("rel", key[0], key[1]) in self._created
            ]
            if not keys:
                continue
            if database is not None and len(values) == database.count(predicate):
                for key in keys:
                    self._windows[key] = (0, marks.get(key, 0))
                continue
            by_arity: dict[int, list[tuple]] = {}
            for row in values:
                if len(row):
                    by_arity.setdefault(len(row), []).append(row)
            for key in keys:
                arity = key[1]
                bucket = by_arity.get(arity)
                if not bucket:
                    continue
                name = _table_name("rel", predicate, arity)
                encoded = [self._encode_row(row) for row in bucket]
                condition = " AND ".join(f"c{i} = ?" for i in range(arity))
                self._connection.executemany(
                    f"DELETE FROM {name} WHERE {condition}", encoded
                )
                lo = self._max_rowid(name)
                self._connection.executemany(
                    f"INSERT OR IGNORE INTO {name} VALUES ({_placeholders(arity)})",
                    encoded,
                )
                hi = self._max_rowid(name)
                self._windows[key] = (lo, hi)
                marks[key] = hi

    def _bound_params(self, bounds: tuple) -> list:
        """Flatten a statement's watermark spec into its runtime parameters."""
        params = []
        windows = self._windows
        marks = self._marks
        for key, mode in bounds:
            window = windows.get(key)
            if window is None:
                # Empty delta this round: the window collapses onto the
                # mark, and "relation minus delta" is the whole relation.
                mark = marks.get(key, 0)
                window = (mark, mark)
            if mode == "window":
                params.append(window[0])
                params.append(window[1])
            else:
                params.append(window[0])
        return params

    def _execute_statement(
        self,
        entry: _RuleSQL,
        statement: _Statement,
        recorder: Optional[Recorder],
        stats: Optional[ExecutionStats],
    ) -> None:
        params = statement.params
        if statement.bounds:
            params = params + tuple(self._bound_params(statement.bounds))
        if recorder is None:
            # Direct path: the statement inserted into the head relation
            # itself and returned the genuinely new rows.
            rows = self._connection.execute(statement.insert_sql, params).fetchall()
            if stats is not None and rows:
                # Set-at-a-time has no per-binding firings; count the
                # productive ones (rows newly derived).
                stats.rules_fired += len(rows)
            return rows
        cursor = self._connection.execute(statement.select_sql, params)
        head_arity = entry.head_arity
        while True:
            rows = cursor.fetchmany(_RECORDER_BATCH)
            if not rows:
                break
            head_batch = []
            for row in rows:
                head_values = self._decode_row(row[:head_arity])
                sources = []
                offset = head_arity
                for predicate, arity in entry.source_layout:
                    sources.append(
                        (predicate, self._decode_row(row[offset:offset + arity]))
                    )
                    offset += arity
                recorder(entry.label, (entry.head_predicate, head_values), sources)
                head_batch.append(row[:head_arity])
            self._connection.executemany(entry.stage_insert_sql, head_batch)
            if stats is not None:
                stats.rules_fired += len(rows)

    def _promote(
        self,
        program: _ProgramSQL,
        head_keys: set[tuple[str, int]],
        database,
        pending: Optional[dict[tuple[str, int], list]] = None,
    ) -> dict[tuple[str, int], list[tuple]]:
        """Close out a round; returns tuples actually new per head key.

        In direct (non-recorder) mode the statements already inserted the
        new rows into the head relations and ``pending`` carries what they
        returned; this only opens the delta windows and mirrors the rows
        back into the Python database.  In recorder mode the heads sit in
        the stage heaps and are pushed through the relations' UNIQUE
        constraints here (``WHERE true`` disambiguates the upsert clause
        for the parser), with RETURNING emitting each genuinely new row
        exactly once.
        """
        results: dict[tuple[str, int], list[tuple]] = {}
        # The previous round's deltas are consumed: close *every* window,
        # not just the promoted predicates' — the disjoint-delta ceiling
        # conditions read any atom's window, so a stale one would wrongly
        # suppress combinations in later rounds.
        self._windows.clear()
        marks = self._marks
        for key in head_keys:
            predicate, arity = key
            rel = _table_name("rel", predicate, arity)
            if pending is not None:
                rows = pending.get(key, ())
            else:
                stg = _table_name("stg", predicate, arity)
                columns = ", ".join(f"c{i}" for i in range(arity))
                rows = self._connection.execute(
                    f"INSERT INTO {rel} SELECT {columns} FROM {stg} WHERE true "
                    f"ON CONFLICT DO NOTHING RETURNING {columns}"
                ).fetchall()
                self._connection.execute(f"DELETE FROM {stg}")
            if not rows:
                results[key] = []
                continue
            # The new rows landed above the old max rowid, so the delta
            # *is* the rowid window they occupy.
            lo = marks.get(key, 0)
            hi = self._max_rowid(rel)
            self._windows[key] = (lo, hi)
            marks[key] = hi
            decode = self._decode_row
            new_values = database.add_many(
                predicate, [decode(row) for row in rows]
            )
            self._counts[predicate] = self._counts.get(predicate, 0) + len(new_values)
            results[key] = new_values
        return results

    # -- ExecutionBackend API ------------------------------------------------
    def run_program(
        self,
        compiled: CompiledProgram,
        database,
        recorder: Optional[Recorder] = None,
        stats: Optional[ExecutionStats] = None,
        max_iterations: int = 0,
    ) -> dict[str, set[tuple]]:
        program_key, program = self._program_for(compiled)
        if isinstance(program, _Fallback):
            self._db_ref = None
            self._python.observability = self.observability
            return self._python.run_program(
                compiled, database, recorder=recorder, stats=stats,
                max_iterations=max_iterations,
            )
        tracer = self._tracer()
        all_new: dict[str, set[tuple]] = {}
        with self._mirror_transaction():
            self._load_mirror(program, database)
            self._program_key = program_key
            direct = recorder is None
            for index, stratum in enumerate(program.strata):
                with self._span(tracer, index, stratum):
                    idb = {entry.head_predicate for entry in stratum}
                    head_keys = {entry.head_key for entry in stratum}
                    pending = {} if direct else None
                    for entry in stratum:
                        rows = self._execute_statement(entry, entry.plain, recorder, stats)
                        if direct and rows:
                            pending.setdefault(entry.head_key, []).extend(rows)
                    new_rows = self._promote(program, head_keys, database, pending)
                    current = set()
                    for (predicate, _), values in new_rows.items():
                        if values:
                            current.add(predicate)
                            all_new.setdefault(predicate, set()).update(values)
                    iterations = 1
                    while current:
                        if max_iterations and iterations >= max_iterations:
                            raise DatalogError(
                                f"evaluation did not converge within {max_iterations} iterations"
                            )
                        if stats is not None:
                            stats.rounds += 1
                        touched: set[tuple[str, int]] = set()
                        pending = {} if direct else None
                        for entry in stratum:
                            body = entry.rule.body
                            for position, statement in entry.deltas.items():
                                predicate = body[position].predicate
                                if predicate not in idb or predicate not in current:
                                    continue
                                rows = self._execute_statement(entry, statement, recorder, stats)
                                if direct and rows:
                                    pending.setdefault(entry.head_key, []).extend(rows)
                                touched.add(entry.head_key)
                        new_rows = self._promote(program, touched, database, pending)
                        current = set()
                        for (predicate, _), values in new_rows.items():
                            if values:
                                current.add(predicate)
                                all_new.setdefault(predicate, set()).update(values)
                        iterations += 1
        if stats is not None:
            for values in all_new.values():
                stats.tuples_derived += len(values)
        return all_new

    def propagate(
        self,
        compiled: CompiledProgram,
        database,
        delta: dict[str, set[tuple]],
        recorder: Optional[Recorder] = None,
        stats: Optional[ExecutionStats] = None,
    ) -> dict[str, set[tuple]]:
        program_key, program = self._program_for(compiled)
        if isinstance(program, _Fallback):
            self._db_ref = None
            self._python.observability = self.observability
            return self._python.propagate(
                compiled, database, delta, recorder=recorder, stats=stats
            )
        tracer = self._tracer()
        inserted: dict[str, set[tuple]] = defaultdict(set)
        direct = recorder is None
        with self._mirror_transaction():
            if self._mirror_current(database, program_key, delta):
                staged = self._fold_delta(program, delta)
            else:
                self._load_mirror(program, database)  # delta rows are already inside
                self._program_key = program_key
                staged = False

            accumulated = {predicate: set(values) for predicate, values in delta.items()}
            for index, stratum in enumerate(program.strata):
                # Skip strata no delta predicate can fire — the common case for
                # the small per-transaction deltas of the exchange engine.
                stratum_reads = {
                    entry.rule.body[position].predicate
                    for entry in stratum
                    for position in entry.deltas
                }
                if not (stratum_reads & {p for p, v in accumulated.items() if v}):
                    continue
                with self._span(tracer, index, stratum):
                    if staged:
                        # The warm-path fold already staged exactly this delta.
                        staged = False
                    else:
                        self._stage_delta_tables(program, accumulated, database=database)
                    current = {predicate for predicate, values in accumulated.items() if values}
                    while current:
                        if stats is not None:
                            stats.rounds += 1
                        touched: set[tuple[str, int]] = set()
                        pending = {} if direct else None
                        for entry in stratum:
                            body = entry.rule.body
                            for position, statement in entry.deltas.items():
                                if body[position].predicate not in current:
                                    continue
                                rows = self._execute_statement(entry, statement, recorder, stats)
                                if direct and rows:
                                    pending.setdefault(entry.head_key, []).extend(rows)
                                touched.add(entry.head_key)
                        if not touched:
                            break
                        new_rows = self._promote(program, touched, database, pending)
                        current = set()
                        for (predicate, _), values in new_rows.items():
                            if values:
                                current.add(predicate)
                                inserted[predicate].update(values)
                                accumulated.setdefault(predicate, set()).update(values)
        if stats is not None:
            for values in inserted.values():
                stats.tuples_derived += len(values)
        return dict(inserted)

    def _fold_delta(self, program: _ProgramSQL, delta: dict[str, set[tuple]]) -> bool:
        """Fold fresh base tuples into the warm mirror, staging them en route.

        The rows are appended straight to the full relations — landing
        above each table's watermark, so the windows they occupy *are* the
        staged delta and the first firing stratum can skip
        :meth:`_stage_delta_tables`.
        """
        self._windows.clear()
        marks = self._marks
        for predicate, values in delta.items():
            by_arity: dict[int, list[tuple]] = {}
            for row in values:
                if len(row):
                    by_arity.setdefault(len(row), []).append(row)
            for arity, bucket in by_arity.items():
                name = _table_name("rel", predicate, arity)
                if name not in self._created:
                    continue  # No statement reads this (predicate, arity).
                key = (predicate, arity)
                lo = marks.get(key, 0)
                self._connection.executemany(
                    f"INSERT OR IGNORE INTO {name} VALUES ({_placeholders(arity)})",
                    [self._encode_row(row) for row in bucket],
                )
                hi = self._max_rowid(name)
                self._windows[key] = (lo, hi)
                marks[key] = hi
            self._counts[predicate] = self._counts.get(predicate, 0) + len(values)
        return True

    # -- introspection -------------------------------------------------------
    def explain(self, compiled: CompiledProgram) -> list[str]:
        """The generated SQL, one ``INSERT ... SELECT`` per rule plan."""
        _, program = self._program_for(compiled)
        if isinstance(program, _Fallback):
            return [f"-- python fallback: {program.reason}"] + self._python.explain(compiled)
        lines = []
        for stratum in program.strata:
            for entry in stratum:
                lines.append(f"-- {entry.rule}")
                lines.append(entry.plain.insert_sql + ";")
                for position in sorted(entry.deltas):
                    lines.append(f"-- delta on body position {position}")
                    lines.append(entry.deltas[position].insert_sql + ";")
        return lines


def explain_sql(program) -> str:
    """Render the SQL a program compiles to (the ``cdss.explain()`` payload)."""
    from .plan import compile_program

    backend = SQLExecutionBackend()
    return "\n".join(backend.explain(compile_program(program)))
