"""Shared per-column hash-index maintenance.

Both the datalog :class:`~repro.datalog.evaluation.Database` (join probes of
the compiled executor) and the in-memory storage backend
(:class:`~repro.storage.memory.MemoryInstance`, serving indexed ``lookup``)
keep the same structure per relation: ``position -> value -> set of
tuples``.  These helpers are the single implementation of building and
maintaining that structure — including dropping a bucket the moment its
tuple set empties, so delete-heavy runs do not accumulate empty ``value ->
set()`` entries per historical key.
"""

from __future__ import annotations

from typing import Iterable

#: One relation's column indexes: position -> value -> set of tuples.
ColumnIndexes = dict[int, dict[object, set[tuple]]]


def build_column_index(rows: Iterable[tuple], position: int) -> dict[object, set[tuple]]:
    """Index ``rows`` by the value at ``position`` (shorter rows are skipped)."""
    buckets: dict[object, set[tuple]] = {}
    for row in rows:
        if position < len(row):
            buckets.setdefault(row[position], set()).add(row)
    return buckets


def index_insert(positions: ColumnIndexes, values: tuple) -> None:
    """Register a newly inserted tuple with every column index of its relation."""
    size = len(values)
    for position, buckets in positions.items():
        if position < size:
            buckets.setdefault(values[position], set()).add(values)


def index_discard(positions: ColumnIndexes, values: tuple) -> None:
    """Unregister a deleted tuple, dropping any bucket it leaves empty."""
    size = len(values)
    for position, buckets in positions.items():
        if position < size:
            bucket = buckets.get(values[position])
            if bucket is not None:
                bucket.discard(values)
                if not bucket:
                    del buckets[values[position]]
