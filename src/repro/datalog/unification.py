"""Substitutions, term matching and unification.

Bottom-up datalog evaluation only needs *matching* (binding rule variables to
ground fact values), but full unification of terms is also provided because
the mapping composition utilities in :mod:`repro.exchange.rules` use it to
detect overlapping rule heads.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from .ast import Atom, Constant, SkolemTerm, Term, Variable


class Substitution:
    """An immutable-by-convention mapping from variables to ground values."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Optional[Mapping[Variable, object]] = None) -> None:
        self._bindings: dict[Variable, object] = dict(bindings or {})

    def get(self, variable: Variable) -> object:
        return self._bindings.get(variable)

    def __contains__(self, variable: Variable) -> bool:
        return variable in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._bindings == other._bindings

    def __hash__(self) -> int:
        return hash(frozenset(self._bindings.items()))

    def items(self) -> Iterable[tuple[Variable, object]]:
        return self._bindings.items()

    def copy(self) -> "Substitution":
        return Substitution(self._bindings)

    def bind(self, variable: Variable, value: object) -> Optional["Substitution"]:
        """Return a new substitution with ``variable`` bound to ``value``.

        Returns ``None`` when the variable is already bound to a different
        value (a failed match).
        """
        existing = self._bindings.get(variable, _UNBOUND)
        if existing is not _UNBOUND:
            return self if existing == value else None
        extended = dict(self._bindings)
        extended[variable] = value
        return Substitution(extended)

    def apply_term(self, term: Term) -> object:
        """Instantiate ``term`` under this substitution.

        Variables without a binding are returned unchanged; ground skolem
        terms are built recursively so that they act as labelled nulls.
        """
        if isinstance(term, Constant):
            return term.value
        if isinstance(term, Variable):
            return self._bindings.get(term, term)
        if isinstance(term, SkolemTerm):
            return SkolemTerm(
                term.function,
                tuple(self._apply_argument(arg) for arg in term.arguments),
            )
        return term

    def _apply_argument(self, arg: object) -> object:
        if isinstance(arg, (Constant, Variable, SkolemTerm)):
            return self.apply_term(arg)
        return arg

    def apply_atom(self, atom: Atom) -> Atom:
        """Instantiate every term of ``atom`` and re-wrap ground values."""
        new_terms: list[Term] = []
        for term in atom.terms:
            value = self.apply_term(term)
            if isinstance(value, (Variable, SkolemTerm)):
                new_terms.append(value)
            else:
                new_terms.append(Constant(value))
        return Atom(atom.predicate, tuple(new_terms), negated=atom.negated)

    def ground_values(self, atom: Atom) -> tuple:
        """Return the tuple of ground values for ``atom`` under this substitution.

        Raises :class:`ValueError` if any variable remains unbound.
        """
        values = []
        for term in atom.terms:
            value = self.apply_term(term)
            if isinstance(value, Variable):
                raise ValueError(
                    f"variable {value.name} of {atom!r} is unbound in {self!r}"
                )
            values.append(value)
        return tuple(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{v.name}={value!r}" for v, value in self._bindings.items())
        return f"{{{inner}}}"


_UNBOUND = object()


def match_term(term: Term, value: object, subst: Substitution) -> Optional[Substitution]:
    """Match a rule term against a ground value, extending ``subst``.

    Returns the extended substitution, or ``None`` when the match fails.
    """
    if isinstance(term, Constant):
        return subst if term.value == value else None
    if isinstance(term, Variable):
        return subst.bind(term, value)
    if isinstance(term, SkolemTerm):
        if not isinstance(value, SkolemTerm):
            return None
        if term.function != value.function:
            return None
        if len(term.arguments) != len(value.arguments):
            return None
        current: Optional[Substitution] = subst
        for sub_term, sub_value in zip(term.arguments, value.arguments):
            if current is None:
                return None
            if isinstance(sub_term, (Constant, Variable, SkolemTerm)):
                current = match_term(sub_term, sub_value, current)
            else:
                current = current if sub_term == sub_value else None
        return current
    return None


def match_atom(
    atom: Atom, values: tuple, subst: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Match a (positive) atom against a ground tuple of values."""
    if len(atom.terms) != len(values):
        return None
    current: Optional[Substitution] = subst if subst is not None else Substitution()
    for term, value in zip(atom.terms, values):
        current = match_term(term, value, current)
        if current is None:
            return None
    return current


def unify_terms(
    left: Term, right: Term, subst: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Unify two rule terms (both may contain variables).

    This is standard syntactic unification without an occurs check over
    constants; skolem terms unify structurally.  Used when composing mapping
    rules, not during bottom-up evaluation.
    """
    current = subst if subst is not None else Substitution()
    left_value = current.apply_term(left)
    right_value = current.apply_term(right)

    if isinstance(left_value, Variable):
        return current.bind(left_value, right_value)
    if isinstance(right_value, Variable):
        return current.bind(right_value, left_value)
    if isinstance(left_value, SkolemTerm) and isinstance(right_value, SkolemTerm):
        if (
            left_value.function != right_value.function
            or len(left_value.arguments) != len(right_value.arguments)
        ):
            return None
        result: Optional[Substitution] = current
        for sub_left, sub_right in zip(left_value.arguments, right_value.arguments):
            if result is None:
                return None
            left_term = sub_left if isinstance(
                sub_left, (Variable, Constant, SkolemTerm)
            ) else Constant(sub_left)
            right_term = sub_right if isinstance(
                sub_right, (Variable, Constant, SkolemTerm)
            ) else Constant(sub_right)
            result = unify_terms(left_term, right_term, result)
        return result
    return current if left_value == right_value else None
