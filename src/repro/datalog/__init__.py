"""Datalog substrate used to evaluate schema mappings.

The ORCHESTRA update-exchange engine compiles schema mappings
(tuple-generating dependencies) into datalog rules and evaluates them
bottom-up over the peers' local instances.  This package provides that
substrate from scratch:

* :mod:`repro.datalog.ast` — terms, atoms, rules and programs,
* :mod:`repro.datalog.parser` — a small textual syntax for rules and facts,
* :mod:`repro.datalog.unification` — substitutions and atom matching,
* :mod:`repro.datalog.plan` — one-time compilation of rules into executable
  join plans (greedy atom ordering, pre-resolved index probes, head
  projection closures), cached by structural identity,
* :mod:`repro.datalog.executor` — the shared execution engine driving the
  compiled plans with pluggable firing hooks,
* :mod:`repro.datalog.evaluation` — naive and semi-naive bottom-up evaluation,
* :mod:`repro.datalog.provenance_eval` — evaluation that records semiring
  provenance for every derived tuple,
* :mod:`repro.datalog.stratification` — stratified negation,
* :mod:`repro.datalog.skolem` — skolem functions for existential variables,
* :mod:`repro.datalog.incremental` — delta-rule insertion propagation and
  DRed-style deletion propagation.
"""

from .ast import Atom, Constant, Fact, Program, Rule, SkolemTerm, Variable
from .evaluation import Database, evaluate_program, evaluate_rule_once
from .executor import ExecutionStats, fire_rule, run_program, run_stratum
from .incremental import IncrementalEngine
from .parser import parse_atom, parse_fact, parse_program, parse_rule
from .plan import CompiledProgram, CompiledRule, compile_program, compile_rule
from .provenance_eval import ProvenanceDatabase, evaluate_with_provenance
from .skolem import SkolemFactory
from .stratification import stratify
from .unification import Substitution, match_atom, unify_terms

__all__ = [
    "Atom",
    "CompiledProgram",
    "CompiledRule",
    "Constant",
    "Database",
    "ExecutionStats",
    "Fact",
    "IncrementalEngine",
    "Program",
    "ProvenanceDatabase",
    "Rule",
    "SkolemFactory",
    "SkolemTerm",
    "Substitution",
    "Variable",
    "compile_program",
    "compile_rule",
    "evaluate_program",
    "evaluate_rule_once",
    "evaluate_with_provenance",
    "fire_rule",
    "match_atom",
    "parse_atom",
    "parse_fact",
    "parse_program",
    "parse_rule",
    "run_program",
    "run_stratum",
    "stratify",
    "unify_terms",
]
