"""A small textual syntax for datalog rules and facts.

The syntax is the conventional one used in the ORCHESTRA papers::

    OPS(org, prot, seq) :- O(org, oid), P(prot, pid), S(oid, pid, seq).
    S(SK_oid(org), SK_pid(prot), seq) :- OPS(org, prot, seq).
    O('E. coli', 17).

Conventions:

* identifiers starting with a lower-case letter or ``?`` are variables
  (``org``, ``?X``); identifiers starting with an upper-case letter inside a
  term position are also variables when they are not quoted — constants are
  written as quoted strings, numbers, ``true``/``false`` or ``null``;
* ``not`` before an atom negates it;
* ``SK_name(args)`` in a term position is a skolem term;
* comparisons use ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``;
* a rule may be prefixed with a label: ``[m1] head :- body.``
* an atom may be *peer-qualified*: ``@Alaska.O(org, oid)`` names relation
  ``O`` of peer ``Alaska`` (the atom's predicate becomes ``"Alaska.O"``).
  Peer-qualified atoms are how the declarative network-spec language of
  :mod:`repro.api` writes tgd mappings across peers;
* :func:`parse_tgd` reads a (possibly multi-head) tuple-generating
  dependency ``[label] head1, head2 :- body.`` in which head variables may
  be existential.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator

from ..errors import DatalogParseError, SourceSpan
from .ast import Atom, Comparison, Constant, Fact, Program, Rule, SkolemTerm, Term, Variable


@dataclass(frozen=True)
class ParsedTgd:
    """A parsed tuple-generating dependency ``[label] heads :- body.``

    Unlike :class:`~repro.datalog.ast.Rule`, a tgd may have several head
    atoms, and head variables that do not occur in the body are *existential*
    (they become labelled nulls during update exchange) rather than unsafe.
    """

    heads: tuple[Atom, ...]
    body: tuple[Atom, ...]
    label: str | None = None
    span: SourceSpan | None = field(default=None, compare=False, repr=False)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<at>@)
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<period>\.(?!\d))
  | (?P<implies>:-)
  | (?P<op><=|>=|!=|==|<|>|=)
  | (?P<number>-?\d+(\.\d+)?)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_?][A-Za-z0-9_?]*)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int = 1, column: int = 1) -> None:
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.text}@{self.line}:{self.column}"


def _tokenize(text: str, first_line: int = 1) -> list[_Token]:
    """Tokenize ``text``, recording the 1-based line/column of each token.

    ``first_line`` offsets line numbers when the text is a fragment embedded
    in a larger document (a mapping clause inside a network spec).
    """
    tokens: list[_Token] = []
    position = 0
    line = first_line
    line_start = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            column = position - line_start + 1
            raise DatalogParseError(
                f"unexpected character {text[position]!r} at line {line}, "
                f"column {column} (offset {position}) in {text!r}",
                line=line,
                column=column,
            )
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), line, position - line_start + 1))
        segment = match.group()
        if "\n" in segment:
            line += segment.count("\n")
            line_start = match.start() + segment.rfind("\n") + 1
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _error(self, message: str, token: _Token | None = None) -> DatalogParseError:
        """Build a parse error carrying the position of the offending token."""
        if token is None and self._tokens:
            token = self._tokens[min(self._index, len(self._tokens) - 1)]
        if token is not None:
            return DatalogParseError(
                f"{message} at line {token.line}, column {token.column} "
                f"in {self._source!r}",
                line=token.line,
                column=token.column,
            )
        return DatalogParseError(f"{message} in {self._source!r}")

    def _last_token(self) -> _Token | None:
        if 0 < self._index <= len(self._tokens):
            return self._tokens[self._index - 1]
        return None

    def _span_from(self, start: _Token | None) -> SourceSpan | None:
        """Span from ``start`` to the most recently consumed token."""
        if start is None:
            return None
        last = self._last_token()
        if last is None:
            return SourceSpan(start.line, start.column)
        return SourceSpan(
            start.line,
            start.column,
            end_line=last.line,
            end_column=last.column + len(last.text),
        )

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of input", self._last_token())
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise self._error(f"expected {kind} but found {token.text!r}", token)
        return token

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    def parse_rule(self) -> Rule:
        label = None
        start = self._peek()
        token = start
        if token is not None and token.kind == "lbracket":
            self._next()
            label = self._expect("name").text
            self._expect("rbracket")
        head = self.parse_atom()
        body: list = []
        token = self._peek()
        if token is not None and token.kind == "implies":
            self._next()
            body.append(self.parse_body_literal())
            while True:
                token = self._peek()
                if token is not None and token.kind == "comma":
                    self._next()
                    body.append(self.parse_body_literal())
                else:
                    break
        token = self._peek()
        if token is not None and token.kind == "period":
            self._next()
        return Rule(head, tuple(body), label=label, span=self._span_from(start))

    def parse_tgd(self) -> ParsedTgd:
        label = None
        start = self._peek()
        token = start
        if token is not None and token.kind == "lbracket":
            self._next()
            label = self._expect("name").text
            self._expect("rbracket")
        heads = [self.parse_atom()]
        while True:
            token = self._peek()
            if token is not None and token.kind == "comma":
                self._next()
                heads.append(self.parse_atom())
            else:
                break
        self._expect("implies")
        body = [self.parse_body_literal()]
        while True:
            token = self._peek()
            if token is not None and token.kind == "comma":
                self._next()
                body.append(self.parse_body_literal())
            else:
                break
        token = self._peek()
        if token is not None and token.kind == "period":
            self._next()
        for literal in body:
            if not isinstance(literal, Atom):
                raise self._error(
                    f"tgd bodies may not contain comparisons: {literal!r}", start
                )
        return ParsedTgd(
            tuple(heads), tuple(body), label=label, span=self._span_from(start)
        )

    def parse_body_literal(self):
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of body", self._last_token())
        if token.kind == "name" and token.text == "not":
            self._next()
            atom = self.parse_atom()
            return atom.negate()
        # Either an atom or a comparison; decide by looking ahead for an
        # operator after the first term.
        checkpoint = self._index
        try:
            left = self.parse_term()
            token = self._peek()
            if token is not None and token.kind == "op":
                op = self._next().text
                right = self.parse_term()
                return Comparison(op, left, right)
        except DatalogParseError:
            pass
        self._index = checkpoint
        return self.parse_atom()

    def parse_atom(self) -> Atom:
        token = self._peek()
        start = token
        qualifier = None
        if token is not None and token.kind == "at":
            # A peer-qualified atom: @Peer.Relation(terms).
            self._next()
            qualifier = self._expect("name").text
            self._expect("period")
        name = self._expect("name").text
        if qualifier is not None:
            name = f"{qualifier}.{name}"
        self._expect("lparen")
        terms: list[Term] = []
        token = self._peek()
        if token is not None and token.kind != "rparen":
            terms.append(self.parse_term())
            while True:
                token = self._peek()
                if token is not None and token.kind == "comma":
                    self._next()
                    terms.append(self.parse_term())
                else:
                    break
        self._expect("rparen")
        return Atom(name, tuple(terms), span=self._span_from(start))

    def parse_term(self) -> Term:
        token = self._next()
        if token.kind == "number":
            text = token.text
            return Constant(float(text) if "." in text else int(text))
        if token.kind == "string":
            raw = token.text[1:-1]
            return Constant(raw.replace("\\'", "'").replace('\\"', '"'))
        if token.kind == "name":
            name = token.text
            lowered = name.lower()
            if lowered == "true":
                return Constant(True)
            if lowered == "false":
                return Constant(False)
            if lowered in {"null", "none"}:
                return Constant(None)
            next_token = self._peek()
            if next_token is not None and next_token.kind == "lparen":
                # A skolem/function term.
                self._next()
                arguments: list[Term] = []
                token2 = self._peek()
                if token2 is not None and token2.kind != "rparen":
                    arguments.append(self.parse_term())
                    while True:
                        token2 = self._peek()
                        if token2 is not None and token2.kind == "comma":
                            self._next()
                            arguments.append(self.parse_term())
                        else:
                            break
                self._expect("rparen")
                return SkolemTerm(name, tuple(arguments))
            if name.startswith("?"):
                return Variable(name[1:])
            return Variable(name)
        raise self._error(f"unexpected token {token.text!r} in term position", token)


def parse_rule(text: str, *, validate: bool = True, origin_line: int = 1) -> Rule:
    """Parse a single rule (or fact written as a ground rule).

    Args:
        text: Rule source text.
        validate: When true (default), check rule safety and raise
            :class:`~repro.errors.UnsafeRuleError` for range-unrestricted
            rules.  The static analyzer parses with ``validate=False`` so it
            can report *every* unsafe rule instead of dying on the first.
        origin_line: 1-based line number of ``text`` inside its enclosing
            document; offsets the spans attached to the rule and its atoms.
    """
    parser = _Parser(_tokenize(text, origin_line), text)
    rule = parser.parse_rule()
    if not parser.at_end():
        raise parser._error("trailing input after rule")
    if validate:
        rule.validate()
    return rule


def parse_tgd(text: str, *, origin_line: int = 1) -> ParsedTgd:
    """Parse a tuple-generating dependency ``[label] head1, head2 :- body.``

    Head atoms may share a comma-separated list before ``:-`` (split
    mappings need several), and atoms on either side may be peer-qualified
    (``@Crete.OPS(org, prot, seq)``).  Variables appearing only in the heads
    are existential, so no safety check is applied to them; negated body
    atoms are rejected because tgds are positive.
    """
    parser = _Parser(_tokenize(text, origin_line), text)
    tgd = parser.parse_tgd()
    if not parser.at_end():
        raise parser._error("trailing input after tgd")
    for atom in tgd.body:
        if atom.negated:
            raise DatalogParseError(
                f"tgd bodies may not contain negation in {text!r}", span=atom.span
            )
    return tgd


def parse_atom(text: str) -> Atom:
    """Parse a single (possibly non-ground) atom."""
    parser = _Parser(_tokenize(text), text)
    atom = parser.parse_atom()
    if not parser.at_end():
        raise parser._error("trailing input after atom")
    return atom


def parse_fact(text: str) -> Fact:
    """Parse a ground fact such as ``O('E. coli', 17).``"""
    parser = _Parser(_tokenize(text), text)
    atom = parser.parse_atom()
    token = parser._peek()
    if token is not None and token.kind == "period":
        parser._next()
    if not parser.at_end():
        raise parser._error("trailing input after fact")
    values = []
    for term in atom.terms:
        if isinstance(term, Constant):
            values.append(term.value)
        elif isinstance(term, SkolemTerm) and term.is_ground:
            values.append(term)
        else:
            raise DatalogParseError(f"fact {text!r} contains non-ground term {term!r}")
    return Fact(atom.predicate, tuple(values))


def _iter_statements(text: str) -> Iterator[tuple[str, int]]:
    """Split program text into ``(statement, start_line)`` pairs.

    Quotes and comments are respected; ``start_line`` is the 1-based line on
    which the statement's first non-whitespace character appears, so spans of
    parsed rules can be mapped back into the original document.
    """
    statement: list[str] = []
    start_line: int | None = None
    in_string: str | None = None
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line
        if in_string is None:
            comment = stripped.find("%")
            if comment != -1:
                stripped = stripped[:comment]
            comment = stripped.find("#")
            if comment != -1:
                stripped = stripped[:comment]
        for position, char in enumerate(stripped):
            if in_string:
                statement.append(char)
                if char == in_string:
                    in_string = None
                continue
            if char in "'\"":
                in_string = char
                if start_line is None:
                    start_line = number
                statement.append(char)
                continue
            if start_line is None and not char.isspace():
                start_line = number
            statement.append(char)
            if char == ".":
                # A "." immediately followed by an identifier character is
                # part of a qualified name (@Peer.Relation) or a decimal
                # number, not a statement terminator.
                following = stripped[position + 1] if position + 1 < len(stripped) else ""
                if following.isalnum() or following == "_":
                    continue
                candidate = "".join(statement).strip()
                if candidate and candidate != ".":
                    yield candidate, start_line if start_line is not None else number
                statement = []
                start_line = None
        statement.append("\n")
    remainder = "".join(statement).strip()
    if remainder:
        yield remainder, start_line if start_line is not None else 1


def parse_program(text: str, *, validate: bool = True) -> Program:
    """Parse a newline/period separated list of rules into a :class:`Program`.

    Lines starting with ``%`` or ``#`` are comments.  With ``validate=False``
    unsafe rules are admitted (the static analyzer uses this to report every
    safety violation rather than raising on the first).
    """
    program = Program()
    for statement, line in _iter_statements(text):
        rule = parse_rule(statement, validate=validate, origin_line=line)
        if validate:
            program.add(rule)
        else:
            program.rules.append(rule)
    return program
