"""Fuzz-campaign CLI for the randomized CDSS simulator.

Runs seeded random networks (see :mod:`repro.workloads.simulation`) through
the full differential-oracle suite and reports per-seed outcomes::

    python -m repro.simulate --seeds 25
    python -m repro.simulate --seeds 200 --seed-base 20260728 --epochs 6

Every seed generates a fresh network (random peers, schemas, acyclic tgd
mapping graph, trust policies), drives a random insert/modify/delete/conflict
workload over several replicas, and asserts after every epoch that

* incremental maintenance matches from-scratch recomputation,
* provenance-based deletion matches DRed,
* ``cdss.sync()`` matches a hand-rolled publish/reconcile loop,
* memory-backed peers match SQLite-backed peers,
* the sharded, replicated distributed update store produces reconcile
  outcomes and instances identical to the centralized archive
  (``--store-centralized``/``--store-distributed`` choose which backend the
  primary replica runs; the mirror runs the other), and
* every archived transaction stays k-way replicated under churn, so losing
  up to k-1 replicas of a shard never loses published data, and
* gossip sketch reconciliation produces reconcile outcomes and instances
  identical to scalar-cursor catch-up (``--sync-cursor``/``--sync-gossip``
  choose which mode the primary replica runs; the mirror runs the other), and
* with ``--runtime async``, the pipelined asyncio sync scheduler produces
  reconcile outcomes, open conflicts, and instances identical to the serial
  round-robin loop (a serial mirror on the same backend and sync mode
  checks it — the concurrent-vs-serial oracle), and
* the SQL pushdown execution backend derives instances and provenance
  polynomials identical to the Python closure executor
  (``--execution python``/``--execution sql`` choose which backend the
  primary replica runs; a mirror engine runs the other — the sql-vs-python
  oracle).

Exit status is 0 when every oracle holds for every seed, 1 otherwise; each
mismatch prints the failing seed, the (minimal) epoch at which it first
became observable, and the exact ``--seeds 1 --seed-base S ...`` invocation
(including the campaign's config flags, which feed the same RNG stream)
that reproduces it.

The nightly CI job runs this with a date-derived ``--seed-base`` so every
night covers a fresh region of the seed space.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .errors import ConfigurationError
from .workloads.simulation import SimulationConfig, run_simulation


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.simulate",
        description="Randomized CDSS fuzz campaigns with differential oracles.",
    )
    parser.add_argument(
        "--seeds", type=int, default=25,
        help="number of consecutive seeds to run (default: 25)",
    )
    parser.add_argument(
        "--seed-base", type=int, default=1,
        help="first seed of the batch (default: 1); nightly CI passes a date",
    )
    parser.add_argument(
        "--epochs", type=int, default=4,
        help="workload epochs per network (default: 4)",
    )
    parser.add_argument(
        "--max-peers", type=int, default=4,
        help="largest generated network size (default: 4)",
    )
    parser.add_argument(
        "--transactions", type=int, default=6,
        help="upper bound on transactions per epoch (default: 6, min: 1)",
    )
    provenance = parser.add_mutually_exclusive_group()
    provenance.add_argument(
        "--provenance-dag", dest="provenance_mode", action="store_const",
        const="circuit", default="circuit",
        help="evaluate provenance on the hash-consed DAG store (default)",
    )
    provenance.add_argument(
        "--provenance-expanded", dest="provenance_mode", action="store_const",
        const="expanded",
        help="evaluate provenance via per-tuple expanded polynomials "
             "(the slow ablation representation the DAG replaces)",
    )
    store = parser.add_mutually_exclusive_group()
    store.add_argument(
        "--store-centralized", dest="store_backend", action="store_const",
        const="centralized", default="centralized",
        help="primary replica archives into the centralized update store "
             "(default); a distributed-store mirror checks it",
    )
    store.add_argument(
        "--store-distributed", dest="store_backend", action="store_const",
        const="distributed",
        help="primary replica archives into the sharded, replicated "
             "distributed update store; a centralized mirror checks it",
    )
    sync = parser.add_mutually_exclusive_group()
    sync.add_argument(
        "--sync-cursor", dest="sync_mode", action="store_const",
        const="cursor", default="cursor",
        help="primary replica catches peers up via scalar-cursor replay "
             "(default); a gossip-sync mirror checks it",
    )
    sync.add_argument(
        "--sync-gossip", dest="sync_mode", action="store_const",
        const="gossip",
        help="primary replica catches peers up via epidemic sketch "
             "reconciliation; a cursor-sync mirror checks it",
    )
    parser.add_argument(
        "--sketch", choices=("iblt", "bloom"), default="iblt",
        help="sketch algorithm of the gossip-sync replica (default: iblt)",
    )
    parser.add_argument(
        "--runtime", choices=("serial", "async"), default="serial",
        help="sync scheduler of the primary replica (default: serial); "
             "'async' adds a serial mirror backing the concurrent-vs-serial "
             "oracle",
    )
    parser.add_argument(
        "--execution", choices=("python", "sql"), default="python",
        help="rule execution backend of the primary replica (default: "
             "python); a mirror engine on the other backend checks it",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="only print failures and the final summary",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.seeds < 1:
        print("--seeds must be at least 1", file=sys.stderr)
        return 2
    try:
        config = SimulationConfig(
            epochs=args.epochs,
            max_peers=args.max_peers,
            transactions_per_epoch=(min(2, args.transactions), args.transactions),
            provenance_mode=args.provenance_mode,
            store_backend=args.store_backend,
            sync_mode=args.sync_mode,
            sync_sketch=args.sketch,
            sync_runtime=args.runtime,
            execution_backend=args.execution,
        )
    except ConfigurationError as error:
        print(f"invalid configuration: {error}", file=sys.stderr)
        return 2

    failed = 0
    transactions = 0
    checks = 0
    for seed in range(args.seed_base, args.seed_base + args.seeds):
        # The config feeds the shared RNG stream, so a reproduction must use
        # the same flags, not just the seed.
        mode_flag = (
            " --provenance-expanded" if args.provenance_mode == "expanded" else ""
        )
        store_flag = (
            " --store-distributed" if args.store_backend == "distributed" else ""
        )
        sync_flag = " --sync-gossip" if args.sync_mode == "gossip" else ""
        sketch_flag = f" --sketch {args.sketch}" if args.sketch != "iblt" else ""
        runtime_flag = " --runtime async" if args.runtime == "async" else ""
        execution_flag = " --execution sql" if args.execution == "sql" else ""
        repro = (
            f"--seeds 1 --seed-base {seed} --epochs {args.epochs} "
            f"--max-peers {args.max_peers} --transactions {args.transactions}"
            f"{mode_flag}{store_flag}{sync_flag}{sketch_flag}{runtime_flag}"
            f"{execution_flag}"
        )
        try:
            result = run_simulation(seed, config)
        except Exception as error:  # crashes are fuzz findings too: name the seed
            failed += 1
            print(
                f"FAIL seed {seed}: crashed with {type(error).__name__}: {error} "
                f"(reproduce: {repro})",
                file=sys.stderr,
            )
            continue
        transactions += result.transactions
        checks += result.oracle_checks
        if result.ok:
            if not args.quiet:
                print(
                    f"seed {seed}: ok ({result.peers} peers, {result.mappings} "
                    f"mappings, {result.transactions} txns, "
                    f"{result.oracle_checks} oracle checks)"
                )
        else:
            failed += 1
            for failure in result.failures:
                print(
                    f"FAIL {failure.describe()} (reproduce: {repro})",
                    file=sys.stderr,
                )

    verdict = "ok" if failed == 0 else f"{failed} seed(s) FAILED"
    print(
        f"simulate: {args.seeds} seeds from {args.seed_base}: {verdict} "
        f"({transactions} transactions, {checks} oracle checks)"
    )
    return 0 if failed == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
