"""Per-peer update (transaction) logs.

Each peer accumulates the transactions committed against its local instance
in an append-only log.  Publication reads the unpublished suffix of this log,
ships it to the shared update store, and advances the publication watermark.
The log is deliberately agnostic about the transaction type: it stores opaque
entries keyed by an identifier, which keeps this substrate free of circular
dependencies on :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Iterator, Optional, TypeVar

from ..errors import StorageError

EntryT = TypeVar("EntryT")


class UpdateLog(Generic[EntryT]):
    """An append-only log of transactions with a publication watermark.

    Args:
        key: Function extracting a stable identifier from an entry.  Defaults
            to ``getattr(entry, "txn_id")``.
    """

    def __init__(self, key: Optional[Callable[[EntryT], object]] = None) -> None:
        self._entries: list[EntryT] = []
        self._ids: set[object] = set()
        self._published_watermark = 0
        self._key = key or (lambda entry: getattr(entry, "txn_id"))

    # -- appending -----------------------------------------------------------
    def append(self, entry: EntryT) -> None:
        """Append a committed transaction to the log (ids must be unique)."""
        identifier = self._key(entry)
        if identifier in self._ids:
            raise StorageError(f"duplicate transaction id {identifier!r} in update log")
        self._entries.append(entry)
        self._ids.add(identifier)

    def extend(self, entries: Iterable[EntryT]) -> None:
        for entry in entries:
            self.append(entry)

    # -- reading ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[EntryT]:
        return iter(self._entries)

    def all_entries(self) -> list[EntryT]:
        return list(self._entries)

    def entry(self, identifier: object) -> EntryT:
        for candidate in self._entries:
            if self._key(candidate) == identifier:
                return candidate
        raise StorageError(f"no transaction with id {identifier!r} in update log")

    def contains(self, identifier: object) -> bool:
        return identifier in self._ids

    # -- publication ------------------------------------------------------------
    @property
    def published_count(self) -> int:
        return self._published_watermark

    def unpublished(self) -> list[EntryT]:
        """Entries appended since the last :meth:`mark_published` call."""
        return list(self._entries[self._published_watermark:])

    def mark_published(self, count: Optional[int] = None) -> int:
        """Advance the publication watermark.

        Args:
            count: Number of entries to mark as published; defaults to all
                currently unpublished entries.

        Returns:
            The new watermark position.
        """
        pending = len(self._entries) - self._published_watermark
        if count is None:
            count = pending
        if count < 0 or count > pending:
            raise StorageError(
                f"cannot mark {count} entries published; only {pending} are pending"
            )
        self._published_watermark += count
        return self._published_watermark

    def published(self) -> list[EntryT]:
        return list(self._entries[: self._published_watermark])
