"""The storage backend protocol shared by all peer-instance implementations."""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol, runtime_checkable


@runtime_checkable
class StorageBackend(Protocol):
    """Set-oriented relational storage for one peer's local instance.

    Tuples are plain Python tuples whose cells are scalars
    (str/int/float/bool/None) or labelled nulls
    (:class:`repro.datalog.ast.SkolemTerm`).  All operations have set
    semantics: inserting an existing tuple or deleting a missing one is a
    no-op reported through the boolean return value.
    """

    def create_relation(self, name: str, arity: int) -> None:
        """Declare a relation; idempotent if it already exists with the same arity."""
        ...

    def relations(self) -> set[str]:
        """Names of all declared relations."""
        ...

    def arity(self, name: str) -> int:
        """Arity of a declared relation."""
        ...

    def insert(self, relation: str, values: tuple) -> bool:
        """Insert a tuple; True when it was not already present."""
        ...

    def delete(self, relation: str, values: tuple) -> bool:
        """Delete a tuple; True when it was present."""
        ...

    def contains(self, relation: str, values: tuple) -> bool:
        """Membership test."""
        ...

    def scan(self, relation: str) -> Iterator[tuple]:
        """Iterate over all tuples of a relation."""
        ...

    def lookup(self, relation: str, position: int, value: object) -> frozenset[tuple]:
        """Tuples whose column ``position`` equals ``value``.

        Backends answer through a column index built on the first probe of
        a ``(relation, position)`` pair and maintained afterwards, instead
        of scanning the relation per call.  Backends that were never probed
        pay nothing.  Exposed to users via
        :meth:`repro.core.peer.Peer.tuples_matching`.
        """
        ...

    def count(self, relation: str | None = None) -> int:
        """Number of tuples in one relation, or in the whole instance."""
        ...

    def clear(self, relation: str | None = None) -> None:
        """Remove all tuples from one relation, or from every relation."""
        ...

    def insert_many(self, relation: str, rows: Iterable[tuple]) -> int:
        """Bulk insert; returns the number of tuples actually added.

        Backends with transactional writes batch the whole call into a
        single transaction (one commit regardless of row count).
        """
        ...

    def delete_many(self, relation: str, rows: Iterable[tuple]) -> int:
        """Bulk delete; returns the number of tuples actually removed.

        Same single-transaction contract as :meth:`insert_many`.
        """
        ...
