"""Relational storage substrate for peer instances.

Each CDSS peer owns a fully autonomous, editable local database instance.
The paper's implementation stores these in a commercial RDBMS; this package
provides two interchangeable backends behind one protocol:

* :class:`~repro.storage.memory.MemoryInstance` — an in-memory instance used
  by the simulators, tests and benchmarks, and
* :class:`~repro.storage.sqlite_backend.SQLiteInstance` — an embedded SQLite
  instance (stdlib ``sqlite3``) demonstrating durable storage with the same
  interface.

:mod:`repro.storage.update_log` persists the per-peer transaction log that
publication reads from.
"""

from .interface import StorageBackend
from .memory import MemoryInstance
from .sqlite_backend import SQLiteInstance
from .update_log import UpdateLog

__all__ = ["MemoryInstance", "SQLiteInstance", "StorageBackend", "UpdateLog"]
