"""In-memory peer instance storage."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..datalog.indexing import (
    ColumnIndexes,
    build_column_index,
    index_discard,
    index_insert,
)
from ..errors import StorageError, TupleArityError, UnknownRelationError


class MemoryInstance:
    """A peer's local instance held in memory as sets of tuples per relation.

    This is the backend used by the multi-peer simulations, tests and
    benchmarks; it implements :class:`repro.storage.interface.StorageBackend`.
    """

    def __init__(self) -> None:
        self._relations: dict[str, set[tuple]] = {}
        self._arities: dict[str, int] = {}
        #: relation -> position -> value -> set of tuples; built on the
        #: first lookup of a column and maintained by insert/delete.
        self._indexes: dict[str, ColumnIndexes] = {}

    # -- schema -----------------------------------------------------------
    def create_relation(self, name: str, arity: int) -> None:
        if arity < 0:
            raise StorageError(f"relation {name!r} cannot have negative arity")
        existing = self._arities.get(name)
        if existing is not None:
            if existing != arity:
                raise StorageError(
                    f"relation {name!r} already exists with arity {existing}, not {arity}"
                )
            return
        self._arities[name] = arity
        self._relations[name] = set()

    def relations(self) -> set[str]:
        return set(self._arities)

    def arity(self, name: str) -> int:
        try:
            return self._arities[name]
        except KeyError:
            raise UnknownRelationError(f"unknown relation {name!r}") from None

    def _check(self, relation: str, values: tuple) -> tuple:
        arity = self.arity(relation)
        values = tuple(values)
        if len(values) != arity:
            raise TupleArityError(
                f"relation {relation!r} has arity {arity}, got tuple of length {len(values)}"
            )
        return values

    # -- data --------------------------------------------------------------
    def insert(self, relation: str, values: tuple) -> bool:
        values = self._check(relation, values)
        rows = self._relations[relation]
        if values in rows:
            return False
        rows.add(values)
        positions = self._indexes.get(relation)
        if positions:
            index_insert(positions, values)
        return True

    def insert_many(self, relation: str, rows: Iterable[tuple]) -> int:
        added = 0
        for values in rows:
            if self.insert(relation, values):
                added += 1
        return added

    def delete_many(self, relation: str, rows: Iterable[tuple]) -> int:
        removed = 0
        for values in rows:
            if self.delete(relation, values):
                removed += 1
        return removed

    def delete(self, relation: str, values: tuple) -> bool:
        values = self._check(relation, values)
        rows = self._relations[relation]
        if values not in rows:
            return False
        rows.remove(values)
        positions = self._indexes.get(relation)
        if positions:
            index_discard(positions, values)
        return True

    def contains(self, relation: str, values: tuple) -> bool:
        values = self._check(relation, values)
        return values in self._relations[relation]

    def lookup(self, relation: str, position: int, value: object) -> frozenset[tuple]:
        arity = self.arity(relation)
        if not 0 <= position < arity:
            raise StorageError(
                f"relation {relation!r} has no column {position} (arity {arity})"
            )
        positions = self._indexes.setdefault(relation, {})
        buckets = positions.get(position)
        if buckets is None:
            buckets = build_column_index(self._relations[relation], position)
            positions[position] = buckets
        return frozenset(buckets.get(value, ()))

    def scan(self, relation: str) -> Iterator[tuple]:
        self.arity(relation)
        return iter(set(self._relations[relation]))

    def count(self, relation: str | None = None) -> int:
        if relation is not None:
            self.arity(relation)
            return len(self._relations[relation])
        return sum(len(rows) for rows in self._relations.values())

    def clear(self, relation: str | None = None) -> None:
        if relation is not None:
            self.arity(relation)
            self._relations[relation].clear()
            self._indexes.pop(relation, None)
            return
        for rows in self._relations.values():
            rows.clear()
        self._indexes.clear()

    # -- convenience ----------------------------------------------------------
    def snapshot(self) -> dict[str, frozenset[tuple]]:
        """An immutable snapshot of every relation (used for public snapshots)."""
        return {name: frozenset(rows) for name, rows in self._relations.items()}

    def load(self, data: Mapping[str, Iterable[tuple]]) -> None:
        """Bulk-load ``{relation: tuples}``; relations must already exist."""
        for relation, rows in data.items():
            self.insert_many(relation, rows)

    def copy(self) -> "MemoryInstance":
        clone = MemoryInstance()
        clone._arities = dict(self._arities)
        clone._relations = {name: set(rows) for name, rows in self._relations.items()}
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryInstance):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{name}[{len(rows)}]" for name, rows in sorted(self._relations.items())
        )
        return f"MemoryInstance({parts})"
