"""SQLite-backed peer instance storage.

The original ORCHESTRA stores peer instances in a relational DBMS.  This
backend provides the same :class:`~repro.storage.interface.StorageBackend`
protocol on top of the standard-library ``sqlite3`` module, including support
for labelled nulls (skolem terms), which are serialised with a type tag so
that round-tripping preserves their identity.
"""

from __future__ import annotations

import json
import re
import sqlite3
from typing import Iterable, Iterator

from ..datalog.ast import SkolemTerm
from ..errors import StorageError, TupleArityError, UnknownRelationError

#: Characters that can never appear in an identifier, even quoted: NUL is
#: rejected by SQLite itself and control characters only invite confusion.
_FORBIDDEN_RE = re.compile(r"[\x00-\x1f]")

#: Printable ASCII minus ``"`` and ``\`` — strings ``json.dumps`` emits
#: verbatim, eligible for the cell-encoding fast path.
_PLAIN_TEXT = re.compile(r'[ !#-\[\]-~]*\Z').match


def _quote_identifier(name: str) -> str:
    """Safely quote an arbitrary identifier for interpolation into SQL.

    Double-quoted identifiers may contain any character (embedded quotes are
    escaped by doubling), so relation names that are SQL reserved words
    (``order``, ``select``), contain hyphens/dots, or use non-ASCII letters
    (``Σ1.R``) all work.
    """
    return '"' + name.replace('"', '""') + '"'


def encode_cell(value: object) -> str:
    """Serialise one cell value (scalar or labelled null) to a JSON string.

    The encoding is *canonical* with respect to Python equality: two cell
    values compare equal in Python if and only if their encoded texts are
    byte-identical.  Python collapses ``1 == True == 1.0`` (sets and dict
    keys treat them as one value), so booleans and integral floats are
    canonicalised to plain ints before serialisation.  This is what lets the
    SQL pushdown executor (:mod:`repro.datalog.sql_executor`) join and
    compare encoded TEXT columns directly and reach exactly the fixpoint the
    Python executor reaches.

    The common scalar cases are assembled directly (the SQL executor encodes
    and decodes every cell crossing the SQLite boundary, and ``json.dumps``
    dominated its profile); the fast paths produce byte-identical output to
    the ``json.dumps`` slow path, which remains for skolems, floats, and
    strings needing escapes.
    """
    kind = type(value)
    if kind is int:
        return '{"v": %d}' % value
    if kind is str and _PLAIN_TEXT(value) is not None:
        return '{"v": "' + value + '"}'
    if kind is bool:
        return '{"v": 1}' if value else '{"v": 0}'
    if value is None:
        return '{"v": null}'
    return json.dumps(_encode(value), sort_keys=True)


def decode_cell(text: str) -> object:
    """Inverse of :func:`encode_cell` up to Python equality.

    Canonicalisation means round-tripping maps ``True -> 1`` and
    ``2.0 -> 2``; the result always compares equal (``==``, and hash-equal
    as a set member or dict key) to the original value.
    """
    # Fast paths mirroring encode_cell's: a '{"v": ...}' wrapper always
    # holds a scalar (skolems encode as a top-level object), so unescaped
    # strings and numbers can be sliced out without the JSON parser.
    if text.startswith('{"v": ') and text.endswith("}"):
        inner = text[6:-1]
        if inner.startswith('"'):
            if "\\" not in inner:
                return inner[1:-1]
        elif inner == "null":
            return None
        else:
            try:
                return int(inner)
            except ValueError:
                try:
                    return float(inner)
                except ValueError:
                    pass
    return _decode(json.loads(text))


def _encode(value: object) -> object:
    if isinstance(value, SkolemTerm):
        return {
            "__skolem__": value.function,
            "args": [_encode(argument) for argument in value.arguments],
        }
    # Canonicalise across Python's cross-type numeric equality so encoded
    # equality coincides with ``==``: bool is a subclass of int, and floats
    # with integral values equal their int counterparts.
    if isinstance(value, bool):
        return {"v": int(value)}
    if isinstance(value, float) and value.is_integer():
        return {"v": int(value)}
    if isinstance(value, (str, int, float)) or value is None:
        return {"v": value}
    raise StorageError(f"unsupported cell value of type {type(value).__name__}: {value!r}")


def _decode(payload: object) -> object:
    if isinstance(payload, dict) and "__skolem__" in payload:
        return SkolemTerm(
            payload["__skolem__"],
            tuple(_decode(argument) for argument in payload.get("args", [])),
        )
    if isinstance(payload, dict) and "v" in payload:
        return payload["v"]
    raise StorageError(f"cannot decode stored cell payload: {payload!r}")


class SQLiteInstance:
    """A peer instance stored in an SQLite database.

    Args:
        path: Database file path, or ``":memory:"`` (the default) for an
            ephemeral database.

    Each relation becomes one table with columns ``c0..c{n-1}`` (TEXT, holding
    tag-encoded cells) and a uniqueness constraint over the full row, giving
    the same set semantics as :class:`~repro.storage.memory.MemoryInstance`.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self._connection = sqlite3.connect(path)
        #: Transactions committed so far.  Bulk operations must stay O(1) in
        #: commits regardless of row count (the write-count regression test
        #: pins this down); per-row commit cost dominates bulk loads
        #: otherwise.
        self.commit_count = 0
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS _catalog (name TEXT PRIMARY KEY, arity INTEGER NOT NULL)"
        )
        self._commit()
        self._arities: dict[str, int] = {
            name: arity
            for name, arity in self._connection.execute("SELECT name, arity FROM _catalog")
        }
        #: casefolded name -> canonical name.  SQLite identifiers are
        #: ASCII-case-insensitive even when quoted, so two relations whose
        #: names differ only by case would silently share one table.
        self._names_by_fold: dict[str, str] = {
            name.casefold(): name for name in self._arities
        }
        #: ``(relation, position)`` pairs for which a column index exists.
        self._indexed_columns: set[tuple[str, int]] = set()

    # -- helpers -------------------------------------------------------------
    def _commit(self) -> None:
        self._connection.commit()
        self.commit_count += 1

    @staticmethod
    def _validate_name(name: str) -> str:
        if not isinstance(name, str) or not name:
            raise StorageError(f"invalid relation name {name!r}: must be a non-empty string")
        if _FORBIDDEN_RE.search(name):
            raise StorageError(
                f"invalid relation name {name!r}: control characters are not allowed"
            )
        return name

    @classmethod
    def _table(cls, name: str) -> str:
        # The ``rel_`` prefix plus quote-doubling makes the table name safe
        # for reserved words, hyphens, dots, and embedded quotes alike;
        # ``create_relation`` separately rejects names that differ only by
        # ASCII case, which SQLite's case-insensitive identifiers would
        # otherwise alias onto one table.
        return _quote_identifier("rel_" + cls._validate_name(name))

    def _check(self, relation: str, values: tuple) -> tuple:
        arity = self.arity(relation)
        values = tuple(values)
        if len(values) != arity:
            raise TupleArityError(
                f"relation {relation!r} has arity {arity}, got tuple of length {len(values)}"
            )
        return values

    # -- schema ----------------------------------------------------------------
    def create_relation(self, name: str, arity: int) -> None:
        if arity < 0:
            raise StorageError(f"relation {name!r} cannot have negative arity")
        existing = self._arities.get(name)
        if existing is not None:
            if existing != arity:
                raise StorageError(
                    f"relation {name!r} already exists with arity {existing}, not {arity}"
                )
            return
        collision = self._names_by_fold.get(name.casefold())
        if collision is not None and collision != name:
            # SQLite compares (even quoted) identifiers case-insensitively,
            # so this name would alias the other relation's table.
            raise StorageError(
                f"relation name {name!r} collides with existing relation "
                f"{collision!r}: SQLite identifiers are case-insensitive"
            )
        columns = ", ".join(f"c{i} TEXT NOT NULL" for i in range(arity)) or "c0 TEXT"
        unique = ", ".join(f"c{i}" for i in range(max(arity, 1)))
        self._connection.execute(
            f"CREATE TABLE IF NOT EXISTS {self._table(name)} ({columns}, UNIQUE ({unique}))"
        )
        self._connection.execute(
            "INSERT OR REPLACE INTO _catalog (name, arity) VALUES (?, ?)", (name, arity)
        )
        self._commit()
        self._arities[name] = arity
        self._names_by_fold[name.casefold()] = name

    def relations(self) -> set[str]:
        return set(self._arities)

    def arity(self, name: str) -> int:
        try:
            return self._arities[name]
        except KeyError:
            raise UnknownRelationError(f"unknown relation {name!r}") from None

    # -- data ---------------------------------------------------------------
    def insert(self, relation: str, values: tuple) -> bool:
        values = self._check(relation, values)
        arity = max(len(values), 1)
        encoded = [encode_cell(value) for value in values] or [encode_cell(None)]
        placeholders = ", ".join("?" for _ in range(arity))
        cursor = self._connection.execute(
            f"INSERT OR IGNORE INTO {self._table(relation)} VALUES ({placeholders})",
            encoded,
        )
        self._commit()
        return cursor.rowcount > 0

    def insert_many(self, relation: str, rows: Iterable[tuple]) -> int:
        """Bulk insert in a single transaction via ``executemany``.

        One statement and one commit regardless of batch size — the per-row
        commit of :meth:`insert` dominates bulk-load time otherwise.
        Returns the number of tuples actually added (duplicates are ignored).
        """
        encoded_rows = [
            [encode_cell(value) for value in self._check(relation, values)]
            or [encode_cell(None)]
            for values in rows
        ]
        if not encoded_rows:
            return 0
        placeholders = ", ".join("?" for _ in encoded_rows[0])
        cursor = self._connection.executemany(
            f"INSERT OR IGNORE INTO {self._table(relation)} VALUES ({placeholders})",
            encoded_rows,
        )
        self._commit()
        return cursor.rowcount

    def delete_many(self, relation: str, rows: Iterable[tuple]) -> int:
        """Bulk delete in a single transaction via ``executemany``.

        Returns the number of tuples actually removed (missing tuples are
        no-ops, matching :meth:`delete`).
        """
        encoded_rows = [
            [encode_cell(value) for value in self._check(relation, values)]
            or [encode_cell(None)]
            for values in rows
        ]
        if not encoded_rows:
            return 0
        condition = " AND ".join(f"c{i} = ?" for i in range(len(encoded_rows[0])))
        cursor = self._connection.executemany(
            f"DELETE FROM {self._table(relation)} WHERE {condition}", encoded_rows
        )
        self._commit()
        return cursor.rowcount

    def delete(self, relation: str, values: tuple) -> bool:
        values = self._check(relation, values)
        encoded = [encode_cell(value) for value in values] or [encode_cell(None)]
        condition = " AND ".join(f"c{i} = ?" for i in range(len(encoded)))
        cursor = self._connection.execute(
            f"DELETE FROM {self._table(relation)} WHERE {condition}", encoded
        )
        self._commit()
        return cursor.rowcount > 0

    def contains(self, relation: str, values: tuple) -> bool:
        values = self._check(relation, values)
        encoded = [encode_cell(value) for value in values] or [encode_cell(None)]
        condition = " AND ".join(f"c{i} = ?" for i in range(len(encoded)))
        cursor = self._connection.execute(
            f"SELECT 1 FROM {self._table(relation)} WHERE {condition} LIMIT 1", encoded
        )
        return cursor.fetchone() is not None

    def lookup(self, relation: str, position: int, value: object) -> frozenset[tuple]:
        """Tuples whose column ``position`` equals ``value``, via a column index.

        The first probe of a ``(relation, position)`` pair creates a
        persistent SQL index on that column, so repeated point probes stop
        full-scanning the table the way :meth:`scan` does.  Relations that
        are never probed get no index.
        """
        arity = self.arity(relation)
        if not 0 <= position < arity:
            raise StorageError(
                f"relation {relation!r} has no column {position} (arity {arity})"
            )
        key = (relation, position)
        if key not in self._indexed_columns:
            index_name = _quote_identifier(f"idx_{relation}_c{position}")
            self._connection.execute(
                f"CREATE INDEX IF NOT EXISTS {index_name} "
                f"ON {self._table(relation)} (c{position})"
            )
            self._commit()
            self._indexed_columns.add(key)
        cursor = self._connection.execute(
            f"SELECT * FROM {self._table(relation)} WHERE c{position} = ?",
            (encode_cell(value),),
        )
        return frozenset(
            tuple(decode_cell(cell) for cell in row[:arity]) for row in cursor
        )

    def scan(self, relation: str) -> Iterator[tuple]:
        arity = self.arity(relation)
        cursor = self._connection.execute(f"SELECT * FROM {self._table(relation)}")
        for row in cursor:
            if arity == 0:
                yield ()
            else:
                yield tuple(decode_cell(cell) for cell in row[:arity])

    def count(self, relation: str | None = None) -> int:
        if relation is not None:
            self.arity(relation)
            cursor = self._connection.execute(
                f"SELECT COUNT(*) FROM {self._table(relation)}"
            )
            return int(cursor.fetchone()[0])
        return sum(self.count(name) for name in self._arities)

    def clear(self, relation: str | None = None) -> None:
        if relation is not None:
            self.arity(relation)
            self._connection.execute(f"DELETE FROM {self._table(relation)}")
        else:
            for name in self._arities:
                self._connection.execute(f"DELETE FROM {self._table(name)}")
        self._commit()

    # -- lifecycle ----------------------------------------------------------
    def snapshot(self) -> dict[str, frozenset[tuple]]:
        """An immutable snapshot of every relation."""
        return {name: frozenset(self.scan(name)) for name in self._arities}

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "SQLiteInstance":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{name}[{self.count(name)}]" for name in sorted(self._arities))
        return f"SQLiteInstance({parts})"
