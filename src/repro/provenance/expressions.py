"""Compact provenance expression DAGs.

Provenance polynomials can grow exponentially when derivations share
sub-derivations.  ORCHESTRA therefore stores provenance as a graph/DAG and
only expands to polynomials on demand.  :class:`ProvenanceExpression` is the
in-memory DAG node: a variable, 0, 1, a sum, or a product.  Sub-expressions
are shared by reference, so a tuple derived in many ways through a common
sub-tuple stays small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import ProvenanceError
from .polynomial import Polynomial


@dataclass(frozen=True)
class ProvenanceExpression:
    """An immutable provenance expression node.

    ``kind`` is one of ``"zero"``, ``"one"``, ``"var"``, ``"plus"`` or
    ``"times"``.  For ``"var"`` nodes, ``name`` holds the provenance variable;
    for ``"plus"``/``"times"`` nodes, ``children`` holds the operands.
    """

    kind: str
    name: str | None = None
    children: tuple["ProvenanceExpression", ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in {"zero", "one", "var", "plus", "times"}:
            raise ProvenanceError(f"unknown provenance expression kind {self.kind!r}")
        if self.kind == "var" and not self.name:
            raise ProvenanceError("variable expressions require a name")
        if self.kind in {"plus", "times"} and not self.children:
            raise ProvenanceError(f"{self.kind} expressions require children")

    # -- structure ----------------------------------------------------------
    def variables(self) -> set[str]:
        """Every provenance variable reachable from this node."""
        if self.kind == "var":
            return {self.name or ""}
        found: set[str] = set()
        for child in self.children:
            found.update(child.variables())
        return found

    def size(self) -> int:
        """Number of nodes in the expression tree (counting shared nodes once per path)."""
        if self.kind in {"zero", "one", "var"}:
            return 1
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        if self.kind in {"zero", "one", "var"}:
            return 1
        return 1 + max(child.depth() for child in self.children)

    # -- conversion -----------------------------------------------------------
    def to_polynomial(self) -> Polynomial:
        """Expand the expression into a provenance polynomial."""
        if self.kind == "zero":
            return Polynomial.zero()
        if self.kind == "one":
            return Polynomial.one()
        if self.kind == "var":
            return Polynomial.variable(self.name or "")
        if self.kind == "plus":
            total = Polynomial.zero()
            for child in self.children:
                total = total + child.to_polynomial()
            return total
        product = Polynomial.one()
        for child in self.children:
            product = product * child.to_polynomial()
        return product

    def evaluate(self, semiring, assignment: Mapping[str, object]):
        """Evaluate the expression under an assignment into ``semiring``."""
        if self.kind == "zero":
            return semiring.zero()
        if self.kind == "one":
            return semiring.one()
        if self.kind == "var":
            if self.name not in assignment:
                raise ProvenanceError(f"unassigned provenance variable {self.name!r}")
            return assignment[self.name]
        if self.kind == "plus":
            total = semiring.zero()
            for child in self.children:
                total = semiring.plus(total, child.evaluate(semiring, assignment))
            return total
        product = semiring.one()
        for child in self.children:
            product = semiring.times(product, child.evaluate(semiring, assignment))
        return product

    def simplified(self) -> "ProvenanceExpression":
        """Apply identity/absorption laws (0+x=x, 1*x=x, 0*x=0) recursively."""
        if self.kind in {"zero", "one", "var"}:
            return self
        children = [child.simplified() for child in self.children]
        if self.kind == "plus":
            kept = [child for child in children if child.kind != "zero"]
            if not kept:
                return prov_zero()
            if len(kept) == 1:
                return kept[0]
            return ProvenanceExpression("plus", children=tuple(kept))
        # times
        if any(child.kind == "zero" for child in children):
            return prov_zero()
        kept = [child for child in children if child.kind != "one"]
        if not kept:
            return prov_one()
        if len(kept) == 1:
            return kept[0]
        return ProvenanceExpression("times", children=tuple(kept))

    def __str__(self) -> str:
        if self.kind == "zero":
            return "0"
        if self.kind == "one":
            return "1"
        if self.kind == "var":
            return self.name or ""
        symbol = " + " if self.kind == "plus" else " * "
        return "(" + symbol.join(str(child) for child in self.children) + ")"


def prov_zero() -> ProvenanceExpression:
    """The absent-tuple annotation."""
    return ProvenanceExpression("zero")


def prov_one() -> ProvenanceExpression:
    """The unconditionally-present annotation."""
    return ProvenanceExpression("one")


def prov_var(name: str) -> ProvenanceExpression:
    """A provenance variable (a base tuple or mapping-rule identifier)."""
    return ProvenanceExpression("var", name=name)


def prov_plus(children: Iterable[ProvenanceExpression]) -> ProvenanceExpression:
    """Sum of alternative derivations (n-ary, flattening nested sums)."""
    flattened: list[ProvenanceExpression] = []
    for child in children:
        if child.kind == "plus":
            flattened.extend(child.children)
        elif child.kind != "zero":
            flattened.append(child)
    if not flattened:
        return prov_zero()
    if len(flattened) == 1:
        return flattened[0]
    return ProvenanceExpression("plus", children=tuple(flattened))


def prov_times(children: Iterable[ProvenanceExpression]) -> ProvenanceExpression:
    """Product of jointly used inputs (n-ary, flattening nested products)."""
    flattened: list[ProvenanceExpression] = []
    for child in children:
        if child.kind == "zero":
            return prov_zero()
        if child.kind == "times":
            flattened.extend(child.children)
        elif child.kind != "one":
            flattened.append(child)
    if not flattened:
        return prov_one()
    if len(flattened) == 1:
        return flattened[0]
    return ProvenanceExpression("times", children=tuple(flattened))
