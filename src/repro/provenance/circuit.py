"""Hash-consed provenance circuits (shared DAG store).

ORCHESTRA stores one universal ``N[X]`` provenance and re-evaluates it under
many trust semirings.  Materialising that provenance as fully expanded
polynomials is combinatorial: monomial counts multiply along join/split
mapping chains, and every trust question re-walks the expansion.  This module
stores provenance as a *hash-consed circuit* instead:

* A :class:`CircuitStore` interns sum/product/variable nodes by structural
  identity, so a sub-derivation shared by many tuples (or by many epochs and
  replicas feeding the same store) is stored exactly once and is identified
  by a single integer node id.
* Because ``+`` and ``*`` are commutative and associative in every
  commutative semiring, operands are flattened and canonically sorted before
  interning — two circuits denoting the same polynomial through different
  construction orders intern to the same node.
* A :class:`CircuitEvaluator` evaluates nodes into a target semiring with a
  per-(semiring, assignment) memo table.  Nodes are immutable, so memo
  entries never need invalidation: deleting base data changes which root a
  tuple points at, never the meaning of an existing node.

Polynomial expansion (:meth:`CircuitStore.to_polynomial`) is kept as a lazy,
budget-bounded view used by oracles and display code.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..errors import ProvenanceError
from .expressions import ProvenanceExpression, prov_one, prov_var, prov_zero
from .polynomial import Polynomial

#: Reserved node ids for the additive and multiplicative identities.
ZERO = 0
ONE = 1

#: Node kinds (stored per node id).
KIND_ZERO = "0"
KIND_ONE = "1"
KIND_VAR = "v"
KIND_SUM = "+"
KIND_PROD = "*"


def _check_budget(monomials: int, max_monomials: Optional[int]) -> None:
    """Raise when an expansion (or the fold about to run) exceeds the budget."""
    if max_monomials is not None and monomials > max_monomials:
        raise ProvenanceError(
            f"polynomial expansion exceeded the budget of {max_monomials} "
            f"monomials (needed up to {monomials}); evaluate the circuit "
            "directly or raise max_monomials"
        )


class CircuitStore:
    """An append-only store of hash-consed provenance circuit nodes.

    Node ids are dense integers; ids ``ZERO`` and ``ONE`` are pre-interned.
    Construction goes through :meth:`var`, :meth:`sum_of` and
    :meth:`product_of`, which apply the semiring identity laws (``0 + x =
    x``, ``1 * x = x``, ``0 * x = 0``), flatten nested sums/products, and
    canonically sort operands (keeping duplicates: ``x + x`` denotes ``2x``
    and ``x * x`` denotes ``x^2``) before interning.
    """

    __slots__ = ("_kinds", "_payloads", "_intern")

    def __init__(self) -> None:
        self._kinds: list[str] = [KIND_ZERO, KIND_ONE]
        self._payloads: list = [None, None]
        self._intern: dict[tuple, int] = {}

    # -- construction -----------------------------------------------------
    def _intern_node(self, kind: str, payload) -> int:
        key = (kind, payload)
        node = self._intern.get(key)
        if node is None:
            node = len(self._kinds)
            self._kinds.append(kind)
            self._payloads.append(payload)
            self._intern[key] = node
        return node

    def var(self, name: str) -> int:
        """Intern a provenance variable (a base tuple or mapping identifier)."""
        if not name:
            raise ProvenanceError("provenance variables require a non-empty name")
        return self._intern_node(KIND_VAR, name)

    def sum_of(self, operands: Iterable[int]) -> int:
        """Intern the sum of alternative derivations (flattening nested sums)."""
        flattened: list[int] = []
        for operand in operands:
            if operand == ZERO:
                continue
            if self._kinds[operand] == KIND_SUM:
                flattened.extend(self._payloads[operand])
            else:
                flattened.append(operand)
        if not flattened:
            return ZERO
        if len(flattened) == 1:
            return flattened[0]
        flattened.sort()
        return self._intern_node(KIND_SUM, tuple(flattened))

    def product_of(self, operands: Iterable[int]) -> int:
        """Intern the product of jointly used inputs (flattening, absorbing 0)."""
        flattened: list[int] = []
        for operand in operands:
            if operand == ZERO:
                return ZERO
            if operand == ONE:
                continue
            if self._kinds[operand] == KIND_PROD:
                flattened.extend(self._payloads[operand])
            else:
                flattened.append(operand)
        if not flattened:
            return ONE
        if len(flattened) == 1:
            return flattened[0]
        flattened.sort()
        return self._intern_node(KIND_PROD, tuple(flattened))

    # -- inspection --------------------------------------------------------
    def kind(self, node: int) -> str:
        return self._kinds[node]

    def children(self, node: int) -> tuple[int, ...]:
        if self._kinds[node] in (KIND_SUM, KIND_PROD):
            return self._payloads[node]
        return ()

    def variable_name(self, node: int) -> str:
        if self._kinds[node] != KIND_VAR:
            raise ProvenanceError(f"node {node} is not a variable node")
        return self._payloads[node]

    def node_count(self) -> int:
        """Total interned nodes (including the two constants)."""
        return len(self._kinds)

    def edge_count(self) -> int:
        """Total child edges across every interned node."""
        return sum(
            len(payload)
            for kind, payload in zip(self._kinds, self._payloads)
            if kind in (KIND_SUM, KIND_PROD)
        )

    def __len__(self) -> int:
        return len(self._kinds)

    def reachable_size(self, roots: Iterable[int]) -> tuple[int, int]:
        """``(nodes, edges)`` of the sub-DAG reachable from ``roots``."""
        seen: set[int] = set()
        edges = 0
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            kids = self.children(node)
            edges += len(kids)
            stack.extend(kids)
        return (len(seen), edges)

    def variables(self, node: int) -> set[str]:
        """Every provenance variable reachable from ``node``."""
        found: set[str] = set()
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            kind = self._kinds[current]
            if kind == KIND_VAR:
                found.add(self._payloads[current])
            else:
                stack.extend(self.children(current))
        return found

    # -- lazy expanded views ------------------------------------------------
    def to_polynomial(self, node: int, max_monomials: Optional[int] = None) -> Polynomial:
        """Expand a circuit node into an ``N[X]`` polynomial.

        ``max_monomials`` bounds the monomial count of every intermediate
        (and therefore the final) polynomial; exceeding the budget raises
        :class:`ProvenanceError`.  Bounds are checked *before* each fold
        against the worst-case size of its result, so a combinatorial
        product raises instead of materialising first (conservatively: a
        product whose terms would have merged back under the budget is
        rejected too).  Expansion is memoized per call, so shared
        sub-circuits are expanded once.
        """
        memo: dict[int, Polynomial] = {}
        stack = [node]
        while stack:
            current = stack[-1]
            if current in memo:
                stack.pop()
                continue
            kind = self._kinds[current]
            if kind == KIND_ZERO:
                memo[current] = Polynomial.zero()
            elif kind == KIND_ONE:
                memo[current] = Polynomial.one()
            elif kind == KIND_VAR:
                memo[current] = Polynomial.variable(self._payloads[current])
            else:
                pending = [c for c in self._payloads[current] if c not in memo]
                if pending:
                    stack.extend(pending)
                    continue
                if kind == KIND_SUM:
                    result = Polynomial.zero()
                    for child in self._payloads[current]:
                        # Pre-check the (upper bound on the) fold size so a
                        # blowup raises before the work is done, not after.
                        _check_budget(
                            result.monomial_count() + memo[child].monomial_count(),
                            max_monomials,
                        )
                        result = result + memo[child]
                else:
                    result = Polynomial.one()
                    for child in self._payloads[current]:
                        _check_budget(
                            result.monomial_count() * memo[child].monomial_count(),
                            max_monomials,
                        )
                        result = result * memo[child]
                _check_budget(result.monomial_count(), max_monomials)
                memo[current] = result
            stack.pop()
        expanded = memo[node]
        # Leaf roots (variables, constants) skip the per-node check above.
        _check_budget(expanded.monomial_count(), max_monomials)
        return expanded

    def to_expression(self, node: int) -> ProvenanceExpression:
        """Convert a circuit node into a :class:`ProvenanceExpression` DAG."""
        memo: dict[int, ProvenanceExpression] = {}
        stack = [node]
        while stack:
            current = stack[-1]
            if current in memo:
                stack.pop()
                continue
            kind = self._kinds[current]
            if kind == KIND_ZERO:
                memo[current] = prov_zero()
            elif kind == KIND_ONE:
                memo[current] = prov_one()
            elif kind == KIND_VAR:
                memo[current] = prov_var(self._payloads[current])
            else:
                pending = [c for c in self._payloads[current] if c not in memo]
                if pending:
                    stack.extend(pending)
                    continue
                memo[current] = ProvenanceExpression(
                    "plus" if kind == KIND_SUM else "times",
                    children=tuple(memo[c] for c in self._payloads[current]),
                )
            stack.pop()
        return memo[node]

    def describe(self, node: int) -> str:
        """Render a node as a (possibly exponentially smaller) nested term."""
        kind = self._kinds[node]
        if kind == KIND_ZERO:
            return "0"
        if kind == KIND_ONE:
            return "1"
        if kind == KIND_VAR:
            return self._payloads[node]
        symbol = " + " if kind == KIND_SUM else " * "
        return "(" + symbol.join(self.describe(c) for c in self._payloads[node]) + ")"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitStore(nodes={self.node_count()}, edges={self.edge_count()})"


class MembershipAssignment:
    """An assignment that answers variable lookups by set membership.

    Used for boolean trust questions: base-tuple variables map to membership
    in the trusted set, while mapping-rule variables (which carry no trust of
    their own) always map to ``True``.  The instance is hashable through
    :attr:`cache_key`, so evaluators built from the same trusted set share
    one memo table.
    """

    __slots__ = ("_trusted", "_rule_variables")

    def __init__(self, trusted: Iterable[str], rule_variables: Optional[set] = None) -> None:
        self._trusted = frozenset(trusted)
        #: Live reference: the graph's rule-variable set may grow later.
        self._rule_variables = rule_variables if rule_variables is not None else frozenset()

    @property
    def cache_key(self) -> tuple:
        # The rule-variable view participates: two assignments with the same
        # trusted set but different rule-variable treatment must not share a
        # memoized evaluator.  Snapshot the (live) set — if the graph later
        # registers new rule variables the key changes, which only costs a
        # fresh evaluator, never a stale answer.
        return ("membership", self._trusted, frozenset(self._rule_variables))

    def get(self, name: str, default=None):
        if name in self._rule_variables:
            return True
        return name in self._trusted

    def __getitem__(self, name: str):
        return self.get(name)


class CircuitEvaluator:
    """Memoized evaluation of circuit nodes into one target semiring.

    The memo table maps node id to semiring value; because nodes are
    immutable and hash-consed, entries stay valid for the lifetime of the
    store — re-evaluating after an insertion or deletion only computes the
    (few) nodes that were newly created.
    """

    __slots__ = ("_store", "_semiring", "_assignment", "_default", "_memo",
                 "hits", "lookups")

    def __init__(
        self,
        store: CircuitStore,
        semiring,
        assignment: Optional[Mapping[str, object]] = None,
        default: Optional[object] = None,
    ) -> None:
        self._store = store
        self._semiring = semiring
        # Snapshot plain mappings: cached evaluators outlive the call, and a
        # caller mutating its dict afterwards must not corrupt memoized (or
        # future) lookups.  MembershipAssignment is kept by reference — its
        # trusted set is frozen and its rule-variable view is meant to be live.
        if assignment is None:
            self._assignment: Mapping[str, object] = {}
        elif isinstance(assignment, MembershipAssignment):
            self._assignment = assignment
        else:
            self._assignment = dict(assignment)
        self._default = semiring.one() if default is None else default
        self._memo: dict[int, object] = {
            ZERO: semiring.zero(),
            ONE: semiring.one(),
        }
        #: Root-level memo telemetry: how many :meth:`value` calls were
        #: answered straight from the memo table.  Mirrored into the
        #: ``provenance.circuit.memo_*`` metrics by the provenance graph.
        self.hits = 0
        self.lookups = 0

    @property
    def semiring(self):
        return self._semiring

    def memo_size(self) -> int:
        return len(self._memo)

    def cache_stats(self) -> dict[str, int]:
        """Root-level memo telemetry (hits / lookups / table size)."""
        return {"hits": self.hits, "lookups": self.lookups, "size": len(self._memo)}

    def value(self, node: int):
        """The semiring value of ``node`` under this evaluator's assignment."""
        memo = self._memo
        self.lookups += 1
        cached = memo.get(node)
        if cached is not None or node in memo:
            self.hits += 1
            return cached
        store = self._store
        semiring = self._semiring
        assignment = self._assignment
        default = self._default
        kinds = store._kinds
        payloads = store._payloads
        stack = [node]
        while stack:
            current = stack[-1]
            if current in memo:
                stack.pop()
                continue
            kind = kinds[current]
            if kind == KIND_VAR:
                memo[current] = assignment.get(payloads[current], default)
                stack.pop()
                continue
            children = payloads[current]
            pending = [c for c in children if c not in memo]
            if pending:
                stack.extend(pending)
                continue
            if kind == KIND_SUM:
                result = semiring.zero()
                for child in children:
                    result = semiring.plus(result, memo[child])
            else:
                result = semiring.one()
                for child in children:
                    result = semiring.times(result, memo[child])
            memo[current] = result
            stack.pop()
        return memo[node]

    def values(self, nodes: Iterable[int]) -> list:
        return [self.value(node) for node in nodes]
