"""Evaluating provenance under semiring homomorphisms.

The central theorem of the provenance-semirings paper is that ``N[X]`` is the
free (universal) commutative semiring on ``X``: any assignment ``X -> K`` into
a commutative semiring ``K`` extends uniquely to a homomorphism
``N[X] -> K``.  ORCHESTRA stores provenance once (as polynomials, expression
DAGs or a provenance graph) and answers many different trust questions by
choosing different target semirings and assignments:

* boolean semiring, trusted base tuples assigned ``True`` — "is the tuple
  derivable from data I trust?",
* tropical semiring, each peer's data assigned a cost — "what is the cheapest
  chain of mappings that produced this tuple?",
* security semiring, each source assigned a clearance — "what clearance is
  needed to see this tuple?".
"""

from __future__ import annotations

from typing import Mapping, Optional

from .circuit import CircuitEvaluator, CircuitStore
from .expressions import ProvenanceExpression
from .graph import ProvenanceGraph, TupleKey
from .polynomial import Polynomial


def evaluate_polynomial(
    polynomial: Polynomial, semiring, assignment: Mapping[str, object]
):
    """Evaluate ``polynomial`` in ``semiring`` under ``assignment``."""
    return polynomial.evaluate(semiring, assignment)


def evaluate_expression(
    expression: ProvenanceExpression, semiring, assignment: Mapping[str, object]
):
    """Evaluate a provenance expression DAG in ``semiring`` under ``assignment``."""
    return expression.evaluate(semiring, assignment)


def evaluate_circuit(
    store: CircuitStore,
    node: int,
    semiring,
    assignment: Mapping[str, object],
    default: Optional[object] = None,
):
    """Evaluate one hash-consed circuit node in ``semiring``.

    For repeated questions over the same assignment prefer keeping a
    :class:`CircuitEvaluator` (or use :meth:`ProvenanceGraph.evaluator`),
    whose memo table persists across calls.
    """
    return CircuitEvaluator(store, semiring, assignment, default).value(node)


def evaluate_graph(
    graph: ProvenanceGraph,
    semiring,
    assignment: Mapping[str, object],
    default: Optional[object] = None,
) -> dict[TupleKey, object]:
    """Evaluate every tuple of a provenance graph in ``semiring``.

    A thin wrapper over :meth:`ProvenanceGraph.evaluate` kept here so the
    provenance representations (polynomials, expressions, circuits, graphs)
    share one entry point.  Evaluation runs over the graph's memoized
    hash-consed circuit; shared sub-derivations are computed once.
    """
    return graph.evaluate(semiring, assignment, default=default)


def specialize_assignment(
    variables_by_peer: Mapping[str, str], values_by_peer: Mapping[str, object], default
) -> dict[str, object]:
    """Build a variable assignment from per-peer values.

    Args:
        variables_by_peer: Maps each provenance variable to the peer that
            contributed the corresponding base tuple.
        values_by_peer: The semiring value assigned to each peer (for example
            a trust cost or a clearance level).
        default: Value used for peers absent from ``values_by_peer``.

    Returns:
        An assignment suitable for the ``evaluate_*`` functions.
    """
    return {
        variable: values_by_peer.get(peer, default)
        for variable, peer in variables_by_peer.items()
    }
