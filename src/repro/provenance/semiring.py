"""Commutative semirings used as provenance annotation domains.

A commutative semiring ``(K, +, *, 0, 1)`` satisfies:

* ``(K, +, 0)`` is a commutative monoid,
* ``(K, *, 1)`` is a commutative monoid,
* ``*`` distributes over ``+``, and
* ``0`` is absorbing for ``*``.

The PODS 2007 paper shows that annotating base tuples with semiring values
and combining them with ``*`` for joint use (joins) and ``+`` for alternative
use (unions/projections) captures, as special cases: set semantics (boolean
semiring), bag semantics (counting semiring), probabilistic event lineage,
minimum-cost/tropical reasoning, access-control/security clearances,
why-provenance and full provenance polynomials.  ORCHESTRA's trust conditions
are evaluated by mapping provenance into one of these semirings.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Generic, Iterable, Protocol, TypeVar

from ..errors import SemiringError

K = TypeVar("K")


class Semiring(Protocol[K]):
    """The protocol every annotation domain implements."""

    name: str

    def zero(self) -> K:
        """The additive identity (annotation of absent tuples)."""
        ...

    def one(self) -> K:
        """The multiplicative identity (annotation of unconditionally present tuples)."""
        ...

    def plus(self, left: K, right: K) -> K:
        """Combine annotations of alternative derivations."""
        ...

    def times(self, left: K, right: K) -> K:
        """Combine annotations of jointly used tuples."""
        ...

    def is_zero(self, value: K) -> bool:
        """True when ``value`` equals the additive identity."""
        ...


class _BaseSemiring(Generic[K]):
    """Shared helpers for the concrete semirings below."""

    name = "semiring"

    def is_zero(self, value: K) -> bool:
        return value == self.zero()

    def sum(self, values: Iterable[K]) -> K:
        result = self.zero()
        for value in values:
            result = self.plus(result, value)
        return result

    def product(self, values: Iterable[K]) -> K:
        result = self.one()
        for value in values:
            result = self.times(result, value)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class BooleanSemiring(_BaseSemiring[bool]):
    """Set semantics: a tuple is either present (True) or absent (False)."""

    name = "boolean"

    def zero(self) -> bool:
        return False

    def one(self) -> bool:
        return True

    def plus(self, left: bool, right: bool) -> bool:
        return bool(left or right)

    def times(self, left: bool, right: bool) -> bool:
        return bool(left and right)


class CountingSemiring(_BaseSemiring[int]):
    """Bag semantics: annotations count the number of derivations."""

    name = "counting"

    def zero(self) -> int:
        return 0

    def one(self) -> int:
        return 1

    def plus(self, left: int, right: int) -> int:
        return left + right

    def times(self, left: int, right: int) -> int:
        return left * right


class TropicalSemiring(_BaseSemiring[float]):
    """Minimum-cost semantics: ``+`` is min, ``*`` is addition of costs.

    Useful for "cheapest derivation" trust policies where each source peer is
    assigned a cost and a tuple's trustworthiness is the cost of its cheapest
    derivation.
    """

    name = "tropical"

    def zero(self) -> float:
        return float("inf")

    def one(self) -> float:
        return 0.0

    def plus(self, left: float, right: float) -> float:
        return min(left, right)

    def times(self, left: float, right: float) -> float:
        return left + right


class FuzzySemiring(_BaseSemiring[float]):
    """Fuzzy/confidence semantics over [0, 1]: ``+`` is max, ``*`` is min."""

    name = "fuzzy"

    def zero(self) -> float:
        return 0.0

    def one(self) -> float:
        return 1.0

    def plus(self, left: float, right: float) -> float:
        self._check(left)
        self._check(right)
        return max(left, right)

    def times(self, left: float, right: float) -> float:
        self._check(left)
        self._check(right)
        return min(left, right)

    @staticmethod
    def _check(value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise SemiringError(f"fuzzy semiring values must lie in [0, 1], got {value}")


class TrustLevel(IntEnum):
    """Clearance levels of the access-control (security) semiring.

    Smaller is more permissive.  ``ALWAYS`` plays the role of 1 (publicly
    derivable) and ``NEVER`` the role of 0 (not derivable at any clearance).
    """

    ALWAYS = 0
    PUBLIC = 1
    CONFIDENTIAL = 2
    SECRET = 3
    TOP_SECRET = 4
    NEVER = 5


class SecuritySemiring(_BaseSemiring[TrustLevel]):
    """Access-control semantics: ``+`` is min (most permissive alternative),
    ``*`` is max (most restrictive requirement)."""

    name = "security"

    def zero(self) -> TrustLevel:
        return TrustLevel.NEVER

    def one(self) -> TrustLevel:
        return TrustLevel.ALWAYS

    def plus(self, left: TrustLevel, right: TrustLevel) -> TrustLevel:
        return TrustLevel(min(int(left), int(right)))

    def times(self, left: TrustLevel, right: TrustLevel) -> TrustLevel:
        return TrustLevel(max(int(left), int(right)))


class LineageSemiring(_BaseSemiring):
    """Lineage: the set of all base tuples contributing to a derivation.

    Following the PODS'07 definition, the domain is ``P(X) ∪ {⊥}`` where the
    bottom element ``⊥`` (represented as ``None``) annotates absent tuples,
    the empty set is the multiplicative identity, and both ``+`` and ``*``
    otherwise take unions.
    """

    name = "lineage"

    def zero(self) -> None:
        return None

    def one(self) -> frozenset:
        return frozenset()

    def plus(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return frozenset(left) | frozenset(right)

    def times(self, left, right):
        if left is None or right is None:
            return None
        return frozenset(left) | frozenset(right)

    def is_zero(self, value) -> bool:
        return value is None


class WhySemiring(_BaseSemiring[frozenset]):
    """Why-provenance: sets of witness sets (each witness is a set of base tuples)."""

    name = "why"

    def zero(self) -> frozenset:
        return frozenset()

    def one(self) -> frozenset:
        return frozenset({frozenset()})

    def plus(self, left: frozenset, right: frozenset) -> frozenset:
        return frozenset(left) | frozenset(right)

    def times(self, left: frozenset, right: frozenset) -> frozenset:
        return frozenset(
            frozenset(a) | frozenset(b) for a in left for b in right
        )


class PolynomialSemiring(_BaseSemiring["Polynomial"]):
    """The semiring of provenance polynomials ``N[X]`` (the universal one).

    Implemented in :mod:`repro.provenance.polynomial`; this wrapper lets
    polynomial-valued annotations be used anywhere a semiring is expected.
    """

    name = "polynomial"

    def zero(self):
        from .polynomial import Polynomial

        return Polynomial.zero()

    def one(self):
        from .polynomial import Polynomial

        return Polynomial.one()

    def plus(self, left, right):
        return left + right

    def times(self, left, right):
        return left * right

    def is_zero(self, value) -> bool:
        return value.is_zero()


@dataclass(frozen=True)
class NamedSemiringValue:
    """A helper pairing a semiring with one of its values, for reporting."""

    semiring_name: str
    value: object


def standard_semirings() -> dict[str, _BaseSemiring]:
    """Return the catalogue of built-in semirings keyed by name."""
    instances: list[_BaseSemiring] = [
        BooleanSemiring(),
        CountingSemiring(),
        TropicalSemiring(),
        FuzzySemiring(),
        SecuritySemiring(),
        LineageSemiring(),
        WhySemiring(),
        PolynomialSemiring(),
    ]
    return {semiring.name: semiring for semiring in instances}
