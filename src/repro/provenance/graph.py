"""The update-exchange provenance graph.

During update exchange ORCHESTRA does not materialise provenance polynomials
for every derived tuple; it maintains a *provenance graph* whose nodes are
tuples and whose hyper-edges are mapping-rule firings connecting the source
tuples of a firing to the tuple it derives.  The graph supports:

* lazily expanding a tuple's provenance into an expression or polynomial,
* evaluating a tuple's annotation in any commutative semiring by a least
  fixpoint computation (needed because peer mapping graphs may be cyclic,
  e.g. the Figure-2 network maps Σ1 → Σ2 → Σ1), and
* deletion propagation: after removing base tuples, finding which derived
  tuples have lost all their support.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Optional

from ..errors import ProvenanceError
from .expressions import ProvenanceExpression, prov_plus, prov_times, prov_var, prov_zero
from .polynomial import Polynomial
from .semiring import BooleanSemiring

#: A tuple node is identified by its relation name and its ground values.
TupleKey = tuple[str, tuple]


@dataclass(frozen=True)
class TupleNode:
    """A node of the provenance graph: one tuple of one relation."""

    relation: str
    values: tuple
    is_base: bool
    variable: Optional[str] = None

    @property
    def key(self) -> TupleKey:
        return (self.relation, self.values)


@dataclass(frozen=True)
class DerivationNode:
    """One firing of a mapping rule: sources jointly derive the target tuple."""

    mapping_id: str
    target: TupleKey
    sources: tuple[TupleKey, ...]
    rule_variable: Optional[str] = None

    @property
    def key(self) -> tuple:
        return (self.mapping_id, self.target, self.sources)


class ProvenanceGraph:
    """A mutable provenance graph for one peer's (or the whole system's) data."""

    def __init__(self, annotate_mappings: bool = False) -> None:
        self._tuples: dict[TupleKey, TupleNode] = {}
        self._derivations: dict[tuple, DerivationNode] = {}
        self._derivations_by_target: dict[TupleKey, list[DerivationNode]] = defaultdict(list)
        self._derivations_by_source: dict[TupleKey, list[DerivationNode]] = defaultdict(list)
        self._annotate_mappings = annotate_mappings

    # -- construction -----------------------------------------------------
    def add_base_tuple(
        self, relation: str, values: tuple, variable: Optional[str] = None
    ) -> TupleNode:
        """Register a base (peer-inserted) tuple and give it a provenance variable."""
        key = (relation, tuple(values))
        existing = self._tuples.get(key)
        if existing is not None:
            if existing.is_base:
                return existing
            # A tuple previously known only as derived is now also asserted as
            # base data: promote it, keeping its derivations.
            promoted = TupleNode(
                relation, key[1], is_base=True, variable=variable or self._fresh_variable(key)
            )
            self._tuples[key] = promoted
            return promoted
        node = TupleNode(
            relation, key[1], is_base=True, variable=variable or self._fresh_variable(key)
        )
        self._tuples[key] = node
        return node

    def add_derived_tuple(self, relation: str, values: tuple) -> TupleNode:
        """Register a derived tuple (no variable of its own)."""
        key = (relation, tuple(values))
        existing = self._tuples.get(key)
        if existing is not None:
            return existing
        node = TupleNode(relation, key[1], is_base=False)
        self._tuples[key] = node
        return node

    def add_derivation(
        self,
        mapping_id: str,
        target: tuple[str, tuple],
        sources: Iterable[tuple[str, tuple]],
        rule_variable: Optional[str] = None,
    ) -> DerivationNode:
        """Record that ``sources`` jointly derive ``target`` through ``mapping_id``."""
        target_key: TupleKey = (target[0], tuple(target[1]))
        source_keys: tuple[TupleKey, ...] = tuple(
            (relation, tuple(values)) for relation, values in sources
        )
        self.add_derived_tuple(*target_key)
        for relation, values in source_keys:
            if (relation, values) not in self._tuples:
                # Sources that have never been registered are treated as
                # derived placeholders; they get no variable until someone
                # asserts them as base data.
                self.add_derived_tuple(relation, values)
        if self._annotate_mappings and rule_variable is None:
            rule_variable = f"m:{mapping_id}"
        derivation = DerivationNode(mapping_id, target_key, source_keys, rule_variable)
        if derivation.key in self._derivations:
            return self._derivations[derivation.key]
        self._derivations[derivation.key] = derivation
        self._derivations_by_target[target_key].append(derivation)
        for source_key in source_keys:
            self._derivations_by_source[source_key].append(derivation)
        return derivation

    def remove_base_tuple(self, relation: str, values: tuple) -> bool:
        """Demote a base tuple to derived-only (it was deleted at its origin).

        The tuple node and its derivations stay in the graph; whether it is
        still derivable is decided by :meth:`unsupported_tuples` /
        :meth:`is_derivable`.
        Returns True when the tuple was a base tuple.
        """
        key = (relation, tuple(values))
        node = self._tuples.get(key)
        if node is None or not node.is_base:
            return False
        self._tuples[key] = TupleNode(relation, key[1], is_base=False)
        return True

    # -- inspection ----------------------------------------------------------
    def node(self, relation: str, values: tuple) -> Optional[TupleNode]:
        return self._tuples.get((relation, tuple(values)))

    def tuples(self) -> Iterable[TupleNode]:
        return self._tuples.values()

    def derivations(self) -> Iterable[DerivationNode]:
        return self._derivations.values()

    def derivations_of(self, relation: str, values: tuple) -> list[DerivationNode]:
        return list(self._derivations_by_target.get((relation, tuple(values)), ()))

    def derivations_from(self, relation: str, values: tuple) -> list[DerivationNode]:
        return list(self._derivations_by_source.get((relation, tuple(values)), ()))

    def base_variables(self) -> dict[str, TupleKey]:
        """Map each provenance variable to the base tuple it annotates."""
        return {
            node.variable: key
            for key, node in self._tuples.items()
            if node.is_base and node.variable
        }

    def size(self) -> tuple[int, int]:
        """Return ``(tuple nodes, derivation nodes)``."""
        return (len(self._tuples), len(self._derivations))

    # -- provenance expansion -------------------------------------------------
    def expression_for(
        self, relation: str, values: tuple, max_depth: int = 32
    ) -> ProvenanceExpression:
        """Expand a tuple's provenance into an expression.

        Cycles in the derivation graph (possible when the peer mapping graph
        is cyclic) are cut by returning 0 for a tuple already being expanded
        on the current path, which yields the sum over all *acyclic*
        derivations — exactly the finite part of the least fixpoint.
        """
        key = (relation, tuple(values))
        return self._expand(key, frozenset(), max_depth)

    def _expand(
        self, key: TupleKey, on_path: frozenset, remaining_depth: int
    ) -> ProvenanceExpression:
        node = self._tuples.get(key)
        if node is None:
            return prov_zero()
        alternatives: list[ProvenanceExpression] = []
        if node.is_base and node.variable:
            alternatives.append(prov_var(node.variable))
        if remaining_depth > 0 and key not in on_path:
            extended_path = on_path | {key}
            for derivation in self._derivations_by_target.get(key, ()):
                factors: list[ProvenanceExpression] = []
                if derivation.rule_variable:
                    factors.append(prov_var(derivation.rule_variable))
                dead_branch = False
                for source_key in derivation.sources:
                    source_expression = self._expand(
                        source_key, extended_path, remaining_depth - 1
                    )
                    if source_expression.kind == "zero":
                        dead_branch = True
                        break
                    factors.append(source_expression)
                if not dead_branch:
                    alternatives.append(prov_times(factors))
        return prov_plus(alternatives)

    def polynomial_for(
        self, relation: str, values: tuple, max_depth: int = 32
    ) -> Polynomial:
        """The provenance polynomial of a tuple (acyclic derivations only)."""
        return self.expression_for(relation, values, max_depth).to_polynomial()

    # -- semiring evaluation --------------------------------------------------
    def evaluate(
        self,
        semiring,
        assignment: Mapping[str, object],
        default: Optional[object] = None,
        max_iterations: int = 1000,
    ) -> dict[TupleKey, object]:
        """Evaluate every tuple's annotation in ``semiring`` by least fixpoint.

        ``assignment`` maps provenance variables (base tuples and, when
        enabled, mapping rules) to semiring values; variables missing from the
        assignment take ``default`` (or the semiring's one if ``default`` is
        ``None``).  The iteration converges for the idempotent semirings used
        by trust policies (boolean, tropical, security, fuzzy); for
        non-idempotent semirings over a cyclic graph the iteration is cut off
        after ``max_iterations`` rounds and a :class:`ProvenanceError` is
        raised.
        """
        fallback = semiring.one() if default is None else default

        def variable_value(variable: Optional[str]):
            if variable is None:
                return semiring.one()
            return assignment.get(variable, fallback)

        annotations: dict[TupleKey, object] = {
            key: semiring.zero() for key in self._tuples
        }
        for _round in range(max_iterations):
            changed = False
            for key, node in self._tuples.items():
                value = semiring.zero()
                if node.is_base:
                    value = semiring.plus(value, variable_value(node.variable))
                for derivation in self._derivations_by_target.get(key, ()):
                    term = variable_value(derivation.rule_variable)
                    for source_key in derivation.sources:
                        term = semiring.times(
                            term, annotations.get(source_key, semiring.zero())
                        )
                    value = semiring.plus(value, term)
                if value != annotations[key]:
                    annotations[key] = value
                    changed = True
            if not changed:
                return annotations
        raise ProvenanceError(
            f"semiring evaluation did not converge within {max_iterations} iterations; "
            "the provenance graph is cyclic and the target semiring is not idempotent"
        )

    def is_derivable(
        self,
        relation: str,
        values: tuple,
        trusted_variables: Optional[set[str]] = None,
    ) -> bool:
        """True when the tuple is derivable from base tuples.

        When ``trusted_variables`` is given, only base tuples whose provenance
        variable is in the set count as support (the boolean-semiring trust
        evaluation of the paper).
        """
        boolean = BooleanSemiring()
        if trusted_variables is None:
            assignment = {
                node.variable: True
                for node in self._tuples.values()
                if node.is_base and node.variable
            }
        else:
            assignment = {
                node.variable: (node.variable in trusted_variables)
                for node in self._tuples.values()
                if node.is_base and node.variable
            }
        annotations = self.evaluate(boolean, assignment, default=True)
        return bool(annotations.get((relation, tuple(values)), False))

    def unsupported_tuples(self) -> list[TupleKey]:
        """Tuples that are no longer derivable from any base tuple.

        Used by deletion propagation: after base deletions, these are the
        derived tuples that must be removed from the target instances.
        """
        boolean = BooleanSemiring()
        assignment = {
            node.variable: True
            for node in self._tuples.values()
            if node.is_base and node.variable
        }
        annotations = self.evaluate(boolean, assignment, default=True)
        return [key for key, supported in annotations.items() if not supported]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tuples, derivations = self.size()
        return f"ProvenanceGraph(tuples={tuples}, derivations={derivations})"


def merge_graphs(graphs: Iterable[ProvenanceGraph]) -> ProvenanceGraph:
    """Union several provenance graphs into a new one."""
    merged = ProvenanceGraph()
    for graph in graphs:
        for node in graph.tuples():
            if node.is_base:
                merged.add_base_tuple(node.relation, node.values, node.variable)
            else:
                merged.add_derived_tuple(node.relation, node.values)
        for derivation in graph.derivations():
            merged.add_derivation(
                derivation.mapping_id,
                derivation.target,
                derivation.sources,
                derivation.rule_variable,
            )
    return merged
