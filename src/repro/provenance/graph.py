"""The update-exchange provenance graph.

During update exchange ORCHESTRA does not materialise provenance polynomials
for every derived tuple; it maintains a *provenance graph* whose nodes are
tuples and whose hyper-edges are mapping-rule firings connecting the source
tuples of a firing to the tuple it derives.  Internally each tuple's
provenance is compiled — lazily, and cached — into a hash-consed circuit
(:mod:`repro.provenance.circuit`): sum/product/variable nodes interned by
structural identity, so sub-derivations shared across tuples, epochs and
replicas are stored once.  The graph supports:

* lazily expanding a tuple's provenance into an expression or polynomial
  (budget-bounded; kept for oracles and display),
* evaluating annotations in any commutative semiring directly on the DAG
  with per-(semiring, assignment) memo tables — cycles in the derivation
  graph (e.g. the Figure-2 network maps Σ1 → Σ2 → Σ1) are cut so every
  tuple's annotation is the sum over its *acyclic* derivations, matching
  the expanded-polynomial semantics exactly, and
* deletion propagation: after removing base tuples, finding which derived
  tuples have lost all support.  Deletions invalidate only the circuit
  roots of transitively affected tuples; memoized node evaluations stay
  valid because circuit nodes are immutable.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from ..errors import ProvenanceError
from .circuit import ZERO, CircuitEvaluator, CircuitStore, MembershipAssignment
from .expressions import ProvenanceExpression
from .polynomial import Polynomial
from .semiring import BooleanSemiring

#: A tuple node is identified by its relation name and its ground values.
TupleKey = tuple[str, tuple]

#: Evaluation representations: ``"circuit"`` evaluates the hash-consed DAG
#: with memo tables; ``"expanded"`` evaluates fully expanded polynomials per
#: tuple (the slow ablation representation the DAG replaces).
EVALUATION_MODES = ("circuit", "expanded")

_UNREACHED = float("inf")


class _ExpandFrame:
    """One in-progress tuple expansion of the iterative circuit compiler."""

    __slots__ = (
        "key", "depth", "scc_id", "alternatives", "derivations",
        "d_index", "s_index", "factors", "low",
    )

    def __init__(self, key, depth, scc_id, alternatives, derivations) -> None:
        self.key = key
        self.depth = depth
        self.scc_id = scc_id
        self.alternatives = alternatives
        self.derivations = derivations
        self.d_index = 0
        self.s_index = 0
        #: Circuit nodes of the current derivation's matched sources; None
        #: between derivations (and after a dead branch).
        self.factors = None
        self.low = _UNREACHED

    def absorb(self, child: int, child_low: float) -> None:
        """Fold one source's compiled ``(node, low)`` into the frame."""
        if child_low < self.low:
            self.low = child_low
        if child == ZERO:  # the whole derivation branch is dead
            self.factors = None
            self.d_index += 1
        else:
            self.factors.append(child)
            self.s_index += 1


@dataclass(frozen=True)
class TupleNode:
    """A node of the provenance graph: one tuple of one relation."""

    relation: str
    values: tuple
    is_base: bool
    variable: Optional[str] = None

    @property
    def key(self) -> TupleKey:
        return (self.relation, self.values)


@dataclass(frozen=True)
class DerivationNode:
    """One firing of a mapping rule: sources jointly derive the target tuple."""

    mapping_id: str
    target: TupleKey
    sources: tuple[TupleKey, ...]
    rule_variable: Optional[str] = None

    @property
    def key(self) -> tuple:
        return (self.mapping_id, self.target, self.sources)


class ProvenanceGraph:
    """A mutable provenance graph for one peer's (or the whole system's) data.

    Args:
        annotate_mappings: Give each mapping rule its own provenance variable
            (``m:<mapping_id>``) so trust policies can discount mapping hops.
        store: An existing :class:`CircuitStore` to intern circuit nodes in;
            sharing one store across graphs (e.g. across epochs or replicas
            of the same network) maximises structural sharing.  A fresh store
            is created when omitted.
        evaluation_mode: ``"circuit"`` (default) or ``"expanded"``; see
            :data:`EVALUATION_MODES`.
    """

    #: Bound on cached per-(semiring, assignment) evaluators (FIFO evicted).
    _EVALUATOR_CACHE_LIMIT = 64

    #: Installed (as an instance attribute) by IncrementalEngine when the
    #: owning system carries an Observability holder; annotation queries
    #: then emit ``circuit.evaluate`` spans and memo-hit-rate counters.
    observability = None

    def __init__(
        self,
        annotate_mappings: bool = False,
        store: Optional[CircuitStore] = None,
        evaluation_mode: str = "circuit",
    ) -> None:
        if evaluation_mode not in EVALUATION_MODES:
            raise ProvenanceError(
                f"unknown provenance evaluation mode {evaluation_mode!r}; "
                f"expected one of {EVALUATION_MODES}"
            )
        self._tuples: dict[TupleKey, TupleNode] = {}
        self._derivations: dict[tuple, DerivationNode] = {}
        self._derivations_by_target: dict[TupleKey, list[DerivationNode]] = defaultdict(list)
        self._derivations_by_source: dict[TupleKey, list[DerivationNode]] = defaultdict(list)
        self._annotate_mappings = annotate_mappings
        self.evaluation_mode = evaluation_mode
        self._store = store if store is not None else CircuitStore()
        #: Cached circuit root per tuple; invalidated transitively on change.
        self._roots: dict[TupleKey, int] = {}
        #: Tuples whose support changed since the last root query.
        self._dirty: set[TupleKey] = set()
        #: Strongly-connected-component id per tuple of the dependency graph
        #: (targets depend on sources); rebuilt lazily after mutations.
        self._scc: Optional[dict[TupleKey, int]] = None
        #: Cached evaluators keyed by (semiring, assignment, default).
        self._evaluators: dict[tuple, CircuitEvaluator] = {}
        #: Every rule variable ever attached to a derivation (trust questions
        #: treat them as unconditionally trusted unless assigned explicitly).
        self._rule_variables: set[str] = set()

    # -- construction -----------------------------------------------------
    def add_base_tuple(
        self, relation: str, values: tuple, variable: Optional[str] = None
    ) -> TupleNode:
        """Register a base (peer-inserted) tuple and give it a provenance variable."""
        key = (relation, tuple(values))
        existing = self._tuples.get(key)
        if existing is not None:
            if existing.is_base:
                return existing
            # A tuple previously known only as derived is now also asserted as
            # base data: promote it, keeping its derivations.
            promoted = TupleNode(
                relation, key[1], is_base=True, variable=variable or self._fresh_variable(key)
            )
            self._tuples[key] = promoted
            self._dirty.add(key)
            return promoted
        node = TupleNode(
            relation, key[1], is_base=True, variable=variable or self._fresh_variable(key)
        )
        self._tuples[key] = node
        self._dirty.add(key)
        return node

    def add_derived_tuple(self, relation: str, values: tuple) -> TupleNode:
        """Register a derived tuple (no variable of its own)."""
        key = (relation, tuple(values))
        existing = self._tuples.get(key)
        if existing is not None:
            return existing
        node = TupleNode(relation, key[1], is_base=False)
        self._tuples[key] = node
        return node

    def add_derivation(
        self,
        mapping_id: str,
        target: tuple[str, tuple],
        sources: Iterable[tuple[str, tuple]],
        rule_variable: Optional[str] = None,
    ) -> DerivationNode:
        """Record that ``sources`` jointly derive ``target`` through ``mapping_id``."""
        target_key: TupleKey = (target[0], tuple(target[1]))
        source_keys: tuple[TupleKey, ...] = tuple(
            (relation, tuple(values)) for relation, values in sources
        )
        self.add_derived_tuple(*target_key)
        for relation, values in source_keys:
            if (relation, values) not in self._tuples:
                # Sources that have never been registered are treated as
                # derived placeholders; they get no variable until someone
                # asserts them as base data.
                self.add_derived_tuple(relation, values)
        if self._annotate_mappings and rule_variable is None:
            rule_variable = f"m:{mapping_id}"
        derivation = DerivationNode(mapping_id, target_key, source_keys, rule_variable)
        if derivation.key in self._derivations:
            return self._derivations[derivation.key]
        self._derivations[derivation.key] = derivation
        self._derivations_by_target[target_key].append(derivation)
        for source_key in source_keys:
            self._derivations_by_source[source_key].append(derivation)
        if rule_variable:
            self._rule_variables.add(rule_variable)
        self._dirty.add(target_key)
        return derivation

    def remove_base_tuple(self, relation: str, values: tuple) -> bool:
        """Demote a base tuple to derived-only (it was deleted at its origin).

        The tuple node and its derivations stay in the graph; whether it is
        still derivable is decided by :meth:`unsupported_tuples` /
        :meth:`is_derivable`.
        Returns True when the tuple was a base tuple.
        """
        key = (relation, tuple(values))
        node = self._tuples.get(key)
        if node is None or not node.is_base:
            return False
        self._tuples[key] = TupleNode(relation, key[1], is_base=False)
        self._dirty.add(key)
        return True

    def _fresh_variable(self, key: TupleKey) -> str:
        relation, values = key
        rendered = ",".join(str(value) for value in values)
        return f"{relation}({rendered})"

    # -- inspection ----------------------------------------------------------
    def node(self, relation: str, values: tuple) -> Optional[TupleNode]:
        return self._tuples.get((relation, tuple(values)))

    def tuples(self) -> Iterable[TupleNode]:
        return self._tuples.values()

    def derivations(self) -> Iterable[DerivationNode]:
        return self._derivations.values()

    def derivations_of(self, relation: str, values: tuple) -> list[DerivationNode]:
        return list(self._derivations_by_target.get((relation, tuple(values)), ()))

    def derivations_from(self, relation: str, values: tuple) -> list[DerivationNode]:
        return list(self._derivations_by_source.get((relation, tuple(values)), ()))

    def base_variables(self) -> dict[str, TupleKey]:
        """Map each provenance variable to the base tuple it annotates."""
        return {
            node.variable: key
            for key, node in self._tuples.items()
            if node.is_base and node.variable
        }

    def size(self) -> tuple[int, int]:
        """Return ``(tuple nodes, derivation nodes)``."""
        return (len(self._tuples), len(self._derivations))

    # -- circuit compilation --------------------------------------------------
    @property
    def circuit(self) -> CircuitStore:
        """The hash-consed circuit store backing this graph."""
        return self._store

    def circuit_size(self) -> tuple[int, int]:
        """``(interned nodes, child edges)`` of the backing circuit store."""
        return (self._store.node_count(), self._store.edge_count())

    def dag_size(self, relation: str, values: tuple) -> tuple[int, int]:
        """``(nodes, edges)`` of one tuple's provenance sub-DAG."""
        return self._store.reachable_size([self.root(relation, values)])

    def root(self, relation: str, values: tuple) -> int:
        """The circuit node denoting a tuple's provenance (``ZERO`` if unknown)."""
        return self._root_for((relation, tuple(values)))

    def _flush_dirty(self) -> None:
        """Drop cached roots of every tuple transitively affected by changes."""
        if not self._dirty:
            return
        queue = list(self._dirty)
        seen = set(queue)
        roots = self._roots
        while queue:
            key = queue.pop()
            roots.pop(key, None)
            for derivation in self._derivations_by_source.get(key, ()):
                target = derivation.target
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        self._dirty.clear()
        self._scc = None

    def _scc_ids(self) -> dict[TupleKey, int]:
        """Component id per tuple of the dependency graph (iterative Tarjan).

        Two tuples share an id exactly when each (transitively) derives the
        other; the circuit compiler uses this to decide when a cached root is
        safe to reuse mid-expansion.
        """
        if self._scc is not None:
            return self._scc
        tuples = self._tuples
        by_target = self._derivations_by_target
        sccs: dict[TupleKey, int] = {}
        index: dict[TupleKey, int] = {}
        low: dict[TupleKey, int] = {}
        on_stack: set[TupleKey] = set()
        component_stack: list[TupleKey] = []
        counter = 0
        scc_counter = 0

        def successors(node: TupleKey):
            return iter(
                [
                    source
                    for derivation in by_target.get(node, ())
                    for source in derivation.sources
                    if source in tuples
                ]
            )

        for start in tuples:
            if start in index:
                continue
            index[start] = low[start] = counter
            counter += 1
            component_stack.append(start)
            on_stack.add(start)
            work: list[tuple[TupleKey, object]] = [(start, successors(start))]
            while work:
                node, iterator = work[-1]
                descended = False
                for succ in iterator:
                    if succ not in index:
                        index[succ] = low[succ] = counter
                        counter += 1
                        component_stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, successors(succ)))
                        descended = True
                        break
                    if succ in on_stack and index[succ] < low[node]:
                        low[node] = index[succ]
                if descended:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    if low[node] < low[parent]:
                        low[parent] = low[node]
                if low[node] == index[node]:
                    while True:
                        member = component_stack.pop()
                        on_stack.discard(member)
                        sccs[member] = scc_counter
                        if member == node:
                            break
                    scc_counter += 1
        self._scc = sccs
        return sccs

    def _root_for(self, key: TupleKey) -> int:
        self._flush_dirty()
        cached = self._roots.get(key)
        if cached is not None:
            return cached
        return self._compile_root(key)

    def _compile_root(self, start: TupleKey) -> int:
        """Compile one tuple's acyclic provenance into the circuit store.

        Explicit-frame depth-first expansion (no Python recursion, so
        arbitrarily deep derivation chains compile without hitting the
        interpreter's recursion limit).  Each frame tracks ``low``, the
        smallest on-path depth its expansion touched (Tarjan-style): an
        expansion is only memoized in ``self._roots`` when it did not depend
        on any tuple *above* it on the current path, i.e. when the result is
        path-independent.  A cached root is only *reused* when no member of
        its strongly connected component sits on the current path — a root
        cached for one entry point of a cycle sums over paths through the
        other members, which must stay cut while those members are being
        expanded.  Tuples already on the current path contribute only their
        base variable (cycle cut), which yields the sum over all acyclic
        derivations — the finite part of the least fixpoint.
        """
        sccs = self._scc_ids()
        store = self._store
        tuples = self._tuples
        by_target = self._derivations_by_target
        roots = self._roots
        on_path: dict[TupleKey, int] = {}
        path_sccs: dict = {}
        frames: list[_ExpandFrame] = []

        def resolve(key: TupleKey, depth: int):
            """Immediate ``(node, low)`` when no descent is needed, else
            ``None`` after pushing a frame for the tuple."""
            cached = roots.get(key)
            if cached is not None and sccs.get(key) not in path_sccs:
                return (cached, _UNREACHED)
            node = tuples.get(key)
            path_depth = on_path.get(key)
            if path_depth is not None:
                if node is not None and node.is_base and node.variable:
                    return (store.var(node.variable), path_depth)
                return (ZERO, path_depth)
            if node is None:
                return (ZERO, _UNREACHED)
            alternatives: list[int] = []
            if node.is_base and node.variable:
                alternatives.append(store.var(node.variable))
            on_path[key] = depth
            scc_id = sccs.get(key)
            path_sccs[scc_id] = path_sccs.get(scc_id, 0) + 1
            frames.append(
                _ExpandFrame(key, depth, scc_id, alternatives, by_target.get(key, ()))
            )
            return None

        immediate = resolve(start, 0)
        if immediate is not None:
            return immediate[0]
        completed = None  # (node, low) of the frame that just finished
        while frames:
            frame = frames[-1]
            if completed is not None:
                frame.absorb(*completed)
                completed = None
            descended = False
            while frame.d_index < len(frame.derivations):
                derivation = frame.derivations[frame.d_index]
                if frame.factors is None:
                    frame.factors = []
                    frame.s_index = 0
                sources = derivation.sources
                if frame.s_index < len(sources):
                    value = resolve(sources[frame.s_index], frame.depth + 1)
                    if value is None:
                        descended = True
                        break
                    frame.absorb(*value)
                    continue
                # Every source matched: close out this derivation.
                factors = frame.factors
                if derivation.rule_variable:
                    factors.append(store.var(derivation.rule_variable))
                frame.alternatives.append(store.product_of(factors))
                frame.factors = None
                frame.d_index += 1
            if descended:
                continue
            frames.pop()
            del on_path[frame.key]
            if path_sccs[frame.scc_id] == 1:
                del path_sccs[frame.scc_id]
            else:
                path_sccs[frame.scc_id] -= 1
            result = store.sum_of(frame.alternatives)
            if frame.low >= frame.depth:
                # The expansion depended on nothing above this tuple on the
                # path, so it is path-independent and safe to cache.
                roots[frame.key] = result
            completed = (result, frame.low)
        return completed[0]

    # -- provenance expansion -------------------------------------------------
    def expression_for(
        self, relation: str, values: tuple, max_depth: int = 32
    ) -> ProvenanceExpression:
        """Expand a tuple's provenance into an expression DAG.

        Cycles in the derivation graph are cut during circuit compilation,
        yielding the sum over all *acyclic* derivations.  ``max_depth`` is
        kept for API compatibility; the circuit expansion is exact and no
        longer needs a depth bound.
        """
        key = (relation, tuple(values))
        return self._store.to_expression(self._root_for(key))

    #: Default bound on expanded-polynomial size.  The pre-circuit expander
    #: was (weakly) bounded by a depth cutoff; with exact expansion the
    #: budget is the safety knob, on by default so a combinatorial
    #: provenance raises instead of silently exhausting memory.
    DEFAULT_EXPANSION_BUDGET = 100_000

    def polynomial_for(
        self,
        relation: str,
        values: tuple,
        max_depth: int = 32,
        max_monomials: Optional[int] = DEFAULT_EXPANSION_BUDGET,
    ) -> Polynomial:
        """The provenance polynomial of a tuple (acyclic derivations only).

        The polynomial is a lazy view expanded from the hash-consed circuit;
        ``max_monomials`` bounds the expansion (exceeding it raises
        :class:`ProvenanceError`; pass ``None`` to lift the bound).
        ``max_depth`` is kept for API compatibility and no longer limits the
        (exact) expansion — the budget replaced it as the safety knob.
        """
        key = (relation, tuple(values))
        return self._store.to_polynomial(self._root_for(key), max_monomials=max_monomials)

    # -- semiring evaluation --------------------------------------------------
    def _evaluator_cache_key(self, semiring, assignment, default) -> Optional[tuple]:
        if isinstance(assignment, MembershipAssignment):
            signature: object = assignment.cache_key
        else:
            try:
                signature = frozenset((assignment or {}).items())
            except TypeError:
                return None
        key = (semiring, signature, default)
        try:
            hash(key)  # unhashable semiring/assignment values/default
        except TypeError:
            return None
        return key

    def evaluator(
        self,
        semiring,
        assignment: Optional[Mapping[str, object]] = None,
        default: Optional[object] = None,
    ) -> CircuitEvaluator:
        """A memoized circuit evaluator for ``semiring`` under ``assignment``.

        Evaluators are cached per (semiring, assignment, default) so repeated
        trust questions share memo tables; node memo entries stay valid
        across insertions and deletions because circuit nodes are immutable.
        """
        key = self._evaluator_cache_key(semiring, assignment, default)
        if key is None:
            return CircuitEvaluator(self._store, semiring, assignment, default)
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            evaluator = CircuitEvaluator(self._store, semiring, assignment, default)
            if len(self._evaluators) >= self._EVALUATOR_CACHE_LIMIT:
                self._evaluators.pop(next(iter(self._evaluators)))
            self._evaluators[key] = evaluator
        return evaluator

    def annotation(
        self,
        relation: str,
        values: tuple,
        semiring,
        assignment: Optional[Mapping[str, object]] = None,
        default: Optional[object] = None,
    ):
        """One tuple's annotation in ``semiring`` under ``assignment``."""
        key = (relation, tuple(values))
        obs = self.observability
        if self.evaluation_mode == "expanded":
            if obs is not None:
                with obs.span("circuit.evaluate", mode="expanded", relation=relation):
                    result = self._expanded_annotation(
                        key, semiring, assignment or {}, default
                    )
                obs.metrics.counter_add("provenance.circuit.evaluations", 1)
                return result
            return self._expanded_annotation(key, semiring, assignment or {}, default)
        evaluator = self.evaluator(semiring, assignment, default)
        if obs is None:
            return evaluator.value(self._root_for(key))
        hits_before = evaluator.hits
        with obs.span("circuit.evaluate", mode="circuit", relation=relation):
            result = evaluator.value(self._root_for(key))
        metrics = obs.metrics
        metrics.counter_add("provenance.circuit.evaluations", 1)
        metrics.counter_add("provenance.circuit.memo_lookups", 1)
        if evaluator.hits > hits_before:
            metrics.counter_add("provenance.circuit.memo_hits", 1)
        return result

    def _expanded_annotation(self, key: TupleKey, semiring, assignment, default):
        """Expanded-representation path: materialise the tuple's ``N[X]``
        polynomial and evaluate it with :meth:`Polynomial.evaluate`.

        This is the ablation representation the DAG replaces: per-tuple
        expanded polynomials, paying their (potentially combinatorial) size
        on every question instead of sharing memoized node evaluations.  For
        a *fully independent* cross-check of circuit compilation itself, use
        :func:`reference_polynomial`, which re-walks the derivation
        hyper-graph without touching the circuit (the simulation's
        dag-vs-expanded oracle does).
        """
        polynomial = self._store.to_polynomial(self._root_for(key))
        fallback = semiring.one() if default is None else default
        completed = {
            variable: assignment.get(variable, fallback)
            for variable in polynomial.variables()
        }
        return polynomial.evaluate(semiring, completed)

    def evaluate(
        self,
        semiring,
        assignment: Mapping[str, object],
        default: Optional[object] = None,
        max_iterations: int = 1000,
    ) -> dict[TupleKey, object]:
        """Evaluate every tuple's annotation in ``semiring``.

        ``assignment`` maps provenance variables (base tuples and, when
        enabled, mapping rules) to semiring values; variables missing from the
        assignment take ``default`` (or the semiring's one if ``default`` is
        ``None``).  Each annotation is the tuple's acyclic-derivation
        provenance evaluated through the memoized circuit — identical to
        evaluating the tuple's expanded polynomial, but computed in one
        shared pass over the DAG.  ``max_iterations`` is retained for API
        compatibility; circuit evaluation always terminates, even for
        non-idempotent semirings over cyclic derivation graphs.
        """
        if self.evaluation_mode == "expanded":
            return {
                key: self._expanded_annotation(key, semiring, assignment, default)
                for key in self._tuples
            }
        evaluator = self.evaluator(semiring, assignment, default)
        return {key: evaluator.value(self._root_for(key)) for key in self._tuples}

    def is_derivable(
        self,
        relation: str,
        values: tuple,
        trusted_variables: Optional[set[str]] = None,
    ) -> bool:
        """True when the tuple is derivable from base tuples.

        When ``trusted_variables`` is given, only base tuples whose provenance
        variable is in the set count as support (the boolean-semiring trust
        evaluation of the paper).
        """
        key = (relation, tuple(values))
        boolean = BooleanSemiring()
        if trusted_variables is None:
            assignment: Mapping[str, object] = {}
            default: object = True
        else:
            assignment = MembershipAssignment(trusted_variables, self._rule_variables)
            default = False
        if self.evaluation_mode == "expanded":
            return bool(self._expanded_annotation(key, boolean, assignment, default))
        evaluator = self.evaluator(boolean, assignment, default)
        return bool(evaluator.value(self._root_for(key)))

    def unsupported_tuples(self) -> list[TupleKey]:
        """Tuples that are no longer derivable from any base tuple.

        Used by deletion propagation: after base deletions, these are the
        derived tuples that must be removed from the target instances.  Only
        the circuit roots of transitively affected tuples are recompiled;
        every other tuple answers from its cached root and the shared
        all-trusted memo table.
        """
        if self.evaluation_mode == "expanded":
            return [
                key
                for key in self._tuples
                if self._store.to_polynomial(self._root_for(key)).is_zero()
            ]
        evaluator = self.evaluator(BooleanSemiring(), {}, default=True)
        return [
            key for key in self._tuples if not evaluator.value(self._root_for(key))
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tuples, derivations = self.size()
        nodes, edges = self.circuit_size()
        return (
            f"ProvenanceGraph(tuples={tuples}, derivations={derivations}, "
            f"circuit_nodes={nodes}, circuit_edges={edges})"
        )


def reference_polynomial(
    graph: ProvenanceGraph,
    relation: str,
    values: tuple,
    max_monomials: Optional[int] = None,
    max_visits: int = 500_000,
    max_depth: int = 500,
) -> Polynomial:
    """Expand a tuple's provenance by walking the derivation hyper-graph.

    This is the *independent reference implementation*: it never touches the
    hash-consed circuit store, so differential oracles can pit circuit
    compilation and memoized evaluation against it.  Cycles are cut exactly
    as in circuit compilation (a tuple already being expanded on the current
    path contributes only its base variable), yielding the sum over all
    acyclic derivations.

    The walk shares nothing, so it can revisit shared sub-derivations
    exponentially often; ``max_visits`` bounds the traversal,
    ``max_monomials`` bounds intermediate polynomial sizes, and ``max_depth``
    bounds the derivation-chain depth (the walk recurses one frame per hop),
    each raising :class:`ProvenanceError` when exceeded.
    """
    visits = [0]

    def guard(worst_case: int) -> None:
        """Raise before a fold whose worst-case size exceeds the budget."""
        if max_monomials is not None and worst_case > max_monomials:
            raise ProvenanceError(
                f"reference expansion exceeded the budget of {max_monomials} monomials"
            )

    def check(polynomial: Polynomial) -> Polynomial:
        guard(polynomial.monomial_count())
        return polynomial

    def expand(key: TupleKey, on_path: frozenset) -> Polynomial:
        visits[0] += 1
        if visits[0] > max_visits:
            raise ProvenanceError(
                f"reference expansion exceeded {max_visits} node visits; "
                "use the circuit representation for provenance this shared"
            )
        if len(on_path) >= max_depth:
            raise ProvenanceError(
                f"reference expansion exceeded the depth bound of {max_depth} "
                "derivation hops; use the circuit representation for chains this deep"
            )
        node = graph.node(*key)
        if node is None:
            return Polynomial.zero()
        total = Polynomial.zero()
        if node.is_base and node.variable:
            total = Polynomial.variable(node.variable)
        if key in on_path:
            return total
        extended = on_path | {key}
        for derivation in graph.derivations_of(*key):
            product = Polynomial.one()
            dead_branch = False
            for source_key in derivation.sources:
                source_polynomial = expand(source_key, extended)
                if source_polynomial.is_zero():
                    dead_branch = True
                    break
                guard(product.monomial_count() * source_polynomial.monomial_count())
                product = check(product * source_polynomial)
            if dead_branch:
                continue
            if derivation.rule_variable:
                product = product * Polynomial.variable(derivation.rule_variable)
            guard(total.monomial_count() + product.monomial_count())
            total = check(total + product)
        return total

    return check(expand((relation, tuple(values)), frozenset()))


def merge_graphs(graphs: Iterable[ProvenanceGraph]) -> ProvenanceGraph:
    """Union several provenance graphs into a new one."""
    merged = ProvenanceGraph()
    for graph in graphs:
        for node in graph.tuples():
            if node.is_base:
                merged.add_base_tuple(node.relation, node.values, node.variable)
            else:
                merged.add_derived_tuple(node.relation, node.values)
        for derivation in graph.derivations():
            merged.add_derivation(
                derivation.mapping_id,
                derivation.target,
                derivation.sources,
                derivation.rule_variable,
            )
    return merged
