"""Provenance semirings and the update-exchange provenance graph.

This package reproduces the algebraic machinery of the companion paper
*Provenance semirings* (Green, Karvounarakis, Tannen, PODS 2007) that
ORCHESTRA uses to record where each exchanged tuple came from and to evaluate
per-peer trust policies:

* :mod:`repro.provenance.semiring` — the semiring protocol plus the standard
  instances (boolean, counting, tropical, security/access-control, fuzzy,
  why-provenance, lineage),
* :mod:`repro.provenance.polynomial` — provenance polynomials ``N[X]``, the
  most general (universal) annotation,
* :mod:`repro.provenance.expressions` — compact provenance expression DAGs,
* :mod:`repro.provenance.circuit` — the hash-consed circuit store (interned
  sum/product/variable nodes) with memoized semiring evaluators,
* :mod:`repro.provenance.graph` — the provenance graph maintained during
  update exchange (tuples + mapping-rule derivations), compiled lazily into
  the circuit store,
* :mod:`repro.provenance.homomorphism` — evaluation of polynomials,
  expressions, circuits and graphs into arbitrary commutative semirings.
"""

from .circuit import CircuitEvaluator, CircuitStore, MembershipAssignment
from .expressions import ProvenanceExpression, prov_one, prov_plus, prov_times, prov_var, prov_zero
from .graph import DerivationNode, ProvenanceGraph, TupleNode, reference_polynomial
from .homomorphism import (
    evaluate_circuit,
    evaluate_expression,
    evaluate_graph,
    evaluate_polynomial,
)
from .polynomial import Monomial, Polynomial
from .semiring import (
    BooleanSemiring,
    CountingSemiring,
    FuzzySemiring,
    LineageSemiring,
    PolynomialSemiring,
    SecuritySemiring,
    Semiring,
    TrustLevel,
    TropicalSemiring,
    WhySemiring,
)

__all__ = [
    "BooleanSemiring",
    "CircuitEvaluator",
    "CircuitStore",
    "CountingSemiring",
    "DerivationNode",
    "MembershipAssignment",
    "FuzzySemiring",
    "LineageSemiring",
    "Monomial",
    "Polynomial",
    "PolynomialSemiring",
    "ProvenanceExpression",
    "ProvenanceGraph",
    "SecuritySemiring",
    "Semiring",
    "TrustLevel",
    "TropicalSemiring",
    "TupleNode",
    "WhySemiring",
    "evaluate_circuit",
    "evaluate_expression",
    "evaluate_graph",
    "evaluate_polynomial",
    "reference_polynomial",
    "prov_one",
    "prov_plus",
    "prov_times",
    "prov_var",
    "prov_zero",
]
