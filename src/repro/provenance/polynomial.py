"""Provenance polynomials ``N[X]``.

A provenance polynomial is a finite sum of monomials with natural-number
coefficients, where each monomial is a product of provenance *variables*
(typically identifiers of base tuples or of mapping-rule firings).  ``N[X]``
is the universal commutative semiring on the variable set ``X``: any
assignment of the variables into another commutative semiring extends
uniquely to a homomorphism on polynomials.  This is the property ORCHESTRA
exploits to evaluate many different trust policies from one stored
provenance.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import ProvenanceError


@dataclass(frozen=True)
class Monomial:
    """A product of provenance variables with multiplicities, e.g. ``x^2 * y``."""

    powers: tuple[tuple[str, int], ...] = ()

    @staticmethod
    def from_variables(variables: Iterable[str]) -> "Monomial":
        """Build a monomial from an iterable of variable names (with repetition).

        An empty iterable yields the unit monomial (``1``).
        """
        counts = Counter(variables)
        return Monomial(tuple(sorted(counts.items())))

    @staticmethod
    def unit() -> "Monomial":
        """The empty monomial (multiplicative identity)."""
        return Monomial(())

    def __post_init__(self) -> None:
        merged: Counter = Counter()
        for variable, power in self.powers:
            if power <= 0:
                raise ProvenanceError(
                    f"monomial power for {variable!r} must be positive, got {power}"
                )
            merged[variable] += power
        # Canonicalise so equality and hashing are independent of the order
        # (and grouping) in which powers were supplied: x*y, y*x and x,x -> x^2
        # all normalise to the same tuple.
        object.__setattr__(self, "powers", tuple(sorted(merged.items())))

    @property
    def degree(self) -> int:
        return sum(power for _variable, power in self.powers)

    def variables(self) -> set[str]:
        return {variable for variable, _power in self.powers}

    def multiply(self, other: "Monomial") -> "Monomial":
        counts = Counter(dict(self.powers))
        counts.update(dict(other.powers))
        return Monomial(tuple(sorted(counts.items())))

    def __str__(self) -> str:
        if not self.powers:
            return "1"
        parts = []
        for variable, power in self.powers:
            parts.append(variable if power == 1 else f"{variable}^{power}")
        return "*".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Monomial({self})"


class Polynomial:
    """An element of ``N[X]``: a mapping from monomials to positive coefficients."""

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, int] | None = None) -> None:
        cleaned: dict[Monomial, int] = {}
        for monomial, coefficient in (terms or {}).items():
            if coefficient < 0:
                raise ProvenanceError(
                    f"polynomial coefficients must be natural numbers, got {coefficient}"
                )
            if coefficient:
                cleaned[monomial] = coefficient
        self._terms = cleaned

    # -- constructors -----------------------------------------------------
    @staticmethod
    def zero() -> "Polynomial":
        return Polynomial({})

    @staticmethod
    def one() -> "Polynomial":
        return Polynomial({Monomial.unit(): 1})

    @staticmethod
    def variable(name: str) -> "Polynomial":
        return Polynomial({Monomial.from_variables([name]): 1})

    @staticmethod
    def constant(value: int) -> "Polynomial":
        if value < 0:
            raise ProvenanceError("constants in N[X] must be natural numbers")
        if value == 0:
            return Polynomial.zero()
        return Polynomial({Monomial.unit(): value})

    # -- inspection --------------------------------------------------------
    def terms(self) -> dict[Monomial, int]:
        return dict(self._terms)

    def coefficient(self, monomial: Monomial) -> int:
        return self._terms.get(monomial, 0)

    def variables(self) -> set[str]:
        found: set[str] = set()
        for monomial in self._terms:
            found.update(monomial.variables())
        return found

    def is_zero(self) -> bool:
        return not self._terms

    def is_one(self) -> bool:
        return self._terms == {Monomial.unit(): 1}

    @property
    def degree(self) -> int:
        if not self._terms:
            return 0
        return max(monomial.degree for monomial in self._terms)

    def monomial_count(self) -> int:
        return len(self._terms)

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        result = dict(self._terms)
        for monomial, coefficient in other._terms.items():
            result[monomial] = result.get(monomial, 0) + coefficient
        return Polynomial(result)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        result: dict[Monomial, int] = {}
        for left_monomial, left_coefficient in self._terms.items():
            for right_monomial, right_coefficient in other._terms.items():
                product = left_monomial.multiply(right_monomial)
                result[product] = (
                    result.get(product, 0) + left_coefficient * right_coefficient
                )
        return Polynomial(result)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, semiring, assignment: Mapping[str, object]):
        """Evaluate the polynomial under a variable assignment into ``semiring``.

        Every variable occurring in the polynomial must be assigned; the
        result is the image of the polynomial under the unique homomorphism
        extending the assignment (the universality property of ``N[X]``).
        """
        missing = self.variables() - set(assignment)
        if missing:
            raise ProvenanceError(
                "cannot evaluate polynomial: unassigned variables "
                + ", ".join(sorted(missing))
            )
        total = semiring.zero()
        for monomial, coefficient in self._terms.items():
            term_value = semiring.one()
            for variable, power in monomial.powers:
                value = assignment[variable]
                for _ in range(power):
                    term_value = semiring.times(term_value, value)
            summed = semiring.zero()
            for _ in range(coefficient):
                summed = semiring.plus(summed, term_value)
            total = semiring.plus(total, summed)
        return total

    def drop_variables(self, variables: set[str]) -> "Polynomial":
        """Return the polynomial restricted to monomials not using ``variables``.

        This models deleting the corresponding base tuples: any derivation
        that used a deleted tuple no longer justifies the derived tuple.
        """
        kept = {
            monomial: coefficient
            for monomial, coefficient in self._terms.items()
            if not (monomial.variables() & variables)
        }
        return Polynomial(kept)

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for monomial, coefficient in sorted(
            self._terms.items(), key=lambda item: str(item[0])
        ):
            if str(monomial) == "1":
                parts.append(str(coefficient))
            elif coefficient == 1:
                parts.append(str(monomial))
            else:
                parts.append(f"{coefficient}*{monomial}")
        return " + ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Polynomial({self})"
