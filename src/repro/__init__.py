"""repro — a reproduction of ORCHESTRA, the collaborative data sharing system.

ORCHESTRA (Green, Karvounarakis, Taylor, Biton, Ives, Tannen; SIGMOD 2007)
implements the *Collaborative Data Sharing System* (CDSS) model: loosely
coupled peers with autonomous local databases exchange tuple-level updates
through declarative schema mappings, with provenance-aware translation and
trust-based reconciliation of conflicting, transactional updates.

Quick start — describe the network declaratively, then let ``sync()``
orchestrate publication and reconciliation until quiescence::

    from repro import CDSS

    cdss = CDSS.from_spec('''
        peer Source
          relation R(key, value) key(key)
        peer Target
          relation R(key, value) key(key)
        mapping [M_ST] @Target.R(k, v) :- @Source.R(k, v).
    ''')

    cdss.peer("Source").insert("R", (1, "hello"))
    report = cdss.sync()          # publish + reconcile everywhere
    assert (1, "hello") in cdss.peer("Target").tuples("R")
    assert report.converged and not report.skipped_offline

    # Ad-hoc datalog over a peer's instance, optionally with provenance.
    rows = cdss.query("Target", "Answer(v) :- R(k, v).")

The same network can be built fluently (:class:`repro.api.NetworkBuilder`)
or imperatively — the original ``add_peer``/``add_mapping``/``publish``/
``reconcile`` facade remains fully supported and is what the declarative
layer composes::

    from repro import CDSS, PeerSchema
    from repro.core.mapping import mapping_from_tgd

    cdss = CDSS()
    cdss.add_peer("Source", PeerSchema.build("S", {"R": ["a", "b"]}))
    cdss.add_peer("Target", PeerSchema.build("T", {"R": ["a", "b"]}))
    cdss.add_mapping(mapping_from_tgd("[M] @Target.R(a, b) :- @Source.R(a, b)."))
    cdss.publish("Source")
    cdss.reconcile("Target")

The ready-made Figure-2 bioinformatics network (written as the declarative
spec :data:`repro.workloads.FIGURE2_SPEC`) and the five demonstration
scenarios live in :mod:`repro.workloads`.
"""

from .analysis import (
    Diagnostic,
    DiagnosticReport,
    analyze_network_spec,
    analyze_program,
    analyze_system,
)
from .api import (
    NetworkBuilder,
    NetworkSpec,
    PeerSpec,
    QueryResult,
    SyncReport,
    SyncRound,
    parse_network_spec,
)
from .config import ExchangeConfig, ReconciliationConfig, StoreConfig, SystemConfig
from .core.catalog import Catalog
from .core.mapping import (
    Mapping,
    identity_mapping,
    join_mapping,
    mapping_from_tgd,
    mapping_to_tgd,
    split_mapping,
)
from .core.peer import Peer
from .core.schema import PeerSchema, RelationSchema
from .core.system import CDSS, PublishAllOutcome, PublishOutcome, ReconcileOutcome
from .core.transactions import Transaction, TransactionBuilder
from .core.trust import TrustCondition, TrustPolicy
from .core.updates import Update, UpdateKind
from .errors import ReproError, SpecError, SyncError

__version__ = "1.2.0"

__all__ = [
    "CDSS",
    "Catalog",
    "Diagnostic",
    "DiagnosticReport",
    "ExchangeConfig",
    "Mapping",
    "NetworkBuilder",
    "NetworkSpec",
    "Peer",
    "PeerSchema",
    "PeerSpec",
    "PublishAllOutcome",
    "PublishOutcome",
    "QueryResult",
    "ReconcileOutcome",
    "ReconciliationConfig",
    "RelationSchema",
    "ReproError",
    "SpecError",
    "StoreConfig",
    "SyncError",
    "SyncReport",
    "SyncRound",
    "SystemConfig",
    "Transaction",
    "TransactionBuilder",
    "TrustCondition",
    "TrustPolicy",
    "Update",
    "UpdateKind",
    "__version__",
    "analyze_network_spec",
    "analyze_program",
    "analyze_system",
    "identity_mapping",
    "join_mapping",
    "mapping_from_tgd",
    "mapping_to_tgd",
    "parse_network_spec",
    "split_mapping",
]
