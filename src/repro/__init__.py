"""repro — a reproduction of ORCHESTRA, the collaborative data sharing system.

ORCHESTRA (Green, Karvounarakis, Taylor, Biton, Ives, Tannen; SIGMOD 2007)
implements the *Collaborative Data Sharing System* (CDSS) model: loosely
coupled peers with autonomous local databases exchange tuple-level updates
through declarative schema mappings, with provenance-aware translation and
trust-based reconciliation of conflicting, transactional updates.

Quick start::

    from repro import CDSS, PeerSchema, TrustPolicy
    from repro.core.mapping import join_mapping

    cdss = CDSS()
    source = cdss.add_peer("Source", PeerSchema.build("S", {"R": ["a", "b"]}))
    target = cdss.add_peer("Target", PeerSchema.build("T", {"R": ["a", "b"]}))
    cdss.add_mapping(join_mapping("M", "Source", "Target", "R(a, b)", ["R(a, b)"]))

    source.insert("R", (1, 2))
    cdss.publish("Source")
    cdss.reconcile("Target")
    assert (1, 2) in target.tuples("R")

The ready-made Figure-2 bioinformatics network and the five demonstration
scenarios live in :mod:`repro.workloads`.
"""

from .config import ExchangeConfig, ReconciliationConfig, StoreConfig, SystemConfig
from .core.catalog import Catalog
from .core.mapping import Mapping, identity_mapping, join_mapping, split_mapping
from .core.peer import Peer
from .core.schema import PeerSchema, RelationSchema
from .core.system import CDSS, PublishOutcome, ReconcileOutcome
from .core.transactions import Transaction, TransactionBuilder
from .core.trust import TrustCondition, TrustPolicy
from .core.updates import Update, UpdateKind
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "CDSS",
    "Catalog",
    "ExchangeConfig",
    "Mapping",
    "Peer",
    "PeerSchema",
    "PublishOutcome",
    "ReconcileOutcome",
    "ReconciliationConfig",
    "RelationSchema",
    "ReproError",
    "StoreConfig",
    "SystemConfig",
    "Transaction",
    "TransactionBuilder",
    "TrustCondition",
    "TrustPolicy",
    "Update",
    "UpdateKind",
    "__version__",
    "identity_mapping",
    "join_mapping",
    "split_mapping",
]
