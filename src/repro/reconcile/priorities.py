"""Assigning trust priorities to transaction groups.

The priority of a group is the priority its *candidate* transaction receives
from the reconciling peer's trust policy: the minimum over the candidate's
translated updates (a transaction is only as trusted as its least trusted
update).  Antecedents pulled into the group do not lower the priority — this
is what lets Crete accept Beijing's trusted modification together with its
untrusted Alaska antecedent in Scenario 3 of the demonstration.

Optionally, trust can additionally be evaluated over provenance: when a
provenance graph is supplied, an update whose tuple is not derivable from any
trusted peer's published data gets priority 0 even if its origin would have
been trusted (defence against relayed data).
"""

from __future__ import annotations

from typing import Optional

from ..core.schema import PeerSchema
from ..core.trust import TrustPolicy
from ..provenance.graph import ProvenanceGraph
from .candidates import TransactionGroup


def group_priority(
    group: TransactionGroup,
    policy: TrustPolicy,
    schema: PeerSchema,
    provenance: Optional[ProvenanceGraph] = None,
    trusted_peers: Optional[set[str]] = None,
) -> int:
    """Compute and return the priority of a group (also stored on the group)."""
    priority = policy.priority_for_updates(group.candidate.updates, schema)
    if priority > 0 and provenance is not None and trusted_peers is not None:
        if not _supported_by_trusted_peers(group, provenance, trusted_peers):
            priority = 0
    group.priority = priority
    return priority


def _supported_by_trusted_peers(
    group: TransactionGroup,
    provenance: ProvenanceGraph,
    trusted_peers: set[str],
) -> bool:
    """Is every inserted tuple of the candidate derivable from trusted data?

    Base provenance variables are named after published relations
    (``Peer.R!pub(values)``), so the set of trusted variables is exactly the
    variables of trusted peers' contributions.  Deletions are not checked:
    removing data never requires trusting its content.

    Derivability is answered on the provenance DAG: repeated checks against
    the same trusted set share one memoized boolean evaluator, so only the
    first question per sub-derivation pays for evaluation.
    """
    trusted_variables = trusted_variable_set(provenance, trusted_peers)
    target = group.candidate.target_peer
    for update in group.candidate.updates:
        for values in update.inserted_tuples():
            relation = f"{target}.{update.relation}"
            node = provenance.node(relation, values)
            if node is None:
                continue
            if not provenance.is_derivable(relation, values, trusted_variables):
                return False
    return True


def _variable_peer(published_name: str) -> str:
    """Extract the publishing peer from a published relation name."""
    peer, _, _rest = published_name.partition(".")
    return peer


def trusted_variable_set(
    provenance: ProvenanceGraph, trusted_peers: set[str]
) -> set[str]:
    """All provenance variables contributed by the given peers."""
    return {
        node.variable
        for node in provenance.tuples()
        if node.is_base and node.variable and _variable_peer(node.relation) in trusted_peers
    }
