"""The greedy reconciliation algorithm.

Given the undecided candidate transactions visible to a peer, the reconciler:

1. builds applicable transaction groups (candidates plus the undecided
   antecedents they need), rejecting candidates whose antecedents were
   rejected and leaving candidates with missing antecedents pending;
2. assigns each group a trust priority; groups with priority 0 are rejected
   (their data is distrusted);
3. processes priorities from highest to lowest; within a priority level a
   group is accepted when it conflicts neither with previously accepted data
   nor with an already accepted group, is rejected when a strictly
   higher-priority group (or earlier accepted state) has claimed the
   conflicting key, and is *deferred* when the conflict is with another group
   of the same priority — those are handed to the administrator;
4. transactions that depend on deferred transactions are deferred as well;
5. accepted groups are applied to the peer's local instance atomically, in
   dependency order.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from ..config import ReconciliationConfig
from ..core.peer import Peer
from ..exchange.translation import CandidateTransaction
from ..provenance.graph import ProvenanceGraph
from .candidates import GroupingOutcome, TransactionGroup, antecedent_closure, build_groups
from .conflicts import updates_conflict
from .decisions import Decision, ReconciliationState
from .priorities import group_priority


@dataclass
class ReconcileResult:
    """Summary of one reconciliation run at one peer."""

    peer: str
    epoch: int = 0
    accepted: list[str] = field(default_factory=list)
    rejected: list[str] = field(default_factory=list)
    deferred: list[str] = field(default_factory=list)
    pending: list[str] = field(default_factory=list)
    conflicts_deferred: int = 0
    applied_updates: int = 0

    def summary(self) -> dict[str, int]:
        return {
            "accepted": len(self.accepted),
            "rejected": len(self.rejected),
            "deferred": len(self.deferred),
            "pending": len(self.pending),
            "conflicts_deferred": self.conflicts_deferred,
            "applied_updates": self.applied_updates,
        }

    def to_dict(self) -> dict:
        """Plain-data form (full id lists, unlike the count-only summary)."""
        return {
            "peer": self.peer,
            "accepted": list(self.accepted),
            "rejected": list(self.rejected),
            "deferred": list(self.deferred),
            "pending": list(self.pending),
            "conflicts_deferred": self.conflicts_deferred,
            "applied_updates": self.applied_updates,
        }


class Reconciler:
    """Runs the reconciliation algorithm for one peer."""

    def __init__(
        self,
        peer: Peer,
        state: Optional[ReconciliationState] = None,
        config: Optional[ReconciliationConfig] = None,
    ) -> None:
        self._peer = peer
        self._state = state or ReconciliationState(peer=peer.name)
        self._config = config or ReconciliationConfig()

    @property
    def state(self) -> ReconciliationState:
        return self._state

    @property
    def peer(self) -> Peer:
        return self._peer

    # -- the main entry point ----------------------------------------------------
    def reconcile(
        self,
        candidates: Iterable[CandidateTransaction],
        known_transactions: Optional[Mapping[str, frozenset[str]]] = None,
        provenance: Optional[ProvenanceGraph] = None,
        epoch: int = 0,
    ) -> ReconcileResult:
        """Decide and apply one batch of candidate transactions.

        ``candidates`` should contain the newly translated transactions; the
        reconciler automatically re-considers candidates left undecided by
        earlier runs.
        """
        result = ReconcileResult(peer=self._peer.name, epoch=epoch)

        pool: dict[str, CandidateTransaction] = {}
        for candidate in self._state.undecided.values():
            pool[candidate.txn_id] = candidate
        for candidate in candidates:
            if candidate.origin == self._peer.name:
                # The peer's own transactions are already applied locally.
                self._state.decisions.setdefault(candidate.txn_id, Decision.ACCEPTED)
                continue
            if candidate.is_empty:
                # No effect in this peer's schema: vacuously accepted so that
                # dependents do not wait for it.
                self._state.decisions.setdefault(candidate.txn_id, Decision.ACCEPTED)
                continue
            if not self._state.is_decided(candidate.txn_id):
                pool[candidate.txn_id] = candidate

        grouping = build_groups(
            pool.values(), self._state, self._peer.name, known_transactions
        )
        self._reject_candidates(grouping, result)
        self._mark_pending(grouping, result)

        trusted_peers = None
        if provenance is not None and self._peer.trust.require_trusted_provenance:
            trusted_peers = self._peer.trust.trusted_peers(
                {candidate.origin for candidate in pool.values()} | {self._peer.name}
            )
        else:
            provenance = None
        for group in grouping.groups:
            group_priority(group, self._peer.trust, self._peer.schema, provenance, trusted_peers)

        self._greedy_select(grouping.groups, pool, result)
        return result

    # -- phases -------------------------------------------------------------------
    def _reject_candidates(self, grouping: GroupingOutcome, result: ReconcileResult) -> None:
        for candidate in grouping.rejected:
            self._state.record_reject(candidate.txn_id)
            result.rejected.append(candidate.txn_id)

    def _mark_pending(self, grouping: GroupingOutcome, result: ReconcileResult) -> None:
        for candidate in grouping.pending:
            self._state.record_pending(candidate)
            result.pending.append(candidate.txn_id)

    def _greedy_select(
        self,
        groups: list[TransactionGroup],
        pool: Mapping[str, CandidateTransaction],
        result: ReconcileResult,
    ) -> None:
        # Distrusted groups (priority 0) are rejected outright, unless their
        # candidate is needed as an antecedent of a trusted group — in that
        # case it will be applied as part of that group.
        needed_as_antecedent: set[str] = set()
        for group in groups:
            if group.priority > 0:
                needed_as_antecedent.update(
                    member.txn_id for member in group.members[:-1]
                )

        viable: list[TransactionGroup] = []
        for group in groups:
            if group.priority > 0:
                viable.append(group)
            elif group.txn_id not in needed_as_antecedent:
                self._state.record_reject(group.txn_id)
                result.rejected.append(group.txn_id)
            # else: leave undecided; its fate follows the trusted dependent.

        # Transactions deferred by an earlier reconciliation stay deferred
        # until the administrator resolves their conflict (paper semantics);
        # they also transitively defer anything that depends on them.
        deferred_ids: set[str] = set(self._state.deferred_ids())
        accepted_groups: list[TransactionGroup] = []

        by_priority: dict[int, list[TransactionGroup]] = defaultdict(list)
        for group in viable:
            by_priority[group.priority].append(group)

        for priority in sorted(by_priority, reverse=True):
            level = sorted(by_priority[priority], key=lambda group: group.txn_id)
            survivors: list[TransactionGroup] = []
            for group in level:
                if group.txn_id in deferred_ids:
                    continue
                if self._depends_on_deferred(group, deferred_ids, pool):
                    self._defer_group(group, result, deferred_ids)
                    continue
                if self._conflicts_with_accepted(group, accepted_groups):
                    self._state.record_reject(group.txn_id)
                    result.rejected.append(group.txn_id)
                    continue
                survivors.append(group)

            if self._config.defer_on_ties:
                conflict_sets = self._same_priority_conflicts(survivors)
            else:
                conflict_sets = []
            deferred_here: set[str] = set()
            for conflict_set in conflict_sets:
                ids = sorted(group.txn_id for group in conflict_set)
                self._state.add_deferred_conflict(ids, priority)
                result.conflicts_deferred += 1
                for group in conflict_set:
                    if group.txn_id not in deferred_here:
                        self._defer_group(group, result, deferred_ids)
                        deferred_here.add(group.txn_id)

            if not self._config.defer_on_ties:
                # Ablation baseline: break ties deterministically by txn id.
                survivors = self._break_ties(survivors)

            for group in survivors:
                if group.txn_id in deferred_here:
                    continue
                if self._conflicts_with_accepted(group, accepted_groups):
                    self._state.record_reject(group.txn_id)
                    result.rejected.append(group.txn_id)
                    continue
                self._accept_group(group, result)
                accepted_groups.append(group)

    # -- helpers -------------------------------------------------------------------
    def _antecedent_sensitive_conflict(
        self, left: TransactionGroup, right: TransactionGroup
    ) -> bool:
        """Member-wise conflict check that ignores antecedent relationships."""
        pool = {member.txn_id: member for member in left.members + right.members}
        for left_member in left.members:
            left_closure = antecedent_closure(left_member, pool)
            for right_member in right.members:
                if left_member.txn_id == right_member.txn_id:
                    continue
                right_closure = antecedent_closure(right_member, pool)
                if (
                    left_member.txn_id in right_closure
                    or right_member.txn_id in left_closure
                ):
                    continue
                if updates_conflict(
                    left_member.updates, right_member.updates, self._peer.schema
                ):
                    return True
        return False

    def _conflicts_with_accepted(
        self, group: TransactionGroup, accepted_groups: list[TransactionGroup]
    ) -> bool:
        """Conflict against this round's accepted groups and the stored state."""
        for accepted in accepted_groups:
            if self._antecedent_sensitive_conflict(group, accepted):
                return True
        candidate_pool = {member.txn_id: member for member in group.members}
        closure = antecedent_closure(group.candidate, candidate_pool) | group.member_ids()
        for txn_id, updates in self._state.accepted_updates.items():
            if txn_id in closure:
                continue
            for member in group.members:
                member_closure = antecedent_closure(member, candidate_pool)
                if txn_id in member_closure:
                    continue
                if updates_conflict(member.updates, list(updates), self._peer.schema):
                    return True
        return False

    def _same_priority_conflicts(
        self, groups: list[TransactionGroup]
    ) -> list[list[TransactionGroup]]:
        """Find connected components of mutually conflicting same-priority groups."""
        conflict_edges: dict[str, set[str]] = defaultdict(set)
        by_id = {group.txn_id: group for group in groups}
        ids = sorted(by_id)
        for index, left_id in enumerate(ids):
            for right_id in ids[index + 1 :]:
                if self._antecedent_sensitive_conflict(by_id[left_id], by_id[right_id]):
                    conflict_edges[left_id].add(right_id)
                    conflict_edges[right_id].add(left_id)

        components: list[list[TransactionGroup]] = []
        seen: set[str] = set()
        for txn_id in ids:
            if txn_id in seen or txn_id not in conflict_edges:
                continue
            component: list[str] = []
            frontier = [txn_id]
            while frontier:
                current = frontier.pop()
                if current in seen:
                    continue
                seen.add(current)
                component.append(current)
                frontier.extend(conflict_edges[current] - seen)
            components.append([by_id[member] for member in sorted(component)])
        return components

    def _break_ties(self, groups: list[TransactionGroup]) -> list[TransactionGroup]:
        """Ablation: accept the lexicographically smallest of each conflict set."""
        kept: list[TransactionGroup] = []
        for group in sorted(groups, key=lambda candidate: candidate.txn_id):
            if not any(self._antecedent_sensitive_conflict(group, other) for other in kept):
                kept.append(group)
            else:
                self._state.record_reject(group.txn_id)
        return kept

    def _depends_on_deferred(
        self,
        group: TransactionGroup,
        deferred_ids: set[str],
        pool: Mapping[str, CandidateTransaction],
    ) -> bool:
        if not deferred_ids:
            return False
        closure = antecedent_closure(group.candidate, pool)
        return bool(closure & deferred_ids)

    def _defer_group(
        self,
        group: TransactionGroup,
        result: ReconcileResult,
        deferred_ids: set[str],
    ) -> None:
        self._state.record_defer(group.candidate)
        result.deferred.append(group.txn_id)
        deferred_ids.add(group.txn_id)

    def _accept_group(self, group: TransactionGroup, result: ReconcileResult) -> None:
        """Apply every member of the group to the local instance and record it."""
        for member in group.members:
            if self._state.decision(member.txn_id) is Decision.ACCEPTED:
                continue
            self._peer.apply_updates(member.updates, producer=member.txn_id)
            self._state.record_accept(member)
            result.accepted.append(member.txn_id)
            result.applied_updates += len(member.updates)
