"""Per-peer reconciliation state: the decision history.

Each peer remembers, across reconciliations, which transactions it has
accepted, rejected or deferred, which updates the accepted transactions
applied (needed for conflict checks against later candidates), and which
deferred conflicts are awaiting manual resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from ..core.updates import Update
from ..errors import ReconciliationError
from ..exchange.translation import CandidateTransaction


class Decision(str, Enum):
    """The possible outcomes for a candidate transaction at one peer."""

    ACCEPTED = "accepted"
    REJECTED = "rejected"
    DEFERRED = "deferred"
    PENDING = "pending"


@dataclass
class DeferredConflict:
    """A set of equal-priority, mutually conflicting transactions awaiting
    a decision by the site administrator."""

    conflict_id: int
    txn_ids: frozenset[str]
    priority: int
    resolved: bool = False
    winner: Optional[str] = None


@dataclass
class ReconciliationState:
    """Everything one peer remembers between reconciliations."""

    peer: str
    decisions: dict[str, Decision] = field(default_factory=dict)
    #: Updates applied by accepted transactions, used for conflict detection
    #: against future candidates (keyed by txn id).
    accepted_updates: dict[str, tuple[Update, ...]] = field(default_factory=dict)
    #: Candidates not yet decided (deferred or waiting for antecedents),
    #: re-considered on every subsequent reconciliation.
    undecided: dict[str, CandidateTransaction] = field(default_factory=dict)
    deferred_conflicts: list[DeferredConflict] = field(default_factory=list)
    _conflict_counter: int = 0

    # -- decision bookkeeping ------------------------------------------------
    def decision(self, txn_id: str) -> Decision:
        return self.decisions.get(txn_id, Decision.PENDING)

    def is_decided(self, txn_id: str) -> bool:
        return self.decision(txn_id) in (Decision.ACCEPTED, Decision.REJECTED)

    def record_accept(self, candidate: CandidateTransaction) -> None:
        self.decisions[candidate.txn_id] = Decision.ACCEPTED
        self.accepted_updates[candidate.txn_id] = candidate.updates
        self.undecided.pop(candidate.txn_id, None)

    def record_reject(self, txn_id: str) -> None:
        self.decisions[txn_id] = Decision.REJECTED
        self.undecided.pop(txn_id, None)

    def record_defer(self, candidate: CandidateTransaction) -> None:
        self.decisions[candidate.txn_id] = Decision.DEFERRED
        self.undecided[candidate.txn_id] = candidate

    def record_pending(self, candidate: CandidateTransaction) -> None:
        if self.is_decided(candidate.txn_id):
            return
        self.decisions.setdefault(candidate.txn_id, Decision.PENDING)
        self.undecided[candidate.txn_id] = candidate

    def accepted_ids(self) -> set[str]:
        return {
            txn_id
            for txn_id, decision in self.decisions.items()
            if decision is Decision.ACCEPTED
        }

    def rejected_ids(self) -> set[str]:
        return {
            txn_id
            for txn_id, decision in self.decisions.items()
            if decision is Decision.REJECTED
        }

    def deferred_ids(self) -> set[str]:
        return {
            txn_id
            for txn_id, decision in self.decisions.items()
            if decision is Decision.DEFERRED
        }

    def all_accepted_updates(self) -> list[Update]:
        updates: list[Update] = []
        for group in self.accepted_updates.values():
            updates.extend(group)
        return updates

    # -- deferred conflicts ----------------------------------------------------
    def add_deferred_conflict(
        self, txn_ids: Iterable[str], priority: int
    ) -> DeferredConflict:
        txn_ids = frozenset(txn_ids)
        for existing in self.deferred_conflicts:
            if not existing.resolved and existing.txn_ids == txn_ids:
                # Re-deferring the same unresolved conflict on a later
                # reconciliation must not create duplicates.
                return existing
        self._conflict_counter += 1
        conflict = DeferredConflict(
            conflict_id=self._conflict_counter,
            txn_ids=frozenset(txn_ids),
            priority=priority,
        )
        self.deferred_conflicts.append(conflict)
        return conflict

    def open_conflicts(self) -> list[DeferredConflict]:
        return [conflict for conflict in self.deferred_conflicts if not conflict.resolved]

    def conflict_containing(self, txn_id: str) -> DeferredConflict:
        for conflict in self.deferred_conflicts:
            if not conflict.resolved and txn_id in conflict.txn_ids:
                return conflict
        raise ReconciliationError(
            f"peer {self.peer!r} has no open deferred conflict involving {txn_id!r}"
        )

    # -- reporting ------------------------------------------------------------
    def summary(self) -> dict[str, int]:
        counts = {"accepted": 0, "rejected": 0, "deferred": 0, "pending": 0}
        for decision in self.decisions.values():
            counts[decision.value] += 1
        counts["open_conflicts"] = len(self.open_conflicts())
        return counts
