"""Manual resolution of deferred conflicts.

When reconciliation defers a set of equal-priority conflicting transactions,
the site administrator can later choose which one to apply.  Following the
paper: the chosen transaction is accepted and applied, the conflicting ones
are rejected, every deferred transaction that transitively depends on the
chosen one is accepted automatically (when applicable), and every transaction
depending on a rejected one is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.peer import Peer
from ..errors import ReconciliationError
from ..exchange.translation import CandidateTransaction
from .decisions import Decision, ReconciliationState


@dataclass
class ResolutionResult:
    """Outcome of resolving one deferred conflict."""

    peer: str
    winner: str
    accepted: list[str] = field(default_factory=list)
    rejected: list[str] = field(default_factory=list)
    applied_updates: int = 0


def resolve_conflict(
    peer: Peer,
    state: ReconciliationState,
    winner_txn_id: str,
) -> ResolutionResult:
    """Resolve the open deferred conflict containing ``winner_txn_id``.

    The winner (and, transitively, deferred transactions depending on it) is
    accepted and applied to the peer's local instance; the losers (and,
    transitively, transactions depending on them) are rejected.
    """
    conflict = state.conflict_containing(winner_txn_id)
    winner = state.undecided.get(winner_txn_id)
    if winner is None:
        raise ReconciliationError(
            f"transaction {winner_txn_id!r} is no longer awaiting a decision at {peer.name!r}"
        )

    result = ResolutionResult(peer=peer.name, winner=winner_txn_id)

    _accept(peer, state, winner, result)
    for loser_id in sorted(conflict.txn_ids - {winner_txn_id}):
        _reject_cascade(state, loser_id, result)

    conflict.resolved = True
    conflict.winner = winner_txn_id

    _cascade_dependents(peer, state, result)
    return result


def _accept(
    peer: Peer,
    state: ReconciliationState,
    candidate: CandidateTransaction,
    result: ResolutionResult,
) -> None:
    if state.decision(candidate.txn_id) is Decision.ACCEPTED:
        return
    peer.apply_updates(candidate.updates, producer=candidate.txn_id)
    state.record_accept(candidate)
    result.accepted.append(candidate.txn_id)
    result.applied_updates += len(candidate.updates)


def _reject_cascade(state: ReconciliationState, txn_id: str, result: ResolutionResult) -> None:
    if state.decision(txn_id) is Decision.REJECTED:
        return
    state.record_reject(txn_id)
    result.rejected.append(txn_id)


def _cascade_dependents(
    peer: Peer, state: ReconciliationState, result: ResolutionResult
) -> None:
    """Repeatedly propagate decisions to deferred/pending dependents."""
    changed = True
    while changed:
        changed = False
        in_open_conflict: set[str] = set()
        for conflict in state.open_conflicts():
            in_open_conflict.update(conflict.txn_ids)
        for candidate in list(state.undecided.values()):
            if candidate.txn_id in in_open_conflict:
                # Still part of another unresolved conflict: leave it to a
                # future explicit resolution.
                continue
            antecedent_decisions = {
                antecedent: state.decision(antecedent)
                for antecedent in candidate.antecedents
            }
            if any(
                decision is Decision.REJECTED
                for decision in antecedent_decisions.values()
            ):
                _reject_cascade(state, candidate.txn_id, result)
                changed = True
                continue
            if candidate.antecedents and all(
                decision is Decision.ACCEPTED
                for decision in antecedent_decisions.values()
            ):
                # Every antecedent is now accepted: the deferred dependent can
                # be applied automatically (Scenario 4 of the demonstration).
                _accept(peer, state, candidate, result)
                changed = True
