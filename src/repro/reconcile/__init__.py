"""The reconciliation engine.

Reconciliation (companion paper [11], Taylor & Ives SIGMOD 2006) is the step
in which a peer decides which of the translated candidate transactions to
apply to its local instance:

1. candidates are combined with the antecedent transactions needed to apply
   them into *applicable transaction groups*
   (:mod:`repro.reconcile.candidates`);
2. candidates whose antecedents were already rejected are rejected as well;
3. trust conditions assign numeric priorities to the groups
   (:mod:`repro.reconcile.priorities`);
4. a greedy algorithm accepts the highest-priority mutually consistent set of
   groups; equal-priority conflicting groups are *deferred* to the site
   administrator, along with everything that depends on them
   (:mod:`repro.reconcile.algorithm`);
5. the administrator can later resolve a deferred conflict, which cascades
   accepts/rejects through the dependency graph
   (:mod:`repro.reconcile.resolution`).
"""

from .algorithm import Reconciler, ReconcileResult
from .candidates import TransactionGroup, build_groups
from .conflicts import conflicts_between, conflicts_with_state
from .decisions import Decision, ReconciliationState
from .priorities import group_priority
from .resolution import ResolutionResult, resolve_conflict

__all__ = [
    "Decision",
    "ReconcileResult",
    "ReconciliationState",
    "Reconciler",
    "ResolutionResult",
    "TransactionGroup",
    "build_groups",
    "conflicts_between",
    "conflicts_with_state",
    "group_priority",
    "resolve_conflict",
]
