"""Building applicable transaction groups from candidate transactions.

The reconciliation algorithm of the paper "combines candidate transactions
with the antecedent transactions needed to apply them, in order to produce
applicable transaction groups".  Concretely, for a candidate ``T``:

* antecedents that this peer has already **accepted** (or that originated at
  this peer itself) need nothing further;
* antecedents that have been **rejected** force ``T`` to be rejected;
* antecedents that are still undecided but available as candidates are pulled
  into ``T``'s group — accepting the group accepts them too, even if they
  would not have been trusted on their own (Scenario 3 of the demo);
* antecedents that are simply **unknown** (not yet published or never
  translated to this peer) leave ``T`` pending until they show up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from ..exchange.translation import CandidateTransaction
from .decisions import Decision, ReconciliationState


@dataclass
class TransactionGroup:
    """A candidate transaction plus the undecided antecedents it pulls in.

    Attributes:
        candidate: The transaction whose acceptance is being considered.
        members: The candidate plus every undecided antecedent candidate that
            must be applied together with it, in dependency order (antecedents
            first).
        priority: Trust priority of the group (assigned later by
            :func:`repro.reconcile.priorities.group_priority`).
    """

    candidate: CandidateTransaction
    members: tuple[CandidateTransaction, ...]
    priority: int = 0

    @property
    def txn_id(self) -> str:
        return self.candidate.txn_id

    def member_ids(self) -> set[str]:
        return {member.txn_id for member in self.members}

    def all_updates(self):
        for member in self.members:
            yield from member.updates

    def describe(self) -> str:
        members = ", ".join(member.txn_id for member in self.members)
        return f"group[{self.candidate.txn_id}] members=({members}) priority={self.priority}"


@dataclass
class GroupingOutcome:
    """Result of :func:`build_groups`."""

    groups: list[TransactionGroup] = field(default_factory=list)
    #: Candidates rejected because an antecedent was already rejected.
    rejected: list[CandidateTransaction] = field(default_factory=list)
    #: Candidates left pending because an antecedent is unknown/undecided
    #: and unavailable.
    pending: list[CandidateTransaction] = field(default_factory=list)


def antecedent_closure(
    candidate: CandidateTransaction,
    by_id: Mapping[str, CandidateTransaction],
) -> set[str]:
    """All (transitively reachable) antecedent ids of a candidate."""
    closure: set[str] = set()
    frontier = list(candidate.antecedents)
    while frontier:
        current = frontier.pop()
        if current in closure:
            continue
        closure.add(current)
        known = by_id.get(current)
        if known is not None:
            frontier.extend(known.antecedents)
    return closure


def build_groups(
    candidates: Iterable[CandidateTransaction],
    state: ReconciliationState,
    local_peer: str,
    known_transactions: Optional[Mapping[str, frozenset[str]]] = None,
) -> GroupingOutcome:
    """Partition candidates into applicable groups, rejects and pendings.

    Args:
        candidates: The undecided candidate transactions to consider (newly
            translated plus previously deferred/pending ones).
        state: The peer's decision history.
        local_peer: Name of the reconciling peer; its own transactions are
            implicitly accepted.
        known_transactions: Optional map ``txn_id -> antecedents`` covering
            *all* transactions ever published (used to resolve antecedents
            whose translation was empty for this peer — they are vacuously
            satisfied once published).

    Returns:
        A :class:`GroupingOutcome` with one group per candidate that can be
        considered for acceptance this round.
    """
    known_transactions = known_transactions or {}
    pool: dict[str, CandidateTransaction] = {}
    for candidate in candidates:
        if state.is_decided(candidate.txn_id):
            continue
        pool[candidate.txn_id] = candidate

    outcome = GroupingOutcome()

    def antecedent_status(txn_id: str, origin_of_candidate: str) -> str:
        """Classify one antecedent: satisfied, rejected, available, or missing."""
        decision = state.decision(txn_id)
        if decision is Decision.ACCEPTED:
            return "satisfied"
        if decision is Decision.REJECTED:
            return "rejected"
        if txn_id in pool:
            return "available"
        if txn_id in known_transactions:
            # Published, but its translation carried nothing into this peer's
            # schema (or it originated here): nothing needs to be applied.
            return "satisfied"
        return "missing"

    for candidate in pool.values():
        closure = antecedent_closure(candidate, pool)
        statuses = {
            antecedent: antecedent_status(antecedent, candidate.origin)
            for antecedent in closure
        }
        if any(status == "rejected" for status in statuses.values()):
            outcome.rejected.append(candidate)
            continue
        if any(status == "missing" for status in statuses.values()):
            outcome.pending.append(candidate)
            continue
        needed_ids = [
            antecedent
            for antecedent, status in statuses.items()
            if status == "available"
        ]
        members = _order_members(candidate, needed_ids, pool)
        outcome.groups.append(TransactionGroup(candidate=candidate, members=members))
    return outcome


def _order_members(
    candidate: CandidateTransaction,
    needed_ids: list[str],
    pool: Mapping[str, CandidateTransaction],
) -> tuple[CandidateTransaction, ...]:
    """Order group members so antecedents are applied before dependents."""
    members = [pool[txn_id] for txn_id in needed_ids if txn_id in pool]
    members.sort(key=lambda member: (member.epoch, member.txn_id))
    return tuple(members + [candidate])
