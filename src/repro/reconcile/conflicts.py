"""Conflict detection between candidate transactions.

Two transactions conflict when, for some relation, they make incompatible
assertions about the same key: different resulting tuples for one key, or one
deleting an entity the other (re)asserts.  Conflicts are what reconciliation
arbitrates using trust priorities; equal-priority conflicts are deferred to
the administrator.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.schema import PeerSchema
from ..core.updates import Update, conflicting
from ..exchange.translation import CandidateTransaction


def updates_conflict(
    left: Sequence[Update], right: Sequence[Update], schema: PeerSchema
) -> bool:
    """Do any two updates from the two sequences conflict?"""
    for left_update in left:
        if not schema.has_relation(left_update.relation):
            continue
        relation_schema = schema.relation(left_update.relation)
        for right_update in right:
            if right_update.relation != left_update.relation:
                continue
            if conflicting(left_update, right_update, relation_schema):
                return True
    return False


def conflicts_between(
    left: CandidateTransaction, right: CandidateTransaction, schema: PeerSchema
) -> bool:
    """Do two candidate transactions (from different origins) conflict?

    A transaction never conflicts with itself, and two candidates that are
    translations of the same original transaction never conflict.
    """
    if left.txn_id == right.txn_id:
        return False
    return updates_conflict(left.updates, right.updates, schema)


def conflicts_with_state(
    candidate: CandidateTransaction,
    accepted_updates: Iterable[Update],
    schema: PeerSchema,
) -> bool:
    """Does a candidate conflict with updates already accepted at this peer?

    Re-asserting exactly what is already accepted is not a conflict; only a
    *different* value for an already-decided key is.
    """
    return updates_conflict(candidate.updates, list(accepted_updates), schema)
