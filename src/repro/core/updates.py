"""Tuple-level updates: insertions, deletions and modifications.

The CDSS propagates *updates* rather than whole instances.  An update targets
one relation of one peer's schema and is one of:

* **insertion** of a tuple,
* **deletion** of a tuple, or
* **modification**, replacing an old tuple with a new one (the paper treats
  a modification as a dependent delete+insert pair that must stay together).

Updates carry the peer that originated them, which both drives provenance
variable naming and lets trust conditions discriminate by origin.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

from ..errors import TransactionError
from .schema import RelationSchema


class UpdateKind(str, Enum):
    """The three kinds of tuple-level updates."""

    INSERT = "insert"
    DELETE = "delete"
    MODIFY = "modify"


@dataclass(frozen=True)
class Update:
    """One tuple-level update against a relation of the originating peer.

    Attributes:
        kind: Insert, delete, or modify.
        relation: Unqualified relation name in the originating peer's schema.
        values: The inserted tuple (INSERT), the deleted tuple (DELETE), or
            the *new* tuple (MODIFY).
        old_values: Only for MODIFY: the tuple being replaced.
        origin: Name of the peer where the update was originally made.  This
            is preserved when updates are translated to other schemas.
    """

    kind: UpdateKind
    relation: str
    values: tuple
    old_values: Optional[tuple] = None
    origin: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if self.old_values is not None:
            object.__setattr__(self, "old_values", tuple(self.old_values))
        if self.kind is UpdateKind.MODIFY and self.old_values is None:
            raise TransactionError("MODIFY updates require old_values")
        if self.kind is not UpdateKind.MODIFY and self.old_values is not None:
            raise TransactionError(f"{self.kind.value} updates must not carry old_values")

    # -- constructors ----------------------------------------------------------
    @staticmethod
    def insert(relation: str, values: Sequence[object], origin: str = "") -> "Update":
        return Update(UpdateKind.INSERT, relation, tuple(values), origin=origin)

    @staticmethod
    def delete(relation: str, values: Sequence[object], origin: str = "") -> "Update":
        return Update(UpdateKind.DELETE, relation, tuple(values), origin=origin)

    @staticmethod
    def modify(
        relation: str,
        old_values: Sequence[object],
        new_values: Sequence[object],
        origin: str = "",
    ) -> "Update":
        return Update(
            UpdateKind.MODIFY,
            relation,
            tuple(new_values),
            old_values=tuple(old_values),
            origin=origin,
        )

    # -- derived views ----------------------------------------------------------
    @property
    def is_insert(self) -> bool:
        return self.kind is UpdateKind.INSERT

    @property
    def is_delete(self) -> bool:
        return self.kind is UpdateKind.DELETE

    @property
    def is_modify(self) -> bool:
        return self.kind is UpdateKind.MODIFY

    def inserted_tuples(self) -> list[tuple]:
        """Tuples this update adds to the relation."""
        if self.kind in (UpdateKind.INSERT, UpdateKind.MODIFY):
            return [self.values]
        return []

    def deleted_tuples(self) -> list[tuple]:
        """Tuples this update removes from the relation."""
        if self.kind is UpdateKind.DELETE:
            return [self.values]
        if self.kind is UpdateKind.MODIFY:
            return [self.old_values or ()]
        return []

    def key_of(self, schema: RelationSchema) -> tuple:
        """The key this update targets, used for conflict detection.

        For modifications the key of the *old* tuple is used: a modification
        competes with other updates to the same pre-existing entity.
        """
        if self.kind is UpdateKind.MODIFY and self.old_values is not None:
            return schema.key_of(self.old_values)
        return schema.key_of(self.values)

    def with_origin(self, origin: str) -> "Update":
        """Return a copy carrying the given origin peer."""
        return Update(self.kind, self.relation, self.values, self.old_values, origin)

    def describe(self) -> str:
        """One-line human-readable description (used by the reporting views)."""
        from .tuples import render_tuple

        if self.kind is UpdateKind.INSERT:
            return f"+{self.relation}{render_tuple(self.values)}"
        if self.kind is UpdateKind.DELETE:
            return f"-{self.relation}{render_tuple(self.values)}"
        return (
            f"~{self.relation}{render_tuple(self.old_values or ())}"
            f" -> {render_tuple(self.values)}"
        )

    def __str__(self) -> str:
        return self.describe()


def conflicting(left: Update, right: Update, schema: RelationSchema) -> bool:
    """Do two updates to the same relation conflict?

    Two updates conflict when they target the same key but do not agree on
    the resulting tuple:

    * two insertions/modifications producing different tuples for one key,
    * a deletion against an insertion/modification of the same key from a
      *different* transaction (one wants the entity gone, the other present).

    Updates on different relations or different keys never conflict.
    """
    if left.relation != right.relation:
        return False
    if left.key_of(schema) != right.key_of(schema):
        return False
    if left.is_delete and right.is_delete:
        return False
    if left.is_delete or right.is_delete:
        return True
    return left.values != right.values
