"""The CDSS data model: the paper's primary contribution.

This package defines the vocabulary of the Collaborative Data Sharing System:

* :mod:`repro.core.schema` — relation and peer schemas,
* :mod:`repro.core.tuples` — tuple helpers and labelled nulls,
* :mod:`repro.core.mapping` — declarative schema mappings (tgds),
* :mod:`repro.core.updates` — tuple-level insert/delete/modify updates,
* :mod:`repro.core.transactions` — transactions and antecedent dependencies,
* :mod:`repro.core.clock` — the logical clock advanced by update exchange,
* :mod:`repro.core.trust` — trust conditions over content and provenance,
* :mod:`repro.core.peer` — peer state (schema, instance, log, trust policy),
* :mod:`repro.core.catalog` — the catalogue of peers and mappings,
* :mod:`repro.core.system` — the CDSS facade tying publication, update
  exchange and reconciliation together.
"""

from .catalog import Catalog
from .clock import LogicalClock
from .mapping import Mapping, identity_mapping, join_mapping, split_mapping
from .peer import Peer
from .schema import PeerSchema, RelationSchema
from .system import CDSS, ReconcileOutcome
from .transactions import Transaction, TransactionBuilder, dependency_order
from .trust import TrustCondition, TrustPolicy
from .updates import Update, UpdateKind

__all__ = [
    "CDSS",
    "Catalog",
    "LogicalClock",
    "Mapping",
    "Peer",
    "PeerSchema",
    "ReconcileOutcome",
    "RelationSchema",
    "Transaction",
    "TransactionBuilder",
    "TrustCondition",
    "TrustPolicy",
    "Update",
    "UpdateKind",
    "dependency_order",
    "identity_mapping",
    "join_mapping",
    "split_mapping",
]
