"""Peer state: schema, local instance, update log, trust policy, connectivity.

Each participant of the CDSS is a :class:`Peer` holding:

* its local schema and a fully autonomous, editable local instance,
* an update log of locally committed transactions awaiting publication,
* a trust policy used when reconciling,
* connectivity state (peers are intermittently connected), and
* bookkeeping: which transaction produced each local tuple (for antecedent
  inference) and how far the peer has published/reconciled.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..errors import PeerError, TransactionError
from ..storage.memory import MemoryInstance
from ..storage.update_log import UpdateLog
from .clock import PeerClockState
from .schema import PeerSchema
from .transactions import Transaction, TransactionBuilder
from .trust import TrustPolicy
from .updates import Update, UpdateKind


class Peer:
    """One CDSS participant.

    Args:
        name: Unique peer name (e.g. ``"Alaska"``).
        schema: The peer's local schema.
        trust: The peer's trust policy; defaults to trusting everyone equally.
        storage: Storage backend for the local instance; defaults to an
            in-memory instance with one relation per schema relation.
    """

    def __init__(
        self,
        name: str,
        schema: PeerSchema,
        trust: Optional[TrustPolicy] = None,
        storage: Optional[MemoryInstance] = None,
    ) -> None:
        if not name:
            raise PeerError("peer name must be non-empty")
        self.name = name
        self.schema = schema
        self.trust = trust or TrustPolicy.trust_all(name)
        if self.trust.owner != name:
            raise PeerError(
                f"trust policy owner {self.trust.owner!r} does not match peer {name!r}"
            )
        self.instance = storage or MemoryInstance()
        for relation in schema:
            self.instance.create_relation(relation.name, relation.arity)
        self.log: UpdateLog[Transaction] = UpdateLog()
        self.clock = PeerClockState()
        self.online = True
        self._txn_counter = itertools.count(1)
        #: Which transaction produced each currently-present local tuple.
        self._producers: dict[tuple[str, tuple], str] = {}

    # -- connectivity -----------------------------------------------------------
    def set_online(self, online: bool) -> None:
        self.online = online

    def require_online(self, operation: str) -> None:
        if not self.online:
            raise PeerError(f"peer {self.name!r} is offline and cannot {operation}")

    # -- local editing ------------------------------------------------------------
    def new_transaction(self, txn_id: Optional[str] = None) -> TransactionBuilder:
        """Start building a local transaction against this peer's instance."""
        identifier = txn_id or f"{self.name}-T{next(self._txn_counter)}"
        return TransactionBuilder(self.name, identifier, producers=self._producers)

    def commit(self, builder_or_transaction: TransactionBuilder | Transaction) -> Transaction:
        """Atomically apply a transaction to the local instance and log it.

        The transaction's updates are validated against the schema first; if
        any update cannot be applied (wrong arity, unknown relation) nothing
        is applied.
        """
        if isinstance(builder_or_transaction, TransactionBuilder):
            transaction = builder_or_transaction.build()
        else:
            transaction = builder_or_transaction
        if transaction.peer != self.name:
            raise TransactionError(
                f"transaction {transaction.txn_id!r} belongs to peer "
                f"{transaction.peer!r}, not {self.name!r}"
            )
        for update in transaction.updates:
            self.schema.validate_tuple(update.relation, update.values)
            if update.old_values is not None:
                self.schema.validate_tuple(update.relation, update.old_values)

        self.apply_updates(transaction.updates, producer=transaction.txn_id)
        self.log.append(transaction)
        return transaction

    def apply_updates(
        self, updates: Iterable[Update], producer: Optional[str] = None
    ) -> None:
        """Apply already-validated updates to the local instance."""
        for update in updates:
            if update.kind is UpdateKind.INSERT:
                self.instance.insert(update.relation, update.values)
                if producer:
                    self._producers[(update.relation, update.values)] = producer
            elif update.kind is UpdateKind.DELETE:
                self.instance.delete(update.relation, update.values)
                self._producers.pop((update.relation, update.values), None)
            else:  # MODIFY
                if update.old_values is not None:
                    self.instance.delete(update.relation, update.old_values)
                    self._producers.pop((update.relation, update.old_values), None)
                self.instance.insert(update.relation, update.values)
                if producer:
                    self._producers[(update.relation, update.values)] = producer

    # -- convenience editing API ---------------------------------------------------
    def insert(self, relation: str, values: Sequence[object]) -> Transaction:
        """Commit a single-insert transaction (convenience wrapper)."""
        return self.commit(self.new_transaction().insert(relation, values))

    def delete(self, relation: str, values: Sequence[object]) -> Transaction:
        """Commit a single-delete transaction (convenience wrapper)."""
        return self.commit(self.new_transaction().delete(relation, values))

    def modify(
        self, relation: str, old_values: Sequence[object], new_values: Sequence[object]
    ) -> Transaction:
        """Commit a single-modification transaction (convenience wrapper)."""
        return self.commit(self.new_transaction().modify(relation, old_values, new_values))

    # -- inspection ------------------------------------------------------------------
    def tuples(self, relation: str) -> frozenset[tuple]:
        """Snapshot of one relation of the local instance."""
        return frozenset(self.instance.scan(relation))

    def tuples_matching(
        self, relation: str, position: int, value: object
    ) -> frozenset[tuple]:
        """Local tuples whose column ``position`` equals ``value``.

        Routed through the storage backend's indexed ``lookup`` — a SQLite
        peer answers through a persistent column index, a memory peer
        through a maintained hash index — instead of materialising the
        whole relation the way :meth:`tuples` does.
        """
        return frozenset(self.instance.lookup(relation, position, value))

    def snapshot(self) -> dict[str, frozenset[tuple]]:
        """Snapshot of the whole local instance (the peer's public view)."""
        return self.instance.snapshot()

    def producer_of(self, relation: str, values: tuple) -> Optional[str]:
        """The transaction that produced a currently-present local tuple."""
        return self._producers.get((relation, tuple(values)))

    def record_producer(self, relation: str, values: tuple, txn_id: str) -> None:
        """Record that an externally applied tuple was produced by ``txn_id``."""
        self._producers[(relation, tuple(values))] = txn_id

    def unpublished_transactions(self) -> list[Transaction]:
        return self.log.unpublished()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "online" if self.online else "offline"
        return f"Peer({self.name}, {status}, {self.instance.count()} tuples)"
