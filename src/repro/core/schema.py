"""Relation schemas and peer schemas.

A peer schema is a named collection of relation schemas.  In the Figure-2
network of the paper, peers Alaska and Beijing share

    Σ1 = { O(org, oid), P(prot, pid), S(oid, pid, seq) }

while Crete and Dresden share

    Σ2 = { OPS(org, prot, seq) }.

Relation schemas optionally declare a key (a subset of attribute positions);
keys drive conflict detection during reconciliation (two updates conflict
when they assert different values for the same key).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from ..errors import SchemaError, TupleArityError, UnknownRelationError


@dataclass(frozen=True)
class RelationSchema:
    """Schema of one relation: a name, attribute names, and an optional key.

    Attributes:
        name: Relation name, unique within a peer schema.
        attributes: Ordered attribute names.
        key: Attribute names forming the primary key.  Defaults to all
            attributes (i.e. the whole tuple is the key and any two distinct
            tuples are compatible).
    """

    name: str
    attributes: tuple[str, ...]
    key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        attributes = tuple(self.attributes)
        object.__setattr__(self, "attributes", attributes)
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"relation {self.name!r} has duplicate attribute names")
        key = tuple(self.key) if self.key else attributes
        unknown = set(key) - set(attributes)
        if unknown:
            raise SchemaError(
                f"key attributes {sorted(unknown)} of relation {self.name!r} are not attributes"
            )
        object.__setattr__(self, "key", key)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def attribute_index(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def key_positions(self) -> tuple[int, ...]:
        """Positions of the key attributes within a tuple."""
        return tuple(self.attribute_index(attribute) for attribute in self.key)

    def key_of(self, values: Sequence[object]) -> tuple:
        """Project a tuple onto its key attributes."""
        self.check_arity(values)
        return tuple(values[index] for index in self.key_positions())

    def check_arity(self, values: Sequence[object]) -> tuple:
        values = tuple(values)
        if len(values) != self.arity:
            raise TupleArityError(
                f"relation {self.name!r} expects {self.arity} values, got {len(values)}"
            )
        return values

    def as_dict(self, values: Sequence[object]) -> dict[str, object]:
        """Return ``{attribute: value}`` for a tuple of this relation."""
        values = self.check_arity(values)
        return dict(zip(self.attributes, values))

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


@dataclass(frozen=True)
class PeerSchema:
    """A named collection of relation schemas (one peer's local schema)."""

    name: str
    relations: tuple[RelationSchema, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("schema name must be non-empty")
        relations = tuple(self.relations)
        object.__setattr__(self, "relations", relations)
        names = [relation.name for relation in relations]
        if len(set(names)) != len(names):
            raise SchemaError(f"schema {self.name!r} declares duplicate relation names")

    @staticmethod
    def build(name: str, spec: Mapping[str, Sequence[str]], keys: Optional[Mapping[str, Sequence[str]]] = None) -> "PeerSchema":
        """Build a schema from ``{relation: [attributes]}`` plus optional keys."""
        keys = keys or {}
        relations = tuple(
            RelationSchema(relation, tuple(attributes), tuple(keys.get(relation, ())))
            for relation, attributes in spec.items()
        )
        return PeerSchema(name, relations)

    def relation_names(self) -> tuple[str, ...]:
        return tuple(relation.name for relation in self.relations)

    def relation(self, name: str) -> RelationSchema:
        for candidate in self.relations:
            if candidate.name == name:
                return candidate
        raise UnknownRelationError(f"schema {self.name!r} has no relation {name!r}")

    def has_relation(self, name: str) -> bool:
        return any(candidate.name == name for candidate in self.relations)

    def arity(self, name: str) -> int:
        return self.relation(name).arity

    def validate_tuple(self, relation: str, values: Sequence[object]) -> tuple:
        """Check arity and return the tuple (raises on mismatch)."""
        return self.relation(relation).check_arity(values)

    def __iter__(self) -> Iterable[RelationSchema]:
        return iter(self.relations)

    def __str__(self) -> str:
        inner = ", ".join(str(relation) for relation in self.relations)
        return f"{self.name} = {{ {inner} }}"


def qualified_name(peer: str, relation: str) -> str:
    """The globally unique name of a peer's relation, e.g. ``Alaska.O``.

    The update-exchange datalog program works over qualified relation names so
    that identically named relations at different peers stay distinct.
    """
    return f"{peer}.{relation}"


def split_qualified(name: str) -> tuple[str, str]:
    """Inverse of :func:`qualified_name`."""
    peer, _, relation = name.partition(".")
    if not relation:
        raise SchemaError(f"{name!r} is not a qualified relation name")
    return peer, relation
