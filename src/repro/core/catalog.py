"""The system catalogue: every peer and every mapping in the CDSS.

The catalogue validates mappings against the peers' schemas and exposes the
mapping graph (which peer maps to which), which the update-exchange engine
uses to compile its datalog program and which the reporting views display.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Optional

from ..errors import MappingError, PeerError
from .mapping import Mapping
from .peer import Peer


class Catalog:
    """Registry of peers and schema mappings."""

    def __init__(self) -> None:
        self._peers: dict[str, Peer] = {}
        self._mappings: dict[str, Mapping] = {}

    # -- peers ------------------------------------------------------------------
    def add_peer(self, peer: Peer) -> Peer:
        if peer.name in self._peers:
            raise PeerError(f"peer {peer.name!r} is already registered")
        self._peers[peer.name] = peer
        return peer

    def peer(self, name: str) -> Peer:
        try:
            return self._peers[name]
        except KeyError:
            raise PeerError(f"unknown peer {name!r}") from None

    def has_peer(self, name: str) -> bool:
        return name in self._peers

    def peers(self) -> list[Peer]:
        return list(self._peers.values())

    def peer_names(self) -> list[str]:
        return list(self._peers)

    # -- mappings -----------------------------------------------------------------
    def add_mapping(self, mapping: Mapping) -> Mapping:
        if mapping.mapping_id in self._mappings:
            raise MappingError(f"mapping {mapping.mapping_id!r} is already registered")
        source = self.peer(mapping.source_peer)
        target = self.peer(mapping.target_peer)
        mapping.validate_against(source.schema, target.schema)
        self._mappings[mapping.mapping_id] = mapping
        return mapping

    def add_mappings(self, mappings: Iterable[Mapping]) -> list[Mapping]:
        return [self.add_mapping(mapping) for mapping in mappings]

    def mapping(self, mapping_id: str) -> Mapping:
        try:
            return self._mappings[mapping_id]
        except KeyError:
            raise MappingError(f"unknown mapping {mapping_id!r}") from None

    def mappings(self) -> list[Mapping]:
        return list(self._mappings.values())

    def mappings_from(self, peer: str) -> list[Mapping]:
        return [m for m in self._mappings.values() if m.source_peer == peer]

    def mappings_into(self, peer: str) -> list[Mapping]:
        return [m for m in self._mappings.values() if m.target_peer == peer]

    # -- the mapping graph -----------------------------------------------------------
    def mapping_graph(self) -> dict[str, set[str]]:
        """``{source peer: {target peers}}`` over all mappings."""
        graph: dict[str, set[str]] = defaultdict(set)
        for mapping in self._mappings.values():
            graph[mapping.source_peer].add(mapping.target_peer)
        return dict(graph)

    def peers_reachable_from(self, peer: str) -> set[str]:
        """Peers whose data can (transitively) flow into ``peer``.

        Follows mapping edges backwards: a peer X is in the result when there
        is a path of mappings X -> ... -> ``peer``.
        """
        incoming: dict[str, set[str]] = defaultdict(set)
        for mapping in self._mappings.values():
            incoming[mapping.target_peer].add(mapping.source_peer)
        seen: set[str] = set()
        frontier = [peer]
        while frontier:
            current = frontier.pop()
            for source in incoming.get(current, ()):
                if source not in seen and source != peer:
                    seen.add(source)
                    frontier.append(source)
        return seen

    def __iter__(self) -> Iterator[Peer]:
        return iter(self._peers.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Catalog(peers={sorted(self._peers)}, "
            f"mappings={sorted(self._mappings)})"
        )
