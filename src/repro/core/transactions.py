"""Transactions and their antecedent dependency graph.

The CDSS treats the *transaction* — a set of tuple-level updates applied
atomically at one peer — as the basic unit of publication, translation and
reconciliation.  Data dependencies between transactions (one transaction
modifies or deletes a tuple inserted by another) induce a dependency graph
that reconciliation must respect: a transaction can only be accepted if its
antecedents are accepted, and must be rejected if any antecedent is rejected.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..errors import TransactionError
from .hashing import stable_hash
from .updates import Update, UpdateKind


@dataclass(frozen=True)
class Transaction:
    """An immutable, published transaction.

    Attributes:
        txn_id: Globally unique identifier (assigned by the originating peer).
        peer: The originating peer's name.
        updates: The tuple-level updates, in application order.
        antecedents: Identifiers of transactions this one depends on (it
            reads, modifies or deletes tuples they produced).
        epoch: The logical-clock value at which the transaction was published
            (0 while still unpublished).
    """

    txn_id: str
    peer: str
    updates: tuple[Update, ...]
    antecedents: frozenset[str] = frozenset()
    epoch: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "updates", tuple(self.updates))
        object.__setattr__(self, "antecedents", frozenset(self.antecedents))
        if not self.txn_id:
            raise TransactionError("transactions require a non-empty txn_id")
        if not self.updates:
            raise TransactionError(f"transaction {self.txn_id!r} has no updates")
        if self.txn_id in self.antecedents:
            raise TransactionError(
                f"transaction {self.txn_id!r} cannot be its own antecedent"
            )

    # -- content views ---------------------------------------------------------
    def relations(self) -> set[str]:
        return {update.relation for update in self.updates}

    def inserted_tuples(self) -> list[tuple[str, tuple]]:
        """All ``(relation, tuple)`` pairs this transaction adds."""
        produced = []
        for update in self.updates:
            for values in update.inserted_tuples():
                produced.append((update.relation, values))
        return produced

    def deleted_tuples(self) -> list[tuple[str, tuple]]:
        """All ``(relation, tuple)`` pairs this transaction removes."""
        removed = []
        for update in self.updates:
            for values in update.deleted_tuples():
                removed.append((update.relation, values))
        return removed

    def touched_tuples(self) -> set[tuple[str, tuple]]:
        return set(self.inserted_tuples()) | set(self.deleted_tuples())

    def with_epoch(self, epoch: int) -> "Transaction":
        """Return a copy stamped with the publication epoch."""
        return Transaction(self.txn_id, self.peer, self.updates, self.antecedents, epoch)

    # -- content addressing ------------------------------------------------------
    def content_payload(self) -> tuple:
        """The canonical value this transaction's content digest covers.

        Excludes ``txn_id`` (so ids can be *derived from* the digest) and
        ``epoch`` (assigned later, at publication): the digest identifies
        what the transaction does, not where it ended up in the log.
        """
        return (
            "txn",
            self.peer,
            tuple(
                (str(update.kind.value), update.relation, update.values,
                 update.old_values, update.origin)
                for update in self.updates
            ),
            frozenset(self.antecedents),
        )

    def content_digest(self, seed: int = 0) -> int:
        """Process-stable 64-bit content digest (independent of
        ``PYTHONHASHSEED``; identical across interpreter runs)."""
        return stable_hash(self.content_payload(), seed=seed)

    def describe(self) -> str:
        parts = "; ".join(update.describe() for update in self.updates)
        deps = f" after {sorted(self.antecedents)}" if self.antecedents else ""
        return f"{self.txn_id}@{self.peer}[{parts}]{deps}"

    def __str__(self) -> str:
        return self.describe()


class TransactionBuilder:
    """Accumulates updates made at a peer into a transaction.

    The builder computes the antecedent set automatically: whenever an update
    deletes or modifies a tuple, the builder looks up, in the supplied
    ``producers`` index, which earlier transaction produced that tuple and
    records it as an antecedent.

    When no explicit ``txn_id`` is given the final id is *content-addressed*:
    ``{peer}-txn-{digest}`` where the digest is the process-stable hash of the
    transaction's content plus a per-process nonce (so two identical-content
    transactions still get distinct ids).  Content-addressed ids are identical
    across interpreter runs — they never depend on builtin ``hash()`` or
    ``PYTHONHASHSEED`` — which the replica placement and reconciliation
    sketches rely on.
    """

    _counter = itertools.count(1)

    def __init__(
        self,
        peer: str,
        txn_id: Optional[str] = None,
        producers: Optional[Mapping[tuple[str, tuple], str]] = None,
    ) -> None:
        self._peer = peer
        self._auto_id = txn_id is None
        self._nonce = next(self._counter)
        self._txn_id = txn_id or f"{peer}-txn-{self._nonce}"
        self._updates: list[Update] = []
        self._antecedents: set[str] = set()
        self._producers = dict(producers or {})

    @property
    def txn_id(self) -> str:
        return self._txn_id

    def _record_dependency(self, relation: str, values: tuple) -> None:
        producer = self._producers.get((relation, tuple(values)))
        if producer is not None and producer != self._txn_id:
            self._antecedents.add(producer)

    def insert(self, relation: str, values: Sequence[object]) -> "TransactionBuilder":
        self._updates.append(Update.insert(relation, values, origin=self._peer))
        return self

    def delete(self, relation: str, values: Sequence[object]) -> "TransactionBuilder":
        self._record_dependency(relation, tuple(values))
        self._updates.append(Update.delete(relation, values, origin=self._peer))
        return self

    def modify(
        self, relation: str, old_values: Sequence[object], new_values: Sequence[object]
    ) -> "TransactionBuilder":
        self._record_dependency(relation, tuple(old_values))
        self._updates.append(
            Update.modify(relation, old_values, new_values, origin=self._peer)
        )
        return self

    def depends_on(self, *txn_ids: str) -> "TransactionBuilder":
        """Explicitly add antecedent transactions."""
        self._antecedents.update(txn_ids)
        return self

    def build(self) -> Transaction:
        transaction = Transaction(
            self._txn_id,
            self._peer,
            tuple(self._updates),
            frozenset(self._antecedents),
        )
        if self._auto_id:
            digest = stable_hash(("txn-id", self._nonce, transaction.content_payload()))
            transaction = Transaction(
                f"{self._peer}-txn-{digest:016x}",
                self._peer,
                transaction.updates,
                transaction.antecedents,
            )
        return transaction


# -- dependency graph utilities ------------------------------------------------------

def dependency_order(transactions: Iterable[Transaction]) -> list[Transaction]:
    """Topologically sort transactions so antecedents come before dependents.

    Antecedents outside the given set are ignored (they are assumed to be
    already applied or handled by reconciliation).  Raises
    :class:`TransactionError` on a dependency cycle.
    """
    transactions = list(transactions)
    by_id = {transaction.txn_id: transaction for transaction in transactions}
    permanent: set[str] = set()
    temporary: set[str] = set()
    ordered: list[Transaction] = []

    def visit(txn_id: str) -> None:
        if txn_id in permanent:
            return
        if txn_id in temporary:
            raise TransactionError(
                f"cycle in transaction dependencies involving {txn_id!r}"
            )
        temporary.add(txn_id)
        for antecedent in sorted(by_id[txn_id].antecedents):
            if antecedent in by_id:
                visit(antecedent)
        temporary.discard(txn_id)
        permanent.add(txn_id)
        ordered.append(by_id[txn_id])

    for transaction in sorted(transactions, key=lambda txn: txn.txn_id):
        visit(transaction.txn_id)
    return ordered


def dependents_index(transactions: Iterable[Transaction]) -> dict[str, set[str]]:
    """Map each transaction id to the ids of transactions that depend on it."""
    index: dict[str, set[str]] = {}
    for transaction in transactions:
        for antecedent in transaction.antecedents:
            index.setdefault(antecedent, set()).add(transaction.txn_id)
    return index


def transitive_dependents(
    roots: Iterable[str], transactions: Iterable[Transaction]
) -> set[str]:
    """All transactions that (transitively) depend on any of ``roots``."""
    index = dependents_index(transactions)
    result: set[str] = set()
    frontier = list(roots)
    while frontier:
        current = frontier.pop()
        for dependent in index.get(current, ()):
            if dependent not in result:
                result.add(dependent)
                frontier.append(dependent)
    return result


def transitive_antecedents(
    transaction: Transaction, by_id: Mapping[str, Transaction]
) -> set[str]:
    """All antecedents of ``transaction``, following the graph transitively.

    Antecedent ids missing from ``by_id`` are included in the result (the
    caller decides how to treat unknown antecedents) but not expanded.
    """
    result: set[str] = set()
    frontier = list(transaction.antecedents)
    while frontier:
        current = frontier.pop()
        if current in result:
            continue
        result.add(current)
        known = by_id.get(current)
        if known is not None:
            frontier.extend(known.antecedents)
    return result


def producers_index(transactions: Iterable[Transaction]) -> dict[tuple[str, tuple], str]:
    """Map each produced ``(relation, tuple)`` to the transaction that produced it.

    Later transactions overwrite earlier producers of the same tuple, which is
    the behaviour :class:`TransactionBuilder` needs for antecedent inference.
    """
    index: dict[tuple[str, tuple], str] = {}
    for transaction in transactions:
        for relation, values in transaction.inserted_tuples():
            index[(relation, values)] = transaction.txn_id
    return index
